"""Setuptools shim.

This environment is offline with a pre-PEP-660 setuptools (no ``wheel``
package), so ``pip install -e .`` needs the legacy ``setup.py develop``
path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
