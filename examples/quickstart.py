#!/usr/bin/env python
"""Quickstart: build a parity-declustered layout and inspect it.

Run:  python examples/quickstart.py [v] [k]

Builds the best feasible layout for a v-disk array with parity stripes
of size k, prints the paper's quality metrics (Conditions 2-4), and
shows the small-array layout table in the style of the paper's Fig. 2.
"""

import sys

import repro
from repro.layouts import parity_counts


def main() -> None:
    v = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    plan = repro.plan(v, k)
    print(f"Planned construction for v={v}, k={k}: {plan.method}")
    print(f"  predicted layout size: {plan.predicted_size} units/disk")
    print(f"  perfectly parity-balanced: {plan.balanced}")
    print(f"  parameters: {plan.detail}")

    layout = plan.build()
    layout.validate()
    metrics = repro.evaluate(layout)
    print("\nMeasured metrics:")
    print(f"  {metrics.summary()}")
    print(f"  parity units per disk: {parity_counts(layout)}")
    print(f"  reconstruction reads at most {metrics.workload_max:.1%} of each "
          f"surviving disk (RAID5 would read 100%)")

    if layout.size <= 30 and v <= 12:
        print("\nLayout table (Pn = parity of stripe n, Sn = data):")
        print(layout.render())
    else:
        print(f"\n(layout too large to print: {v} disks x {layout.size} units)")


if __name__ == "__main__":
    main()
