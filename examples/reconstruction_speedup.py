#!/usr/bin/env python
"""Reconstruction economics: declustering vs RAID5, simulated.

Run:  python examples/reconstruction_speedup.py

Fails a disk in a 9-disk array laid out with stripe sizes k = 3..9
(k = 9 is RAID5) and measures, with the event-driven simulator:

* the fraction of each surviving disk read during rebuild — analytic
  value (k-1)/(v-1);
* rebuild duration with rebuild parallelism, alone and under a
  foreground workload;
* bit-for-bit verification of the rebuilt disk through the XOR data
  plane.
"""

from repro.layouts import raid5_layout, ring_layout
from repro.sim import WorkloadConfig, simulate_rebuild

V = 9


def main() -> None:
    print(f"Array of v={V} disks; failing disk 0 and rebuilding to a spare.\n")
    header = (
        f"{'k':>3} | {'read frac':>10} {'analytic':>9} | "
        f"{'rebuild ms':>10} {'w/ load ms':>10} | verified"
    )
    print(header)
    print("-" * len(header))

    for k in (3, 4, 8, V):
        layout = (
            raid5_layout(V, rotations=8) if k == V else ring_layout(V, k)
        )
        quiet = simulate_rebuild(layout, failed_disk=0, parallelism=4, verify_data=True)
        busy = simulate_rebuild(
            layout,
            failed_disk=0,
            parallelism=4,
            workload=WorkloadConfig(interarrival_ms=6.0, seed=11),
            workload_duration_ms=5_000.0,
        )
        frac = max(quiet.read_fractions(layout.size))
        analytic = (k - 1) / (V - 1)
        print(
            f"{k:>3} | {frac:>10.3f} {analytic:>9.3f} | "
            f"{quiet.duration_ms:>10.0f} {busy.duration_ms:>10.0f} | "
            f"{quiet.data_verified}"
        )

    print(
        "\nSmaller k reads a smaller fraction of each surviving disk "
        "(at the cost of higher parity overhead 1/k), which is exactly "
        "the trade parity declustering buys."
    )


if __name__ == "__main__":
    main()
