#!/usr/bin/env python
"""Extendible arrays and distributed sparing — the paper's Section 5
research directions, implemented.

Run:  python examples/extendible_arrays.py

1. Builds a family of layouts for 13..16 disks from ONE ring design and
   shows that growing the array moves zero data units (only O(v) parity
   roles change) — the "minimal reconfiguration" the paper asks for.
2. Reserves distributed spare units (balanced by the Theorem 14 flow
   method) and compares rebuild time against a dedicated spare disk.
"""

from repro.layouts import extendible_family, ring_layout, with_distributed_sparing
from repro.sim import simulate_rebuild


def main() -> None:
    print("=== Extendible layouts (grow 13 -> 16 disks, k=9) ===\n")
    family = extendible_family(16, 9, steps=3)
    for step in family:
        total = step.layout.total_units()
        print(
            f"  v={step.v}: data units moved = {step.data_moved}, "
            f"parity roles re-designated = {step.role_changed} "
            f"({step.role_changed / total:.2%} of the array)"
        )
    print("\n  Growing the array never relocates live data: the removal\n"
          "  family keeps every unit's position stable by construction.\n")

    print("=== Distributed sparing (v=9, k=4) ===\n")
    layout = ring_layout(9, 4)
    sparing = with_distributed_sparing(layout)
    print(f"  spare units per disk: {sparing.spare_counts()} "
          f"(balanced by the Theorem 14 flow)")
    print(f"  live-data fraction after reserving parity+spare: "
          f"{sparing.data_fraction():.2f}")

    dedicated = simulate_rebuild(layout, failed_disk=0, parallelism=8)
    distributed = simulate_rebuild(
        layout, failed_disk=0, parallelism=8, sparing=sparing, verify_data=True
    )
    print(f"\n  rebuild to dedicated spare disk: {dedicated.duration_ms:>6.0f} ms")
    print(f"  rebuild to distributed spares:   {distributed.duration_ms:>6.0f} ms "
          f"({dedicated.duration_ms / distributed.duration_ms:.2f}x faster, "
          f"verified={distributed.data_verified})")


if __name__ == "__main__":
    main()
