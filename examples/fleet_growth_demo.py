#!/usr/bin/env python
"""Live fleet growth: migrate volumes between arrays under load.

Run:  python examples/fleet_growth_demo.py

The paper's declustered layouts keep a single array serving through a
disk failure; the fleet service extends that to serving through
*reconfiguration*.  This demo:

1. builds a 4-array fleet (weighted volume placement) and serves a
   mixed read/write stream;
2. mid-stream, grows it to 8 arrays: the consistent-hash reshape names
   exactly which volumes move, and a MigrationCoordinator copies each
   one with real admission-controlled disk IOs, mirrors concurrent
   writes, drains in-flight requests, verifies the moved cells bit for
   bit, and cuts routing over — with zero lost requests;
3. serves a fresh stream on the grown fleet and shows the tightened
   request balance.

Everything is deterministic under the seeds below and runs headless
(`make examples-smoke` / CI execute this script).
"""

from repro.service import Fleet, MigrationCoordinator, check_fleet
from repro.sim import WorkloadConfig
from repro.sim.compile import generate_request_stream

SEED = 0
START, TARGET = 4, 8
DURATION_MS = 1200.0


def main() -> None:
    print(f"=== Building a {START}-array fleet (v=9, k=3) ===\n")
    fleet = Fleet(
        START, 9, 3, seed=SEED, dataplane=True, placement="weighted"
    )
    conf = check_fleet(fleet)
    print(f"  conformance (Conditions 1-4): "
          f"{'PASS' if conf.passed else 'FAIL'}")
    print(f"  capacity: {fleet.capacity} units over "
          f"{fleet.shard_map.volumes} logical volumes\n")

    print(f"=== Growing {START} -> {TARGET} arrays mid-stream ===\n")
    coordinator = MigrationCoordinator(
        fleet, TARGET, at_ms=DURATION_MS * 0.25, admission=2
    )
    coordinator.arm()
    plan = coordinator.plan
    print(f"  reshape plan: {len(plan.moves)} volumes move "
          f"({plan.units_to_copy} units to copy)")

    mixed = WorkloadConfig(interarrival_ms=0.5, read_fraction=0.7, seed=11)
    stream = generate_request_stream(mixed, DURATION_MS, fleet.capacity)
    report = fleet.serve_stream(*stream)

    print(f"  served {report.scheduled} requests during the migration; "
          f"lost: {report.lost}")
    held = sum(o.held_requests for o in coordinator.outcomes)
    mirrored = sum(o.forwarded_writes for o in coordinator.outcomes)
    copy_ms = max(o.cutover_at_ms for o in coordinator.outcomes) - min(
        o.requested_at_ms for o in coordinator.outcomes
    )
    print(f"  migrated {len(coordinator.outcomes)} volumes "
          f"({coordinator.total_units_copied()} units) in "
          f"{copy_ms:.0f} simulated ms")
    print(f"  requests held at cutovers: {held} "
          f"(released to destinations, latency from original arrival)")
    print(f"  writes mirrored during copy windows: {mirrored}")
    print(f"  every moved volume verified bit-for-bit: "
          f"{coordinator.all_verified}\n")
    assert report.lost == 0, "migration must not lose requests"
    assert coordinator.all_verified, "migration must verify bit-for-bit"

    print(f"=== The grown fleet ===\n")
    uniform = WorkloadConfig(interarrival_ms=0.5, read_fraction=1.0, seed=42)
    stream = generate_request_stream(uniform, DURATION_MS, fleet.capacity)
    post = fleet.serve_stream(*stream)
    print(f"  {fleet.shards} arrays now serving; fresh uniform stream of "
          f"{post.scheduled} requests")
    print(f"  per-shard requests: {post.per_shard_scheduled}")
    print(f"  request balance (max/min): {post.shard_balance:.2f}x "
          f"(weighted placement; the ring baseline sits near 2x)")
    assert post.shard_balance <= 1.3


if __name__ == "__main__":
    main()
