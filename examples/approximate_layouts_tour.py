#!/usr/bin/env python
"""Tour of the approximately-balanced constructions (Section 3).

Run:  python examples/approximate_layouts_tour.py

Walks the paper's Section 3 toolkit on concrete arrays:

* Theorem 8: shrink a prime-power array by one disk, staying perfect;
* Theorem 9: shrink by several disks with a one-unit parity spread;
* Theorems 10-12: grow a prime-power array with the stairway
  transformation, trading a small parity/workload imbalance for a
  layout size the exact methods cannot reach.
"""

from fractions import Fraction

from repro.layouts import (
    evaluate_layout,
    find_stairway_plan,
    stairway_layout,
    theorem8_layout,
    theorem9_layout,
)


def show(title: str, layout) -> None:
    layout.validate()
    m = evaluate_layout(layout)
    print(f"{title}")
    print(f"  {m.summary()}")
    print(f"  parity spread (max-min units): {m.parity_spread}\n")


def main() -> None:
    print("=== Removing disks from ring layouts ===\n")
    show("Theorem 8 — 16-disk array from GF(17) minus one disk, k=5:", theorem8_layout(17, 5))
    show("Theorem 9 — 14-disk array from GF(16)-3 removals, k=9:", theorem9_layout(16, 9, 2))

    print("=== Growing arrays with the stairway transformation ===\n")
    for v in (10, 11, 33, 45):
        plan = find_stairway_plan(v, 4)
        if plan is None:
            print(f"v={v}: no stairway plan for k=4\n")
            continue
        layout = stairway_layout(v, plan.q, 4)
        m = evaluate_layout(layout)
        imbalance = m.parity_overhead_max - Fraction(1, 4)
        show(
            f"v={v} from q={plan.q} (c={plan.c}, w={plan.w}), k=4 — "
            f"parity imbalance above 1/k: {imbalance}",
            layout,
        )

    print(
        "Larger perturbations (bigger v-q) give smaller layouts but more\n"
        "imbalance; for large q the imbalance is always marginal — the\n"
        "paper's size/imbalance trade-off, measurable here."
    )


if __name__ == "__main__":
    main()
