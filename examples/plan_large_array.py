#!/usr/bin/env python
"""Plan layouts for large arrays — the paper's motivating scenario.

Run:  python examples/plan_large_array.py

For a range of large array sizes (including awkward composite v where
no BIBD is known), show which construction the planner picks, its size
against the 10,000-unit feasibility bound, and what the pre-paper
state of the art (complete designs + Holland-Gibson) would have cost.
"""

from repro.core import plan_layout
from repro.layouts import FEASIBLE_SIZE_LIMIT, predicted_sizes

TARGETS = [
    (50, 5),
    (64, 8),
    (100, 7),
    (101, 5),
    (128, 16),
    (200, 10),
    (250, 8),
    (333, 7),   # 333 = 9 * 37: no ring design for k=7
    (500, 10),
    (1000, 8),
    (1021, 12),  # prime
    (2000, 16),
]


def main() -> None:
    print(f"Feasibility bound: {FEASIBLE_SIZE_LIMIT} units/disk (Condition 4)\n")
    header = (
        f"{'v':>5} {'k':>3} | {'chosen':<12} {'size':>8} {'balanced':>9} | "
        f"{'HG+complete':>12} {'feasible?':>9}"
    )
    print(header)
    print("-" * len(header))
    for v, k in TARGETS:
        sizes = predicted_sizes(v, k)
        old = sizes.get("hg_complete")
        old_txt = f"{old}" if old is not None else "n/a"
        old_ok = "yes" if old is not None and old <= FEASIBLE_SIZE_LIMIT else "NO"
        try:
            plan = plan_layout(v, k)
            print(
                f"{v:>5} {k:>3} | {plan.method:<12} {plan.predicted_size:>8} "
                f"{str(plan.balanced):>9} | {old_txt:>12} {old_ok:>9}"
            )
        except ValueError:
            print(f"{v:>5} {k:>3} | {'(none)':<12} {'-':>8} {'-':>9} | {old_txt:>12} {old_ok:>9}")

    print(
        "\nEvery row where the old method column says NO but a construction "
        "was chosen is a layout the paper's techniques made feasible."
    )


if __name__ == "__main__":
    main()
