#!/usr/bin/env python
"""Network-flow parity balancing (Section 4) in action.

Run:  python examples/parity_balancing_demo.py

Starting from one BIBD, compares three ways to place parity:

1. Holland–Gibson: replicate the design k times, rotate parity —
   perfectly balanced but k times larger;
2. single flow-balanced copy (Theorem 14) — same design, no
   replication, per-disk parity counts within one unit;
3. the lcm-minimal perfectly balanced layout (Corollary 17).

Then shows the simulator-visible consequence: under a write-heavy
workload, the busiest disk tracks the maximum parity overhead.
"""

from repro.designs import best_design
from repro.flow import copies_for_perfect_balance
from repro.layouts import (
    evaluate_layout,
    holland_gibson_layout,
    minimum_balanced_layout,
    parity_counts,
    single_copy_layout,
)
from repro.sim import WorkloadConfig, simulate_workload


def report(title, layout):
    layout.validate()
    m = evaluate_layout(layout)
    print(f"{title}")
    print(f"  size={m.size} units/disk, stripes={m.b}, "
          f"parity counts={parity_counts(layout)}")
    return layout


def main() -> None:
    design = best_design(9, 3)  # b=12, v=9: v does not divide b
    print(f"Base design: {design.name} ({design.parameter_string()})")
    copies = copies_for_perfect_balance(design.b, design.v)
    print(f"Corollary 17: perfect balance needs lcm(b,v)/b = {copies} copies\n")

    hg = report("Holland–Gibson (k copies, rotated):", holland_gibson_layout(design))
    single = report("Flow-balanced single copy (Thm 14):", single_copy_layout(design))
    minimal = report("Minimal perfectly balanced (Cor 17):", minimum_balanced_layout(design))

    print(f"\nSize reduction vs Holland–Gibson: "
          f"single copy {hg.size / single.size:.1f}x, "
          f"lcm-minimal {hg.size / minimal.size:.1f}x")

    print("\nWrite-heavy workload (70% writes) on each layout:")
    for name, layout in [("hg", hg), ("flow-single", single), ("lcm-min", minimal)]:
        rep = simulate_workload(
            layout,
            duration_ms=8_000.0,
            config=WorkloadConfig(interarrival_ms=7.0, read_fraction=0.3, seed=9),
        )
        print(f"  {name:<12} busiest/least-busy disk IO ratio: "
              f"{rep.max_min_io_ratio:.2f}")


if __name__ == "__main__":
    main()
