# Repo tooling: `make check` is the pre-merge gate.
#
# Targets:
#   check   - tier-1 pytest suite + the Conditions 1-4 conformance sweep
#   test    - tier-1 pytest suite only
#   verify  - conformance sweep over every construction family
#   bench   - benchmark suites; writes BENCH_mapping.json + BENCH_sim.json
#   bench-all - every pytest-benchmark file under benchmarks/

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test verify bench bench-all

check: test verify

test:
	$(PYTHON) -m pytest -x -q

verify:
	$(PYTHON) -m repro verify --all

bench:
	$(PYTHON) -m repro bench

bench-all:
	$(PYTHON) -m pytest benchmarks -q
