# Repo tooling: `make check` is the pre-merge gate.
#
# Targets:
#   check   - tier-1 pytest suite + doctests + conformance sweep +
#             fleet-serve smokes (serial + 2-worker) + headless
#             examples smoke
#   test    - tier-1 pytest suite only (parallelized via pytest-xdist
#             when installed)
#   doctest - public-API usage examples (core.api, service, sim.compile)
#   verify  - conformance sweep over every construction family
#   smoke   - quick fleet scenario (8 arrays, 2 concurrent verified rebuilds)
#   smoke-parallel - the same scenario on 2 worker processes; runs the
#             serial smoke first and fails unless the two reports are
#             byte-identical in canonical form
#   smoke-stream - large-horizon streaming smoke: a 10^7-request mixed
#             fleet served through compiled windows with a peak-RSS
#             ceiling (--max-rss-mb) — the constant-memory gate.
#             ~1 min of wall time; skip on slow hosts with
#             STREAM_SMOKE=0
#   examples-smoke - run every script under examples/ headless
#   docs-check     - link-check docs/ + README (local targets only)
#   bench-guard    - re-time the mixed-path executor and fail on a >20%
#             events/s regression vs the committed BENCH_sim.json
#             (override the floor with BENCH_GUARD_RATIO=0.5, or 0 to
#             record only)
#   bench   - benchmark suites; writes BENCH_{mapping,sim,service}.json
#   bench-all - every pytest-benchmark file under benchmarks/

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Cut CI wall time with pytest-xdist when it is available; fall back to
# the plain serial run otherwise (the container image does not ship it).
XDIST := $(shell $(PYTHON) -c "import pytest_xdist" 2>/dev/null && echo "-n auto")

.PHONY: check test doctest verify smoke smoke-parallel smoke-stream examples-smoke docs-check bench-guard bench bench-all

check: test doctest verify smoke smoke-parallel smoke-stream examples-smoke bench-guard

test:
	$(PYTHON) -m pytest -x -q $(XDIST)

doctest:
	$(PYTHON) -m pytest --doctest-modules -q \
		src/repro/core/api.py \
		src/repro/service/__init__.py \
		src/repro/sim/compile.py

verify:
	$(PYTHON) -m repro verify --all

smoke:
	$(PYTHON) -m repro serve --smoke --json BENCH_serve_smoke.json

smoke-parallel: smoke
	$(PYTHON) -m repro serve --smoke --workers 2 --json BENCH_serve_smoke_parallel.json
	$(PYTHON) -c "import json; from repro.service import canonical_payload as c; \
	a = json.load(open('BENCH_serve_smoke.json')); \
	b = json.load(open('BENCH_serve_smoke_parallel.json')); \
	assert json.dumps(c(a), sort_keys=True) == json.dumps(c(b), sort_keys=True), \
	'parallel smoke report differs from serial'; \
	print('parallel smoke report byte-identical to serial')"

# 10^7 requests over a 4-shard mixed fleet, streamed through 65536-
# request compiled windows: the run must finish under the RSS ceiling
# (a horizon-proportional buffer would blow through it by an order of
# magnitude) and its report "passed" gate must hold.  The JSON artifact
# rides the BENCH_*.json upload glob in CI.
smoke-stream:
ifeq ($(STREAM_SMOKE),0)
	@echo "smoke-stream: skipped (STREAM_SMOKE=0)"
else
	$(PYTHON) -m repro serve --shards 4 --duration 12500000 \
		--interarrival 1.25 --failures 0 --no-verify \
		--window 65536 --max-rss-mb 256 \
		--json BENCH_serve_stream_smoke.json
endif

examples-smoke:
	$(PYTHON) tools/run_examples.py

docs-check:
	$(PYTHON) tools/check_links.py README.md docs

bench-guard:
	$(PYTHON) tools/bench_guard.py

bench:
	$(PYTHON) -m repro bench

bench-all:
	$(PYTHON) -m pytest benchmarks -q
