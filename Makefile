# Repo tooling: `make check` is the pre-merge gate.
#
# Targets:
#   check   - tier-1 pytest suite + conformance sweep + fleet-serve smoke
#   test    - tier-1 pytest suite only
#   verify  - conformance sweep over every construction family
#   smoke   - quick fleet scenario (8 arrays, 2 concurrent verified rebuilds)
#   bench   - benchmark suites; writes BENCH_{mapping,sim,service}.json
#   bench-all - every pytest-benchmark file under benchmarks/

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test verify smoke bench bench-all

check: test verify smoke

test:
	$(PYTHON) -m pytest -x -q

verify:
	$(PYTHON) -m repro verify --all

smoke:
	$(PYTHON) -m repro serve --smoke --json BENCH_serve_smoke.json

bench:
	$(PYTHON) -m repro bench

bench-all:
	$(PYTHON) -m pytest benchmarks -q
