# Repo tooling: `make check` is the pre-merge gate.
#
# Targets:
#   check   - tier-1 pytest suite + doctests + conformance sweep +
#             fleet-serve smoke + headless examples smoke
#   test    - tier-1 pytest suite only
#   doctest - public-API usage examples (core.api, service, sim.compile)
#   verify  - conformance sweep over every construction family
#   smoke   - quick fleet scenario (8 arrays, 2 concurrent verified rebuilds)
#   examples-smoke - run every script under examples/ headless
#   docs-check     - link-check docs/ + README (local targets only)
#   bench   - benchmark suites; writes BENCH_{mapping,sim,service}.json
#   bench-all - every pytest-benchmark file under benchmarks/

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test doctest verify smoke examples-smoke docs-check bench bench-all

check: test doctest verify smoke examples-smoke

test:
	$(PYTHON) -m pytest -x -q

doctest:
	$(PYTHON) -m pytest --doctest-modules -q \
		src/repro/core/api.py \
		src/repro/service/__init__.py \
		src/repro/sim/compile.py

verify:
	$(PYTHON) -m repro verify --all

smoke:
	$(PYTHON) -m repro serve --smoke --json BENCH_serve_smoke.json

examples-smoke:
	$(PYTHON) tools/run_examples.py

docs-check:
	$(PYTHON) tools/check_links.py README.md docs

bench:
	$(PYTHON) -m repro bench

bench-all:
	$(PYTHON) -m pytest benchmarks -q
