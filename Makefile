# Repo tooling: `make check` is the pre-merge gate.
#
# Targets:
#   check   - tier-1 pytest suite + doctests + conformance sweep +
#             fleet-serve smokes (serial + 2-worker + streaming +
#             instrumented) + headless examples smoke + bench guard
#   test    - tier-1 pytest suite only (parallelized via pytest-xdist
#             when installed)
#   doctest - public-API usage examples (core.api, service, sim.compile)
#   verify  - conformance sweep over every construction family
#   smoke   - quick fleet scenario (8 arrays, 2 concurrent verified rebuilds)
#   smoke-parallel - the same scenario on 2 worker processes; runs the
#             serial smoke first and fails unless the two reports are
#             byte-identical in canonical form
#   smoke-stream - large-horizon streaming smoke: a 10^7-request mixed
#             fleet served through compiled windows with a peak-RSS
#             ceiling (--max-rss-mb) — the constant-memory gate.
#             ~1 min of wall time; skip on slow hosts with
#             STREAM_SMOKE=0
#   smoke-obs - instrumented serve smoke: metrics JSONL + Prometheus +
#             trace span files written on the serial and 2-worker runs
#             must be byte-identical; the trace summary must render
#   smoke-autoscale - autoscaling control-loop smoke: a scripted load
#             spike must fire a grow with zero lost requests, verified
#             cutovers, and a byte-identically replayable decision log
#   smoke-frontend - warm serving smoke: serve --listen with a 2-process
#             pool in a subprocess, submit the same stream twice; the
#             warm report must be canonically identical to the cold one
#             and to the batch run, with a proven pool/cache hit, clean
#             shutdown, and zero leaked /dev/shm segments
#   examples-smoke - run every script under examples/ headless
#   docs-check     - link-check docs/ + README (local targets only)
#   bench-guard    - re-time the mixed-path executor and fail on a >20%
#             events/s regression vs the committed BENCH_sim.json
#             (override the floor with BENCH_GUARD_RATIO=0.5, or 0 to
#             record only)
#   bench   - benchmark suites; writes BENCH_{mapping,sim,service}.json
#   bench-all - every pytest-benchmark file under benchmarks/

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Cut CI wall time with pytest-xdist when it is available; fall back to
# the plain serial run otherwise (the container image does not ship it).
XDIST := $(shell $(PYTHON) -c "import pytest_xdist" 2>/dev/null && echo "-n auto")

.PHONY: check test doctest verify smoke smoke-parallel smoke-stream smoke-obs smoke-autoscale smoke-frontend examples-smoke docs-check bench-guard bench bench-all

check: test doctest verify smoke smoke-parallel smoke-stream smoke-obs smoke-autoscale smoke-frontend examples-smoke bench-guard

test:
	$(PYTHON) -m pytest -x -q $(XDIST)

doctest:
	$(PYTHON) -m pytest --doctest-modules -q \
		src/repro/core/api.py \
		src/repro/service/__init__.py \
		src/repro/sim/compile.py

verify:
	$(PYTHON) -m repro verify --all

smoke:
	$(PYTHON) -m repro serve --smoke --json BENCH_serve_smoke.json

smoke-parallel: smoke
	$(PYTHON) -m repro serve --smoke --workers 2 --json BENCH_serve_smoke_parallel.json
	$(PYTHON) -c "import json; from repro.service import canonical_payload as c; \
	a = json.load(open('BENCH_serve_smoke.json')); \
	b = json.load(open('BENCH_serve_smoke_parallel.json')); \
	assert json.dumps(c(a), sort_keys=True) == json.dumps(c(b), sort_keys=True), \
	'parallel smoke report differs from serial'; \
	print('parallel smoke report byte-identical to serial')"

# 10^7 requests over a 4-shard mixed fleet, streamed through 65536-
# request compiled windows: the run must finish under the RSS ceiling
# (a horizon-proportional buffer would blow through it by an order of
# magnitude) and its report "passed" gate must hold.  The JSON artifact
# rides the BENCH_*.json upload glob in CI.
smoke-stream:
ifeq ($(STREAM_SMOKE),0)
	@echo "smoke-stream: skipped (STREAM_SMOKE=0)"
else
	$(PYTHON) -m repro serve --shards 4 --duration 12500000 \
		--interarrival 1.25 --failures 0 --no-verify \
		--window 65536 --max-rss-mb 256 \
		--json BENCH_serve_stream_smoke.json
endif

# Instrumented serve smoke: a growing fleet with metrics + traces on,
# serially and on 2 workers.  The observability files must be
# byte-identical across worker counts (cmp), and the trace summarizer
# must render them.  The BENCH_obs_* artifacts ride the CI upload glob.
smoke-obs:
	$(PYTHON) -m repro serve --smoke --shards 4 --grow 4:6 --window 128 \
		--metrics-out BENCH_obs_metrics.jsonl \
		--metrics-prom BENCH_obs_metrics.prom \
		--trace-out BENCH_obs_trace.jsonl \
		--json BENCH_serve_obs_smoke.json
	$(PYTHON) -m repro serve --smoke --shards 4 --grow 4:6 --window 128 \
		--workers 2 \
		--metrics-out BENCH_obs_metrics_parallel.jsonl \
		--metrics-prom BENCH_obs_metrics_parallel.prom \
		--trace-out BENCH_obs_trace_parallel.jsonl \
		--json BENCH_serve_obs_smoke_parallel.json
	cmp BENCH_obs_metrics.jsonl BENCH_obs_metrics_parallel.jsonl
	cmp BENCH_obs_metrics.prom BENCH_obs_metrics_parallel.prom
	cmp BENCH_obs_trace.jsonl BENCH_obs_trace_parallel.jsonl
	@echo "smoke-obs: metrics + trace byte-identical across worker counts"
	$(PYTHON) -m repro trace BENCH_obs_trace.jsonl --metrics BENCH_obs_metrics.jsonl

# Autoscale smoke: a 2-shard fleet under load past the policy
# threshold — the control loop must fire a grow through the live
# migration path.  The report's "passed" gate (exit code) folds in
# zero lost requests, verified cutovers, and decision-log replay
# byte-identity; the greps pin that the grow actually fired rather
# than the loop idling below threshold.  The decision log and report
# ride the CI artifact upload globs.
smoke-autoscale:
	$(PYTHON) -m repro serve --smoke --shards 2 --interarrival 1.0 \
		--autoscale tools/autoscale_smoke_policy.json \
		--decisions-out BENCH_autoscale_decisions.jsonl \
		--json BENCH_serve_autoscale_smoke.json
	grep -q '"action": "grow"' BENCH_autoscale_decisions.jsonl
	$(PYTHON) -c "import json; p = json.load(open('BENCH_serve_autoscale_smoke.json')); \
	a = p['autoscale']; \
	assert a['events'], 'autoscale smoke: no scaling event fired'; \
	assert a['ok'], 'autoscale smoke: replay/zero-lost/verify gate failed'; \
	print('autoscale smoke: %d tick(s), grow fired, replay identical, zero lost' % len(a['decisions']))"

# Warm-runtime front-end smoke: the persistent pool + shm transport +
# artifact cache behind `serve --listen --workers 2`, exercised over a
# real socket from a real subprocess.  The BENCH_frontend_smoke.json
# artifact rides the CI upload glob.
smoke-frontend:
	$(PYTHON) tools/frontend_smoke.py

examples-smoke:
	$(PYTHON) tools/run_examples.py

docs-check:
	$(PYTHON) tools/check_links.py README.md docs

bench-guard:
	$(PYTHON) tools/bench_guard.py

bench:
	$(PYTHON) -m repro bench

bench-all:
	$(PYTHON) -m pytest benchmarks -q
