"""THM8 + THM9: disk removal from ring layouts.

Regenerates the Section 3.1 metric claims on a sweep: layout size,
parity overhead, and reconstruction workload after removing 1 or i
disks, against the theorems' exact formulas/bands.
"""

from fractions import Fraction

import numpy as np

from repro.layouts import (
    evaluate_layout,
    parity_counts,
    reconstruction_workloads,
    theorem8_layout,
    theorem9_layout,
)

THM8_GRID = [(8, 4), (9, 3), (13, 4), (16, 4), (17, 5), (25, 5)]
THM9_GRID = [(16, 9, 2), (16, 9, 3), (17, 16, 3), (25, 16, 4), (13, 9, 2)]


def test_thm8_table(benchmark):
    layouts = benchmark(lambda: [(v, k, theorem8_layout(v, k)) for v, k in THM8_GRID])
    print("\n[THM8] one-disk removal: size k(v-1), overhead (1/k)(v/(v-1)), workload (k-1)/(v-1):")
    for v, k, lay in layouts:
        lay.validate()
        m = evaluate_layout(lay)
        assert m.size == k * (v - 1)
        assert m.parity_balanced
        assert m.parity_overhead_max == Fraction(v, k * (v - 1))
        w = reconstruction_workloads(lay)
        off = w[~np.eye(v - 1, dtype=bool)]
        assert np.allclose(off, (k - 1) / (v - 1))
        print(
            f"  v={v:>3}->{v-1:>3} k={k}  size={m.size:>4}  "
            f"overhead={m.parity_overhead_max}  workload={(k-1)/(v-1):.4f}  ✓"
        )


def test_thm9_table(benchmark):
    layouts = benchmark(
        lambda: [(v, k, i, theorem9_layout(v, k, i)) for v, k, i in THM9_GRID]
    )
    print("\n[THM9] i-disk removal: per-disk parity in {v+i-1, v+i}:")
    for v, k, i, lay in layouts:
        lay.validate()
        counts = parity_counts(lay)
        assert set(counts) <= {v + i - 1, v + i}
        m = evaluate_layout(lay)
        assert m.size == k * (v - 1)
        lo = Fraction(v + i - 1, k * (v - 1))
        hi = Fraction(v + i, k * (v - 1))
        assert lo <= m.parity_overhead_min and m.parity_overhead_max <= hi
        w = reconstruction_workloads(lay)
        off = w[~np.eye(v - i, dtype=bool)]
        assert np.allclose(off, (k - 1) / (v - 1))
        print(
            f"  v={v:>3}->{v-i:>3} k={k:>2} i={i}  parity counts "
            f"{sorted(set(counts))}  overhead in [{lo}, {hi}]  ✓"
        )
