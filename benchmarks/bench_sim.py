"""BATCH-SIM: the compiled simulation pipeline vs the scalar event loop.

The compile-then-execute model moves generation, address translation,
and request planning out of the event loop: single-phase traces
(read-only, or any mix under write-through) skip the event engine
entirely (per-disk FIFO queues solve analytically), and mixed RMW
traces run through the batch-stepped executor (calendar queue + eager
FIFO tier) — no event heap at all.  The acceptance bars are >= 10x
events/sec over the scalar per-event pipeline on a 100k-request
read-only workload and >= 3x the committed pre-batchstep heap-engine
throughput on the 30k-request mixed workload; rebuild scans and the
sparse metrics path are pinned at 10^4/10^5/10^6 stripes.

Runnable two ways:

* ``pytest benchmarks/bench_sim.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_sim.py`` — standalone run that writes
  ``BENCH_sim.json`` next to the repo root (also available as
  ``python -m repro bench --suite sim``).
"""

import sys
import time
from pathlib import Path

from repro.bench import run_sim_bench, tiled_layout
from repro.core import get_layout
from repro.layouts import evaluate_layout, ring_layout, stripe_incidence
from repro.sim import WorkloadConfig, simulate_rebuild, simulate_workload


def test_workload_solver_speedup(benchmark):
    layout = get_layout(13, 4)
    cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=1.0, seed=7)
    duration = 5.0 * 100_000

    benchmark.pedantic(
        lambda: simulate_workload(
            layout, duration_ms=duration, config=cfg, batched=True
        ),
        rounds=1,
        iterations=1,
    )

    t0 = time.perf_counter()
    a = simulate_workload(layout, duration_ms=duration, config=cfg, batched=True)
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    b = simulate_workload(layout, duration_ms=duration, config=cfg, batched=False)
    t_scalar = time.perf_counter() - t0
    assert a.per_disk_ios == b.per_disk_ios and a.duration_ms == b.duration_ms
    speedup = t_scalar / t_batch
    assert speedup >= 10.0, f"batched workload only {speedup:.1f}x over scalar"
    print(
        f"\n[BATCH-SIM] {a.scheduled} read requests on build(13,4): scalar "
        f"{t_scalar:.2f} s, batched {t_batch:.3f} s ({speedup:.0f}x, "
        f"{a.scheduled / t_batch:,.0f} events/s)"
    )


def test_mixed_batchstep_executor_gain(benchmark):
    """The mixed RMW path on the batch-stepped engines vs the committed
    heap-engine baseline (the tentpole's before/after)."""
    from repro.bench import (
        MIXED_EVENTS_GAIN_BAR,
        PRE_BATCHSTEP_MIXED_EVENTS_PER_S,
    )

    layout = get_layout(13, 4)
    cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=0.7, seed=7)
    duration = 5.0 * 30_000

    benchmark.pedantic(
        lambda: simulate_workload(
            layout, duration_ms=duration, config=cfg, batched=True
        ),
        rounds=1,
        iterations=1,
    )

    t0 = time.perf_counter()
    a = simulate_workload(layout, duration_ms=duration, config=cfg, batched=True)
    t_batch = time.perf_counter() - t0
    events = a.scheduled / t_batch
    gain = events / PRE_BATCHSTEP_MIXED_EVENTS_PER_S
    assert gain >= MIXED_EVENTS_GAIN_BAR, (
        f"mixed path {events:,.0f} ev/s is only {gain:.2f}x the "
        f"pre-batchstep baseline ({PRE_BATCHSTEP_MIXED_EVENTS_PER_S:,} ev/s)"
    )
    print(
        f"\n[BATCH-SIM] {a.scheduled} mixed requests on build(13,4): "
        f"{t_batch * 1e3:.1f} ms ({events:,.0f} events/s, {gain:.1f}x the "
        f"pre-batchstep heap engine)"
    )


def test_rebuild_scan_planning_speedup(benchmark):
    layout = tiled_layout(ring_layout(9, 3), 100_000)

    def batched_plan():
        stripe_incidence.cache_clear()
        return stripe_incidence(layout).rebuild_scan(0)

    sids, _, _, _, _ = benchmark.pedantic(batched_plan, rounds=1, iterations=1)
    expected = sum(1 for s in layout.stripes if 0 in s.disks)
    assert len(sids) == expected


def test_rebuild_reports_identical_at_scale(benchmark):
    layout = tiled_layout(ring_layout(9, 3), 10_000)

    def run_both():
        a = simulate_rebuild(layout, failed_disk=0, parallelism=8, batched=True)
        b = simulate_rebuild(layout, failed_disk=0, parallelism=8, batched=False)
        return a, b

    a, b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert a == b
    assert a.stripes_rebuilt == sum(1 for s in layout.stripes if 0 in s.disks)


def test_sparse_metrics_at_million_stripes(benchmark):
    layout = tiled_layout(ring_layout(9, 3), 1_000_000)

    def evaluate():
        stripe_incidence.cache_clear()
        return evaluate_layout(layout)

    m = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    assert layout.b >= 1_000_000
    assert m.workload_max <= (3 - 1) / (9 - 1) + 1e-9
    stripe_incidence.cache_clear()
    print(
        f"\n[BATCH-SIM] evaluate_layout on b={layout.b} stripes via sparse "
        f"incidence (dense (b,v) would be {layout.b * layout.v * 8 / 1e6:.0f} MB)"
    )


def main() -> int:
    payload = run_sim_bench(Path(__file__).resolve().parent.parent)
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
