"""FIG1-FIG3: regenerate the paper's layout figures and verify their
stated properties.

* Fig. 1 — one parity stripe spanning all disks (RAID level 5 row).
* Fig. 2 — parity-declustered layout for v=4, k=3 (complete design).
* Fig. 3 — BIBD-based k-copy layout for v=4, k=3 (Holland–Gibson).
"""

from fractions import Fraction

from repro.designs import complete_design
from repro.layouts import (
    evaluate_layout,
    holland_gibson_layout,
    parity_counts,
    raid5_layout,
)


def test_fig1_raid5_stripe(benchmark):
    layout = benchmark(raid5_layout, 5)
    layout.validate()
    stripe = layout.stripes[0]
    assert stripe.size == 5  # one unit per disk: Fig. 1's geometry
    m = evaluate_layout(layout)
    assert m.workload_max == 1.0  # rebuilding reads everything
    print("\n[FIG1] RAID5 v=5 stripe row:")
    print(layout.render())


def test_fig2_declustered_layout(benchmark):
    def build():
        return holland_gibson_layout(complete_design(4, 3))

    layout = benchmark(build)
    layout.validate()
    m = evaluate_layout(layout)
    # The Fig. 2 numbers: parity overhead 1/k = 1/3, reconstruction
    # workload (k-1)/(v-1) = 2/3, both perfectly even.
    assert m.parity_overhead_max == Fraction(1, 3)
    assert abs(m.workload_max - 2 / 3) < 1e-12
    assert m.parity_balanced and m.workload_balanced
    print("\n[FIG2] Declustered v=4, k=3:")
    print(layout.render())
    print(f"parity overhead = {m.parity_overhead_max}, workload = {m.workload_max:.4f}")


def test_fig3_bibd_k_copy_layout(benchmark):
    design = complete_design(4, 3)

    layout = benchmark(holland_gibson_layout, design)
    layout.validate()
    # k copies of the BIBD with rotating parity: size k*r = 9, each
    # disk holds exactly r = 3 parity units.
    assert layout.size == design.k * design.r == 9
    assert parity_counts(layout) == [design.r] * 4
    print("\n[FIG3] Holland–Gibson k-copy layout v=4, k=3:")
    print(layout.render())
