"""EXT-SPARE + EXT-GROW + EXT-RAND: the paper's Section 5 directions,
implemented and measured.

* EXT-SPARE — distributed sparing (the Theorem 14 generalization the
  paper points at): rebuild writes spread over all surviving disks beat
  a dedicated spare disk, with spare units balanced within one per disk.
* EXT-GROW — extendible layouts: growing an array built from a removal
  family moves zero data units and re-designates only O(v) parity roles.
* EXT-RAND — the Merchant–Yu randomized baseline: same size, workload
  balanced only in expectation, vs the exact constructions' zero spread.
"""

import numpy as np

from repro.layouts import (
    cocrossing_matrix,
    evaluate_layout,
    extendible_family,
    raid5_layout,
    random_layout,
    ring_layout,
    sequential_metrics,
    verify_double_fault_tolerance,
    with_distributed_sparing,
    with_dual_parity,
)
from repro.sim import simulate_rebuild


def test_distributed_sparing_rebuild(benchmark):
    lay = ring_layout(9, 4)
    sp = with_distributed_sparing(lay)

    def run_both():
        dedicated = simulate_rebuild(lay, failed_disk=0, parallelism=8)
        distributed = simulate_rebuild(
            lay, failed_disk=0, parallelism=8, sparing=sp, verify_data=True
        )
        return dedicated, distributed

    dedicated, distributed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert distributed.data_verified is True
    assert distributed.duration_ms < dedicated.duration_ms
    counts = sp.spare_counts()
    assert max(counts) - min(counts) <= 1
    print("\n[EXT-SPARE] rebuild to dedicated spare vs distributed spares (v=9, k=4):")
    print(f"  dedicated:   {dedicated.duration_ms:>7.0f} ms (single-disk write bottleneck)")
    print(f"  distributed: {distributed.duration_ms:>7.0f} ms "
          f"({dedicated.duration_ms / distributed.duration_ms:.2f}x faster), "
          f"spare counts balanced: {sorted(set(counts))}")


def test_extendible_family_growth(benchmark):
    family = benchmark.pedantic(
        extendible_family, args=(16, 9, 3), rounds=1, iterations=1
    )
    print("\n[EXT-GROW] growing an array 13 -> 16 disks (one ring design family):")
    for step in family:
        step.layout.validate()
        assert step.data_moved == 0
        total = step.layout.total_units()
        print(
            f"  v={step.v}: data moved = {step.data_moved}, parity roles "
            f"re-designated = {step.role_changed} of {total} units "
            f"({step.role_changed / total:.2%})"
        )
    assert all(s.role_changed <= 2 * s.v for s in family[1:])


def test_dual_parity_double_fault(benchmark):
    """EXT-PQ: dual-parity (P+Q) declustered layouts tolerate any two
    disk failures, with both check types balanced (the generalized
    Theorem 14)."""
    lay = ring_layout(9, 4)
    dual = with_dual_parity(lay)

    ok = benchmark.pedantic(
        verify_double_fault_tolerance, args=(dual,), rounds=1, iterations=1
    )
    assert ok is True
    q_counts = dual.q_counts()
    assert max(q_counts) - min(q_counts) <= 1
    print("\n[EXT-PQ] dual-parity ring(9,4): all sampled double failures "
          f"recovered bit-for-bit; Q counts {sorted(set(q_counts))}; "
          f"storage efficiency {dual.storage_efficiency():.2f}")


def test_stockmeyer_conditions_5_6(benchmark):
    """EXT-SEQ: Conditions 5-6 (Stockmeyer [15]) — declustered layouts
    keep the large-write optimization but trade away some sequential
    parallelism vs RAID5."""
    layouts = {"raid5(9)": raid5_layout(9, rotations=4), "ring(9,3)": ring_layout(9, 3)}

    results = benchmark.pedantic(
        lambda: {name: sequential_metrics(lay) for name, lay in layouts.items()},
        rounds=1,
        iterations=1,
    )
    print("\n[EXT-SEQ] Conditions 5-6 under stripe-major addressing:")
    for name, m in results.items():
        print(f"  {name:<10} large-write fraction {m.large_write_fraction:.2f}, "
              f"parallelism [{m.min_parallelism}, {m.max_parallelism}] of v={m.v}")
    assert results["raid5(9)"].large_write_optimal
    assert results["ring(9,3)"].large_write_optimal
    # The Stockmeyer trade-off: declustering loses maximal parallelism.
    assert results["ring(9,3)"].min_parallelism < 9
    assert results["raid5(9)"].min_parallelism >= 8


def test_randomized_baseline(benchmark):
    v, k = 13, 4
    exact = ring_layout(v, k)

    rand = benchmark.pedantic(
        random_layout,
        args=(v, k),
        kwargs={"stripes_per_disk": exact.size, "seed": 1},
        rounds=1,
        iterations=1,
    )
    rand.validate()
    me, mr = evaluate_layout(exact), evaluate_layout(rand)
    c = cocrossing_matrix(rand).astype(float)
    off = c[~np.eye(v, dtype=bool)]
    lam = exact.b * k * (k - 1) / (v * (v - 1))
    print(f"\n[EXT-RAND] random vs exact placement at equal size ({exact.size} units/disk):")
    print(f"  exact  workload: [{me.workload_min:.4f}, {me.workload_max:.4f}] (zero spread)")
    print(f"  random workload: [{mr.workload_min:.4f}, {mr.workload_max:.4f}] "
          f"(co-crossings mean {off.mean():.2f} ~ λ = {lam:.2f}, "
          f"relative std {off.std() / off.mean():.2f})")
    assert me.workload_balanced
    assert mr.workload_max > me.workload_max  # the random tail costs rebuild time
    assert abs(off.mean() - lam) / lam < 0.05
