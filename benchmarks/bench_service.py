"""FLEET-SERVICE: sharded multi-array serving vs the single array.

The service layer shards logical volumes over N arrays behind one
process (consistent-hash routing, batched per-shard compilation, one
shared event clock).  This suite pins the two fleet-level claims:

* at a fixed offered load, achieved throughput scales with shard count
  (the single-array row is the baseline — the acceptance bar is >=
  2.5x at 8 shards);
* with two arrays failing *simultaneously* and rebuilding concurrently
  under admission control, the fleet keeps serving and every rebuilt
  image verifies bit for bit.

Runnable two ways:

* ``pytest benchmarks/bench_service.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_service.py`` — standalone run that writes
  ``BENCH_service.json`` next to the repo root (also available as
  ``python -m repro bench --suite service``).
"""

import sys
from pathlib import Path

from repro.bench import run_service_bench
from repro.service import (
    Fleet,
    FleetScenario,
    default_failure_schedule,
    run_fleet_scenario,
)
from repro.sim import WorkloadConfig

OFFERED = WorkloadConfig(interarrival_ms=0.2, read_fraction=0.9, seed=7)
DURATION_MS = 4_000.0


def test_fleet_throughput_scales_with_shards(benchmark):
    def serve(shards: int):
        return Fleet(shards, 9, 3, seed=0).serve_workload(OFFERED, DURATION_MS)

    eight = benchmark.pedantic(lambda: serve(8), rounds=1, iterations=1)
    one = serve(1)
    scaling = eight.throughput_rps / one.throughput_rps
    assert eight.scheduled == one.scheduled
    assert scaling >= 2.5, f"8-shard fleet only {scaling:.1f}x a single array"
    print(
        f"\n[FLEET-SERVICE] {one.scheduled} requests: 1 shard "
        f"{one.throughput_rps:,.0f} req/s -> 8 shards "
        f"{eight.throughput_rps:,.0f} req/s ({scaling:.1f}x)"
    )


def test_degraded_fleet_rebuilds_verified(benchmark):
    scenario = FleetScenario(
        shards=8,
        v=9,
        k=3,
        duration_ms=DURATION_MS,
        interarrival_ms=OFFERED.interarrival_ms,
        read_fraction=OFFERED.read_fraction,
        workload_seed=7,
        failures=default_failure_schedule(8, 9, 2, DURATION_MS * 0.25),
        admission=2,
        verify_data=True,
        seed=0,
    )
    report = benchmark.pedantic(
        lambda: run_fleet_scenario(scenario), rounds=1, iterations=1
    )
    assert report.max_concurrent_rebuilds == 2
    assert report.all_rebuilt_verified
    assert report.passed
    print(
        f"\n[FLEET-SERVICE] degraded 8-shard fleet served "
        f"{report.fleet.scheduled} requests at "
        f"{report.fleet.throughput_rps:,.0f} req/s through 2 concurrent "
        f"verified rebuilds"
    )


def main() -> int:
    payload = run_service_bench(Path(__file__).resolve().parent.parent)
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
