"""FLEET-SERVICE: sharded multi-array serving vs the single array.

The service layer shards logical volumes over N arrays behind one
process (consistent-hash routing, batched per-shard compilation, one
shared event clock).  This suite pins the fleet-level claims:

* at a fixed offered load, achieved throughput scales with shard count
  (the single-array row is the baseline — the acceptance bar is >=
  2.5x at 8 shards);
* with two arrays failing *simultaneously* and rebuilding concurrently
  under admission control, the fleet keeps serving and every rebuilt
  image verifies bit for bit;
* splitting the fleet into process-parallel shard groups
  (``repro.service.parallel``) produces a report byte-identical to the
  single-process run — and a wall-clock speedup on multi-core hosts
  (>= 2.5x at 8 workers on >= 8 cores, enforced by the artifact
  writer);
* the ``p2c``/``weighted`` placement policies tighten request-level
  shard balance from the ring baseline's ~2x max/min to <= 1.3x;
* growing the fleet live (4 -> 8 arrays, volumes migrated under mixed
  traffic) loses zero requests and verifies every moved volume
  bit for bit.

Runnable two ways:

* ``pytest benchmarks/bench_service.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_service.py`` — standalone run that writes
  ``BENCH_service.json`` next to the repo root (also available as
  ``python -m repro bench --suite service``).
"""

import json
import sys
from pathlib import Path

from repro.bench import run_service_bench
from repro.service import (
    Fleet,
    FleetScenario,
    MigrationCoordinator,
    canonical_payload,
    default_failure_schedule,
    run_fleet_scenario,
    run_fleet_scenario_parallel,
)
from repro.sim import WorkloadConfig
from repro.sim.compile import generate_request_stream

OFFERED = WorkloadConfig(interarrival_ms=0.2, read_fraction=0.9, seed=7)
DURATION_MS = 4_000.0
BALANCE_BAR = 1.3


def test_fleet_throughput_scales_with_shards(benchmark):
    def serve(shards: int):
        return Fleet(shards, 9, 3, seed=0).serve_workload(OFFERED, DURATION_MS)

    eight = benchmark.pedantic(lambda: serve(8), rounds=1, iterations=1)
    one = serve(1)
    scaling = eight.throughput_rps / one.throughput_rps
    assert eight.scheduled == one.scheduled
    assert scaling >= 2.5, f"8-shard fleet only {scaling:.1f}x a single array"
    print(
        f"\n[FLEET-SERVICE] {one.scheduled} requests: 1 shard "
        f"{one.throughput_rps:,.0f} req/s -> 8 shards "
        f"{eight.throughput_rps:,.0f} req/s ({scaling:.1f}x)"
    )


def test_degraded_fleet_rebuilds_verified(benchmark):
    scenario = FleetScenario(
        shards=8,
        v=9,
        k=3,
        duration_ms=DURATION_MS,
        interarrival_ms=OFFERED.interarrival_ms,
        read_fraction=OFFERED.read_fraction,
        workload_seed=7,
        failures=default_failure_schedule(8, 9, 2, DURATION_MS * 0.25),
        admission=2,
        verify_data=True,
        seed=0,
    )
    report = benchmark.pedantic(
        lambda: run_fleet_scenario(scenario), rounds=1, iterations=1
    )
    assert report.max_concurrent_rebuilds == 2
    assert report.all_rebuilt_verified
    assert report.passed
    print(
        f"\n[FLEET-SERVICE] degraded 8-shard fleet served "
        f"{report.fleet.scheduled} requests at "
        f"{report.fleet.throughput_rps:,.0f} req/s through 2 concurrent "
        f"verified rebuilds"
    )


def test_placement_tightens_request_balance(benchmark):
    uniform = WorkloadConfig(interarrival_ms=0.2, read_fraction=1.0, seed=7)

    def balance(placement: str) -> float:
        fleet = Fleet(8, 9, 3, seed=0, placement=placement)
        stream = generate_request_stream(uniform, DURATION_MS, fleet.capacity)
        return fleet.serve_stream(*stream).shard_balance

    tightened = benchmark.pedantic(
        lambda: balance("weighted"), rounds=1, iterations=1
    )
    ring = balance("ring")
    assert tightened <= BALANCE_BAR, (
        f"weighted placement at {tightened:.2f}x misses the "
        f"{BALANCE_BAR}x bar"
    )
    assert ring > tightened
    print(
        f"\n[FLEET-SERVICE] request balance: ring {ring:.2f}x -> "
        f"weighted {tightened:.2f}x (bar {BALANCE_BAR}x)"
    )


def test_live_grow_migration_zero_lost_verified(benchmark):
    def grow():
        fleet = Fleet(4, 9, 3, seed=0, dataplane=True, placement="weighted")
        co = MigrationCoordinator(fleet, 8, at_ms=DURATION_MS * 0.25)
        co.arm()
        mixed = WorkloadConfig(interarrival_ms=0.4, read_fraction=0.8, seed=7)
        stream = generate_request_stream(mixed, DURATION_MS, fleet.capacity)
        return fleet.serve_stream(*stream), co

    report, co = benchmark.pedantic(grow, rounds=1, iterations=1)
    assert report.lost == 0
    assert co.done and co.all_verified
    assert len(co.outcomes) == len(co.plan.moves)
    print(
        f"\n[FLEET-SERVICE] live grow 4 -> 8: {len(co.outcomes)} volumes "
        f"({co.total_units_copied()} units) migrated under "
        f"{report.scheduled} requests, 0 lost, all verified"
    )


def test_parallel_workers_report_identical(benchmark):
    """Process-parallel shard groups vs the serial path on the healthy
    8-shard scenario: the benchmark times the parallel run, and the
    merged report must be byte-identical to the serial one (canonical
    form).  Wall-clock speedup is asserted only by the artifact writer,
    and only on hosts with enough cores — a pytest run on a laptop must
    not flake on machine size."""
    scenario = FleetScenario(
        shards=8,
        v=9,
        k=3,
        duration_ms=DURATION_MS,
        interarrival_ms=OFFERED.interarrival_ms,
        read_fraction=OFFERED.read_fraction,
        workload_seed=7,
        failures=(),
        seed=0,
    )
    run = benchmark.pedantic(
        lambda: run_fleet_scenario_parallel(scenario, workers=8),
        rounds=1,
        iterations=1,
    )
    serial = run_fleet_scenario(scenario)
    canon = lambda r: json.dumps(canonical_payload(r.to_dict()), sort_keys=True)
    assert canon(serial) == canon(run)
    assert len(run.execution.groups) == 8
    print(
        f"\n[FLEET-SERVICE] 8 shard groups on {run.execution.workers} "
        f"workers ({run.execution.cpu_count} CPUs): serial "
        f"{serial.wall_s:.2f} s -> parallel {run.report.wall_s:.2f} s, "
        f"report byte-identical"
    )


def main() -> int:
    payload = run_service_bench(Path(__file__).resolve().parent.parent)
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
