"""SIM-RECON + SIM-PARITY + SIM-DATA: simulator experiments.

The evaluation the paper defers to the Holland–Gibson simulator,
re-run on our event-driven substrate:

* SIM-RECON — rebuild read volume per surviving disk tracks the
  analytic (k-1)/(v-1); RAID5 (k=v) is the worst case; rebuild under
  foreground load degrades gracefully with k.
* SIM-PARITY — under a write-heavy workload, the busiest-disk load
  tracks the maximum parity overhead (Condition 2's bottleneck story).
* SIM-DATA — end-to-end integrity: every layout family reconstructs a
  failed disk bit-for-bit through the XOR data plane.
"""

import pytest

from repro.layouts import (
    Layout,
    Stripe,
    evaluate_layout,
    raid5_layout,
    ring_layout,
    single_copy_layout,
    stairway_layout,
    theorem8_layout,
    theorem9_layout,
)
from repro.designs import best_design
from repro.sim import WorkloadConfig, simulate_rebuild, simulate_workload

V = 9


def test_reconstruction_workload_shape(benchmark):
    ks = [3, 4, 8, V]

    def sweep():
        rows = []
        for k in ks:
            layout = raid5_layout(V, rotations=8) if k == V else ring_layout(V, k)
            rep = simulate_rebuild(layout, failed_disk=0, parallelism=4)
            frac = max(rep.read_fractions(layout.size))
            rows.append((k, frac, rep.duration_ms / layout.size))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n[SIM-RECON] v={V}: survivor read fraction vs k (analytic (k-1)/(v-1)):")
    prev_frac = 0.0
    for k, frac, per_unit in rows:
        analytic = (k - 1) / (V - 1)
        assert frac == pytest.approx(analytic, rel=1e-9)
        assert frac >= prev_frac  # monotone in k; RAID5 worst
        prev_frac = frac
        print(f"  k={k}  measured={frac:.4f}  analytic={analytic:.4f}  "
              f"rebuild {per_unit:.2f} ms/unit")
    assert rows[-1][1] == pytest.approx(1.0)  # RAID5 reads everything


def test_parity_contention_shape(benchmark):
    # Compare a balanced layout against one with deliberately skewed
    # parity (all parity on disk 0 for the same stripes).
    balanced = ring_layout(5, 3)
    skewed_stripes = []
    for s in balanced.stripes:
        idx = next((i for i, (d, _) in enumerate(s.units) if d == 0), s.parity_index)
        skewed_stripes.append(Stripe(units=s.units, parity_index=idx))
    skewed = Layout(v=5, size=balanced.size, stripes=tuple(skewed_stripes), name="skewed")
    skewed.validate()

    cfg = WorkloadConfig(interarrival_ms=6.0, read_fraction=0.2, seed=13)

    def run_both():
        rb = simulate_workload(balanced, duration_ms=8_000.0, config=cfg)
        rs = simulate_workload(skewed, duration_ms=8_000.0, config=cfg)
        return rb, rs

    rep_balanced, rep_skewed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    m_b = evaluate_layout(balanced)
    m_s = evaluate_layout(skewed)
    print("\n[SIM-PARITY] write-heavy load: busiest/least-busy disk IO ratio")
    print(f"  balanced layout (max overhead {m_b.parity_overhead_max}): "
          f"{rep_balanced.max_min_io_ratio:.2f}")
    print(f"  skewed layout   (max overhead {m_s.parity_overhead_max}): "
          f"{rep_skewed.max_min_io_ratio:.2f}")
    # Condition 2's point: higher max parity overhead -> worse hotspot.
    assert m_s.parity_overhead_max > m_b.parity_overhead_max
    assert rep_skewed.max_min_io_ratio > rep_balanced.max_min_io_ratio


def test_degraded_latency_shape(benchmark):
    """SIM-DEGRADED: the Holland–Gibson '92 evaluation shape — user
    response time in degraded mode grows with stripe size k; RAID5
    (k=v) is by far the worst.  This is the performance story parity
    declustering was invented for."""
    cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=0.8, seed=30)
    layouts = [
        ("ring k=3", ring_layout(V, 3)),
        ("ring k=4", ring_layout(V, 4)),
        ("raid5 k=9", raid5_layout(V, rotations=8)),
    ]

    def sweep():
        rows = []
        for name, lay in layouts:
            rep = simulate_workload(
                lay, duration_ms=20_000.0, config=cfg, failed_disk=0
            )
            rows.append((name, rep.latency["degraded_read"]["mean"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n[SIM-DEGRADED] degraded-mode read latency vs stripe size (v=9):")
    prev = 0.0
    for name, mean in rows:
        print(f"  {name:<10} degraded read mean {mean:7.1f} ms")
        assert mean > prev  # monotone in k
        prev = mean
    # RAID5 at least 3x worse than the smallest stripe size.
    assert rows[-1][1] > 3 * rows[0][1]


def test_analytic_model_vs_simulation(benchmark):
    """ANA-ML: the Muntz–Lui-style analytic load model (the paper's
    reference [11] methodology) tracks the simulator, and predicts the
    graceful degradation declustering buys."""
    from repro.sim.analysis import analyze_load

    lay = ring_layout(V, 3)
    interarrival = 4.0

    def run():
        rep = simulate_workload(
            lay,
            duration_ms=20_000.0,
            config=WorkloadConfig(interarrival_ms=interarrival, read_fraction=0.7, seed=21),
        )
        return max(rep.utilizations)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    est = analyze_load(lay, arrival_per_ms=1 / interarrival, read_fraction=0.7)
    assert est.utilization == pytest.approx(measured, rel=0.35)

    # Degraded-mode graceful degradation: utilization increase is
    # monotone in k (RAID5 worst) — Muntz & Lui's motivating curve.
    prev = 0.0
    rows = []
    for k in (3, 4, 8):
        lk = ring_layout(V, k)
        deg = analyze_load(lk, arrival_per_ms=0.1, read_fraction=1.0, mode="degraded")
        rows.append((k, deg.utilization))
        assert deg.utilization >= prev
        prev = deg.utilization
    print(f"\n[ANA-ML] normal-mode utilization: analytic {est.utilization:.3f} "
          f"vs simulated {measured:.3f}")
    print("  degraded-mode utilization vs k (graceful degradation):")
    for k, u in rows:
        print(f"    k={k}: {u:.3f}")


def test_data_reconstruction_integrity(benchmark):
    layouts = {
        "raid5": raid5_layout(6, rotations=4),
        "ring(9,3)": ring_layout(9, 3),
        "thm8(9,3)": theorem8_layout(9, 3),
        "thm9(16,9,2)": theorem9_layout(16, 9, 2),
        "stairway(11,9,4)": stairway_layout(11, 9, 4),
        "flow-single(13,4)": single_copy_layout(best_design(13, 4)),
    }

    def verify_all():
        out = {}
        for name, lay in layouts.items():
            rep = simulate_rebuild(lay, failed_disk=1, verify_data=True)
            out[name] = rep.data_verified
        return out

    results = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    print("\n[SIM-DATA] bit-for-bit rebuild verification per layout family:")
    for name, ok in results.items():
        assert ok is True, name
        print(f"  {name:<20} verified ✓")
