"""FIG4-FIG6 + THM10-THM12: the stairway transformation.

Regenerates the three stairway figures on concrete parameters and
verifies the theorems' size, parity-overhead, and workload formulas on
sweeps — the Section 3.2 "table" the paper states inline.
"""

from fractions import Fraction

import numpy as np

from repro.layouts import (
    evaluate_layout,
    reconstruction_workloads,
    stairway_layout,
    stairway_params,
    theorem10_layout,
    theorem11_layout,
)

THM10_GRID = [(4, 3), (5, 3), (8, 4), (9, 3), (13, 4), (16, 4)]
THM11_GRID = [(8, 4, 3), (12, 9, 4), (16, 8, 4), (18, 9, 3), (24, 16, 5)]
THM12_GRID = [(11, 9, 4), (13, 9, 3), (14, 11, 4), (23, 19, 5), (29, 25, 5)]


def test_fig4_stairway_plus_one(benchmark):
    layout = benchmark(theorem10_layout, 5, 3)
    layout.validate()
    assert layout.v == 6
    print("\n[FIG4] stairway q=5 -> v=6 (k=3): "
          f"size {layout.size} = kq(q-1) = {3*5*4}")


def test_fig5_stairway_dividing(benchmark):
    layout = benchmark(theorem11_layout, 8, 4, 3)
    layout.validate()
    assert layout.v == 8
    c = 8 // 4
    assert layout.size == 3 * (c - 1) * 3
    print(f"\n[FIG5] stairway q=4 -> v=8 (d=4 divides v, c={c}): size {layout.size}")


def test_fig6_stairway_wide_steps(benchmark):
    layout = benchmark(stairway_layout, 11, 9, 4)
    layout.validate()
    c, w = stairway_params(11, 9)
    assert w == 1  # one wide step: the Fig. 6 overlap case
    k_min, k_max = layout.stripe_sizes()
    assert (k_min, k_max) == (3, 4)  # the removed-overlap copies show
    print(f"\n[FIG6] stairway q=9 -> v=11 with w={w} wide step(s): "
          f"overlap removed via Thm 8, stripe sizes {k_min}/{k_max}")


def test_thm10_metrics_table(benchmark):
    layouts = benchmark(lambda: [(q, k, theorem10_layout(q, k)) for q, k in THM10_GRID])
    print("\n[THM10] v=q+1: size kq(q-1), overhead 1/k, workload (k-1)/q:")
    for q, k, lay in layouts:
        lay.validate()
        m = evaluate_layout(lay)
        assert m.size == k * q * (q - 1)
        assert m.parity_balanced and m.parity_overhead_max == Fraction(1, k)
        w = reconstruction_workloads(lay)
        off = w[~np.eye(q + 1, dtype=bool)]
        assert np.allclose(off, (k - 1) / q)
        print(f"  q={q:>3} k={k}  size={m.size:>5}  workload={(k-1)/q:.4f}  ✓")


def test_thm11_metrics_table(benchmark):
    layouts = benchmark(
        lambda: [(v, q, k, theorem11_layout(v, q, k)) for v, q, k in THM11_GRID]
    )
    print("\n[THM11] (v-q)|v: size k(c-1)(q-1), workload in [(c-2)/(c-1), 1]·(k-1)/(q-1):")
    for v, q, k, lay in layouts:
        lay.validate()
        c = v // (v - q)
        m = evaluate_layout(lay)
        assert m.size == k * (c - 1) * (q - 1)
        assert m.parity_balanced and m.parity_overhead_max == Fraction(1, k)
        lo = (c - 2) / (c - 1) * (k - 1) / (q - 1)
        hi = (k - 1) / (q - 1)
        assert lo - 1e-12 <= m.workload_min and m.workload_max <= hi + 1e-12
        print(
            f"  v={v:>3} q={q:>3} k={k} c={c}  size={m.size:>5}  "
            f"workload [{m.workload_min:.4f}, {m.workload_max:.4f}] ⊆ [{lo:.4f}, {hi:.4f}] ✓"
        )


def test_thm12_metrics_table(benchmark):
    layouts = benchmark(
        lambda: [(v, q, k, stairway_layout(v, q, k)) for v, q, k in THM12_GRID]
    )
    print("\n[THM12] wide steps: parity overhead in 1/k + [w-1, w]/(k(c-1)(q-1)):")
    for v, q, k, lay in layouts:
        lay.validate()
        c, w = stairway_params(v, q)
        m = evaluate_layout(lay)
        denom = k * (c - 1) * (q - 1)
        assert m.size == denom // 1 and m.size == k * (c - 1) * (q - 1)
        lo_p = Fraction(1, k) + Fraction(w - 1, denom)
        hi_p = Fraction(1, k) + Fraction(w, denom)
        assert lo_p <= m.parity_overhead_min and m.parity_overhead_max <= hi_p
        lo_w = (c - 2) / (c - 1) * (k - 1) / (q - 1)
        hi_w = (k - 1) / (q - 1)
        assert lo_w - 1e-12 <= m.workload_min and m.workload_max <= hi_w + 1e-12
        print(
            f"  v={v:>3} q={q:>3} k={k} c={c} w={w}  size={m.size:>5}  "
            f"overhead [{m.parity_overhead_min}, {m.parity_overhead_max}] ✓"
        )
