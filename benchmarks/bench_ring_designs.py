"""THM1 + THM2: ring-based block designs.

THM1 — construct the Theorem 1 design across a (v, k) sweep including
fields, prime-power extension fields, and Lemma 3 cross products, and
verify b = v(v-1), r = k(v-1), λ = k(k-1) by full balance checking.

THM2 — the existence characterization k <= M(v): tabulate M(v), confirm
the Lemma 3 construction achieves it, and exhaustively confirm no ring
we can build does better on small composite orders.
"""

from repro.algebra import (
    Zmod,
    generator_capacity,
    max_generator_set_size,
    ring_with_generators,
)
from repro.designs import ring_design, theorem1_parameters

THM1_GRID = [(5, 3), (8, 4), (9, 3), (13, 4), (16, 4), (12, 3), (15, 3), (45, 5), (25, 5)]


def test_thm1_parameter_table(benchmark):
    def build_all():
        return [(v, k, ring_design(v, k).to_block_design()) for v, k in THM1_GRID]

    designs = benchmark(build_all)
    print("\n[THM1] ring-based designs: v k -> (b, r, lambda) vs formula")
    for v, k, d in designs:
        d.verify()
        exp = theorem1_parameters(v, k)
        assert (d.b, d.r, d.lambda_) == (exp["b"], exp["r"], exp["lambda"])
        print(
            f"  v={v:>3} k={k}  b={d.b:>5} r={d.r:>4} λ={d.lambda_:>3}   "
            f"[= v(v-1), k(v-1), k(k-1)] ✓"
        )


def test_thm2_characterization_table(benchmark):
    vs = list(range(4, 61))

    def capacities():
        out = []
        for v in vs:
            cap = generator_capacity(v)
            ring, gens = ring_with_generators(v, cap)
            out.append((v, cap, len(gens)))
        return out

    rows = benchmark(capacities)
    print("\n[THM2] M(v) characterization (construction achieves the bound):")
    for v, cap, achieved in rows:
        assert achieved == cap
    sample = [r for r in rows if r[0] in (6, 12, 24, 30, 36, 45, 60)]
    for v, cap, _ in sample:
        print(f"  v={v:>3}  M(v)={cap}")

    # Upper bound: exhaustive search on small rings cannot beat M(v).
    for n in (6, 10, 12, 15):
        assert max_generator_set_size(Zmod(n)) <= generator_capacity(n)
    ring12, _ = ring_with_generators(12, 3)
    assert max_generator_set_size(ring12) == 3
    print("  exhaustive check: no ring of order 6/10/12/15 beats M(v) ✓")
