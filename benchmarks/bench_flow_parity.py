"""FIG7 + THM13/14 + COR16/17: network-flow parity assignment.

* FIG7 — build the parity assignment graph for a real layout and solve
  it with an integral max flow of value b.
* THM13/14 — per-disk parity counts land in {⌊L(d)⌋, ⌈L(d)⌉} across
  uniform and mixed-stripe-size inputs; Dinic and Edmonds–Karp agree.
* COR16 — fixed stripe size: counts in {⌊b/v⌋, ⌈b/v⌉}.
* COR17 — the Holland–Gibson lcm conjecture: perfect balance iff v | b,
  with lcm(b, v)/b copies necessary and sufficient.
"""

import math
from collections import Counter

from repro.designs import best_design, complete_design, ring_design
from repro.flow import (
    assign_parity,
    build_parity_graph,
    copies_for_perfect_balance,
    edmonds_karp_max_flow,
    max_flow_with_lower_bounds,
    parity_loads,
)
from repro.layouts import evaluate_layout, layout_from_design, theorem9_layout


def test_fig7_parity_assignment_graph(benchmark):
    design = ring_design(9, 3).to_block_design()
    stripes = design.blocks

    def solve():
        graph = build_parity_graph(stripes, design.v)
        value, flows = max_flow_with_lower_bounds(
            graph.node_count(), graph.edges, graph.source, graph.sink
        )
        return graph, value

    graph, value = benchmark(solve)
    assert value == design.b  # Theorem 13: max flow has value b
    print(f"\n[FIG7] parity assignment graph for ring(9,3): "
          f"{graph.node_count()} nodes, {len(graph.edges)} edges, "
          f"max flow = b = {value} (integral)")


def test_thm13_14_balance_table(benchmark):
    cases = {
        "ring(7,3)": (ring_design(7, 3).to_block_design().blocks, 7),
        "complete(6,3)": (complete_design(6, 3).blocks, 6),
        "thm9(16,9,3) mixed-k": (
            [s.disks for s in theorem9_layout(16, 9, 3).stripes],
            13,
        ),
    }

    def assign_all():
        return {name: assign_parity(s, v) for name, (s, v) in cases.items()}

    results = benchmark(assign_all)
    print("\n[THM13/14] per-disk parity counts within {floor(L), ceil(L)}:")
    for name, parity in results.items():
        stripes, v = cases[name]
        loads = parity_loads(stripes, v)
        counts = Counter(parity)
        for d in range(v):
            assert math.floor(loads[d]) <= counts.get(d, 0) <= math.ceil(loads[d])
        spread = max(counts.values()) - min(counts.get(d, 0) for d in range(v))
        print(f"  {name:<22} b={len(stripes):>4}  spread={spread}  ✓")

    # Cross-check: the ablation algorithm produces equally valid output.
    stripes, v = cases["complete(6,3)"]
    alt = assign_parity(stripes, v, max_flow=edmonds_karp_max_flow)
    loads = parity_loads(stripes, v)
    alt_counts = Counter(alt)
    for d in range(v):
        assert math.floor(loads[d]) <= alt_counts.get(d, 0) <= math.ceil(loads[d])


def test_cor16_fixed_stripe_size(benchmark):
    grid = [(7, 3), (8, 3), (9, 3), (10, 3), (13, 4), (6, 3)]

    def run():
        rows = []
        for v, k in grid:
            d = complete_design(v, k)
            parity = assign_parity(d.blocks, v)
            rows.append((v, k, d.b, Counter(parity)))
        return rows

    rows = benchmark(run)
    print("\n[COR16] fixed k: per-disk counts in {floor(b/v), ceil(b/v)}:")
    for v, k, b, counts in rows:
        lo, hi = b // v, -(-b // v)
        vals = {counts.get(d, 0) for d in range(v)}
        assert vals <= {lo, hi}
        print(f"  v={v} k={k} b={b:>3}  counts={sorted(vals)}  "
              f"{'perfect' if lo == hi else 'within 1'} ✓")


def test_ablation_dinic_vs_edmonds_karp(benchmark):
    """ABL-FLOW: both max-flow algorithms solve the same parity
    assignment instance; Dinic (the default) is timed here, and the
    results are cross-checked for Theorem 14 validity."""
    import time

    design = ring_design(16, 4).to_block_design()
    stripes = design.blocks

    dinic_parity = benchmark(assign_parity, stripes, design.v)

    t0 = time.perf_counter()
    ek_parity = assign_parity(stripes, design.v, max_flow=edmonds_karp_max_flow)
    ek_time = time.perf_counter() - t0

    loads = parity_loads(stripes, design.v)
    for parity in (dinic_parity, ek_parity):
        counts = Counter(parity)
        for d in range(design.v):
            assert math.floor(loads[d]) <= counts.get(d, 0) <= math.ceil(loads[d])
    print(f"\n[ABL-FLOW] parity assignment on ring(16,4) (b={design.b}): "
          f"Dinic benchmarked above; Edmonds–Karp single run {ek_time*1e3:.1f} ms; "
          "both satisfy Theorem 14")


def test_cor17_lcm_conjecture(benchmark):
    designs = [best_design(9, 3), best_design(13, 4), complete_design(6, 3)]

    def run():
        rows = []
        for d in designs:
            copies = copies_for_perfect_balance(d.b, d.v)
            balanced = layout_from_design(d, copies=copies, parity="flow")
            rows.append((d, copies, evaluate_layout(balanced).parity_spread))
        return rows

    rows = benchmark(run)
    print("\n[COR17] lcm(b,v)/b copies are sufficient (and necessary):")
    for d, copies, spread in rows:
        assert spread == 0  # sufficiency
        print(f"  {d.name:<18} b={d.b:>3} v={d.v}  copies={copies}  spread=0 ✓")
        # Necessity: fewer copies cannot balance (b*n not divisible by v).
        for fewer in range(1, copies):
            assert (d.b * fewer) % d.v != 0
            lay = layout_from_design(d, copies=fewer, parity="flow")
            assert evaluate_layout(lay).parity_spread >= 1
