"""BATCH-MAP: the batched mapping engine vs the scalar per-address loop.

Condition 4 says address translation is one table lookup; this
benchmark measures what that lookup costs when a controller translates
bulk traffic.  The scalar loop pays Python call overhead per address;
:meth:`AddressMapper.map_batch` translates the whole vector through the
NumPy views of the same flat tables.  The acceptance bar is a >= 5x
throughput gain on a 100k-address workload.

Runnable two ways:

* ``pytest benchmarks/bench_mapping.py`` — pytest-benchmark timings;
* ``python benchmarks/bench_mapping.py`` — standalone run that writes
  ``BENCH_mapping.json`` next to the repo root (the ``make bench``
  artifact).
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.core import get_layout, get_mapper
from repro.layouts import AddressMapper

BATCH = 100_000
CASES = [(9, 3), (13, 4), (33, 5)]


def _workload(mapper: AddressMapper, n: int = BATCH) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, mapper.capacity, size=n, dtype=np.int64)


def _scalar_map(mapper: AddressMapper, lbas: list[int]):
    to_phys = mapper.logical_to_physical
    return [(pu.disk, pu.offset) for pu in map(to_phys, lbas)]


def test_batch_vs_scalar_speedup(benchmark):
    mapper = get_mapper(get_layout(33, 5), iterations=4)
    lbas = _workload(mapper)

    benchmark(mapper.map_batch, lbas)

    lba_list = lbas.tolist()
    t0 = time.perf_counter()
    scalar = _scalar_map(mapper, lba_list)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    disks, offsets = mapper.map_batch(lbas)
    t_batch = time.perf_counter() - t0

    assert scalar == list(zip(disks.tolist(), offsets.tolist()))
    speedup = t_scalar / t_batch
    assert speedup >= 5.0, f"batch path only {speedup:.1f}x over scalar"
    print(f"\n[BATCH-MAP] 100k addresses on build(33,5): scalar "
          f"{t_scalar*1e3:.1f} ms, batch {t_batch*1e3:.1f} ms "
          f"({speedup:.0f}x)")


def test_batch_roundtrip_throughput(benchmark):
    """Reverse direction: physical->logical over the same batch."""
    mapper = get_mapper(get_layout(13, 4), iterations=4)
    lbas = _workload(mapper)
    disks, offsets = mapper.map_batch(lbas)

    back, is_par = benchmark(mapper.physical_to_logical_batch, disks, offsets)
    assert not is_par.any()
    assert (back == lbas).all()


def test_int32_tables_agree_with_int64(benchmark):
    """The narrowed int32 tables (the automatic pick for every catalog
    layout) translate element-for-element like an int64-forced table
    set, at half the resident bytes."""
    layout = get_layout(33, 5)
    mapper = get_mapper(layout, iterations=4)
    wide = AddressMapper(layout, iterations=4, index_dtype=np.int64)
    assert str(mapper.index_dtype) == "int32"
    assert mapper.table_nbytes() < wide.table_nbytes()
    lbas = _workload(mapper)

    disks, offsets = benchmark(mapper.map_batch, lbas)
    disks64, offsets64 = wide.map_batch(lbas)
    assert (disks == disks64).all()
    assert (offsets == offsets64).all()


def main() -> int:
    # The artifact writer lives in repro.bench (shared with the
    # ``python -m repro bench`` CLI); this entry point is kept for
    # ``python benchmarks/bench_mapping.py`` muscle memory.
    from repro.bench import run_mapping_bench

    payload = run_mapping_bench(Path(__file__).resolve().parent.parent)
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
