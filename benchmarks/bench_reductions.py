"""THM4-THM7: redundancy-reduced designs and the size lower bound.

Regenerates the implicit "design size" table of Section 2.2: for each
construction, the block count b against the raw Theorem 1 size and the
Theorem 7 minimum.  Theorem 6 designs must *meet* the bound.
"""

import math

from repro.designs import (
    bibd_lower_bound_b,
    theorem4_design,
    theorem5_design,
    theorem6_design,
    theorem6_parameters,
)

THM4_GRID = [(9, 3), (9, 5), (13, 4), (13, 5), (16, 6), (25, 5), (27, 3), (32, 5)]
THM5_GRID = [(9, 4), (13, 4), (13, 6), (16, 5), (25, 4), (27, 3), (32, 4)]
THM6_GRID = [(4, 2), (9, 3), (16, 4), (25, 5), (27, 3), (49, 7), (64, 8), (81, 9)]


def test_thm4_table(benchmark):
    designs = benchmark(lambda: [(v, k, theorem4_design(v, k)) for v, k in THM4_GRID])
    print("\n[THM4] b = v(v-1)/gcd(v-1,k-1):")
    for v, k, d in designs:
        d.verify()
        g = math.gcd(v - 1, k - 1)
        assert d.b == v * (v - 1) // g
        print(f"  v={v:>3} k={k}  gcd={g}  b={d.b:>5}  (raw Thm1: {v*(v-1)})")


def test_thm5_table(benchmark):
    designs = benchmark(lambda: [(v, k, theorem5_design(v, k)) for v, k in THM5_GRID])
    print("\n[THM5] b = v(v-1)/gcd(v-1,k):")
    for v, k, d in designs:
        d.verify()
        g = math.gcd(v - 1, k)
        assert d.b == v * (v - 1) // g
        print(f"  v={v:>3} k={k}  gcd={g}  b={d.b:>5}  (raw Thm1: {v*(v-1)})")


def test_thm6_optimal_designs(benchmark):
    designs = benchmark(lambda: [(v, k, theorem6_design(v, k)) for v, k in THM6_GRID])
    print("\n[THM6] subfield designs: λ=1, b = v(v-1)/k(k-1):")
    for v, k, d in designs:
        d.verify()
        exp = theorem6_parameters(v, k)
        assert (d.b, d.r, d.lambda_) == (exp["b"], exp["r"], 1)
        print(f"  v={v:>3} k={k}  b={d.b:>5} r={d.r:>3} λ=1")


def test_thm7_lower_bound_table(benchmark):
    def bounds():
        return [(v, k, bibd_lower_bound_b(v, k)) for v, k in THM6_GRID]

    rows = benchmark(bounds)
    print("\n[THM7] Theorem 6 designs meet the lower bound exactly:")
    for v, k, lb in rows:
        b6 = theorem6_parameters(v, k)["b"]
        assert b6 == lb, (v, k, b6, lb)
        print(f"  v={v:>3} k={k}  lower bound={lb:>5}  thm6 b={b6:>5}  OPTIMAL")
    # And for generic (v, k) the bound is respected but not always met.
    assert bibd_lower_bound_b(10, 4) <= 15
