"""CLAIM-10K: the paper's computational claim (Section 3.2).

"We have done computations that show that for any v up to 10,000, there
is a prime power q <= v and values of c and w that satisfy (8) and (9)."

We re-run that computation at full scale — for every v from 6 to 10,000,
find a prime power q < v with valid (c, w) — and additionally measure
how far below v the chosen q falls (small gaps mean small imbalance).
"""

from repro.algebra import is_prime_power
from repro.layouts import find_stairway_plan, stairway_params

V_MAX = 10_000


def test_claim_coverage_to_10000(benchmark):
    def scan():
        worst_gap = (0, 0)  # (gap, v)
        gaps = []
        for v in range(6, V_MAX + 1):
            plan = find_stairway_plan(v)
            assert plan is not None, f"claim fails at v={v}"
            c, w = stairway_params(v, plan.q)
            assert v == c * (v - plan.q) + w and w < c
            gap = v - plan.q
            gaps.append(gap)
            if gap > worst_gap[0]:
                worst_gap = (gap, v)
        return gaps, worst_gap

    gaps, worst = benchmark.pedantic(scan, rounds=1, iterations=1)
    covered = len(gaps)
    print(f"\n[CLAIM-10K] all {covered} values of v in [6, {V_MAX}] have a "
          "stairway plan (prime power q, valid c and w) — claim CONFIRMED")
    print(f"  mean gap v-q: {sum(gaps)/len(gaps):.2f}; "
          f"worst gap: {worst[0]} at v={worst[1]}")
    # Exact layouts additionally exist whenever v is itself a prime power.
    pp = sum(1 for v in range(6, V_MAX + 1) if is_prime_power(v))
    print(f"  ({pp} of those v are prime powers with exact ring layouts too)")
    assert covered == V_MAX - 5
