"""TAB-FEAS + TAB-SIZE: the paper's headline claim, quantified.

TAB-FEAS — "our results greatly increase the number of feasible
layouts": count (v, k) pairs feasible per method under the 10,000-unit
Condition 4 bound, over a large grid.  The paper's methods must
dominate the prior state of the art (k-copy Holland–Gibson over
complete designs).

TAB-SIZE — layout-size ablation across parity-distribution policies on
fixed designs: HG k-copy vs flow-balanced single copy (k-fold smaller)
vs the lcm-minimal perfectly balanced layout.
"""

from repro.core import census
from repro.designs import best_design
from repro.flow import copies_for_perfect_balance
from repro.layouts import (
    evaluate_layout,
    holland_gibson_layout,
    minimum_balanced_layout,
    single_copy_layout,
)


def test_feasible_layout_counts(benchmark):
    vs = list(range(5, 501))
    ks = [2, 3, 4, 5, 6, 7, 8, 10, 12, 16]

    result = benchmark.pedantic(census, args=(vs, ks), rounds=1, iterations=1)
    print(f"\n[TAB-FEAS] feasible (v,k) pairs, v in [5,500], "
          f"k in {ks} (limit 10,000 units/disk):")
    print(result.table())

    per = result.per_method
    # The paper's claim: new techniques beat the prior art, and the
    # approximate layouts dominate everything.
    prior_art = per.get("hg_complete", 0)
    assert per["stairway_compact"] > prior_art
    assert per["flow_best"] >= per["hg_best"]
    assert result.any_method > prior_art
    improvement = result.any_method / max(prior_art, 1)
    print(f"\n  feasible pairs: prior art {prior_art} -> all methods "
          f"{result.any_method} ({improvement:.1f}x increase)")


def test_layout_size_reduction(benchmark):
    targets = [(9, 3), (13, 4), (8, 4), (25, 5)]

    def build_all():
        rows = []
        for v, k in targets:
            d = best_design(v, k)
            hg = holland_gibson_layout(d)
            single = single_copy_layout(d)
            minimal = minimum_balanced_layout(d)
            rows.append((v, k, d, hg, single, minimal))
        return rows

    rows = benchmark(build_all)
    print("\n[TAB-SIZE] parity-distribution ablation (same design, three policies):")
    print(f"  {'v':>3} {'k':>2} | {'HG k-copy':>10} {'flow 1-copy':>11} "
          f"{'lcm-min':>8} | {'reduction':>9}")
    for v, k, d, hg, single, minimal in rows:
        assert hg.size == k * single.size  # exactly k-fold saving
        copies = copies_for_perfect_balance(d.b, d.v)
        assert minimal.size == single.size * copies
        assert evaluate_layout(minimal).parity_spread == 0
        assert evaluate_layout(single).parity_spread <= 1
        print(
            f"  {v:>3} {k:>2} | {hg.size:>10} {single.size:>11} "
            f"{minimal.size:>8} | {hg.size / single.size:>8.1f}x"
        )
