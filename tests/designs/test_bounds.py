"""Tests for Theorem 7 and classical BIBD bounds."""

import math

from repro.designs import (
    admissible_parameters,
    bibd_lower_bound_b,
    complete_design,
    fano_plane,
    fisher_inequality_holds,
    meets_lower_bound,
    ring_design,
    theorem4_design,
)


class TestLowerBound:
    def test_formula(self):
        assert bibd_lower_bound_b(9, 3) == 9 * 8 // math.gcd(72, 6)
        assert bibd_lower_bound_b(7, 3) == 7

    def test_fano_meets_bound(self):
        assert meets_lower_bound(7, 3, fano_plane().b)

    def test_every_constructed_design_respects_bound(self):
        for v, k in [(5, 3), (7, 3), (8, 4), (9, 3), (11, 5), (13, 4)]:
            lb = bibd_lower_bound_b(v, k)
            assert ring_design(v, k).to_block_design().b >= lb
            assert theorem4_design(v, k).b >= lb
            assert complete_design(v, k).b >= lb

    def test_bound_divides_every_valid_b(self):
        # The proof shows b is a *multiple* of the bound.
        for v, k in [(7, 3), (9, 3), (13, 4), (6, 3)]:
            lb = bibd_lower_bound_b(v, k)
            assert complete_design(v, k).b % lb == 0


class TestClassicalConditions:
    def test_admissible_for_real_designs(self):
        f = fano_plane()
        assert admissible_parameters(f.v, f.k, f.b, f.r, f.lambda_)

    def test_inadmissible(self):
        assert not admissible_parameters(7, 3, 7, 3, 2)

    def test_fisher_holds_for_designs(self):
        f = fano_plane()
        assert fisher_inequality_holds(f.v, f.b, f.k)

    def test_fisher_violation_detected(self):
        assert not fisher_inequality_holds(10, 5, 3)

    def test_fisher_vacuous_for_k_equal_v(self):
        assert fisher_inequality_holds(4, 1, 4)
