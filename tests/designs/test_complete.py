"""Tests for complete block designs."""

import math

import pytest

from repro.designs import complete_design, complete_design_b


class TestCompleteDesign:
    @pytest.mark.parametrize("v,k", [(4, 2), (4, 3), (5, 3), (6, 3), (7, 4), (8, 2)])
    def test_is_bibd(self, v, k):
        d = complete_design(v, k)
        d.verify()
        assert d.b == math.comb(v, k)
        assert d.r == math.comb(v - 1, k - 1)
        assert d.lambda_ == math.comb(v - 2, k - 2)

    def test_k_equals_v(self):
        d = complete_design(4, 4)
        assert d.b == 1

    def test_b_formula_without_materialization(self):
        assert complete_design_b(40, 5) == math.comb(40, 5)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            complete_design(4, 1)
        with pytest.raises(ValueError):
            complete_design(4, 5)

    def test_refuses_explosion(self):
        with pytest.raises(ValueError, match="refusing"):
            complete_design(40, 10)

    def test_blocks_are_distinct(self):
        d = complete_design(6, 3)
        assert len(set(d.blocks)) == d.b
