"""Tests for Theorem 6 subfield designs (λ = 1, optimally small)."""

import pytest

from repro.designs import (
    bibd_lower_bound_b,
    is_theorem6_applicable,
    theorem6_design,
    theorem6_parameters,
)

CASES = [(4, 2), (9, 3), (16, 4), (25, 5), (8, 2), (27, 3), (64, 8), (16, 2), (81, 9), (49, 7)]


class TestApplicability:
    def test_applicable_cases(self):
        for v, k in CASES:
            assert is_theorem6_applicable(v, k)

    def test_inapplicable_cases(self):
        assert not is_theorem6_applicable(9, 2)  # 9 not a power of 2
        assert not is_theorem6_applicable(12, 3)
        assert not is_theorem6_applicable(36, 6)  # 6 not a prime power
        assert not is_theorem6_applicable(9, 9)  # need m >= 2
        assert not is_theorem6_applicable(3, 9)


class TestTheorem6:
    @pytest.mark.parametrize("v,k", CASES)
    def test_is_bibd_with_lambda_one(self, v, k):
        d = theorem6_design(v, k)
        d.verify()
        expected = theorem6_parameters(v, k)
        assert (d.b, d.r, d.lambda_) == (expected["b"], expected["r"], 1)

    @pytest.mark.parametrize("v,k", CASES)
    def test_optimally_small(self, v, k):
        """Theorem 6 designs meet the Theorem 7 lower bound exactly."""
        d = theorem6_design(v, k)
        assert d.b == bibd_lower_bound_b(v, k)

    @pytest.mark.parametrize("v,k", CASES)
    def test_no_repeated_blocks(self, v, k):
        d = theorem6_design(v, k)
        assert len(set(d.blocks)) == d.b

    def test_k_prime_power_not_just_prime(self):
        # The paper notes this generalizes Pietracaprina-Preparata, which
        # needed k prime; k = 4 and k = 8 are the new ground.
        theorem6_design(16, 4).verify()
        theorem6_design(64, 8).verify()

    def test_rejects_inapplicable(self):
        with pytest.raises(ValueError):
            theorem6_design(12, 3)
        with pytest.raises(ValueError):
            theorem6_design(36, 6)

    def test_blocks_are_lines(self):
        # λ = 1 means any two elements determine a unique block.
        d = theorem6_design(9, 3)
        pairs = {}
        for blk in d.blocks:
            for i in range(len(blk)):
                for j in range(i + 1, len(blk)):
                    key = (blk[i], blk[j])
                    assert key not in pairs
                    pairs[key] = blk
        assert len(pairs) == 9 * 8 // 2
