"""Tests for the design catalog and best-design selection."""

import pytest

from repro.designs import (
    best_design,
    candidate_constructions,
    difference_set_design,
    fano_plane,
    theorem6_parameters,
)


class TestDifferenceSets:
    def test_fano(self):
        f = fano_plane()
        f.verify()
        assert (f.v, f.k, f.lambda_) == (7, 3, 1)

    def test_13_4_projective_plane(self):
        d = difference_set_design(13, (0, 1, 3, 9))
        d.verify()
        assert (d.b, d.lambda_) == (13, 1)

    def test_21_5(self):
        d = difference_set_design(21, (0, 1, 6, 8, 18))
        d.verify()
        assert d.lambda_ == 1

    def test_11_5_biplane(self):
        d = difference_set_design(11, (0, 1, 2, 4, 7))  # λ = 2 biplane
        d.verify()
        assert d.lambda_ == 2


class TestCandidateConstructions:
    def test_sorted_by_size(self):
        cands = candidate_constructions(9, 3)
        sizes = [b for _, b in cands]
        assert sizes == sorted(sizes)

    def test_thm6_applies_when_v_power_of_k(self):
        cands = dict(candidate_constructions(9, 3))
        assert cands["thm6"] == theorem6_parameters(9, 3)["b"]

    def test_composite_v_limits_methods(self):
        methods = {m for m, _ in candidate_constructions(12, 4)}
        # k=4 > M(12)=3: no ring design, no field theorems.
        assert methods == {"complete"}

    def test_composite_v_small_k(self):
        methods = {m for m, _ in candidate_constructions(12, 3)}
        assert "ring" in methods and "complete" in methods

    def test_no_candidates_out_of_range(self):
        assert candidate_constructions(5, 7) == []


class TestBestDesign:
    @pytest.mark.parametrize("v,k", [(7, 3), (8, 4), (9, 3), (11, 4), (13, 4), (6, 3), (12, 3), (10, 2)])
    def test_best_design_is_valid(self, v, k):
        d = best_design(v, k)
        d.verify()
        assert (d.v, d.k) == (v, k)

    def test_best_design_at_least_as_small_as_candidates(self):
        d = best_design(9, 3)
        predicted = min(b for _, b in candidate_constructions(9, 3))
        assert d.b <= predicted

    def test_max_blocks_respected(self):
        d = best_design(9, 3, max_blocks=20)
        assert d.b <= 20

    def test_max_blocks_unsatisfiable(self):
        with pytest.raises(ValueError, match="max_blocks"):
            best_design(12, 4, max_blocks=10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            best_design(5, 7)

    def test_gcd_reduction_applied(self):
        # Raw thm4 for (8, 4) has b=56, but a further 4x redundancy is
        # removable; best_design must shed it.
        d = best_design(8, 4)
        assert d.b == 14
        assert d.redundancy_factor() == 1
