"""Tests for Theorems 4 and 5 redundancy-reduced designs."""

import math

import pytest

from repro.algebra import GF
from repro.designs import (
    affine_orbits,
    multiplicative_orbits,
    theorem4_design,
    theorem4_parameters,
    theorem5_design,
    theorem5_parameters,
)

PRIME_POWERS = [4, 5, 7, 8, 9, 11, 13, 16]


class TestOrbits:
    def test_multiplicative_orbit_sizes(self):
        f = GF(13)
        a = f.element_of_order(4)
        orbits = multiplicative_orbits(f, a)
        assert all(len(o) == 4 for o in orbits)
        assert sum(len(o) for o in orbits) == 12

    def test_multiplicative_orbits_partition(self):
        f = GF(9)
        a = f.element_of_order(2)
        seen = [e for o in multiplicative_orbits(f, a) for e in o]
        assert sorted(seen) == sorted(e for e in f.elements() if e != f.zero)

    def test_affine_orbits_partition_with_fixed_point(self):
        f = GF(9)
        a = f.element_of_order(4)
        z = f.one
        orbits = affine_orbits(f, a, z)
        assert [z] in orbits
        sizes = sorted(len(o) for o in orbits)
        assert sizes == [1, 4, 4]
        seen = [e for o in orbits for e in o]
        assert sorted(seen) == sorted(f.elements())


class TestTheorem4:
    @pytest.mark.parametrize("v", PRIME_POWERS)
    def test_all_k(self, v):
        for k in range(2, v + 1):
            d = theorem4_design(v, k)
            d.verify()
            expected = theorem4_parameters(v, k)
            assert (d.b, d.r, d.lambda_) == (
                expected["b"],
                expected["r"],
                expected["lambda"],
            )

    def test_reduction_factor_visible(self):
        # v=13, k=5: gcd(12, 4) = 4 — a 4x saving over Theorem 1.
        d = theorem4_design(13, 5)
        assert d.b == 13 * 12 // 4

    def test_rejects_composite_v(self):
        with pytest.raises(ValueError, match="prime"):
            theorem4_design(12, 3)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            theorem4_design(9, 1)
        with pytest.raises(ValueError):
            theorem4_design(9, 10)


class TestTheorem5:
    @pytest.mark.parametrize("v", PRIME_POWERS)
    def test_all_k(self, v):
        for k in range(2, v):
            d = theorem5_design(v, k)
            d.verify()
            expected = theorem5_parameters(v, k)
            assert (d.b, d.r, d.lambda_) == (
                expected["b"],
                expected["r"],
                expected["lambda"],
            )

    def test_reduction_factor_visible(self):
        # v=13, k=4: gcd(12, 4) = 4.
        d = theorem5_design(13, 4)
        assert d.b == 13 * 12 // 4

    def test_rejects_k_equal_v(self):
        with pytest.raises(ValueError):
            theorem5_design(9, 9)

    def test_rejects_composite_v(self):
        with pytest.raises(ValueError, match="prime"):
            theorem5_design(10, 3)


class TestTheorem4vs5:
    """The two theorems trade off differently with k; both beat Theorem 1
    whenever their gcd exceeds 1."""

    def test_sizes_divide_theorem1(self):
        for v in (8, 9, 13):
            for k in range(2, v):
                b1 = v * (v - 1)
                assert b1 % theorem4_parameters(v, k)["b"] == 0
                assert b1 % theorem5_parameters(v, k)["b"] == 0

    def test_complementary_strengths(self):
        # k=5, v=13: thm5 divides by gcd(12,5)=1, thm4 by gcd(12,4)=4.
        assert theorem4_parameters(13, 5)["b"] < theorem5_parameters(13, 5)["b"]
        # k=4, v=13: thm5 divides by gcd(12,4)=4, thm4 by gcd(12,3)=3.
        assert theorem5_parameters(13, 4)["b"] < theorem4_parameters(13, 4)["b"]

    def test_gcd_formulas(self):
        for v, k in [(9, 3), (13, 4), (16, 6)]:
            assert theorem4_parameters(v, k)["b"] == v * (v - 1) // math.gcd(v - 1, k - 1)
            assert theorem5_parameters(v, k)["b"] == v * (v - 1) // math.gcd(v - 1, k)
