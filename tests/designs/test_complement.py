"""Tests for complement designs."""

import pytest

from repro.designs import (
    best_design,
    candidate_constructions,
    complement_design,
    complement_parameters,
    complete_design,
    fano_plane,
    theorem6_design,
)


class TestComplementDesign:
    @pytest.mark.parametrize(
        "design",
        [fano_plane(), theorem6_design(9, 3), complete_design(6, 3), best_design(13, 4)],
        ids=["fano", "thm6-9-3", "complete-6-3", "13-4"],
    )
    def test_complement_is_bibd(self, design):
        comp = complement_design(design)
        comp.verify()
        expected = complement_parameters(
            design.v, design.k, design.b, design.r, design.lambda_
        )
        assert comp.k == expected["k"]
        assert comp.b == expected["b"]
        assert comp.r == expected["r"]
        assert comp.lambda_ == expected["lambda"]

    def test_fano_complement_parameters(self):
        # Complement of (7,3,1) is the (7,4,2) biplane.
        comp = complement_design(fano_plane())
        assert (comp.v, comp.k, comp.b, comp.r, comp.lambda_) == (7, 4, 7, 4, 2)

    def test_double_complement_is_identity(self):
        f = fano_plane()
        back = complement_design(complement_design(f))
        assert sorted(back.blocks) == sorted(f.blocks)

    def test_rejects_tiny_complement(self):
        with pytest.raises(ValueError, match="block size"):
            complement_design(complete_design(4, 3))


class TestCatalogIntegration:
    def test_complement_candidate_for_large_k(self):
        # v=9, k=6: direct field theorems apply, but the complement of
        # the optimal (9, 3) thm6 design (b=12) is far smaller.
        cands = dict(candidate_constructions(9, 6))
        assert "complement:thm6" in cands
        assert cands["complement:thm6"] == 12

    def test_best_design_uses_complement(self):
        d = best_design(9, 6)
        d.verify()
        assert d.b <= 12
        assert (d.v, d.k) == (9, 6)

    def test_no_complement_for_small_k(self):
        cands = dict(candidate_constructions(9, 3))
        assert not any(name.startswith("complement") for name in cands)

    @pytest.mark.parametrize("v,k", [(9, 6), (13, 9), (8, 5), (16, 12)])
    def test_large_k_best_designs_valid(self, v, k):
        d = best_design(v, k)
        d.verify()
        assert (d.v, d.k) == (v, k)
