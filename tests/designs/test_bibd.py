"""Tests for the BIBD type, verifier, and redundancy reduction."""

import pytest

from repro.designs import BlockDesign, DesignError, fano_plane


def make(v, k, blocks, name=""):
    return BlockDesign(v=v, k=k, blocks=tuple(tuple(sorted(b)) for b in blocks), name=name)


class TestParameters:
    def test_fano_parameters(self):
        f = fano_plane()
        assert (f.v, f.k, f.b, f.r, f.lambda_) == (7, 3, 7, 3, 1)

    def test_bk_equals_vr(self):
        f = fano_plane()
        assert f.b * f.k == f.v * f.r

    def test_parameter_string(self):
        assert "v=7" in fano_plane().parameter_string()


class TestVerify:
    def test_fano_verifies(self):
        fano_plane().verify()

    def test_wrong_block_size(self):
        d = make(4, 3, [(0, 1, 2), (0, 1)])
        with pytest.raises(DesignError, match="size"):
            d.verify()

    def test_repeated_element_in_block(self):
        d = BlockDesign(v=4, k=3, blocks=((0, 1, 1),))
        with pytest.raises(DesignError, match="repeated|sorted"):
            d.verify()

    def test_unsorted_block(self):
        d = BlockDesign(v=4, k=3, blocks=((2, 0, 1),))
        with pytest.raises(DesignError, match="sorted"):
            d.verify()

    def test_out_of_range(self):
        d = make(3, 2, [(0, 5)])
        with pytest.raises(DesignError):
            d.verify()

    def test_element_imbalance(self):
        d = make(4, 2, [(0, 1), (0, 2), (0, 3)])
        with pytest.raises(DesignError, match="element counts"):
            d.verify()

    def test_pair_imbalance(self):
        # Element-balanced but pair-unbalanced.
        d = make(4, 2, [(0, 1), (2, 3), (0, 1), (2, 3)])
        with pytest.raises(DesignError, match="pair counts"):
            d.verify()

    def test_empty_design(self):
        d = BlockDesign(v=4, k=3, blocks=())
        with pytest.raises(DesignError, match="no blocks"):
            d.verify()

    def test_invalid_parameters(self):
        d = BlockDesign(v=3, k=4, blocks=((0, 1, 2, 3),))
        with pytest.raises(DesignError):
            d.verify()

    def test_is_bibd(self):
        assert fano_plane().is_bibd()
        assert not make(4, 2, [(0, 1)]).is_bibd()


class TestCounts:
    def test_element_counts(self):
        d = make(3, 2, [(0, 1), (0, 2), (1, 2)])
        assert d.element_counts() == [2, 2, 2]

    def test_pair_counts_complete(self):
        d = make(3, 2, [(0, 1), (0, 2), (1, 2)])
        assert set(d.pair_counts().values()) == {1}

    def test_pair_counts_include_absent_pairs(self):
        d = make(4, 2, [(0, 1)])
        counts = d.pair_counts()
        assert counts[(2, 3)] == 0


class TestRedundancy:
    def test_multiplicities(self):
        d = make(3, 2, [(0, 1), (0, 1), (0, 2), (0, 2), (1, 2), (1, 2)])
        assert set(d.multiplicities().values()) == {2}
        assert d.redundancy_factor() == 2

    def test_reduce_default_factor(self):
        d = make(3, 2, [(0, 1)] * 4 + [(0, 2)] * 4 + [(1, 2)] * 4)
        reduced = d.reduce_redundancy()
        assert reduced.b == 3
        reduced.verify()
        assert (reduced.r, reduced.lambda_) == (2, 1)

    def test_reduce_partial_factor(self):
        d = make(3, 2, [(0, 1)] * 4 + [(0, 2)] * 4 + [(1, 2)] * 4)
        reduced = d.reduce_redundancy(2)
        assert reduced.b == 6

    def test_reduce_factor_one_is_identity(self):
        f = fano_plane()
        assert f.reduce_redundancy(1) is f

    def test_reduce_invalid_factor(self):
        d = make(3, 2, [(0, 1), (0, 1), (0, 2), (0, 2), (1, 2), (1, 2), (1, 2)])
        with pytest.raises(DesignError, match="divisible"):
            d.reduce_redundancy(2)

    def test_reduced_design_is_still_bibd(self):
        f = fano_plane()
        doubled = BlockDesign(v=7, k=3, blocks=f.blocks + f.blocks)
        doubled.verify()
        reduced = doubled.reduce_redundancy()
        assert reduced.b == 7
        reduced.verify()
