"""Tests for Theorem 1 ring-based block designs."""

import pytest

from repro.algebra import GF, Zmod, ring_with_generators
from repro.designs import ring_design, theorem1_parameters


class TestTheorem1:
    @pytest.mark.parametrize(
        "v,k",
        [(4, 2), (4, 3), (4, 4), (5, 3), (5, 5), (7, 3), (8, 4), (9, 3), (9, 5), (11, 4), (16, 4), (25, 5)],
    )
    def test_field_designs_are_bibds(self, v, k):
        rd = ring_design(v, k)
        d = rd.to_block_design()
        d.verify()
        expected = theorem1_parameters(v, k)
        assert d.b == expected["b"]
        assert d.r == expected["r"]
        assert d.lambda_ == expected["lambda"]

    @pytest.mark.parametrize("v,k", [(6, 2), (12, 3), (15, 3), (20, 4), (45, 5)])
    def test_composite_v_designs_are_bibds(self, v, k):
        d = ring_design(v, k).to_block_design()
        d.verify()
        assert d.b == v * (v - 1)

    def test_pair_count(self):
        rd = ring_design(7, 3)
        assert len(rd.pairs) == 7 * 6
        assert all(y != rd.ring.zero for _, y in rd.pairs)

    def test_block_elements_in_generator_order(self):
        rd = ring_design(7, 3)
        ring = rd.ring
        g0 = rd.gens[0]
        for (x, y), elems in zip(rd.pairs, rd.block_elements):
            for g, e in zip(rd.gens, elems):
                assert e == ring.add(x, ring.mul(y, ring.sub(g, g0)))
            # The g0-th element is always x itself.
            assert elems[0] == x

    def test_block_disks(self):
        rd = ring_design(5, 3)
        for i in range(rd.b):
            disks = rd.block_disks(i)
            assert len(set(disks)) == 3

    def test_rejects_k_above_capacity(self):
        with pytest.raises(ValueError):
            ring_design(6, 3)

    def test_explicit_ring_and_gens(self):
        f = GF(8)
        d = ring_design(8, 3, ring=f, gens=[0, 1, 2]).to_block_design()
        d.verify()

    def test_explicit_args_must_be_consistent(self):
        f = GF(8)
        with pytest.raises(ValueError, match="both"):
            ring_design(8, 3, ring=f)
        with pytest.raises(ValueError, match="order"):
            ring_design(9, 3, ring=f, gens=[0, 1, 2])
        with pytest.raises(ValueError, match="expected k"):
            ring_design(8, 3, ring=f, gens=[0, 1])

    def test_invalid_generator_set_rejected(self):
        r = Zmod(9)
        with pytest.raises(ValueError, match="invertible"):
            ring_design(9, 3, ring=r, gens=[0, 3, 6])  # 3 not a unit mod 9

    def test_zmod_prime_matches_field(self):
        # Zmod(p) and GF(p) are the same ring; designs must agree.
        a = ring_design(5, 3, ring=Zmod(5), gens=[0, 1, 2]).to_block_design()
        b = ring_design(5, 3).to_block_design()
        assert sorted(a.blocks) == sorted(b.blocks)

    def test_each_tuple_k_distinct_elements(self):
        # First claim in the proof of Theorem 1.
        rd = ring_design(12, 3)
        for elems in rd.block_elements:
            assert len(set(elems)) == 3

    def test_deterministic(self):
        a = ring_design(9, 4).to_block_design()
        b = ring_design(9, 4).to_block_design()
        assert a.blocks == b.blocks
