"""Tests for the Section 4 parity assignment (Theorems 13-14, Cor 15-17)."""

import math
from collections import Counter
from fractions import Fraction

import pytest

from repro.designs import best_design, complete_design, fano_plane, ring_design
from repro.flow import (
    assign_distinguished,
    assign_parity,
    build_parity_graph,
    copies_for_perfect_balance,
    parity_loads,
    perfect_balance_possible,
)
from repro.flow.dinic import edmonds_karp_max_flow


def check_theorem14(stripes, v, parity, counts=None):
    """Per-disk parity counts land in {floor(L), ceil(L)}."""
    loads = parity_loads(stripes, v, counts)
    got = Counter(parity)
    for d in range(v):
        lo, hi = math.floor(loads[d]), math.ceil(loads[d])
        assert lo <= got.get(d, 0) <= hi, (d, got.get(d, 0), loads[d])


class TestParityLoads:
    def test_uniform_stripes(self):
        stripes = [(0, 1, 2), (1, 2, 3), (2, 3, 0), (3, 0, 1)]
        loads = parity_loads(stripes, 4)
        assert all(load == Fraction(1) for load in loads)

    def test_mixed_sizes_exact(self):
        stripes = [(0, 1), (0, 1, 2)]
        loads = parity_loads(stripes, 3)
        assert loads == [Fraction(5, 6), Fraction(5, 6), Fraction(1, 3)]

    def test_counts_weighting(self):
        stripes = [(0, 1, 2, 3)]
        loads = parity_loads(stripes, 4, counts=[2])
        assert loads[0] == Fraction(1, 2)


class TestBuildParityGraph:
    def test_structure(self):
        stripes = [(0, 1, 2), (1, 2, 3)]
        g = build_parity_graph(stripes, 4)
        assert g.b == 2 and g.v == 4
        assert g.node_count() == 2 + 4 + 2
        # source edges + stripe-disk edges + disk edges
        assert len(g.edges) == 2 + 6 + 4

    def test_disk_edge_bounds_floor_ceil(self):
        stripes = [(0, 1), (0, 1, 2)]
        g = build_parity_graph(stripes, 3)
        loads = parity_loads(stripes, 3)
        for d in range(3):
            e = g.edges[-3 + d]
            assert e.lo == math.floor(loads[d])
            assert e.hi == math.ceil(loads[d])

    def test_rejects_duplicate_disk_in_stripe(self):
        with pytest.raises(ValueError, match="twice"):
            build_parity_graph([(0, 0, 1)], 3)

    def test_rejects_out_of_range_disk(self):
        with pytest.raises(ValueError, match="disk"):
            build_parity_graph([(0, 9)], 3)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="between"):
            build_parity_graph([(0, 1)], 2, counts=[3])


class TestAssignParity:
    def test_fano_perfect(self):
        f = fano_plane()
        parity = assign_parity(f.blocks, f.v)
        assert sorted(Counter(parity).values()) == [1] * 7

    @pytest.mark.parametrize(
        "design",
        [
            best_design(9, 3),
            complete_design(6, 3),
            ring_design(7, 3).to_block_design(),
            best_design(13, 4),
        ],
        ids=["thm6-9-3", "complete-6-3", "ring-7-3", "pp-13-4"],
    )
    def test_theorem14_bound(self, design):
        parity = assign_parity(design.blocks, design.v)
        check_theorem14(design.blocks, design.v, parity)

    def test_parity_always_member_of_stripe(self):
        d = complete_design(6, 3)
        parity = assign_parity(d.blocks, d.v)
        for blk, p in zip(d.blocks, parity):
            assert p in blk

    def test_mixed_stripe_sizes(self):
        stripes = [(0, 1, 2), (1, 2, 3), (0, 3), (0, 1, 2, 3), (2, 3)]
        parity = assign_parity(stripes, 4)
        check_theorem14(stripes, 4, parity)

    def test_corollary16_fixed_k(self):
        # All stripes size k: counts in {floor(b/v), ceil(b/v)}.
        d = complete_design(7, 3)  # b=35, v=7 -> exactly 5 each
        parity = assign_parity(d.blocks, d.v)
        assert sorted(Counter(parity).values()) == [5] * 7

    def test_corollary16_non_dividing(self):
        d = complete_design(8, 3)  # b=56, v=8 -> 7 each (divides)
        parity = assign_parity(d.blocks, d.v)
        assert sorted(Counter(parity).values()) == [7] * 8

    def test_edmonds_karp_also_works(self):
        f = fano_plane()
        parity = assign_parity(f.blocks, f.v, max_flow=edmonds_karp_max_flow)
        assert sorted(Counter(parity).values()) == [1] * 7


class TestAssignDistinguished:
    def test_two_per_stripe(self):
        # Distributed sparing: choose 2 distinguished units per stripe.
        d = complete_design(6, 4)
        counts = [2] * d.b
        chosen = assign_distinguished(d.blocks, d.v, counts)
        flat = [disk for picks in chosen for disk in picks]
        for picks, blk in zip(chosen, d.blocks):
            assert len(picks) == 2
            assert len(set(picks)) == 2
            assert set(picks) <= set(blk)
        check_theorem14(d.blocks, d.v, flat, counts)

    def test_heterogeneous_counts(self):
        stripes = [(0, 1, 2), (1, 2, 3), (0, 2, 3)]
        counts = [1, 2, 1]
        chosen = assign_distinguished(stripes, 4, counts)
        assert [len(p) for p in chosen] == counts


class TestLcmConjecture:
    def test_copies_formula(self):
        assert copies_for_perfect_balance(7, 7) == 1
        assert copies_for_perfect_balance(12, 9) == 3
        assert copies_for_perfect_balance(20, 6) == 3
        assert copies_for_perfect_balance(56, 8) == 1

    def test_perfect_balance_iff_v_divides_b(self):
        assert perfect_balance_possible(35, 7)
        assert not perfect_balance_possible(12, 9)

    def test_conjecture_consistency(self):
        # lcm(b,v)/b copies always yields v | b*copies.
        for b, v in [(12, 9), (7, 7), (20, 6), (22, 4), (30, 7)]:
            copies = copies_for_perfect_balance(b, v)
            assert (b * copies) % v == 0
            # and it is minimal
            for fewer in range(1, copies):
                assert (b * fewer) % v != 0
