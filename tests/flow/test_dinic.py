"""Tests for the max-flow algorithms (Dinic and Edmonds–Karp)."""

import itertools

import pytest

from repro.flow import FlowNetwork, dinic_max_flow, edmonds_karp_max_flow

ALGOS = [dinic_max_flow, edmonds_karp_max_flow]


def build(n, edges):
    net = FlowNetwork(n)
    ids = [net.add_edge(u, v, c) for u, v, c in edges]
    return net, ids


def brute_force_max_flow(n, edges, s, t):
    """Exponential-time reference: max flow = min cut (enumerate cuts)."""
    best = None
    others = [x for x in range(n) if x not in (s, t)]
    for mask in range(1 << len(others)):
        side = {s}
        for i, x in enumerate(others):
            if mask >> i & 1:
                side.add(x)
        cut = sum(c for u, v, c in edges if u in side and v not in side)
        best = cut if best is None else min(best, cut)
    return best


CLASSIC = [
    # (n, edges, s, t, expected)
    (4, [(0, 1, 3), (0, 2, 2), (1, 2, 1), (1, 3, 2), (2, 3, 3)], 0, 3, 5),
    (6, [(0, 1, 16), (0, 2, 13), (1, 2, 10), (2, 1, 4), (1, 3, 12), (3, 2, 9), (2, 4, 14), (4, 3, 7), (3, 5, 20), (4, 5, 4)], 0, 5, 23),
    (2, [(0, 1, 7)], 0, 1, 7),
    (3, [(0, 1, 5)], 0, 2, 0),  # disconnected sink
]


class TestMaxFlowAlgorithms:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("n,edges,s,t,expected", CLASSIC)
    def test_classic_instances(self, algo, n, edges, s, t, expected):
        net, _ = build(n, edges)
        assert algo(net, s, t) == expected

    @pytest.mark.parametrize("algo", ALGOS)
    def test_source_equals_sink_rejected(self, algo):
        net, _ = build(2, [(0, 1, 1)])
        with pytest.raises(ValueError):
            algo(net, 0, 0)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_flow_conservation(self, algo):
        n, edges, s, t = 6, CLASSIC[1][1], 0, 5
        net, ids = build(n, edges)
        algo(net, s, t)
        balance = [0] * n
        for eid, (u, v, _c) in zip(ids, edges):
            f = net.flow(eid)
            balance[u] -= f
            balance[v] += f
        for x in range(n):
            if x not in (s, t):
                assert balance[x] == 0
        assert -balance[s] == balance[t]

    @pytest.mark.parametrize("algo", ALGOS)
    def test_capacity_respected(self, algo):
        n, edges, s, t = 6, CLASSIC[1][1], 0, 5
        net, ids = build(n, edges)
        algo(net, s, t)
        for eid, (_u, _v, c) in zip(ids, edges):
            assert 0 <= net.flow(eid) <= c

    def test_agreement_on_random_graphs(self):
        import random

        rng = random.Random(7)
        for trial in range(30):
            n = rng.randint(4, 7)
            edges = []
            for u, v in itertools.permutations(range(n), 2):
                if rng.random() < 0.45:
                    edges.append((u, v, rng.randint(1, 9)))
            if not edges:
                continue
            net1, _ = build(n, edges)
            net2, _ = build(n, edges)
            f1 = dinic_max_flow(net1, 0, n - 1)
            f2 = edmonds_karp_max_flow(net2, 0, n - 1)
            ref = brute_force_max_flow(n, edges, 0, n - 1)
            assert f1 == f2 == ref, f"trial {trial}: {f1} {f2} {ref}"

    @pytest.mark.parametrize("algo", ALGOS)
    def test_bipartite_matching(self, algo):
        # 3x3 bipartite complete graph: perfect matching of size 3.
        net = FlowNetwork(8)
        for i in range(3):
            net.add_edge(0, 1 + i, 1)
            net.add_edge(4 + i, 7, 1)
        for i in range(3):
            for j in range(3):
                net.add_edge(1 + i, 4 + j, 1)
        assert algo(net, 0, 7) == 3
