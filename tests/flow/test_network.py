"""Tests for the flow-network data structure."""

import pytest

from repro.flow import FlowNetwork


class TestFlowNetwork:
    def test_add_edge_ids_are_even(self):
        net = FlowNetwork(3)
        e0 = net.add_edge(0, 1, 5)
        e1 = net.add_edge(1, 2, 4)
        assert e0 == 0 and e1 == 2

    def test_residual_twin(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5)
        assert net.residual(e) == 5
        assert net.flow(e) == 0
        net.push(e, 3)
        assert net.residual(e) == 2
        assert net.flow(e) == 3

    def test_push_reversible(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5)
        net.push(e, 5)
        net.push(e ^ 1, 2)  # cancel 2 units along the residual
        assert net.flow(e) == 3

    def test_edge_count(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 1)
        assert net.edge_count() == 2

    def test_rejects_bad_nodes(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1)

    def test_rejects_negative_capacity(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            FlowNetwork(1)
