"""Tests for max flow with edge lower bounds."""

import pytest

from repro.flow import BoundedEdge, InfeasibleFlow, max_flow_with_lower_bounds
from repro.flow.dinic import edmonds_karp_max_flow


class TestBoundedEdge:
    def test_valid(self):
        e = BoundedEdge(0, 1, 2, 5)
        assert (e.lo, e.hi) == (2, 5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BoundedEdge(0, 1, 3, 2)
        with pytest.raises(ValueError):
            BoundedEdge(0, 1, -1, 2)


class TestMaxFlowWithLowerBounds:
    def test_no_lower_bounds_is_plain_max_flow(self):
        edges = [
            BoundedEdge(0, 1, 0, 3),
            BoundedEdge(0, 2, 0, 2),
            BoundedEdge(1, 2, 0, 1),
            BoundedEdge(1, 3, 0, 2),
            BoundedEdge(2, 3, 0, 3),
        ]
        value, flows = max_flow_with_lower_bounds(4, edges, 0, 3)
        assert value == 5
        for f, e in zip(flows, edges):
            assert e.lo <= f <= e.hi

    def test_lower_bounds_respected(self):
        # Force at least 2 units down the "long" branch.
        edges = [
            BoundedEdge(0, 1, 2, 5),
            BoundedEdge(1, 2, 2, 5),
            BoundedEdge(2, 3, 0, 5),
            BoundedEdge(0, 3, 0, 5),
        ]
        value, flows = max_flow_with_lower_bounds(4, edges, 0, 3)
        assert flows[0] >= 2 and flows[1] >= 2
        assert value == 10

    def test_conservation_with_bounds(self):
        edges = [
            BoundedEdge(0, 1, 1, 3),
            BoundedEdge(0, 2, 0, 3),
            BoundedEdge(1, 3, 1, 2),
            BoundedEdge(1, 2, 0, 2),
            BoundedEdge(2, 3, 1, 4),
        ]
        value, flows = max_flow_with_lower_bounds(4, edges, 0, 3)
        balance = [0] * 4
        for f, e in zip(flows, edges):
            assert e.lo <= f <= e.hi
            balance[e.u] -= f
            balance[e.v] += f
        assert balance[1] == 0 and balance[2] == 0
        assert balance[3] == value == -balance[0]

    def test_infeasible_detected(self):
        # Lower bound 3 into a node whose only exit has capacity 1.
        edges = [
            BoundedEdge(0, 1, 3, 5),
            BoundedEdge(1, 2, 0, 1),
        ]
        with pytest.raises(InfeasibleFlow):
            max_flow_with_lower_bounds(3, edges, 0, 2)

    def test_tight_bounds_forced_flow(self):
        # lo == hi pins the flow exactly.
        edges = [
            BoundedEdge(0, 1, 4, 4),
            BoundedEdge(1, 2, 0, 10),
        ]
        value, flows = max_flow_with_lower_bounds(3, edges, 0, 2)
        assert value == 4
        assert flows == [4, 4]

    def test_alternate_max_flow_algorithm(self):
        edges = [BoundedEdge(0, 1, 1, 3), BoundedEdge(1, 2, 1, 3)]
        value, flows = max_flow_with_lower_bounds(
            3, edges, 0, 2, max_flow=edmonds_karp_max_flow
        )
        assert value == 3
