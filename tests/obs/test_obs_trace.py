"""Trace spans derived from scenario report payloads."""

import pytest

from repro.obs import (
    parse_trace_jsonl,
    render_trace_jsonl,
    spans_from_payload,
    summarize_trace,
)
from repro.service import (
    AutoscalePolicy,
    FleetScenario,
    default_failure_schedule,
    run_fleet_scenario,
)


def _payload(**overrides):
    base = dict(
        shards=4,
        v=9,
        k=3,
        duration_ms=300.0,
        interarrival_ms=1.0,
        read_fraction=0.7,
        failures=(),
        verify_data=True,
        check_conformance=False,
    )
    base.update(overrides)
    return run_fleet_scenario(FleetScenario(**base)).to_dict()


class TestSpansFromPayload:
    def test_healthy_scenario_tree(self):
        payload = _payload()
        spans = spans_from_payload(payload)
        by_type = {}
        for s in spans:
            by_type.setdefault(s["span"], []).append(s)
        assert len(by_type["scenario"]) == 1
        root = by_type["scenario"][0]
        assert root["parent"] is None
        # end_ms is the drained simulation end, at or past the nominal
        # 300 ms stream duration.
        assert root["start_ms"] == 0.0 and root["end_ms"] >= 300.0
        assert root["passed"] is True
        assert [s["shard"] for s in by_type["shard"]] == [0, 1, 2, 3]
        assert all(s["parent"] == "scenario" for s in by_type["shard"])
        assert by_type["shard"][0]["engine"] == payload["engine_per_shard"][0]
        assert "rebuild" not in by_type and "migration" not in by_type

    def test_rebuild_spans(self):
        payload = _payload(
            failures=default_failure_schedule(4, 9, 2, 80.0)
        )
        spans = spans_from_payload(payload)
        rebuilds = [s for s in spans if s["span"] == "rebuild"]
        assert len(rebuilds) == 2
        for r in rebuilds:
            assert r["parent"] == f"shard:{r['array']}"
            assert r["data_verified"] is True
            wait = next(s for s in spans if s["id"] == f"{r['id']}/wait")
            run = next(s for s in spans if s["id"] == f"{r['id']}/run")
            assert wait["parent"] == r["id"] and run["parent"] == r["id"]
            # wait ends where run starts; both bracket the parent span.
            assert wait["start_ms"] == r["start_ms"]
            assert wait["end_ms"] == run["start_ms"]
            assert run["end_ms"] == r["end_ms"]

    def test_migration_spans(self):
        payload = _payload(shards=3, reshape_to=4, duration_ms=400.0)
        spans = spans_from_payload(payload)
        migrations = [s for s in spans if s["span"] == "migration"]
        assert migrations, "reshape scenario must emit migration spans"
        for m in migrations:
            assert m["parent"] == "scenario"
            phases = {
                p: next(
                    s for s in spans if s["id"] == f"{m['id']}/{p}"
                )
                for p in ("wait", "copy", "drain")
            }
            assert phases["wait"]["start_ms"] == m["start_ms"]
            assert phases["wait"]["end_ms"] == phases["copy"]["start_ms"]
            assert phases["copy"]["end_ms"] == phases["drain"]["start_ms"]
            assert phases["drain"]["end_ms"] == m["end_ms"]

    def test_payload_without_timestamps_skips_migrations(self):
        payload = _payload(shards=3, reshape_to=4, duration_ms=400.0)
        for row in payload["migration"]["volumes"]:
            row.pop("requested_at_ms")
        spans = spans_from_payload(payload)
        assert not [s for s in spans if s["span"].startswith("migration")]


def _autoscaled_payload():
    return run_fleet_scenario(
        FleetScenario(
            shards=2,
            v=9,
            k=3,
            duration_ms=600.0,
            interarrival_ms=0.5,
            seed=7,
            autoscale=AutoscalePolicy(
                cadence_ms=50.0,
                high_rate=0.5,
                sustain_ticks=2,
                cooldown_ms=200.0,
                grow_step=2,
                max_shards=8,
            ),
        )
    ).to_dict()


class TestAutoscaleSpans:
    def test_autoscale_event_tree(self):
        payload = _autoscaled_payload()
        assert payload["autoscale"]["events"], "scenario must grow"
        spans = spans_from_payload(payload)
        autoscales = [s for s in spans if s["span"] == "autoscale"]
        assert len(autoscales) == len(payload["autoscale"]["events"])
        for a in autoscales:
            assert a["parent"] == "scenario"
            assert a["action"] == "grow"
            assert a["to_shards"] > a["from_shards"]
            assert a["completed_moves"] == a["planned_moves"]
            moves = [s for s in spans if s["parent"] == a["id"]]
            assert len(moves) == a["planned_moves"]
            for m in moves:
                assert m["span"] == "migration"
                phases = {
                    p: next(
                        s for s in spans if s["id"] == f"{m['id']}/{p}"
                    )
                    for p in ("wait", "copy", "drain")
                }
                assert phases["wait"]["start_ms"] == m["start_ms"]
                assert phases["drain"]["end_ms"] == m["end_ms"]
            # Every move falls inside the event's span window.
            assert all(
                a["start_ms"] <= m["start_ms"]
                and m["end_ms"] <= a["end_ms"]
                for m in moves
            )

    def test_summary_has_autoscale_timeline(self):
        spans = spans_from_payload(_autoscaled_payload())
        text = summarize_trace(spans)
        assert "autoscale timeline:" in text
        assert "grow 2 -> 4" in text
        assert "(verified=True)" in text


class TestRoundTrip:
    def test_render_parse_identity(self):
        spans = spans_from_payload(
            _payload(failures=default_failure_schedule(4, 9, 1, 80.0))
        )
        text = render_trace_jsonl(spans)
        assert parse_trace_jsonl(text) == spans

    def test_parse_skips_blank_lines(self):
        assert parse_trace_jsonl("\n\n") == []

    def test_parse_rejects_truncated_json(self):
        good = render_trace_jsonl(spans_from_payload(_payload()))
        first = good.splitlines()[0]
        truncated = first + "\n" + first[: len(first) // 2] + "\n"
        with pytest.raises(ValueError, match="line 2 is not valid JSON"):
            parse_trace_jsonl(truncated)
        assert "truncated" in _raises_message(truncated)

    def test_parse_rejects_non_span_rows(self):
        with pytest.raises(ValueError, match="line 1 is not a span object"):
            parse_trace_jsonl('{"not": "a span"}\n')
        with pytest.raises(ValueError, match="line 1 is not a span object"):
            parse_trace_jsonl('[1, 2, 3]\n')


def _raises_message(text):
    try:
        parse_trace_jsonl(text)
    except ValueError as exc:
        return str(exc)
    raise AssertionError("expected ValueError")


class TestTraceCli:
    """`python -m repro trace` must fail with a clear one-line error
    (exit 2) on missing, empty, or corrupt span files — never a
    traceback."""

    def _main(self, argv):
        from repro.__main__ import main

        return main(argv)

    def test_missing_file(self, tmp_path, capsys):
        code = self._main(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: cannot read trace file" in err
        assert "Traceback" not in err

    def test_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = self._main(["trace", str(empty)])
        assert code == 2
        err = capsys.readouterr().err
        assert "contains no spans" in err
        assert "Traceback" not in err

    def test_blank_lines_only(self, tmp_path, capsys):
        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n\n")
        code = self._main(["trace", str(blank)])
        assert code == 2
        assert "contains no spans" in capsys.readouterr().err

    def test_truncated_file(self, tmp_path, capsys):
        good = render_trace_jsonl(spans_from_payload(_payload()))
        first = good.splitlines()[0]
        bad = tmp_path / "trunc.jsonl"
        bad.write_text(first + "\n" + first[:20] + "\n")
        code = self._main(["trace", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert "line 2 is not valid JSON" in err
        assert str(bad) in err

    def test_not_a_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "report.json"
        bad.write_text('{"passed": true}\n')
        code = self._main(["trace", str(bad)])
        assert code == 2
        assert "not a span object" in capsys.readouterr().err

    def test_valid_trace_summarizes(self, tmp_path, capsys):
        spans = spans_from_payload(_payload())
        path = tmp_path / "trace.jsonl"
        path.write_text(render_trace_jsonl(spans))
        code = self._main(["trace", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario: 4 shards" in out


class TestSummary:
    def test_summary_lines(self):
        payload = _payload(
            failures=default_failure_schedule(4, 9, 1, 80.0)
        )
        spans = spans_from_payload(payload)
        text = summarize_trace(spans)
        assert "scenario: 4 shards" in text
        assert "passed=True" in text
        assert "rebuild timeline:" in text
        assert "phase durations:" in text
        assert "rebuild_run" in text

    def test_summary_with_metrics_rows(self):
        spans = spans_from_payload(_payload())
        rows = [
            {"type": "snapshot", "t_ms": 10.0, "fleet": {"balance": 1.2}},
            {"type": "snapshot", "t_ms": 20.0, "fleet": {"balance": 1.5}},
            {"type": "final"},
        ]
        text = summarize_trace(spans, rows)
        assert "shard balance over time" in text
        assert "worst balance 1.500 at 20.0 ms" in text
