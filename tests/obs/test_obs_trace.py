"""Trace spans derived from scenario report payloads."""

from repro.obs import (
    parse_trace_jsonl,
    render_trace_jsonl,
    spans_from_payload,
    summarize_trace,
)
from repro.service import (
    FleetScenario,
    default_failure_schedule,
    run_fleet_scenario,
)


def _payload(**overrides):
    base = dict(
        shards=4,
        v=9,
        k=3,
        duration_ms=300.0,
        interarrival_ms=1.0,
        read_fraction=0.7,
        failures=(),
        verify_data=True,
        check_conformance=False,
    )
    base.update(overrides)
    return run_fleet_scenario(FleetScenario(**base)).to_dict()


class TestSpansFromPayload:
    def test_healthy_scenario_tree(self):
        payload = _payload()
        spans = spans_from_payload(payload)
        by_type = {}
        for s in spans:
            by_type.setdefault(s["span"], []).append(s)
        assert len(by_type["scenario"]) == 1
        root = by_type["scenario"][0]
        assert root["parent"] is None
        # end_ms is the drained simulation end, at or past the nominal
        # 300 ms stream duration.
        assert root["start_ms"] == 0.0 and root["end_ms"] >= 300.0
        assert root["passed"] is True
        assert [s["shard"] for s in by_type["shard"]] == [0, 1, 2, 3]
        assert all(s["parent"] == "scenario" for s in by_type["shard"])
        assert by_type["shard"][0]["engine"] == payload["engine_per_shard"][0]
        assert "rebuild" not in by_type and "migration" not in by_type

    def test_rebuild_spans(self):
        payload = _payload(
            failures=default_failure_schedule(4, 9, 2, 80.0)
        )
        spans = spans_from_payload(payload)
        rebuilds = [s for s in spans if s["span"] == "rebuild"]
        assert len(rebuilds) == 2
        for r in rebuilds:
            assert r["parent"] == f"shard:{r['array']}"
            assert r["data_verified"] is True
            wait = next(s for s in spans if s["id"] == f"{r['id']}/wait")
            run = next(s for s in spans if s["id"] == f"{r['id']}/run")
            assert wait["parent"] == r["id"] and run["parent"] == r["id"]
            # wait ends where run starts; both bracket the parent span.
            assert wait["start_ms"] == r["start_ms"]
            assert wait["end_ms"] == run["start_ms"]
            assert run["end_ms"] == r["end_ms"]

    def test_migration_spans(self):
        payload = _payload(shards=3, reshape_to=4, duration_ms=400.0)
        spans = spans_from_payload(payload)
        migrations = [s for s in spans if s["span"] == "migration"]
        assert migrations, "reshape scenario must emit migration spans"
        for m in migrations:
            assert m["parent"] == "scenario"
            phases = {
                p: next(
                    s for s in spans if s["id"] == f"{m['id']}/{p}"
                )
                for p in ("wait", "copy", "drain")
            }
            assert phases["wait"]["start_ms"] == m["start_ms"]
            assert phases["wait"]["end_ms"] == phases["copy"]["start_ms"]
            assert phases["copy"]["end_ms"] == phases["drain"]["start_ms"]
            assert phases["drain"]["end_ms"] == m["end_ms"]

    def test_payload_without_timestamps_skips_migrations(self):
        payload = _payload(shards=3, reshape_to=4, duration_ms=400.0)
        for row in payload["migration"]["volumes"]:
            row.pop("requested_at_ms")
        spans = spans_from_payload(payload)
        assert not [s for s in spans if s["span"].startswith("migration")]


class TestRoundTrip:
    def test_render_parse_identity(self):
        spans = spans_from_payload(
            _payload(failures=default_failure_schedule(4, 9, 1, 80.0))
        )
        text = render_trace_jsonl(spans)
        assert parse_trace_jsonl(text) == spans

    def test_parse_skips_blank_lines(self):
        assert parse_trace_jsonl("\n\n") == []


class TestSummary:
    def test_summary_lines(self):
        payload = _payload(
            failures=default_failure_schedule(4, 9, 1, 80.0)
        )
        spans = spans_from_payload(payload)
        text = summarize_trace(spans)
        assert "scenario: 4 shards" in text
        assert "passed=True" in text
        assert "rebuild timeline:" in text
        assert "phase durations:" in text
        assert "rebuild_run" in text

    def test_summary_with_metrics_rows(self):
        spans = spans_from_payload(_payload())
        rows = [
            {"type": "snapshot", "t_ms": 10.0, "fleet": {"balance": 1.2}},
            {"type": "snapshot", "t_ms": 20.0, "fleet": {"balance": 1.5}},
            {"type": "final"},
        ]
        text = summarize_trace(spans, rows)
        assert "shard balance over time" in text
        assert "worst balance 1.500 at 20.0 ms" in text
