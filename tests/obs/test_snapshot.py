"""Snapshot rendering: recorder state -> JSONL rows / Prometheus text."""

import json

import numpy as np

from repro.obs import MetricsRecorder, build_rows, prometheus_text, render_metrics_jsonl
from repro.obs.snapshot import _admission_intervals, _carry_forward, _occupancy


def _loaded_recorder() -> MetricsRecorder:
    rec = MetricsRecorder(10.0, shards=2)
    rec.arrivals(0, np.array([1.0, 2.0, 15.0]))
    rec.arrivals(1, np.array([3.0]))
    rec.feed(0, "read", np.array([2.0, 12.0]), np.array([1.0, 2.0]))
    rec.feed(1, "write", np.array([5.0]), np.array([3.0]))
    rec.set_engine(0, "solver")
    rec.set_engine(1, "solver")
    rec.set_stat(0, "queue_delay_ms", 4.0)
    rec.count("tie_abort_replays")
    rec.count("window_boundaries", 7, volatile=True)
    rec.gauge("rebuild_progress", 0, 12.0, 0.5)
    return rec


class TestBuildRows:
    def test_row_grid_and_final(self):
        rows = build_rows(_loaded_recorder())
        assert [r["type"] for r in rows] == ["snapshot", "snapshot", "final"]
        first, second, final = rows
        assert first["t_ms"] == 10.0 and second["t_ms"] == 20.0
        assert first["fleet"]["arrived"] == 3
        assert first["fleet"]["completed"] == 2
        # shard 1 has completed nothing in bucket 0? it has: the write
        # at t=5 — so min cumulative completed is 1 and balance is 1.0.
        assert first["fleet"]["balance"] == 1.0
        assert first["shards"][0]["kinds"] == {"read": 1}
        assert second["fleet"]["rebuild_progress"] == {"0": 0.5}
        assert final["engine"] == {"0": "solver", "1": "solver"}
        assert final["counters"] == {"tie_abort_replays": 1}
        assert final["totals"]["completed"] == 3
        shard0 = final["totals"]["shards"][0]
        assert shard0["stats"] == {"queue_delay_ms": 4.0}
        assert "stats" not in final["totals"]["shards"][1]

    def test_inflight_is_cumulative_arrived_minus_completed(self):
        rows = build_rows(_loaded_recorder())
        assert rows[0]["shards"][0]["inflight"] == 1  # 2 arrived, 1 done
        assert rows[1]["shards"][0]["inflight"] == 1  # 3 arrived, 2 done

    def test_balance_none_when_a_shard_is_idle(self):
        rec = MetricsRecorder(10.0, shards=2)
        rec.feed(0, "read", np.array([1.0]), np.array([1.0]))
        rows = build_rows(rec)
        assert rows[0]["fleet"]["balance"] is None

    def test_autoscale_shards_gauge_carries_forward(self):
        rec = _loaded_recorder()
        rec.gauge("autoscale_shards", 0, 12.0, 2)
        rec.gauge("autoscale_shards", 0, 18.0, 4)
        rows = build_rows(rec)
        # No sample in the first window -> key absent; latest value
        # carries into each later snapshot.
        assert "autoscale_shards" not in rows[0]["fleet"]
        assert rows[1]["fleet"]["autoscale_shards"] == 4

    def test_volatile_counters_stay_out_of_jsonl(self):
        text = render_metrics_jsonl(build_rows(_loaded_recorder()))
        assert "window_boundaries" not in text
        assert "tie_abort_replays" in text

    def test_jsonl_rows_parse_and_sort_keys(self):
        text = render_metrics_jsonl(build_rows(_loaded_recorder()))
        lines = text.splitlines()
        for line in lines:
            row = json.loads(line)
            assert line == json.dumps(row, sort_keys=True)

    def test_empty_recorder_renders_final_only(self):
        rows = build_rows(MetricsRecorder(10.0))
        assert [r["type"] for r in rows] == ["final"]


class TestAdmissionOccupancy:
    PAYLOAD = {
        "rebuilds": [
            {"failed_at_ms": 10.0, "started_at_ms": 10.0, "duration_ms": 30.0},
            {"failed_at_ms": 10.0, "started_at_ms": 40.0, "duration_ms": 20.0},
        ],
        "migration": {
            "volumes": [
                {
                    "started_at_ms": 50.0,
                    "copied_at_ms": 70.0,
                    "admission_delay_ms": 5.0,
                },
                {"started_at_ms": None},
            ]
        },
    }

    def test_intervals_from_payload(self):
        active, queued = _admission_intervals(self.PAYLOAD)
        assert (10.0, 40.0) in active and (40.0, 60.0) in active
        assert (50.0, 70.0) in active
        assert (10.0, 40.0) in queued and (45.0, 50.0) in queued

    def test_occupancy_counts_half_open_intervals(self):
        active, queued = _admission_intervals(self.PAYLOAD)
        assert _occupancy(active, 15.0) == 1
        assert _occupancy(active, 55.0) == 2
        assert _occupancy(active, 40.0) == 1  # [10,40) closed, [40,60) open
        assert _occupancy(queued, 20.0) == 1

    def test_carry_forward(self):
        series = [(5.0, 0.1), (25.0, 0.9)]
        assert _carry_forward(series, 4.0) is None
        assert _carry_forward(series, 10.0) == 0.1
        assert _carry_forward(series, 30.0) == 0.9


class TestPrometheus:
    def test_families_present(self):
        rec = _loaded_recorder()
        payload = {"fleet": {"throughput_rps": 123.0, "shard_balance": 1.5}}
        text = prometheus_text(rec, payload)
        assert 'repro_requests_completed_total{shard="0",kind="read"} 2' in text
        assert 'repro_engine_info{shard="0",engine="solver"} 1' in text
        assert 'repro_events_total{event="window_boundaries"} 7' in text
        assert "repro_fleet_throughput_rps 123.0" in text
        assert "repro_fleet_shard_balance 1.5" in text
        assert 'stat="p95"' in text

    def test_renders_without_payload(self):
        text = prometheus_text(_loaded_recorder())
        assert "repro_fleet_throughput_rps" not in text
        assert "repro_requests_arrived_total" in text
