"""Observability determinism contracts.

Three invariants, mirrored from the report byte-identity contract the
rest of the suite already pins:

* metrics and trace JSONL are byte-identical across streaming window
  sizes (1, a prime, a power of two, oversized);
* serial and process-parallel serves emit byte-identical metrics,
  trace, and canonical report;
* instrumentation is transparent — running with a recorder attached
  leaves the canonical report payload byte-identical to running
  without one.
"""

import json

import pytest

from repro.obs import (
    MetricsRecorder,
    build_rows,
    render_metrics_jsonl,
    render_trace_jsonl,
    spans_from_payload,
)
from repro.service import (
    FleetScenario,
    default_failure_schedule,
    run_fleet_scenario,
)
from repro.service.parallel import canonical_payload, run_fleet_scenario_parallel

WINDOW_SIZES = (1, 13, 64, 10**6)
INTERVAL_MS = 20.0

FAILURES = dict(
    shards=4,
    v=9,
    k=3,
    duration_ms=300.0,
    interarrival_ms=1.0,
    read_fraction=0.7,
    failures=default_failure_schedule(4, 9, 2, 80.0),
    verify_data=True,
    check_conformance=False,
)
RESHAPE = dict(
    shards=3,
    v=9,
    k=3,
    duration_ms=400.0,
    interarrival_ms=1.0,
    read_fraction=0.7,
    failures=(),
    reshape_to=4,
    verify_data=True,
    check_conformance=False,
)


def _serve(base: dict, *, window_size=None, workers=None, instrument=True):
    """One serve; returns (metrics_jsonl, trace_jsonl, canonical_json)."""
    scenario = FleetScenario(**base, window_size=window_size)
    rec = (
        MetricsRecorder(INTERVAL_MS, shards=base["shards"])
        if instrument
        else None
    )
    if workers is not None:
        report = run_fleet_scenario_parallel(
            scenario, workers=workers, recorder=rec
        )
    else:
        report = run_fleet_scenario(scenario, recorder=rec)
    payload = report.to_dict()
    canon = json.dumps(canonical_payload(payload), sort_keys=True)
    metrics = (
        render_metrics_jsonl(build_rows(rec, payload))
        if rec is not None
        else None
    )
    trace = render_trace_jsonl(spans_from_payload(payload))
    return metrics, trace, canon


class TestWindowSizeIndependence:
    @pytest.mark.parametrize(
        "base", [FAILURES, RESHAPE], ids=["failures", "reshape"]
    )
    def test_metrics_and_trace_identical_across_window_sizes(self, base):
        outputs = [_serve(base, window_size=ws) for ws in WINDOW_SIZES]
        ref_metrics, ref_trace, _ = outputs[0]
        assert ref_metrics.count("\n") > 1  # non-degenerate file
        for metrics, trace, _ in outputs[1:]:
            assert metrics == ref_metrics
            assert trace == ref_trace


class TestSerialParallelIdentity:
    @pytest.mark.parametrize(
        "base,window_size",
        [
            (FAILURES, None),
            (FAILURES, 64),
            (RESHAPE, None),
            (RESHAPE, 64),
        ],
        ids=[
            "failures-materialized",
            "failures-windowed",
            "reshape-materialized",
            "reshape-windowed",
        ],
    )
    def test_workers_emit_identical_observability(self, base, window_size):
        serial = _serve(base, window_size=window_size)
        parallel = _serve(base, window_size=window_size, workers=2)
        assert parallel[0] == serial[0]  # metrics JSONL
        assert parallel[1] == serial[1]  # trace JSONL
        assert parallel[2] == serial[2]  # canonical report


class TestInstrumentationTransparency:
    @pytest.mark.parametrize("workers", [None, 2], ids=["serial", "parallel"])
    def test_recorder_leaves_canonical_report_unchanged(self, workers):
        _, _, bare = _serve(FAILURES, workers=workers, instrument=False)
        _, _, instrumented = _serve(FAILURES, workers=workers)
        assert instrumented == bare

    def test_windowed_recorder_transparent(self):
        _, _, bare = _serve(RESHAPE, window_size=32, instrument=False)
        _, _, instrumented = _serve(RESHAPE, window_size=32)
        assert instrumented == bare
