"""Unit coverage for :class:`repro.obs.MetricsRecorder` and the null
recorder default."""

import numpy as np
import pytest

from repro.obs import NULL_RECORDER, MetricsRecorder, NullRecorder


class TestNullRecorder:
    def test_disabled_and_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        # Every hook is a no-op — the engines call these unconditionally
        # on uninstrumented controllers.
        rec.feed(0, "read", np.array([1.0]), np.array([0.5]))
        rec.record(0, "read", 1.0, 0.5)
        rec.arrivals(0, np.array([1.0]))
        rec.arrive(0, 1.0)
        rec.gauge("g", 0, 1.0, 0.5)
        rec.count("c")
        rec.set_engine(0, "solver")
        rec.set_stat(0, "s", 1.0)
        rec.reset_shard(0)

    def test_singleton_exported(self):
        assert isinstance(NULL_RECORDER, NullRecorder)


class TestRecorderIngestion:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            MetricsRecorder(0.0)

    def test_feed_buckets_by_completion_time(self):
        rec = MetricsRecorder(10.0)
        comps = np.array([1.0, 9.9, 10.0, 25.0])
        lats = np.array([1.0, 2.0, 3.0, 4.0])
        rec.feed(0, "read", comps, lats)
        buckets = rec.latency_buckets(0)["read"]
        assert sorted(buckets) == [0, 1, 2]
        assert buckets[0].count == 2
        assert buckets[1].count == 1
        assert buckets[2].count == 1
        assert rec.last_bucket() == 2

    def test_feed_single_bucket_fast_path(self):
        rec = MetricsRecorder(100.0)
        rec.feed(1, "write", np.array([5.0, 6.0, 7.0]), np.array([1.0, 1.0, 2.0]))
        assert rec.latency_buckets(1)["write"][0].count == 3

    def test_feed_chunking_invariance(self):
        """Windowed feeds emit prefixes of the one-shot order — the
        per-bucket digests must not depend on the chunking."""
        comps = np.sort(np.random.default_rng(0).uniform(0, 50, 200))
        lats = np.random.default_rng(1).uniform(0.1, 9.0, 200)
        one = MetricsRecorder(7.0)
        one.feed(0, "read", comps, lats)
        many = MetricsRecorder(7.0)
        for lo in range(0, 200, 13):
            many.feed(0, "read", comps[lo:lo + 13], lats[lo:lo + 13])
        a = one.latency_buckets(0)["read"]
        b = many.latency_buckets(0)["read"]
        assert sorted(a) == sorted(b)
        from repro.sim.stats import summarize

        for k in a:
            assert summarize(a[k]) == summarize(b[k])

    def test_record_scalar_matches_feed(self):
        a = MetricsRecorder(10.0)
        a.feed(0, "read", np.array([3.0, 14.0]), np.array([1.0, 2.0]))
        b = MetricsRecorder(10.0)
        b.record(0, "read", 3.0, 1.0)
        b.record(0, "read", 14.0, 2.0)
        from repro.sim.stats import summarize

        for k in a.latency_buckets(0)["read"]:
            assert summarize(a.latency_buckets(0)["read"][k]) == summarize(
                b.latency_buckets(0)["read"][k]
            )

    def test_arrivals_bucketed_and_summed(self):
        rec = MetricsRecorder(10.0)
        rec.arrivals(2, np.array([0.0, 5.0, 15.0]))
        rec.arrive(2, 15.5)
        assert rec.arrival_buckets(2) == {0: 2, 1: 2}

    def test_empty_feeds_are_noops(self):
        rec = MetricsRecorder(10.0)
        rec.feed(0, "read", np.array([]), np.array([]))
        rec.arrivals(0, np.array([]))
        assert rec.last_bucket() == -1


class TestRecorderScopes:
    def test_counters_split_volatile(self):
        rec = MetricsRecorder(10.0)
        rec.count("tie_abort_replays")
        rec.count("window_boundaries", 3, volatile=True)
        assert rec.counters() == {"tie_abort_replays": 1}
        assert rec.counters(volatile=True) == {"window_boundaries": 3}

    def test_engines_and_stats(self):
        rec = MetricsRecorder(10.0)
        rec.set_engine(1, "solver")
        rec.set_stat(1, "queue_delay_ms", 12.5)
        assert rec.engines == {1: "solver"}
        assert rec.stats(1) == {"queue_delay_ms": 12.5}
        assert rec.stats(0) == {}

    def test_gauge_series_in_record_order(self):
        rec = MetricsRecorder(10.0)
        rec.gauge("rebuild_progress", 0, 5.0, 0.1)
        rec.gauge("rebuild_progress", 0, 9.0, 0.5)
        assert rec.gauge_series("rebuild_progress")[0] == [(5.0, 0.1), (9.0, 0.5)]

    def test_reset_shard_drops_samples_and_arrivals_only(self):
        rec = MetricsRecorder(10.0)
        rec.feed(0, "read", np.array([1.0]), np.array([1.0]))
        rec.arrivals(0, np.array([1.0]))
        rec.count("tie_abort_replays")
        rec.set_engine(0, "windowed-eager")
        rec.reset_shard(0)
        assert rec.latency_buckets(0) == {}
        assert rec.arrival_buckets(0) == {}
        assert rec.counters() == {"tie_abort_replays": 1}
        assert rec.engines == {0: "windowed-eager"}

    def test_shard_count_covers_everything_observed(self):
        rec = MetricsRecorder(10.0, shards=2)
        assert rec.shard_count() == 2
        rec.set_engine(5, "heap")
        assert rec.shard_count() == 6


class TestAbsorb:
    def test_placement_merge(self):
        parent = MetricsRecorder(10.0, shards=2)
        parent.feed(0, "read", np.array([1.0]), np.array([1.0]))
        parent.count("tie_abort_replays")
        worker = MetricsRecorder(10.0, shards=4)
        worker.feed(3, "write", np.array([2.0]), np.array([0.5]))
        worker.arrivals(3, np.array([0.5]))
        worker.set_engine(3, "eager")
        worker.set_stat(3, "queue_delay_ms", 1.0)
        worker.count("tie_abort_replays", 2)
        worker.gauge("rebuild_progress", 3, 4.0, 1.0)
        parent.absorb(worker)
        assert parent.latency_buckets(0)["read"][0].count == 1
        assert parent.latency_buckets(3)["write"][0].count == 1
        assert parent.arrival_buckets(3) == {0: 1}
        assert parent.engines == {3: "eager"}
        assert parent.stats(3) == {"queue_delay_ms": 1.0}
        assert parent.counters() == {"tie_abort_replays": 3}
        assert parent.gauge_series("rebuild_progress")[3] == [(4.0, 1.0)]
        assert parent.shard_count() == 4
