"""Tests for Holland–Gibson BIBD layouts (Fig. 3 construction)."""

from collections import Counter

import pytest

from repro.designs import best_design, complete_design, fano_plane
from repro.layouts import (
    evaluate_layout,
    holland_gibson_layout,
    layout_from_design,
    parity_counts,
)


class TestHollandGibson:
    @pytest.mark.parametrize(
        "design",
        [fano_plane(), complete_design(4, 3), best_design(9, 3), best_design(8, 4)],
        ids=["fano", "complete-4-3", "thm6-9-3", "thm4-8-4"],
    )
    def test_valid_and_sized_kr(self, design):
        lay = holland_gibson_layout(design)
        lay.validate()
        assert lay.size == design.k * design.r
        assert lay.b == design.k * design.b

    def test_parity_perfectly_balanced(self):
        design = fano_plane()
        lay = holland_gibson_layout(design)
        assert parity_counts(lay) == [design.r] * design.v

    def test_workload_balanced(self):
        m = evaluate_layout(holland_gibson_layout(fano_plane()))
        assert m.workload_balanced
        assert abs(m.workload_max - (3 - 1) / (7 - 1)) < 1e-12

    def test_fig2_complete_design_layout(self):
        # The paper's Fig. 2: v=4, k=3 from the complete design.
        lay = holland_gibson_layout(complete_design(4, 3))
        lay.validate()
        m = evaluate_layout(lay)
        assert m.parity_balanced
        assert abs(m.workload_max - 2 / 3) < 1e-12


class TestLayoutFromDesign:
    def test_rotate_needs_k_copies_for_balance(self):
        design = fano_plane()
        lay1 = layout_from_design(design, copies=1, parity="rotate")
        # One copy, parity always at position 0: element-0-heavy.
        counts = Counter(s.parity_unit[0] for s in lay1.stripes)
        assert max(counts.values()) > design.r // design.k + 1 or len(counts) < design.v

    def test_flow_single_copy_within_one(self):
        design = best_design(9, 3)  # b=12, v=9: no perfect balance
        lay = layout_from_design(design, copies=1, parity="flow")
        counts = parity_counts(lay)
        assert max(counts) - min(counts) == 1

    def test_copies_scale_size(self):
        design = fano_plane()
        lay = layout_from_design(design, copies=2, parity="flow")
        lay.validate()
        assert lay.size == 2 * design.r
        assert lay.b == 2 * design.b

    def test_rejects_bad_copies(self):
        with pytest.raises(ValueError):
            layout_from_design(fano_plane(), copies=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            layout_from_design(fano_plane(), parity="random")
