"""Tests for the RAID5 baseline layout (Fig. 1)."""

import pytest

from repro.layouts import evaluate_layout, raid5_layout


class TestRaid5:
    @pytest.mark.parametrize("v", [2, 3, 4, 5, 8])
    def test_valid_and_balanced(self, v):
        lay = raid5_layout(v)
        lay.validate()
        m = evaluate_layout(lay)
        assert m.parity_balanced
        assert (m.k_min, m.k_max) == (v, v)

    def test_workload_is_total(self):
        m = evaluate_layout(raid5_layout(5))
        assert m.workload_max == 1.0  # rebuild reads all of every disk

    def test_rotations(self):
        lay = raid5_layout(4, rotations=3)
        lay.validate()
        assert lay.size == 12
        assert evaluate_layout(lay).parity_balanced

    def test_parity_walks_all_disks(self):
        lay = raid5_layout(4)
        parity_disks = {s.parity_unit[0] for s in lay.stripes}
        assert parity_disks == set(range(4))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            raid5_layout(1)
        with pytest.raises(ValueError):
            raid5_layout(4, rotations=0)
