"""Tests for flow-balanced layouts (Section 4 applications)."""

import pytest

from repro.designs import best_design, complete_design, fano_plane
from repro.flow import copies_for_perfect_balance
from repro.layouts import (
    evaluate_layout,
    holland_gibson_layout,
    minimum_balanced_layout,
    parity_counts,
    rebalance_parity,
    single_copy_layout,
    theorem9_layout,
)


class TestSingleCopy:
    @pytest.mark.parametrize(
        "design",
        [fano_plane(), best_design(9, 3), complete_design(6, 3), best_design(13, 4)],
        ids=["fano", "9-3", "complete-6-3", "13-4"],
    )
    def test_spread_at_most_one(self, design):
        lay = single_copy_layout(design)
        lay.validate()
        counts = parity_counts(lay)
        assert max(counts) - min(counts) <= 1

    def test_size_is_r(self):
        design = fano_plane()
        lay = single_copy_layout(design)
        assert lay.size == design.r

    def test_k_times_smaller_than_hg(self):
        design = fano_plane()
        assert holland_gibson_layout(design).size == design.k * single_copy_layout(design).size


class TestMinimumBalanced:
    @pytest.mark.parametrize(
        "design",
        [best_design(9, 3), complete_design(6, 3), fano_plane()],
        ids=["9-3", "complete-6-3", "fano"],
    )
    def test_perfectly_balanced(self, design):
        lay = minimum_balanced_layout(design)
        lay.validate()
        assert evaluate_layout(lay).parity_balanced

    def test_uses_lcm_copies(self):
        design = best_design(9, 3)  # b=12, v=9 -> 3 copies
        copies = copies_for_perfect_balance(design.b, design.v)
        assert copies == 3
        lay = minimum_balanced_layout(design)
        assert lay.b == design.b * copies

    def test_fewer_copies_cannot_balance(self):
        # Corollary 17's "only if": any parity choice over < lcm/b
        # copies leaves b*copies not divisible by v.
        design = best_design(9, 3)
        from repro.layouts import layout_from_design

        lay2 = layout_from_design(design, copies=2, parity="flow")
        assert not evaluate_layout(lay2).parity_balanced


class TestRebalance:
    def test_rebalance_keeps_data_placement(self):
        lay = theorem9_layout(16, 9, 3)
        re = rebalance_parity(lay)
        re.validate()
        for a, b in zip(lay.stripes, re.stripes):
            assert a.units == b.units

    def test_rebalance_mixed_stripe_sizes(self):
        # Theorem 9 layouts have stripes of k-i..k; Theorem 14 still
        # bounds per-disk counts by floor/ceil of the parity load.
        from math import ceil, floor

        from repro.flow import parity_loads

        lay = theorem9_layout(16, 9, 3)
        re = rebalance_parity(lay)
        loads = parity_loads([s.disks for s in re.stripes], re.v)
        counts = parity_counts(re)
        for d in range(re.v):
            assert floor(loads[d]) <= counts[d] <= ceil(loads[d])

    def test_rebalance_no_worse_than_original(self):
        lay = theorem9_layout(16, 9, 2)
        before = evaluate_layout(lay).parity_spread
        after = evaluate_layout(rebalance_parity(lay)).parity_spread
        assert after <= before
