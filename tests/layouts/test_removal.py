"""Tests for disk removal (Theorems 8 and 9)."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.designs import ring_design
from repro.layouts import (
    evaluate_layout,
    parity_counts,
    reconstruction_workloads,
    remove_disks,
    theorem8_layout,
    theorem9_layout,
)


class TestTheorem8:
    @pytest.mark.parametrize("v,k", [(5, 3), (7, 3), (8, 4), (9, 3), (9, 5), (13, 4)])
    def test_exact_metrics(self, v, k):
        lay = theorem8_layout(v, k)
        lay.validate()
        m = evaluate_layout(lay)
        assert lay.v == v - 1
        assert m.size == k * (v - 1)
        # Parity overhead (1/k)(v/(v-1)), perfectly balanced.
        assert m.parity_balanced
        assert m.parity_overhead_max == Fraction(v, k * (v - 1))
        # Workload (k-1)/(v-1) for every pair.
        w = reconstruction_workloads(lay)
        off = w[~np.eye(v - 1, dtype=bool)]
        assert np.allclose(off, (k - 1) / (v - 1))
        # Stripe sizes k and k-1.
        assert m.k_min == k - 1 and m.k_max == k

    def test_every_disk_gains_exactly_one_parity(self):
        v, k = 9, 3
        lay = theorem8_layout(v, k)
        assert parity_counts(lay) == [v] * (v - 1)

    def test_any_disk_removable(self):
        design = ring_design(7, 3)
        for victim in range(7):
            lay = remove_disks(design, [victim])
            lay.validate()
            assert evaluate_layout(lay).parity_balanced


class TestTheorem9:
    @pytest.mark.parametrize("v,k,i", [(16, 9, 2), (16, 9, 3), (13, 9, 2), (17, 16, 3), (25, 16, 4)])
    def test_parity_counts_within_band(self, v, k, i):
        lay = theorem9_layout(v, k, i)
        lay.validate()
        assert lay.v == v - i
        counts = parity_counts(lay)
        assert set(counts) <= {v + i - 1, v + i}, sorted(set(counts))
        m = evaluate_layout(lay)
        assert m.size == k * (v - 1)
        # "parity stripes of size between k and k-i" — when k = v-1 every
        # stripe misses only one disk, so the top of the band may not be
        # attained.
        assert k - i <= m.k_min <= m.k_max <= k

    def test_orphan_count_matches_paper(self):
        # i removed disks leave exactly i(i-1) orphans; total parity is
        # conserved: (v-i) disks share v(v-1) stripes... each stripe has
        # exactly one parity unit.
        v, k, i = 16, 9, 3
        lay = theorem9_layout(v, k, i)
        assert sum(parity_counts(lay)) == lay.b == v * (v - 1)

    def test_workload_unchanged_by_removal(self):
        v, k, i = 16, 9, 2
        lay = theorem9_layout(v, k, i)
        w = reconstruction_workloads(lay)
        off = w[~np.eye(v - i, dtype=bool)]
        assert np.allclose(off, (k - 1) / (v - 1))

    def test_precondition_enforced(self):
        # i(i-1) > k-i must be rejected.
        with pytest.raises(ValueError, match="precondition"):
            theorem9_layout(9, 3, 2)  # 2*1 > 3-2

    def test_i_leq_sqrt_k_always_accepted(self):
        # The paper's sufficient condition: i <= sqrt(k) implies the
        # matching precondition i(i-1) <= k-i.
        for k in (4, 9, 16, 25):
            i = math.isqrt(k)
            assert i * (i - 1) <= k - i


class TestRemoveDisksValidation:
    def test_duplicate_removed(self):
        with pytest.raises(ValueError, match="duplicate"):
            remove_disks(ring_design(9, 3), [1, 1])

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            remove_disks(ring_design(9, 3), [9])

    def test_empty(self):
        with pytest.raises(ValueError, match="no disks"):
            remove_disks(ring_design(9, 3), [])
