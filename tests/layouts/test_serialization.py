"""Tests for layout serialization."""

import json

import pytest

from repro.layouts import LayoutError, ring_layout, theorem9_layout
from repro.layouts.serialization import (
    layout_from_dict,
    layout_to_dict,
    load_layout,
    save_layout,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "layout",
        [ring_layout(7, 3), theorem9_layout(16, 9, 2)],
        ids=["ring", "thm9-mixed-k"],
    )
    def test_dict_roundtrip(self, layout):
        back = layout_from_dict(layout_to_dict(layout))
        assert back == layout

    def test_file_roundtrip(self, tmp_path):
        layout = ring_layout(7, 3)
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        assert load_layout(path) == layout

    def test_json_is_plain(self, tmp_path):
        layout = ring_layout(5, 3)
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == 1
        assert payload["v"] == 5


class TestRejection:
    def test_wrong_format_version(self):
        payload = layout_to_dict(ring_layout(5, 3))
        payload["format"] = 99
        with pytest.raises(LayoutError, match="format"):
            layout_from_dict(payload)

    def test_missing_key(self):
        payload = layout_to_dict(ring_layout(5, 3))
        del payload["stripes"]
        with pytest.raises(LayoutError, match="malformed"):
            layout_from_dict(payload)

    def test_corrupted_layout_rejected(self):
        payload = layout_to_dict(ring_layout(5, 3))
        payload["stripes"][0]["units"][0] = [0, 999]  # out of bounds
        with pytest.raises(LayoutError):
            layout_from_dict(payload)

    def test_duplicate_unit_rejected(self):
        payload = layout_to_dict(ring_layout(5, 3))
        payload["stripes"][0]["units"][0] = payload["stripes"][1]["units"][0]
        with pytest.raises(LayoutError):
            layout_from_dict(payload)
