"""Tests for layout serialization."""

import json

import pytest

from repro.designs import best_design
from repro.layouts import (
    LayoutError,
    holland_gibson_layout,
    raid5_layout,
    random_layout,
    ring_layout,
    stairway_layout,
    theorem9_layout,
)
from repro.layouts.serialization import (
    layout_from_dict,
    layout_to_dict,
    load_layout,
    save_layout,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "layout",
        [
            ring_layout(7, 3),
            theorem9_layout(16, 9, 2),
            raid5_layout(5),
            stairway_layout(10, 5, 4),
            holland_gibson_layout(best_design(9, 3)),
            random_layout(8, 4, stripes_per_disk=6, seed=3),
        ],
        ids=[
            "ring",
            "thm9-mixed-k",
            "raid5",
            "stairway",
            "holland_gibson",
            "randomized",
        ],
    )
    def test_dict_roundtrip(self, layout):
        back = layout_from_dict(layout_to_dict(layout))
        assert back == layout
        back.validate()

    def test_file_roundtrip(self, tmp_path):
        layout = ring_layout(7, 3)
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        assert load_layout(path) == layout

    def test_json_is_plain(self, tmp_path):
        layout = ring_layout(5, 3)
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == 1
        assert payload["v"] == 5


class TestRejection:
    def test_wrong_format_version(self):
        payload = layout_to_dict(ring_layout(5, 3))
        payload["format"] = 99
        with pytest.raises(LayoutError, match="format"):
            layout_from_dict(payload)

    def test_missing_key(self):
        payload = layout_to_dict(ring_layout(5, 3))
        del payload["stripes"]
        with pytest.raises(LayoutError, match="malformed"):
            layout_from_dict(payload)

    def test_corrupted_layout_rejected(self):
        payload = layout_to_dict(ring_layout(5, 3))
        payload["stripes"][0]["units"][0] = [0, 999]  # out of bounds
        with pytest.raises(LayoutError):
            layout_from_dict(payload)

    def test_duplicate_unit_rejected(self):
        payload = layout_to_dict(ring_layout(5, 3))
        payload["stripes"][0]["units"][0] = payload["stripes"][1]["units"][0]
        with pytest.raises(LayoutError):
            layout_from_dict(payload)

    def test_non_numeric_units_rejected(self):
        payload = layout_to_dict(ring_layout(5, 3))
        payload["stripes"][0]["units"][0] = ["zero", "one"]
        with pytest.raises(LayoutError, match="malformed"):
            layout_from_dict(payload)

    def test_stripes_of_wrong_shape_rejected(self):
        payload = layout_to_dict(ring_layout(5, 3))
        payload["stripes"] = [{"wrong": "schema"}]
        with pytest.raises(LayoutError, match="malformed"):
            layout_from_dict(payload)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "layout.json"
        path.write_text('{"format": 1, "v": 5}')
        with pytest.raises(LayoutError, match="malformed"):
            load_layout(path)
