"""Tests for layout metrics (Conditions 2-3 measurements)."""

from fractions import Fraction

import numpy as np

from repro.designs import fano_plane
from repro.layouts import (
    cocrossing_matrix,
    evaluate_layout,
    holland_gibson_layout,
    parity_counts,
    parity_overheads,
    raid5_layout,
    reconstruction_workloads,
    ring_layout,
)


class TestParityCounts:
    def test_raid5_rotation(self):
        lay = raid5_layout(4)
        assert parity_counts(lay) == [1, 1, 1, 1]

    def test_ring_layout_v_minus_one_each(self):
        lay = ring_layout(7, 3)
        assert parity_counts(lay) == [6] * 7

    def test_overheads(self):
        lay = ring_layout(5, 3)
        assert parity_overheads(lay) == [Fraction(1, 3)] * 5


class TestCocrossing:
    def test_raid5_all_stripes_cross_all(self):
        lay = raid5_layout(4)
        c = cocrossing_matrix(lay)
        assert np.all(c == 4)

    def test_ring_layout_lambda(self):
        # Every pair co-crosses in exactly λ = k(k-1) stripes.
        lay = ring_layout(7, 3)
        c = cocrossing_matrix(lay)
        off = c[~np.eye(7, dtype=bool)]
        assert np.all(off == 6)
        assert np.all(np.diag(c) == 3 * 6)  # r = k(v-1)

    def test_symmetric(self):
        lay = holland_gibson_layout(fano_plane())
        c = cocrossing_matrix(lay)
        assert np.array_equal(c, c.T)


class TestWorkloads:
    def test_raid5_reads_everything(self):
        lay = raid5_layout(5)
        w = reconstruction_workloads(lay)
        off = w[~np.eye(5, dtype=bool)]
        assert np.allclose(off, 1.0)

    def test_ring_layout_declustering_ratio(self):
        lay = ring_layout(9, 3)
        w = reconstruction_workloads(lay)
        off = w[~np.eye(9, dtype=bool)]
        assert np.allclose(off, (3 - 1) / (9 - 1))

    def test_diagonal_zero(self):
        w = reconstruction_workloads(ring_layout(5, 3))
        assert np.all(np.diag(w) == 0)


class TestEvaluate:
    def test_summary_fields(self):
        m = evaluate_layout(ring_layout(7, 3))
        assert m.v == 7
        assert m.size == 3 * 6
        assert m.b == 42
        assert (m.k_min, m.k_max) == (3, 3)
        assert m.parity_balanced
        assert m.workload_balanced
        assert m.parity_overhead_max == Fraction(1, 3)

    def test_summary_string(self):
        text = evaluate_layout(raid5_layout(4)).summary()
        assert "v=4" in text and "workload" in text

    def test_imbalance_detected(self):
        from repro.designs import best_design
        from repro.layouts import layout_from_design

        # Single copy of a design with v∤b: spread must be 1.
        lay = layout_from_design(best_design(9, 3), copies=1, parity="flow")
        m = evaluate_layout(lay)
        assert m.parity_spread == 1
        assert not m.parity_balanced


class TestSparseIncidence:
    """The CSR incidence must reproduce the dense-incidence reference."""

    def _dense_cocross(self, lay):
        import numpy as np

        m = np.zeros((lay.b, lay.v), dtype=np.int64)
        for si, stripe in enumerate(lay.stripes):
            for d, _ in stripe.units:
                m[si, d] = 1
        return m.T @ m

    def test_matches_dense_reference(self):
        import numpy as np

        from repro.layouts import (
            holland_gibson_layout,
            random_layout,
            ring_layout,
        )
        from repro.designs import best_design

        layouts = [
            ring_layout(9, 4),
            ring_layout(13, 3),
            random_layout(10, 4, stripes_per_disk=6, seed=1),
            holland_gibson_layout(best_design(7, 3)),
        ]
        for lay in layouts:
            assert np.array_equal(cocrossing_matrix(lay), self._dense_cocross(lay))

    def test_csr_shape_and_parity(self):
        import numpy as np

        from repro.layouts import ring_layout, stripe_incidence

        lay = ring_layout(9, 4)
        inc = stripe_incidence(lay)
        assert inc.nnz == lay.total_units()
        assert inc.stripe_lengths().tolist() == [s.size for s in lay.stripes]
        assert inc.parity_disks().tolist() == [
            s.parity_unit[0] for s in lay.stripes
        ]
        assert inc.parity_counts().tolist() == parity_counts(lay)
        # rebuild_scan covers exactly the crossing stripes, unit order.
        sids, foffs, indptr, sdisks, soffs = inc.rebuild_scan(0)
        expected = [sid for sid, s in enumerate(lay.stripes) if 0 in s.disks]
        assert sids.tolist() == expected
        for j, sid in enumerate(expected):
            stripe = lay.stripes[sid]
            lo, hi = indptr[j], indptr[j + 1]
            surv = list(zip(sdisks[lo:hi].tolist(), soffs[lo:hi].tolist()))
            assert surv == [(d, o) for d, o in stripe.units if d != 0]
            assert foffs[j] == next(o for d, o in stripe.units if d == 0)
        assert int(np.bincount(sdisks, minlength=lay.v)[0]) == 0
