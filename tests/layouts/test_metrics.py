"""Tests for layout metrics (Conditions 2-3 measurements)."""

from fractions import Fraction

import numpy as np

from repro.designs import fano_plane
from repro.layouts import (
    cocrossing_matrix,
    evaluate_layout,
    holland_gibson_layout,
    parity_counts,
    parity_overheads,
    raid5_layout,
    reconstruction_workloads,
    ring_layout,
)


class TestParityCounts:
    def test_raid5_rotation(self):
        lay = raid5_layout(4)
        assert parity_counts(lay) == [1, 1, 1, 1]

    def test_ring_layout_v_minus_one_each(self):
        lay = ring_layout(7, 3)
        assert parity_counts(lay) == [6] * 7

    def test_overheads(self):
        lay = ring_layout(5, 3)
        assert parity_overheads(lay) == [Fraction(1, 3)] * 5


class TestCocrossing:
    def test_raid5_all_stripes_cross_all(self):
        lay = raid5_layout(4)
        c = cocrossing_matrix(lay)
        assert np.all(c == 4)

    def test_ring_layout_lambda(self):
        # Every pair co-crosses in exactly λ = k(k-1) stripes.
        lay = ring_layout(7, 3)
        c = cocrossing_matrix(lay)
        off = c[~np.eye(7, dtype=bool)]
        assert np.all(off == 6)
        assert np.all(np.diag(c) == 3 * 6)  # r = k(v-1)

    def test_symmetric(self):
        lay = holland_gibson_layout(fano_plane())
        c = cocrossing_matrix(lay)
        assert np.array_equal(c, c.T)


class TestWorkloads:
    def test_raid5_reads_everything(self):
        lay = raid5_layout(5)
        w = reconstruction_workloads(lay)
        off = w[~np.eye(5, dtype=bool)]
        assert np.allclose(off, 1.0)

    def test_ring_layout_declustering_ratio(self):
        lay = ring_layout(9, 3)
        w = reconstruction_workloads(lay)
        off = w[~np.eye(9, dtype=bool)]
        assert np.allclose(off, (3 - 1) / (9 - 1))

    def test_diagonal_zero(self):
        w = reconstruction_workloads(ring_layout(5, 3))
        assert np.all(np.diag(w) == 0)


class TestEvaluate:
    def test_summary_fields(self):
        m = evaluate_layout(ring_layout(7, 3))
        assert m.v == 7
        assert m.size == 3 * 6
        assert m.b == 42
        assert (m.k_min, m.k_max) == (3, 3)
        assert m.parity_balanced
        assert m.workload_balanced
        assert m.parity_overhead_max == Fraction(1, 3)

    def test_summary_string(self):
        text = evaluate_layout(raid5_layout(4)).summary()
        assert "v=4" in text and "workload" in text

    def test_imbalance_detected(self):
        from repro.designs import best_design
        from repro.layouts import layout_from_design

        # Single copy of a design with v∤b: spread must be 1.
        lay = layout_from_design(best_design(9, 3), copies=1, parity="flow")
        m = evaluate_layout(lay)
        assert m.parity_spread == 1
        assert not m.parity_balanced
