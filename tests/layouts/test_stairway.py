"""Tests for the stairway transformation (Theorems 10-12)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.layouts import (
    evaluate_layout,
    find_stairway_plan,
    reconstruction_workloads,
    stairway_layout,
    stairway_params,
    theorem10_layout,
    theorem11_layout,
)


class TestStairwayParams:
    def test_plus_one(self):
        # v = q+1: d=1, w=0, c=v.
        assert stairway_params(6, 5) == (6, 0)

    def test_dividing(self):
        # v=12, q=9: d=3 divides 12 -> c=4, w=0.
        assert stairway_params(12, 9) == (4, 0)

    def test_wide_steps(self):
        # v=11, q=9: d=2, 11 = 5*2 + 1 -> c=5, w=1.
        assert stairway_params(11, 9) == (5, 1)

    def test_unsatisfiable(self):
        # v=15, q=8: d=7, 15 = 2*7 + 1 -> c=2, w=1 < 2 OK actually.
        assert stairway_params(15, 8) == (2, 1)
        # v=9, q=4: d=5 > v/2 -> c=1 < 2: degenerate.
        assert stairway_params(9, 4) is None

    def test_q_not_below_v(self):
        assert stairway_params(9, 9) is None
        assert stairway_params(9, 10) is None

    def test_conditions_8_and_9(self):
        for v in range(6, 120):
            for q in range(2, v):
                params = stairway_params(v, q)
                if params is not None:
                    c, w = params
                    d = v - q
                    assert v == c * d + w  # condition (8)
                    assert 0 <= w < c  # condition (9)


class TestFindStairwayPlan:
    def test_prefers_largest_q(self):
        plan = find_stairway_plan(33, 5)
        assert plan is not None
        assert plan.q == 32

    def test_respects_k(self):
        plan = find_stairway_plan(33, 20)
        assert plan is None or plan.q >= 20

    def test_k_too_big(self):
        assert find_stairway_plan(10, 10) is None

    def test_coverage_small(self):
        # Every v in a small sweep has a plan — both as pure existence
        # (the paper's claim) and for a realistic stripe size.
        for v in range(6, 300):
            assert find_stairway_plan(v) is not None, v
            assert find_stairway_plan(v, 3) is not None, v


class TestTheorem10:
    @pytest.mark.parametrize("q,k", [(4, 3), (5, 3), (7, 3), (8, 4), (9, 3), (9, 4)])
    def test_exact_metrics(self, q, k):
        lay = theorem10_layout(q, k)
        lay.validate()
        assert lay.v == q + 1
        m = evaluate_layout(lay)
        assert m.size == k * q * (q - 1)
        assert m.parity_balanced
        assert m.parity_overhead_max == Fraction(1, k)
        # Workload exactly (k-1)/q for every pair.
        w = reconstruction_workloads(lay)
        off = w[~np.eye(q + 1, dtype=bool)]
        assert np.allclose(off, (k - 1) / q)


class TestTheorem11:
    @pytest.mark.parametrize("v,q,k", [(8, 4, 3), (12, 9, 4), (16, 8, 4), (10, 5, 3), (18, 9, 3)])
    def test_metrics_within_band(self, v, q, k):
        lay = theorem11_layout(v, q, k)
        lay.validate()
        assert lay.v == v
        c = v // (v - q)
        m = evaluate_layout(lay)
        assert m.size == k * (c - 1) * (q - 1)
        assert m.parity_balanced
        assert m.parity_overhead_max == Fraction(1, k)
        lo = (c - 2) / (c - 1) * (k - 1) / (q - 1)
        hi = (k - 1) / (q - 1)
        assert lo - 1e-12 <= m.workload_min
        assert m.workload_max <= hi + 1e-12

    def test_rejects_non_dividing(self):
        with pytest.raises(ValueError, match="divides|Theorem 11"):
            theorem11_layout(11, 9, 3)


class TestTheorem12:
    @pytest.mark.parametrize("v,q,k", [(11, 9, 4), (13, 9, 3), (23, 19, 5), (14, 11, 4), (29, 25, 5)])
    def test_metrics_within_bands(self, v, q, k):
        lay = stairway_layout(v, q, k)
        lay.validate()
        assert lay.v == v
        c, w = stairway_params(v, q)
        assert w > 0, "these cases must exercise wide steps"
        m = evaluate_layout(lay)
        assert m.size == k * (c - 1) * (q - 1)
        denom = k * (c - 1) * (q - 1)
        lo_p = Fraction(1, k) + Fraction(w - 1, denom)
        hi_p = Fraction(1, k) + Fraction(w, denom)
        assert lo_p <= m.parity_overhead_min
        assert m.parity_overhead_max <= hi_p
        lo_w = (c - 2) / (c - 1) * (k - 1) / (q - 1)
        hi_w = (k - 1) / (q - 1)
        assert lo_w - 1e-12 <= m.workload_min
        assert m.workload_max <= hi_w + 1e-12
        # Stripe sizes k and k-1 (wide-step copies lost one disk).
        assert (m.k_min, m.k_max) == (k - 1, k)

    def test_wide_step_arrangement_is_free(self):
        # Theorem 12's bounds hold for any placement of the wide steps.
        v, q, k = 13, 9, 4
        c, w = stairway_params(v, q)
        for wide in ([0], [2], [c - 1]):
            lay = stairway_layout(v, q, k, wide_steps=wide)
            lay.validate()
            m = evaluate_layout(lay)
            denom = k * (c - 1) * (q - 1)
            assert m.parity_overhead_max <= Fraction(1, k) + Fraction(w, denom)

    def test_bad_wide_steps_rejected(self):
        with pytest.raises(ValueError, match="wide steps"):
            stairway_layout(11, 9, 4, wide_steps=[0, 1])  # w=1, not 2


class TestStairwayValidation:
    def test_rejects_composite_q(self):
        with pytest.raises(ValueError, match="prime power"):
            stairway_layout(13, 12, 3)

    def test_rejects_k_above_q(self):
        with pytest.raises(ValueError, match="exceeds"):
            stairway_layout(10, 9, 11)

    def test_rejects_unsatisfiable(self):
        with pytest.raises(ValueError, match="unsatisfiable"):
            stairway_layout(9, 4, 3)
