"""Tests for dual-parity (P+Q) declustered layouts."""

import itertools
import math

import pytest

from repro.flow import parity_loads
from repro.layouts import (
    parity_counts,
    raid5_layout,
    ring_layout,
    theorem10_layout,
    verify_double_fault_tolerance,
    with_dual_parity,
)


class TestWithDualParity:
    @pytest.mark.parametrize(
        "layout",
        [ring_layout(9, 4), ring_layout(7, 3), raid5_layout(6), theorem10_layout(5, 3)],
        ids=["ring-9-4", "ring-7-3", "raid5-6", "thm10-5-3"],
    )
    def test_valid_and_balanced(self, layout):
        dual = with_dual_parity(layout)
        dual.validate()
        counts = dual.q_counts()
        loads = parity_loads(
            [tuple(d for d in s.disks if d != s.parity_unit[0]) for s in layout.stripes],
            layout.v,
        )
        for d in range(layout.v):
            assert math.floor(loads[d]) <= counts[d] <= math.ceil(loads[d])

    def test_p_untouched(self):
        lay = ring_layout(9, 4)
        before = parity_counts(lay)
        with_dual_parity(lay)
        assert parity_counts(lay) == before

    def test_q_never_equals_p(self):
        dual = with_dual_parity(ring_layout(9, 4))
        for stripe, q in zip(dual.layout.stripes, dual.q_units):
            assert q != stripe.parity_unit

    def test_data_units_exclude_checks(self):
        dual = with_dual_parity(ring_layout(9, 4))
        for sid, stripe in enumerate(dual.layout.stripes):
            data = dual.data_units(sid)
            assert len(data) == stripe.size - 2
            assert stripe.parity_unit not in data
            assert dual.q_units[sid] not in data

    def test_storage_efficiency(self):
        dual = with_dual_parity(ring_layout(9, 4))
        assert dual.storage_efficiency() == pytest.approx(1 - 2 / 4)

    def test_rejects_two_unit_stripes(self):
        with pytest.raises(ValueError, match=">= 3"):
            with_dual_parity(raid5_layout(2))


class TestDoubleFaultTolerance:
    def test_ring_layout_sampled_pairs(self):
        dual = with_dual_parity(ring_layout(9, 4))
        assert verify_double_fault_tolerance(dual) is True

    def test_all_pairs_small_array(self):
        dual = with_dual_parity(ring_layout(7, 4))
        pairs = list(itertools.combinations(range(7), 2))
        assert verify_double_fault_tolerance(dual, failure_pairs=pairs) is True

    def test_mixed_stripe_sizes(self):
        # Theorem 8 layouts mix k and k-1 stripes; P+Q must still hold.
        from repro.layouts import theorem8_layout

        dual = with_dual_parity(theorem8_layout(9, 4))
        assert verify_double_fault_tolerance(dual) is True

    def test_deterministic_given_seed(self):
        dual = with_dual_parity(ring_layout(7, 4))
        assert verify_double_fault_tolerance(dual, seed=5) is True
        assert verify_double_fault_tolerance(dual, seed=6) is True
