"""Tests for the logical/physical address mapping (Condition 4)."""

import pytest

from repro.designs import fano_plane
from repro.layouts import AddressMapper, raid5_layout, ring_layout, single_copy_layout


class TestAddressMapper:
    def test_capacity(self):
        lay = ring_layout(5, 3)
        am = AddressMapper(lay)
        # v*size total units minus b parity units.
        assert am.capacity == 5 * 12 - 20

    def test_roundtrip_single_iteration(self):
        am = AddressMapper(ring_layout(5, 3))
        for lba in range(am.capacity):
            pu = am.logical_to_physical(lba)
            assert not pu.is_parity
            back, is_par = am.physical_to_logical(pu.disk, pu.offset)
            assert (back, is_par) == (lba, False)

    def test_roundtrip_multiple_iterations(self):
        am = AddressMapper(raid5_layout(4), iterations=3)
        assert am.capacity == 3 * (4 * 4 - 4)
        for lba in range(am.capacity):
            pu = am.logical_to_physical(lba)
            back, _ = am.physical_to_logical(pu.disk, pu.offset)
            assert back == lba

    def test_parity_units_have_no_lba(self):
        lay = raid5_layout(4)
        am = AddressMapper(lay)
        for stripe in lay.stripes:
            d, off = stripe.parity_unit
            lba, is_par = am.physical_to_logical(d, off)
            assert is_par and lba == -1

    def test_out_of_range(self):
        am = AddressMapper(raid5_layout(4))
        with pytest.raises(IndexError):
            am.logical_to_physical(am.capacity)
        with pytest.raises(IndexError):
            am.logical_to_physical(-1)
        with pytest.raises(IndexError):
            am.physical_to_logical(0, 99)

    def test_table_rows_is_layout_size(self):
        lay = ring_layout(7, 3)
        assert AddressMapper(lay).table_rows() == lay.size

    def test_stripe_units(self):
        lay = single_copy_layout(fano_plane())
        am = AddressMapper(lay, iterations=2)
        for gs in range(lay.b * 2):
            units = am.stripe_units(gs)
            assert len(units) == 3
            assert sum(u.is_parity for u in units) == 1
            for u in units:
                assert am.stripe_of(u.disk, u.offset) == gs

    def test_iteration_offset_shift(self):
        lay = raid5_layout(4)
        am = AddressMapper(lay, iterations=2)
        per_iter = am.data_units_per_iteration
        pu0 = am.logical_to_physical(0)
        pu1 = am.logical_to_physical(per_iter)
        assert pu1.disk == pu0.disk
        assert pu1.offset == pu0.offset + lay.size

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            AddressMapper(raid5_layout(4), iterations=0)
