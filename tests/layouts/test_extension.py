"""Tests for extendible layouts (Section 5 extension)."""

import pytest

from repro.layouts import (
    evaluate_layout,
    extendible_family,
    movement_cost,
    raid5_layout,
    ring_layout,
)


class TestMovementCost:
    def test_identical_layouts_cost_nothing(self):
        lay = ring_layout(9, 3)
        cost = movement_cost(lay, lay)
        assert cost["data_moved"] == 0
        assert cost["role_changed"] == 0
        assert cost["common_units"] == lay.total_units()

    def test_unrelated_layouts_cost_plenty(self):
        a = ring_layout(9, 3)
        b = raid5_layout(9, rotations=8)
        cost = movement_cost(a, b)
        assert cost["data_moved"] > 0

    def test_rebalanced_parity_is_role_change_only(self):
        from repro.layouts import rebalance_parity, theorem9_layout

        lay = theorem9_layout(16, 9, 2)
        re = rebalance_parity(lay)
        cost = movement_cost(lay, re)
        assert cost["data_moved"] == 0
        # Any difference is parity-role only.
        assert cost["role_changed"] >= 0


class TestExtendibleFamily:
    def test_zero_data_movement(self):
        family = extendible_family(16, 9, steps=3)
        assert [s.v for s in family] == [13, 14, 15, 16]
        for step in family:
            step.layout.validate()
            assert step.data_moved == 0  # the headline property

    def test_role_changes_are_linear_not_global(self):
        family = extendible_family(16, 9, steps=3)
        for step in family[1:]:
            # Re-adding a disk re-routes O(v) parity units, a vanishing
            # fraction of the v * k(v-1) units in the layout.
            assert 0 < step.role_changed <= 2 * step.v
            assert step.role_changed < step.layout.total_units() // 10

    def test_family_members_are_proper_layouts(self):
        family = extendible_family(13, 4, steps=1)
        for step in family:
            m = evaluate_layout(step.layout)
            assert m.size == 4 * 12  # constant size across the family

    def test_rejects_composite_v_max(self):
        with pytest.raises(ValueError, match="prime power"):
            extendible_family(12, 3, steps=1)

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError, match="at least one"):
            extendible_family(13, 4, steps=0)

    def test_too_many_steps_rejected_by_theorem9(self):
        with pytest.raises(ValueError, match="precondition"):
            extendible_family(13, 4, steps=3)
