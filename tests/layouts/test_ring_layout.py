"""Tests for ring-based layouts (Section 3 intro)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.designs import ring_design
from repro.layouts import (
    evaluate_layout,
    parity_counts,
    reconstruction_workloads,
    ring_disk_stripes,
    ring_layout,
    ring_layout_from_design,
)


class TestRingLayout:
    @pytest.mark.parametrize("v,k", [(4, 3), (5, 3), (7, 3), (8, 4), (9, 3), (9, 5), (13, 4), (12, 3)])
    def test_valid_with_exact_metrics(self, v, k):
        lay = ring_layout(v, k)
        lay.validate()
        m = evaluate_layout(lay)
        assert m.size == k * (v - 1)
        assert m.parity_overhead_max == Fraction(1, k)
        assert m.parity_balanced
        w = reconstruction_workloads(lay)
        off = w[~np.eye(v, dtype=bool)]
        assert np.allclose(off, (k - 1) / (v - 1))

    def test_no_replication(self):
        # b = v(v-1): one copy of the design, unlike HG's k copies.
        lay = ring_layout(7, 3)
        assert lay.b == 7 * 6

    def test_parity_on_disk_x(self):
        design = ring_design(5, 3)
        stripes = ring_disk_stripes(design)
        index = design.ring.index
        for (x, _y), (_disks, parity) in zip(design.pairs, stripes):
            assert parity == index(x)

    def test_each_disk_parity_v_minus_1(self):
        lay = ring_layout(8, 4)
        assert parity_counts(lay) == [7] * 8

    def test_from_design_equivalent(self):
        design = ring_design(7, 3)
        a = ring_layout_from_design(design)
        b = ring_layout(7, 3)
        assert a.stripes == b.stripes

    def test_k_above_capacity_rejected(self):
        with pytest.raises(ValueError):
            ring_layout(6, 3)

    def test_smaller_than_holland_gibson_by_factor_k(self):
        # HG on the raw ring design would be k * r = k^2 (v-1).
        v, k = 9, 3
        lay = ring_layout(v, k)
        assert lay.size * k == k * k * (v - 1)
