"""Tests for Conditions 5-6 (Stockmeyer's sequential metrics)."""

from repro.designs import fano_plane
from repro.layouts import (
    raid5_layout,
    ring_layout,
    sequential_metrics,
    single_copy_layout,
)


class TestCondition5:
    def test_raid5_large_write_optimal(self):
        # Stripe-major numbering puts each stripe's data contiguously.
        m = sequential_metrics(raid5_layout(5))
        assert m.large_write_fraction == 1.0
        assert m.large_write_optimal

    def test_ring_layout_large_write_optimal(self):
        m = sequential_metrics(ring_layout(9, 3))
        assert m.large_write_optimal

    def test_fraction_bounds(self):
        m = sequential_metrics(single_copy_layout(fano_plane()))
        assert 0.0 <= m.large_write_fraction <= 1.0


class TestCondition6:
    def test_raid5_nearly_maximal(self):
        m = sequential_metrics(raid5_layout(5))
        # v consecutive units span at least v-1 disks under rotation.
        assert m.min_parallelism >= 4
        assert m.max_parallelism == 5

    def test_declustered_tradeoff(self):
        # Stockmeyer's observation: declustered layouts sacrifice some
        # sequential parallelism — a v-window need not hit all v disks.
        m = sequential_metrics(ring_layout(9, 3))
        assert m.min_parallelism < 9
        assert m.min_parallelism >= 3

    def test_bounds_consistent(self):
        for lay in (raid5_layout(4), ring_layout(7, 3)):
            m = sequential_metrics(lay)
            assert 1 <= m.min_parallelism <= m.max_parallelism <= lay.v

    def test_tiny_capacity_handled(self):
        m = sequential_metrics(single_copy_layout(fano_plane()))
        assert m.v == 7
        assert m.min_parallelism >= 1
