"""Identity-keyed caching: the stripe-incidence and mapper registries
must not hash layouts on the probe path."""

import numpy as np
import pytest

from repro.core import clear_registry, get_layout, get_mapper, registry_stats
from repro.layouts import ring_layout, stripe_incidence
from repro.layouts.identity_cache import IdentityLRU


class TestIdentityLRU:
    def test_hit_returns_same_object_without_rebuilding(self):
        calls = []
        cache = IdentityLRU(lambda obj: calls.append(obj) or len(calls))
        key = object()
        assert cache(key) == 1
        assert cache(key) == 1
        assert len(calls) == 1
        assert cache.cache_info().hits == 1
        assert cache.cache_info().misses == 1

    def test_distinct_objects_distinct_entries(self):
        cache = IdentityLRU(lambda obj: object())
        a, b = object(), object()
        assert cache(a) is cache(a)
        assert cache(a) is not cache(b)

    def test_extra_args_part_of_key(self):
        cache = IdentityLRU(lambda obj, n: (id(obj), n))
        key = object()
        assert cache(key, 1) != cache(key, 2)
        assert cache.cache_info().currsize == 2

    def test_lru_eviction(self):
        cache = IdentityLRU(lambda obj: id(obj), maxsize=2)
        keys = [object() for _ in range(3)]
        for k in keys:
            cache(k)
        assert cache.cache_info().currsize == 2
        cache(keys[0])  # evicted -> rebuild
        assert cache.cache_info().misses == 4

    def test_clear_resets(self):
        cache = IdentityLRU(lambda obj: 1)
        cache(object())
        cache.cache_clear()
        info = cache.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_entry_pins_key_object(self):
        """The cache must hold the keyed object: otherwise a collected
        layout's id could be reused and alias a stale entry."""
        cache = IdentityLRU(lambda obj: "v")
        cache(object())  # the temporary must stay reachable via the cache
        (anchor, value), = cache._entries.values()
        assert value == "v"
        assert anchor is not None

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            IdentityLRU(lambda obj: 1, maxsize=0)


class TestIncidenceIdentityCache:
    def test_same_layout_object_cached(self):
        stripe_incidence.cache_clear()
        lay = ring_layout(9, 3)
        a = stripe_incidence(lay)
        b = stripe_incidence(lay)
        assert a is b
        assert stripe_incidence.cache_info().hits >= 1

    def test_equal_but_distinct_layouts_build_separately(self):
        """Identity keying: equality no longer implies sharing (the
        registry canonicalizes layouts, so this costs nothing in
        practice but must stay correct)."""
        stripe_incidence.cache_clear()
        a = ring_layout(9, 3)
        b = ring_layout(9, 3)
        assert a == b and a is not b
        inc_a = stripe_incidence(a)
        inc_b = stripe_incidence(b)
        assert inc_a is not inc_b
        assert (inc_a.disks == inc_b.disks).all()
        assert (inc_a.indptr == inc_b.indptr).all()

    def test_probe_does_not_hash_layout(self):
        class Unhashable(Exception):
            pass

        lay = ring_layout(9, 3)
        inc1 = stripe_incidence(lay)
        original_hash = type(lay).__hash__
        try:
            def boom(self):
                raise Unhashable()

            type(lay).__hash__ = boom
            assert stripe_incidence(lay) is inc1  # pure identity probe
        finally:
            type(lay).__hash__ = original_hash


class TestMapperIdentityCache:
    def test_registry_contract_preserved(self):
        clear_registry()
        lay = get_layout(9, 3)
        assert get_mapper(lay) is get_mapper(lay)
        assert get_mapper(lay, iterations=2) is not get_mapper(lay)
        assert (
            get_mapper(lay, iterations=2).capacity
            == 2 * get_mapper(lay).capacity
        )

    def test_equal_but_distinct_layouts_share_one_mapper(self):
        """The mapper cache is two-level: identity front over a
        value-keyed backing, so equal layouts still share tables (one
        hash per distinct object, none per probe)."""
        clear_registry()
        a = ring_layout(9, 3)
        b = ring_layout(9, 3)
        assert a == b and a is not b
        assert get_mapper(a) is get_mapper(b)

    def test_registry_stats_shape(self):
        clear_registry()
        lay = get_layout(9, 3)
        get_mapper(lay)
        get_mapper(lay)
        stats = registry_stats()
        assert set(stats) == {"plan", "layout", "mapper", "incidence"}
        hits, misses, maxsize, currsize = stats["mapper"]
        assert hits >= 1 and misses >= 1 and currsize >= 1

    def test_mapper_tables_correct_after_identity_swap(self):
        clear_registry()
        lay = get_layout(9, 3)
        m = get_mapper(lay)
        lbas = np.arange(min(64, m.capacity), dtype=np.int64)
        disks, offsets = m.map_batch(lbas)
        for i, lba in enumerate(lbas.tolist()):
            pu = m.logical_to_physical(lba)
            assert (pu.disk, pu.offset) == (int(disks[i]), int(offsets[i]))
