"""Tests for Condition 4 feasibility predictions."""

import math

from repro.layouts import (
    FEASIBLE_SIZE_LIMIT,
    best_feasible_method,
    holland_gibson_layout,
    is_feasible_size,
    predicted_sizes,
    ring_layout,
    single_copy_layout,
    stairway_layout,
    theorem10_layout,
)
from repro.designs import best_design


class TestIsFeasible:
    def test_limit(self):
        assert is_feasible_size(FEASIBLE_SIZE_LIMIT)
        assert not is_feasible_size(FEASIBLE_SIZE_LIMIT + 1)

    def test_custom_limit(self):
        assert is_feasible_size(50, limit=50)
        assert not is_feasible_size(51, limit=50)


class TestPredictedSizes:
    def test_predictions_match_built_layouts(self):
        v, k = 9, 3
        sizes = predicted_sizes(v, k)
        assert sizes["ring"] == ring_layout(v, k).size
        design = best_design(v, k)
        assert sizes["hg_best"] == holland_gibson_layout(design).size
        assert sizes["flow_best"] == single_copy_layout(design).size

    def test_stairway_prediction_matches(self):
        v, k = 11, 4
        sizes = predicted_sizes(v, k)
        assert sizes["stairway"] == stairway_layout(11, 9, 4).size

    def test_thm10_prediction(self):
        sizes = predicted_sizes(6, 3)
        assert sizes["stairway"] == theorem10_layout(5, 3).size

    def test_hg_complete_formula(self):
        sizes = predicted_sizes(10, 4)
        assert sizes["hg_complete"] == 4 * math.comb(9, 3)

    def test_ring_absent_when_k_exceeds_capacity(self):
        assert "ring" not in predicted_sizes(12, 4)
        assert "ring" in predicted_sizes(12, 3)

    def test_flow_smaller_than_hg(self):
        for v, k in [(9, 3), (13, 4), (8, 4)]:
            sizes = predicted_sizes(v, k)
            assert sizes["flow_best"] * k == sizes["hg_best"]


class TestBestFeasibleMethod:
    def test_picks_smallest(self):
        method, size = best_feasible_method(9, 3)
        sizes = predicted_sizes(9, 3)
        assert size == min(sizes.values())
        assert sizes[method] == size

    def test_none_when_everything_too_big(self):
        assert best_feasible_method(9, 3, limit=1) is None

    def test_large_v_complete_infeasible_but_paper_methods_ok(self):
        # The paper's motivating case: complete designs explode, the new
        # constructions stay tiny.
        v, k = 101, 5
        sizes = predicted_sizes(v, k)
        assert sizes["hg_complete"] > FEASIBLE_SIZE_LIMIT
        assert sizes["ring"] <= FEASIBLE_SIZE_LIMIT
        assert best_feasible_method(v, k) is not None
