"""Tests for the randomized layout baseline."""

import numpy as np
import pytest

from repro.layouts import (
    cocrossing_matrix,
    evaluate_layout,
    parity_counts,
    random_layout,
    ring_layout,
)


class TestRandomLayout:
    @pytest.mark.parametrize("v,k,r", [(8, 4, 16), (12, 4, 40), (9, 3, 24), (10, 5, 20)])
    def test_valid_and_rectangular(self, v, k, r):
        lay = random_layout(v, k, stripes_per_disk=r, seed=7)
        lay.validate()
        assert lay.size == r
        assert lay.b == v * r // k

    def test_deterministic_given_seed(self):
        a = random_layout(8, 4, stripes_per_disk=16, seed=3)
        b = random_layout(8, 4, stripes_per_disk=16, seed=3)
        assert a.stripes == b.stripes

    def test_different_seeds_differ(self):
        a = random_layout(8, 4, stripes_per_disk=16, seed=3)
        b = random_layout(8, 4, stripes_per_disk=16, seed=4)
        assert a.stripes != b.stripes

    def test_parity_flow_balanced(self):
        lay = random_layout(12, 4, stripes_per_disk=40, seed=2)
        counts = parity_counts(lay)
        assert max(counts) - min(counts) <= 1

    def test_rejects_non_dividing(self):
        with pytest.raises(ValueError, match="divide"):
            random_layout(9, 4, stripes_per_disk=10)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            random_layout(4, 5, stripes_per_disk=5)

    def test_workload_fluctuates_around_expectation(self):
        # The structural contrast with BIBD layouts: random placement has
        # nonzero workload spread; the exact layout has none.
        v, k = 13, 4
        exact = ring_layout(v, k)
        rand = random_layout(v, k, stripes_per_disk=exact.size, seed=1)
        me = evaluate_layout(exact)
        mr = evaluate_layout(rand)
        assert me.workload_balanced
        assert mr.workload_max > mr.workload_min
        # But the mean co-crossing matches λ in expectation.
        c = cocrossing_matrix(rand).astype(float)
        off = c[~np.eye(v, dtype=bool)]
        expected_lambda = exact.b * k * (k - 1) / (v * (v - 1))
        assert abs(off.mean() - expected_lambda) / expected_lambda < 0.05
