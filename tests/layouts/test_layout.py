"""Tests for the Layout type, validation, and materialization."""

import pytest

from repro.layouts import Layout, LayoutError, Stripe, materialize


def tiny_layout():
    """2 stripes over 2 disks, 2 units each."""
    return Layout(
        v=2,
        size=2,
        stripes=(
            Stripe(units=((0, 0), (1, 0)), parity_index=0),
            Stripe(units=((0, 1), (1, 1)), parity_index=1),
        ),
    )


class TestStripe:
    def test_accessors(self):
        s = Stripe(units=((0, 0), (1, 3), (2, 1)), parity_index=1)
        assert s.size == 3
        assert s.parity_unit == (1, 3)
        assert s.disks == (0, 1, 2)
        assert s.data_units() == ((0, 0), (2, 1))


class TestValidate:
    def test_valid(self):
        tiny_layout().validate()

    def test_stripe_crossing_disk_twice(self):
        lay = Layout(
            v=2,
            size=2,
            stripes=(
                Stripe(units=((0, 0), (0, 1)), parity_index=0),
                Stripe(units=((1, 0), (1, 1)), parity_index=0),
            ),
        )
        with pytest.raises(LayoutError, match="Condition 1"):
            lay.validate()

    def test_unit_in_two_stripes(self):
        lay = Layout(
            v=2,
            size=1,
            stripes=(
                Stripe(units=((0, 0), (1, 0)), parity_index=0),
                Stripe(units=((0, 0), (1, 0)), parity_index=1),
            ),
        )
        with pytest.raises(LayoutError, match="more than one"):
            lay.validate()

    def test_uncovered_units(self):
        lay = Layout(
            v=2,
            size=2,
            stripes=(Stripe(units=((0, 0), (1, 0)), parity_index=0),),
        )
        with pytest.raises(LayoutError, match="covers"):
            lay.validate()

    def test_out_of_bounds_unit(self):
        lay = Layout(
            v=2,
            size=1,
            stripes=(Stripe(units=((0, 0), (1, 5)), parity_index=0),),
        )
        with pytest.raises(LayoutError, match="out of bounds"):
            lay.validate()

    def test_bad_parity_index(self):
        lay = Layout(
            v=2,
            size=1,
            stripes=(Stripe(units=((0, 0), (1, 0)), parity_index=7),),
        )
        with pytest.raises(LayoutError, match="parity index"):
            lay.validate()

    def test_single_unit_stripe_rejected(self):
        lay = Layout(v=2, size=1, stripes=(Stripe(units=((0, 0),), parity_index=0),))
        with pytest.raises(LayoutError, match="fewer than 2"):
            lay.validate()


class TestAccessors:
    def test_totals(self):
        lay = tiny_layout()
        assert lay.b == 2
        assert lay.total_units() == 4
        assert lay.stripe_sizes() == (2, 2)

    def test_unit_to_stripe(self):
        table = tiny_layout().unit_to_stripe()
        assert table[(0, 0)] == (0, True)
        assert table[(1, 1)] == (1, True)
        assert table[(1, 0)] == (0, False)

    def test_grid(self):
        grid = tiny_layout().grid()
        assert grid[0][0] == (0, True)
        assert grid[1][1] == (1, True)

    def test_render_mentions_parity(self):
        text = tiny_layout().render()
        assert "P0" in text and "S1" in text


class TestMaterialize:
    def test_offsets_assigned_in_order(self):
        lay = materialize(3, [((0, 1, 2), 0), ((0, 1, 2), 1), ((0, 1, 2), 2)])
        lay.validate()
        assert lay.size == 3
        assert lay.stripes[1].units == ((0, 1), (1, 1), (2, 1))

    def test_parity_disk_must_be_member(self):
        with pytest.raises(LayoutError, match="parity disk"):
            materialize(3, [((0, 1), 2)])

    def test_ragged_rejected(self):
        with pytest.raises(LayoutError, match="ragged"):
            materialize(3, [((0, 1), 0), ((0, 1), 1), ((0, 2), 0)])

    def test_disk_out_of_range(self):
        with pytest.raises(LayoutError, match="out of range"):
            materialize(2, [((0, 5), 0)])
