"""Tests for distributed sparing (Section 5 extension)."""

import math

import pytest

from repro.flow import parity_loads
from repro.layouts import (
    parity_counts,
    raid5_layout,
    ring_layout,
    single_copy_layout,
    with_distributed_sparing,
)
from repro.designs import best_design


class TestDistributedSparing:
    @pytest.mark.parametrize(
        "layout",
        [ring_layout(9, 3), ring_layout(8, 4), raid5_layout(6), single_copy_layout(best_design(13, 4))],
        ids=["ring-9-3", "ring-8-4", "raid5-6", "flow-13-4"],
    )
    def test_valid_and_balanced(self, layout):
        sp = with_distributed_sparing(layout)
        sp.validate()
        counts = sp.spare_counts()
        # Theorem 14 bound over the (k-1)-unit candidate sets.
        loads = parity_loads(
            [tuple(d for d in s.disks if d != s.parity_unit[0]) for s in layout.stripes],
            layout.v,
        )
        for d in range(layout.v):
            assert math.floor(loads[d]) <= counts[d] <= math.ceil(loads[d])

    def test_spare_never_parity(self):
        sp = with_distributed_sparing(ring_layout(9, 3))
        for stripe, spare in zip(sp.layout.stripes, sp.spare_units):
            assert spare != stripe.parity_unit
            assert spare in stripe.units

    def test_parity_untouched(self):
        lay = ring_layout(9, 3)
        before = parity_counts(lay)
        with_distributed_sparing(lay)
        assert parity_counts(lay) == before

    def test_data_fraction(self):
        lay = ring_layout(9, 3)
        sp = with_distributed_sparing(lay)
        # k=3: one data unit left per stripe -> 1/3 of the array.
        assert sp.data_fraction() == pytest.approx(1 / 3)

    def test_rejects_two_unit_stripes(self):
        with pytest.raises(ValueError, match="at least"):
            with_distributed_sparing(raid5_layout(2))


class TestSparingRebuild:
    def test_distributed_faster_than_dedicated(self):
        from repro.sim import simulate_rebuild

        lay = ring_layout(9, 4)
        sp = with_distributed_sparing(lay)
        dedicated = simulate_rebuild(lay, failed_disk=0, parallelism=8)
        distributed = simulate_rebuild(lay, failed_disk=0, parallelism=8, sparing=sp)
        # The dedicated spare disk is the write bottleneck; spreading the
        # writes must not be slower.
        assert distributed.duration_ms < dedicated.duration_ms

    def test_distributed_rebuild_verified(self):
        from repro.sim import simulate_rebuild

        lay = ring_layout(9, 4)
        sp = with_distributed_sparing(lay)
        rep = simulate_rebuild(lay, failed_disk=2, sparing=sp, verify_data=True)
        assert rep.data_verified is True

    def test_spare_map_avoids_failed_disk(self):
        from repro.sim import spare_map_for_failure

        lay = ring_layout(9, 4)
        sp = with_distributed_sparing(lay)
        for failed in range(9):
            smap = spare_map_for_failure(sp, failed)
            crossing = {
                sid for sid, s in enumerate(lay.stripes) if failed in s.disks
            }
            assert set(smap) == crossing
            for sid, (d, _off) in smap.items():
                assert d != failed
            # Each borrowed spare is used at most once.
            targets = list(smap.values())
            assert len(targets) == len(set(targets))
