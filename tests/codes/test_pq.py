"""Tests for the P+Q double-erasure code."""

import itertools

import numpy as np
import pytest

from repro.codes import PQCode


def random_data(m, width=24, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(m, width), dtype=np.uint8)


class TestEncode:
    def test_p_is_xor(self):
        code = PQCode(4)
        data = random_data(4)
        p, _ = code.encode(data)
        assert np.array_equal(p, np.bitwise_xor.reduce(data, axis=0))

    def test_single_unit_stripe(self):
        code = PQCode(1)
        data = random_data(1)
        p, q = code.encode(data)
        assert np.array_equal(p, data[0])
        assert np.array_equal(q, data[0])  # c_0 = g^0 = 1

    def test_shape_validation(self):
        code = PQCode(3)
        with pytest.raises(ValueError, match="shape"):
            code.encode(random_data(4))
        with pytest.raises(ValueError, match="shape"):
            code.encode(random_data(3).astype(np.uint16))

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            PQCode(256)
        with pytest.raises(ValueError):
            PQCode(0)


class TestReconstruct:
    @pytest.mark.parametrize("m", [2, 3, 5, 8])
    def test_all_double_data_erasures(self, m):
        code = PQCode(m)
        data = random_data(m, seed=m)
        p, q = code.encode(data)
        for i, j in itertools.combinations(range(m), 2):
            broken = data.copy()
            broken[[i, j]] = 0
            repaired = code.reconstruct(broken, p, q, [i, j])
            assert np.array_equal(repaired, data), (i, j)

    @pytest.mark.parametrize("m", [2, 5])
    def test_single_data_erasure_via_p(self, m):
        code = PQCode(m)
        data = random_data(m, seed=1)
        p, q = code.encode(data)
        for i in range(m):
            broken = data.copy()
            broken[i] = 0
            assert np.array_equal(code.reconstruct(broken, p, q, [i]), data)

    def test_data_plus_p_lost(self):
        code = PQCode(4)
        data = random_data(4, seed=2)
        _, q = code.encode(data)
        broken = data.copy()
        broken[2] = 0
        assert np.array_equal(code.reconstruct(broken, None, q, [2]), data)

    def test_data_plus_q_lost(self):
        code = PQCode(4)
        data = random_data(4, seed=3)
        p, _ = code.encode(data)
        broken = data.copy()
        broken[0] = 0
        assert np.array_equal(code.reconstruct(broken, p, None, [0]), data)

    def test_p_and_q_lost_is_trivial(self):
        code = PQCode(3)
        data = random_data(3, seed=4)
        assert np.array_equal(code.reconstruct(data, None, None, []), data)

    def test_three_erasures_rejected(self):
        code = PQCode(5)
        data = random_data(5)
        p, _ = code.encode(data)
        with pytest.raises(ValueError, match="exceed"):
            code.reconstruct(data, p, None, [0, 1])
        with pytest.raises(ValueError, match="exceed"):
            code.reconstruct(data, None, None, [0])

    def test_two_data_without_p_rejected(self):
        # Two data rows plus a missing P is three erasures in total.
        code = PQCode(5)
        data = random_data(5)
        _, q = code.encode(data)
        with pytest.raises(ValueError, match="exceed"):
            code.reconstruct(data, None, q, [0, 1])

    def test_invalid_missing_rows(self):
        code = PQCode(3)
        data = random_data(3)
        p, q = code.encode(data)
        with pytest.raises(ValueError, match="invalid"):
            code.reconstruct(data, p, q, [0, 0])
        with pytest.raises(ValueError, match="invalid"):
            code.reconstruct(data, p, q, [9])

    def test_corrupted_q_detected_by_mismatch(self):
        # Not a correction guarantee — just that reconstruction uses Q.
        code = PQCode(3)
        data = random_data(3, seed=5)
        p, q = code.encode(data)
        broken = data.copy()
        broken[[0, 1]] = 0
        bad_q = q.copy()
        bad_q[0] ^= 0xFF
        repaired = code.reconstruct(broken, p, bad_q, [0, 1])
        assert not np.array_equal(repaired, data)
