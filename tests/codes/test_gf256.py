"""Tests for vectorized GF(2^8) arithmetic."""

import numpy as np
import pytest

from repro.codes import GF256


@pytest.fixture(scope="module")
def gf():
    return GF256()


class TestGF256:
    def test_mul_matches_field(self, gf):
        f = gf.field
        rng = np.random.default_rng(1)
        for _ in range(200):
            a, b = int(rng.integers(0, 256)), int(rng.integers(0, 256))
            assert int(gf.mul(a, b)) == f.mul(a, b)

    def test_mul_vectorized(self, gf):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, size=100, dtype=np.uint8)
        b = rng.integers(0, 256, size=100, dtype=np.uint8)
        out = gf.mul(a, b)
        for i in range(100):
            assert int(out[i]) == gf.field.mul(int(a[i]), int(b[i]))

    def test_mul_by_zero(self, gf):
        a = np.arange(256, dtype=np.uint8)
        assert np.all(gf.mul(a, 0) == 0)
        assert np.all(gf.mul(0, a) == 0)

    def test_mul_by_one_identity(self, gf):
        a = np.arange(256, dtype=np.uint8)
        assert np.array_equal(gf.mul(a, 1), a)

    def test_inverse(self, gf):
        for a in range(1, 256):
            assert int(gf.mul(a, gf.inverse(a))) == 1

    def test_inverse_of_zero_raises(self, gf):
        with pytest.raises(ZeroDivisionError):
            gf.inverse(0)

    def test_div_roundtrip(self, gf):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, size=64, dtype=np.uint8)
        for b in (1, 2, 77, 255):
            assert np.array_equal(gf.mul(gf.div(a, b), b), a)

    def test_powers_distinct(self, gf):
        # g^0..g^254 are the 255 distinct nonzero elements.
        powers = {gf.power(i) for i in range(255)}
        assert len(powers) == 255
        assert 0 not in powers

    def test_broadcast_scalar_with_matrix(self, gf):
        m = np.full((4, 8), 7, dtype=np.uint8)
        out = gf.mul(3, m)
        assert out.shape == (4, 8)
        assert np.all(out == gf.field.mul(3, 7))
