"""Live volume migration: planning, zero-lost serving through a
grow/shrink, bit-for-bit verification, drain/cutover bookkeeping, and
the shared admission budget."""

import numpy as np
import pytest

from repro.service import (
    AdmissionController,
    Fleet,
    FleetScenario,
    MigrationCoordinator,
    plan_migration,
    run_fleet_scenario,
)
from repro.sim import WorkloadConfig
from repro.sim.compile import generate_request_stream


def _grown_fleet(
    start=4,
    target=8,
    *,
    placement="weighted",
    read_fraction=0.7,
    duration=600.0,
    at_ms=150.0,
    dataplane=True,
    seed=0,
    admission=2,
):
    fleet = Fleet(
        start, 9, 3, seed=seed, dataplane=dataplane, placement=placement
    )
    co = MigrationCoordinator(fleet, target, at_ms=at_ms, admission=admission)
    co.arm()
    cfg = WorkloadConfig(
        interarrival_ms=0.5, read_fraction=read_fraction, seed=11
    )
    stream = generate_request_stream(cfg, duration, fleet.capacity)
    report = fleet.serve_stream(*stream)
    return fleet, co, report


class TestAdmissionController:
    def test_caps_concurrency_and_runs_fifo(self):
        gate = AdmissionController(2)
        started = []
        for i in range(4):
            gate.submit(lambda i=i: started.append(i))
        assert started == [0, 1]
        assert gate.queued == 2
        gate.release()
        assert started == [0, 1, 2]
        gate.release()
        gate.release()
        assert started == [0, 1, 2, 3]

    def test_invalid_slots_and_release(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        gate = AdmissionController(1)
        with pytest.raises(RuntimeError):
            gate.release()


class TestMigrationPlan:
    def test_plan_matches_shard_map_moved_set(self):
        fleet = Fleet(4, 9, 3, seed=0)
        plan = plan_migration(fleet, 8)
        moved = fleet.shard_map.moved_volumes(plan.target_map)
        assert [m.volume for m in plan.moves] == moved.tolist()
        assert plan.current_shards == 4 and plan.target_shards == 8
        for m in plan.moves:
            assert m.source != m.dest
            assert 0 <= m.dest < 8

    def test_plan_deterministic(self):
        a = plan_migration(Fleet(4, 9, 3, seed=3), 6)
        b = plan_migration(Fleet(4, 9, 3, seed=3), 6)
        assert [(m.volume, m.source, m.dest) for m in a.moves] == [
            (m.volume, m.source, m.dest) for m in b.moves
        ]

    def test_tail_volumes_move_without_data(self):
        # Default geometry has tail volumes past the capacity edge;
        # their moves copy zero units (routing-only cutover).
        fleet = Fleet(4, 9, 3, seed=0)
        plan = plan_migration(fleet, 8)
        extents = fleet.volume_weights()
        for m in plan.moves:
            assert len(m.lbas) == int(extents[m.volume])

    def test_invalid_target_raises(self):
        with pytest.raises(ValueError):
            plan_migration(Fleet(4, 9, 3), 0)


class TestLiveGrow:
    def test_zero_lost_and_verified(self):
        fleet, co, report = _grown_fleet()
        assert report.lost == 0
        assert report.scheduled == report.completed
        assert co.done
        assert co.all_verified
        assert len(co.outcomes) == len(co.plan.moves)
        assert all(
            o.data_verified is True for o in co.outcomes if o.units_copied
        )

    def test_fleet_converges_to_target_map(self):
        fleet, co, _ = _grown_fleet()
        assert fleet.shards == 8
        assert fleet.shard_map.shards == 8
        assert (
            fleet.volume_route() == fleet.shard_map.assignment()
        ).all()
        assert fleet.routing_fingerprint() == fleet.shard_map.fingerprint()

    def test_deterministic_under_fixed_seed(self):
        _, co1, r1 = _grown_fleet()
        _, co2, r2 = _grown_fleet()
        assert r1.duration_ms == r2.duration_ms
        assert r1.latency == r2.latency
        assert [o.cutover_at_ms for o in co1.outcomes] == [
            o.cutover_at_ms for o in co2.outcomes
        ]

    def test_drain_and_mirror_bookkeeping(self):
        # A write-heavy stream must exercise the mirror (forwarded
        # writes) and the cutover hold queue.
        _, co, report = _grown_fleet(read_fraction=0.5)
        assert report.lost == 0
        assert sum(o.forwarded_writes for o in co.outcomes) > 0
        assert sum(o.drained_requests for o in co.outcomes) > 0
        assert all(o.copy_ms >= 0 and o.drain_ms >= 0 for o in co.outcomes)

    def test_destination_parity_consistent_after_migration(self):
        fleet, co, _ = _grown_fleet(read_fraction=0.5)
        assert co.all_verified
        for ctrl in fleet.controllers:
            assert ctrl.data.all_parity_consistent()

    def test_held_requests_complete_with_queueing_latency(self):
        _, co, report = _grown_fleet(read_fraction=0.5)
        held = sum(o.held_requests for o in co.outcomes)
        assert held > 0
        assert report.lost == 0

    def test_post_migration_serves_batched_and_balanced(self):
        fleet, co, _ = _grown_fleet(placement="weighted")
        cfg = WorkloadConfig(interarrival_ms=0.5, read_fraction=1.0, seed=9)
        stream = generate_request_stream(cfg, 2000.0, fleet.capacity)
        before = fleet.sim.events_processed
        rep = fleet.serve_stream(*stream)
        # Migration finished: reads take the analytic fast path again.
        assert fleet.sim.events_processed == before
        assert rep.lost == 0
        assert rep.shard_balance <= 1.3

    def test_no_dataplane_migrates_unverified(self):
        _, co, report = _grown_fleet(dataplane=False)
        assert report.lost == 0
        assert co.done
        assert all(o.data_verified is None for o in co.outcomes)
        assert co.all_verified  # not False = unrefuted


class TestLiveShrink:
    def test_shrink_drains_removed_shards(self):
        fleet, co, report = _grown_fleet(start=8, target=4)
        assert report.lost == 0
        assert co.done and co.all_verified
        route = fleet.volume_route()
        assert route.max() < 4
        # Drained arrays stay on the clock but receive no traffic.
        cfg = WorkloadConfig(interarrival_ms=1.0, read_fraction=1.0, seed=5)
        stream = generate_request_stream(cfg, 500.0, fleet.capacity)
        rep = fleet.serve_stream(*stream)
        assert all(n == 0 for n in rep.per_shard_scheduled[4:])

    def test_converging_shrink_stays_verified_under_writes(self):
        # Regression: many volumes converging on few destinations make
        # aliased foreground writes land on a destination mid-copy;
        # the coordinator's bidirectional cell mirroring must keep the
        # bit-for-bit verification true anyway.
        fleet = Fleet(8, 9, 3, seed=0, dataplane=True, placement="p2c")
        co = MigrationCoordinator(fleet, 3, at_ms=125.0, admission=2)
        co.arm()
        cfg = WorkloadConfig(interarrival_ms=0.4, read_fraction=0.3, seed=7)
        stream = generate_request_stream(cfg, 500.0, fleet.capacity)
        report = fleet.serve_stream(*stream)
        fleet.sim.run()
        assert report.lost == 0
        assert co.done and co.all_verified
        assert all(
            o.data_verified is True for o in co.outcomes if o.units_copied
        )
        for ctrl in fleet.controllers:
            assert ctrl.data.all_parity_consistent()

    def test_shrink_to_single_shard(self):
        fleet, co, report = _grown_fleet(start=3, target=1, duration=400.0)
        assert report.lost == 0
        assert co.done and co.all_verified
        assert (fleet.volume_route() == 0).all()


class TestCoordinatorEdges:
    def test_same_size_reshape_is_trivially_done(self):
        fleet = Fleet(4, 9, 3, seed=0)
        co = MigrationCoordinator(fleet, 4, at_ms=10.0)
        assert co.done
        co.arm()
        fleet.sim.run()
        assert co.outcomes == []

    def test_second_active_migration_rejected(self):
        fleet = Fleet(4, 9, 3, seed=0)
        MigrationCoordinator(fleet, 8, at_ms=10.0)
        with pytest.raises(RuntimeError):
            MigrationCoordinator(fleet, 6, at_ms=20.0)

    def test_arm_twice_raises(self):
        fleet = Fleet(4, 9, 3, seed=0)
        co = MigrationCoordinator(fleet, 8, at_ms=10.0)
        co.arm()
        with pytest.raises(RuntimeError):
            co.arm()

    def test_bad_parameters_raise(self):
        fleet = Fleet(4, 9, 3, seed=0)
        with pytest.raises(ValueError):
            MigrationCoordinator(fleet, 8, at_ms=-1.0)
        with pytest.raises(ValueError):
            MigrationCoordinator(fleet, 8, at_ms=1.0, copy_parallelism=0)


class TestScenarioIntegration:
    def test_grow_scenario_passes_and_reports(self):
        report = run_fleet_scenario(
            FleetScenario(
                shards=4,
                duration_ms=500.0,
                interarrival_ms=1.0,
                placement="weighted",
                reshape_to=8,
                failures=(),
            )
        )
        assert report.passed
        assert report.all_migrated_verified
        assert report.fleet.lost == 0
        assert len(report.migrations) == report.planned_moves > 0
        payload = report.to_dict()
        assert payload["migration"]["zero_lost"] is True
        assert payload["migration"]["all_verified"] is True
        assert payload["migration"]["target_shards"] == 8
        assert payload["fleet"]["shards"] == 8

    def test_failures_on_migrating_arrays_rejected(self):
        from repro.service import FailureEvent

        with pytest.raises(ValueError):
            run_fleet_scenario(
                FleetScenario(
                    shards=4,
                    duration_ms=400.0,
                    reshape_to=8,
                    failures=(FailureEvent(time_ms=50.0, array=0, disk=1),),
                )
            )

    def test_rebuilds_and_copies_share_admission(self):
        # Rebuild on array 0 (not involved in the 8 -> 7 shrink under
        # this seed) while volumes migrate, through one shared 1-slot
        # gate: no copy interval may overlap the rebuild.
        from repro.service import FailureOrchestrator, FailureEvent

        fleet = Fleet(8, 9, 3, seed=0, dataplane=True)
        gate = AdmissionController(1)
        orch = FailureOrchestrator(
            fleet,
            (FailureEvent(time_ms=10.0, array=0, disk=0),),
            admission_controller=gate,
        )
        co = MigrationCoordinator(
            fleet, 7, at_ms=10.0, admission_controller=gate
        )
        assert 0 not in co.plan.arrays_involved()
        orch.arm()
        co.arm()
        fleet.sim.run()
        assert orch.done and co.done
        assert gate.active == 0
        # With one slot, no copy interval may overlap the rebuild.
        rb = orch.outcomes[0]
        rb_span = (rb.started_at_ms, rb.started_at_ms + rb.report.duration_ms)
        for o in co.outcomes:
            if not o.units_copied:
                continue
            assert (
                o.cutover_at_ms <= rb_span[0]
                or o.started_at_ms >= rb_span[1]
            )


class TestServeCLIGrow:
    def test_grow_smoke_exit_zero(self, tmp_path):
        import json

        from repro.__main__ import main

        out = tmp_path / "grow.json"
        code = main(
            [
                "serve",
                "--grow",
                "4:8",
                "--placement",
                "weighted",
                "--duration",
                "400",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        mig = payload["migration"]
        assert mig["zero_lost"] is True
        assert mig["all_verified"] is True
        assert mig["completed_moves"] == mig["planned_moves"] > 0
        assert payload["fleet"]["lost_to_failures"] == 0

    def test_shrink_smoke_exit_zero(self, tmp_path):
        import json

        from repro.__main__ import main

        out = tmp_path / "shrink.json"
        code = main(
            ["serve", "--shrink", "8:5", "--duration", "400", "--json", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert payload["migration"]["zero_lost"] is True

    def test_bad_reshape_spec_rejected(self):
        from repro.__main__ import main

        assert main(["serve", "--grow", "8:4", "--duration", "200"]) == 2
        assert main(["serve", "--grow", "nonsense", "--duration", "200"]) == 2
