"""Scenario runner: the ``repro serve`` engine end to end."""

import json

import pytest

from repro.service import (
    FleetScenario,
    check_fleet,
    Fleet,
    default_failure_schedule,
    run_fleet_scenario,
)


def _small_scenario(**overrides):
    base = dict(
        shards=8,
        v=9,
        k=3,
        duration_ms=400.0,
        interarrival_ms=1.0,
        read_fraction=0.7,
        failures=default_failure_schedule(8, 9, 2, 100.0),
        admission=2,
        verify_data=True,
    )
    base.update(overrides)
    return FleetScenario(**base)


class TestScenario:
    def test_acceptance_scenario(self):
        """The PR acceptance bar: an 8-array fleet, 2 concurrent
        failures, everything rebuilt bit-for-bit, conformance-gated."""
        report = run_fleet_scenario(_small_scenario())
        assert report.scenario.shards == 8
        assert len(report.rebuilds) == 2
        assert report.max_concurrent_rebuilds == 2
        assert all(o.report.data_verified is True for o in report.rebuilds)
        assert report.all_rebuilt_verified
        assert report.conformance is not None and report.conformance.passed
        assert report.passed
        assert report.fleet.scheduled > 0

    def test_report_json_round_trip(self):
        report = run_fleet_scenario(_small_scenario(duration_ms=200.0))
        payload = report.to_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["passed"] is True
        assert back["fleet"]["shards"] == 8
        assert len(back["rebuilds"]) == 2
        assert back["scenario"]["failures"][0]["array"] == 0
        # Armed failure timers force every shard onto the shared event
        # heap — the payload surfaces the engine actually used.
        assert back["engine"] == "heap"
        assert back["engine_per_shard"] == ["heap"] * 8

    def test_scenario_deterministic(self):
        a = run_fleet_scenario(_small_scenario()).to_dict()
        b = run_fleet_scenario(_small_scenario()).to_dict()
        for key in ("fleet", "rebuilds", "routing_fingerprint", "passed"):
            assert a[key] == b[key]

    def test_healthy_scenario_has_no_rebuilds(self):
        report = run_fleet_scenario(
            _small_scenario(failures=(), duration_ms=200.0)
        )
        assert report.rebuilds == ()
        assert report.all_rebuilt_verified  # vacuously
        assert report.passed
        # Idle clock: every shard picks a cheap per-shard engine.
        assert all(
            e in ("solver", "eager", "calendar")
            for e in report.engine_per_shard()
        )

    def test_unverified_mode_runs(self):
        report = run_fleet_scenario(_small_scenario(verify_data=False))
        assert len(report.rebuilds) == 2
        assert all(o.report.data_verified is None for o in report.rebuilds)
        assert report.passed

    def test_conformance_skippable(self):
        report = run_fleet_scenario(
            _small_scenario(check_conformance=False, duration_ms=200.0)
        )
        assert report.conformance is None
        assert report.passed


class TestFleetConformance:
    def test_one_check_per_distinct_layout(self):
        fleet = Fleet(8, 9, 3, seed=0)
        conf = check_fleet(fleet)
        assert conf.shards_checked == 8
        assert len(conf.reports) == 1  # registry-shared layout
        assert conf.passed
        assert "PASS" in conf.summary()

    def test_to_dict_shape(self):
        conf = check_fleet(Fleet(2, 13, 4, seed=0))
        d = conf.to_dict()
        assert d["passed"] is True
        assert d["shards_checked"] == 2
        assert d["layouts"][0]["v"] == 13


class TestServeCLI:
    def test_smoke_exit_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "serve.json"
        code = main(["serve", "--smoke", "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert payload["fleet"]["shards"] == 8
        assert len(payload["rebuilds"]) == 2
        assert payload["all_rebuilt_verified"] is True

    def test_failure_spec_parsing(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "serve.json"
        code = main(
            [
                "serve",
                "--smoke",
                "--failure-spec",
                "50:0:1,80:3:2",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        rebuilds = {r["array"]: r for r in payload["rebuilds"]}
        assert set(rebuilds) == {0, 3}
        assert rebuilds[3]["failed_disk"] == 2
