"""The autoscaling control loop: pure decisions, replay byte-identity,
and end-to-end scaling events through the scenario runner."""

import json

import pytest

from repro.service import (
    AutoscaleDecision,
    AutoscalePolicy,
    FleetScenario,
    MetricSnapshot,
    PolicyState,
    canonical_payload,
    decide,
    parse_decision_jsonl,
    render_decision_jsonl,
    replay_decisions,
    run_fleet_scenario,
    run_fleet_scenario_parallel,
)


def _policy(**overrides):
    base = dict(
        cadence_ms=100.0,
        high_rate=1.0,
        sustain_ticks=2,
        cooldown_ms=500.0,
        grow_step=2,
        max_shards=8,
    )
    base.update(overrides)
    return AutoscalePolicy(**base)


def _snapshot(seq, *, arrivals, shards=2, t_ms=None, window_ms=100.0,
              complete=None, lookback=1, admission_active=0,
              admission_queued=0, admission_slots=2,
              migration_active=False, failed_arrays=0):
    """A hand-built tick observation; ``arrivals`` is per active shard."""
    return MetricSnapshot(
        seq=seq,
        t_ms=t_ms if t_ms is not None else (seq + 1) * 100.0,
        shards=shards,
        active=tuple(range(shards)),
        arrivals=tuple(arrivals),
        window_ms=window_ms,
        complete_buckets=complete if complete is not None else seq + 1,
        lookback_buckets=lookback,
        admission_active=admission_active,
        admission_queued=admission_queued,
        admission_slots=admission_slots,
        migration_active=migration_active,
        failed_arrays=failed_arrays,
    )


def _fold(policy, snapshots):
    """Run the fold and return (decisions, final state)."""
    state = PolicyState()
    decisions = []
    for snap in snapshots:
        decision, state = decide(policy, state, snap)
        decisions.append(decision)
    return decisions, state


# Per-shard arrival counts over a 100 ms window: 200 = 2.0/ms (hot,
# 2x the default 1.0 threshold), 30 = 0.3/ms (quiet).
HOT = (200, 200)
QUIET = (30, 30)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        AutoscalePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cadence_ms=0.0),
            dict(window_ms=-1.0),
            dict(high_rate=0.0),
            dict(low_rate=-0.1),
            dict(high_rate=1.0, low_rate=1.0),  # no hysteresis band
            dict(imbalance_ratio=1.0),
            dict(sustain_ticks=0),
            dict(cooldown_ms=-1.0),
            dict(grow_step=0),
            dict(shrink_step=0),
            dict(min_shards=0),
            dict(min_shards=4, max_shards=2),
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalePolicy(**kwargs)

    def test_from_dict_round_trip(self):
        p = _policy(imbalance_ratio=2.0, low_rate=0.1)
        assert AutoscalePolicy.from_dict(p.to_dict()) == p

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown autoscale policy"):
            AutoscalePolicy.from_dict({"cadence_ms": 50.0, "burst": 2})

    def test_lookback_defaults_to_cadence(self):
        assert _policy(cadence_ms=80.0).lookback_ms == 80.0
        assert _policy(window_ms=320.0).lookback_ms == 320.0


class TestDecide:
    def test_warmup_refuses_and_zeroes_streaks(self):
        d, state = decide(
            _policy(window_ms=300.0),
            PolicyState(high_streak=5),
            _snapshot(0, arrivals=HOT, complete=1, lookback=3),
        )
        assert (d.action, d.reason) == ("none", "warmup")
        assert state.high_streak == 0

    def test_grow_needs_sustained_signal(self):
        decisions, _ = _fold(_policy(sustain_ticks=3), [
            _snapshot(i, arrivals=HOT) for i in range(4)
        ])
        assert [d.action for d in decisions] == [
            "none", "none", "grow", "none"
        ]
        assert decisions[0].reason == "sustaining"
        assert decisions[2].reason == "load-spike"
        assert decisions[2].to_shards == 4
        # Post-action tick: streaks were reset, cooldown holds.
        assert decisions[3].reason == "cooldown"

    def test_quiet_load_stays_steady(self):
        decisions, state = _fold(_policy(), [
            _snapshot(i, arrivals=QUIET) for i in range(5)
        ])
        assert all(d.action == "none" for d in decisions)
        assert all(d.reason == "steady" for d in decisions)
        assert state.high_streak == 0

    def test_oscillating_load_never_flaps(self):
        """Load alternating above/below threshold every tick never
        sustains, so the loop takes no action at all."""
        snaps = [
            _snapshot(i, arrivals=HOT if i % 2 == 0 else QUIET)
            for i in range(20)
        ]
        decisions, _ = _fold(_policy(sustain_ticks=2), snaps)
        assert all(d.action == "none" for d in decisions)

    def test_cooldown_blocks_back_to_back_actions(self):
        policy = _policy(sustain_ticks=1, cooldown_ms=500.0)
        snaps = [_snapshot(i, arrivals=HOT) for i in range(8)]
        decisions, _ = _fold(policy, snaps)
        actions = [(d.seq, d.action) for d in decisions if d.action != "none"]
        # Fires at t=100, then cooldown holds until t >= 600 (seq 5).
        assert actions == [(0, "grow"), (5, "grow")]
        assert {d.reason for d in decisions[1:5]} == {"cooldown"}

    def test_grow_refused_when_admission_exhausted(self):
        policy = _policy(sustain_ticks=1)
        d, state = decide(policy, PolicyState(), _snapshot(
            0, arrivals=HOT, admission_active=2, admission_slots=2
        ))
        assert (d.action, d.reason) == ("none", "admission-exhausted")
        # The streak survives the refusal: the action fires on the next
        # tick once the budget frees, with no extra sustain wait.
        d2, _ = decide(policy, state, _snapshot(1, arrivals=HOT))
        assert d2.action == "grow"

    def test_migration_active_refuses(self):
        d, _ = decide(_policy(sustain_ticks=1), PolicyState(), _snapshot(
            0, arrivals=HOT, migration_active=True
        ))
        assert (d.action, d.reason) == ("none", "migration-active")

    def test_degraded_arrays_refuse(self):
        d, _ = decide(_policy(sustain_ticks=1), PolicyState(), _snapshot(
            0, arrivals=HOT, failed_arrays=1
        ))
        assert (d.action, d.reason) == ("none", "degraded-arrays")

    def test_at_max_shards_refuses(self):
        d, _ = decide(
            _policy(sustain_ticks=1, max_shards=2),
            PolicyState(),
            _snapshot(0, arrivals=HOT),
        )
        assert (d.action, d.reason) == ("none", "at-max-shards")

    def test_grow_step_clamps_to_max(self):
        d, _ = decide(
            _policy(sustain_ticks=1, grow_step=4, max_shards=3),
            PolicyState(),
            _snapshot(0, arrivals=HOT),
        )
        assert (d.action, d.to_shards) == ("grow", 3)

    def test_imbalance_signal_grows(self):
        # Total rate is quiet, but one shard takes nearly everything
        # (max/mean caps just below 2 with two shards, so the ratio
        # threshold sits under that).
        policy = _policy(sustain_ticks=1, imbalance_ratio=1.8)
        d, _ = decide(policy, PolicyState(), _snapshot(
            0, arrivals=(100, 4), shards=2
        ))
        assert (d.action, d.reason) == ("grow", "imbalance")

    def test_combined_reason_names_both_signals(self):
        policy = _policy(sustain_ticks=1, imbalance_ratio=1.8)
        d, _ = decide(policy, PolicyState(), _snapshot(
            0, arrivals=(400, 4), shards=2
        ))
        assert (d.action, d.reason) == ("grow", "load-spike+imbalance")

    def test_shrink_on_sustained_low_load(self):
        policy = _policy(low_rate=0.5, sustain_ticks=2, shrink_step=1,
                         min_shards=1)
        decisions, _ = _fold(policy, [
            _snapshot(i, arrivals=QUIET, shards=4) for i in range(3)
        ])
        assert [d.action for d in decisions] == ["none", "shrink", "none"]
        assert decisions[1].reason == "low-load"
        assert decisions[1].to_shards == 3
        assert decisions[2].reason == "cooldown"

    def test_shrink_refused_at_min_shards(self):
        policy = _policy(low_rate=0.5, sustain_ticks=1, min_shards=2)
        d, _ = decide(policy, PolicyState(), _snapshot(0, arrivals=QUIET))
        assert (d.action, d.reason) == ("none", "at-min-shards")

    def test_hysteresis_band_holds_steady(self):
        # Rate 0.6/ms sits between low (0.3) and high (1.0): no streaks.
        policy = _policy(low_rate=0.3)
        decisions, state = _fold(policy, [
            _snapshot(i, arrivals=(60, 60)) for i in range(4)
        ])
        assert all(d.reason == "steady" for d in decisions)
        assert (state.high_streak, state.low_streak) == (0, 0)

    def test_decide_is_pure(self):
        policy = _policy()
        state = PolicyState(high_streak=1)
        snap = _snapshot(3, arrivals=HOT)
        first = decide(policy, state, snap)
        second = decide(policy, state, snap)
        assert first == second
        assert state == PolicyState(high_streak=1)  # untouched


class TestReplay:
    def _mixed_log(self):
        policy = _policy(sustain_ticks=2, cooldown_ms=300.0)
        snaps = [
            _snapshot(0, arrivals=QUIET, complete=0, lookback=1),  # warmup
            _snapshot(1, arrivals=HOT),
            _snapshot(2, arrivals=HOT),       # grow fires
            _snapshot(3, arrivals=HOT, shards=4, migration_active=True),
            _snapshot(4, arrivals=QUIET, shards=4),
            _snapshot(5, arrivals=HOT, shards=4, admission_active=2),
            _snapshot(6, arrivals=QUIET, shards=4),
        ]
        return policy, snaps

    def test_replay_is_byte_identical(self):
        policy, snaps = self._mixed_log()
        live, _ = _fold(policy, snaps)
        replayed = replay_decisions(policy, snaps)
        assert render_decision_jsonl(replayed) == render_decision_jsonl(live)

    def test_jsonl_round_trip(self):
        policy, snaps = self._mixed_log()
        live = replay_decisions(policy, snaps)
        text = render_decision_jsonl(live)
        parsed = parse_decision_jsonl(text)
        assert parsed == live
        assert render_decision_jsonl(parsed) == text

    def test_replaying_parsed_log_reproduces_it(self):
        """The full harness loop: parse a decision log, replay its
        embedded snapshots, get the same bytes back."""
        policy, snaps = self._mixed_log()
        text = render_decision_jsonl(replay_decisions(policy, snaps))
        parsed = parse_decision_jsonl(text)
        again = replay_decisions(policy, [d.snapshot for d in parsed])
        assert render_decision_jsonl(again) == text

    def test_parse_rejects_bad_json(self):
        policy, snaps = self._mixed_log()
        good_line = render_decision_jsonl(
            replay_decisions(policy, snaps[:1])
        )
        with pytest.raises(ValueError, match="line 2"):
            parse_decision_jsonl(good_line + "{trunca")

    def test_parse_rejects_non_decision_rows(self):
        with pytest.raises(ValueError, match="not a decision object"):
            parse_decision_jsonl('{"span": "scenario"}\n')

    def test_parse_rejects_malformed_decision(self):
        with pytest.raises(ValueError, match="line 1 is not a valid"):
            parse_decision_jsonl('{"snapshot": {}}\n')


def _autoscaled_scenario(**overrides):
    base = dict(
        shards=2,
        v=9,
        k=3,
        duration_ms=600.0,
        interarrival_ms=0.5,
        seed=7,
        autoscale=AutoscalePolicy(
            cadence_ms=50.0,
            high_rate=0.5,
            sustain_ticks=2,
            cooldown_ms=200.0,
            grow_step=2,
            max_shards=8,
        ),
    )
    base.update(overrides)
    return FleetScenario(**base)


def _canonical(payload):
    return json.dumps(canonical_payload(payload), sort_keys=True)


class TestAutoscaledScenario:
    def test_grow_event_end_to_end(self):
        report = run_fleet_scenario(_autoscaled_scenario())
        summary = report.autoscale
        assert summary is not None
        assert summary.actions == 1
        event = summary.events[0]
        assert event["action"] == "grow"
        assert event["from_shards"] == 2 and event["to_shards"] == 4
        assert event["completed_moves"] == event["planned_moves"] > 0
        assert event["all_verified"] is True
        assert summary.final_shards == 4
        assert summary.zero_lost is True
        assert summary.replay_identical is True
        assert summary.ok is True
        assert report.passed

    def test_payload_carries_autoscale_section(self):
        payload = run_fleet_scenario(_autoscaled_scenario()).to_dict()
        section = payload["autoscale"]
        assert section["ok"] is True
        assert section["policy"]["high_rate"] == 0.5
        assert len(section["decisions"]) > 0
        assert section["decisions"][0]["snapshot"]["shards"] == 2
        assert payload["scenario"]["autoscale"]["cadence_ms"] == 50.0
        json.dumps(payload)  # JSON-serializable throughout

    def test_repeat_runs_byte_identical(self):
        a = run_fleet_scenario(_autoscaled_scenario()).to_dict()
        b = run_fleet_scenario(_autoscaled_scenario()).to_dict()
        assert _canonical(a) == _canonical(b)

    def test_serial_vs_two_workers_canonical_equal(self):
        scenario = _autoscaled_scenario()
        serial = run_fleet_scenario(scenario).to_dict()
        run = run_fleet_scenario_parallel(scenario, workers=2)
        assert run.execution.serial_fallback is True
        assert "autoscale" in run.execution.fallback_reason
        assert _canonical(serial) == _canonical(run.to_dict())

    def test_quiet_fleet_never_scales(self):
        report = run_fleet_scenario(
            _autoscaled_scenario(interarrival_ms=4.0)
        )
        summary = report.autoscale
        assert summary.actions == 0
        assert summary.final_shards == 2
        assert all(d.action == "none" for d in summary.decisions)
        assert summary.ok and report.passed

    def test_autoscale_excludes_static_reshape(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_fleet_scenario(_autoscaled_scenario(reshape_to=4))

    def test_disabled_autoscaler_leaves_report_shape(self):
        """Regression pin: no policy -> no autoscale section, and the
        report is unchanged against a scenario built before the field
        existed (identical canonical bytes)."""
        plain = dict(
            shards=2, v=9, k=3, duration_ms=300.0, interarrival_ms=1.0,
            seed=7, failures=(),
        )
        a = run_fleet_scenario(FleetScenario(**plain)).to_dict()
        b = run_fleet_scenario(
            FleetScenario(**plain, autoscale=None)
        ).to_dict()
        assert a["autoscale"] is None
        assert a["scenario"]["autoscale"] is None
        assert _canonical(a) == _canonical(b)


class TestServeCli:
    def _policy_file(self, tmp_path, **overrides):
        spec = dict(
            cadence_ms=50.0,
            high_rate=0.5,
            sustain_ticks=2,
            cooldown_ms=200.0,
            grow_step=2,
            max_shards=8,
        )
        spec.update(overrides)
        path = tmp_path / "policy.json"
        path.write_text(json.dumps(spec))
        return path

    def test_serve_autoscale_writes_replayable_decision_log(
        self, tmp_path, capsys
    ):
        from repro.__main__ import main

        policy_file = self._policy_file(tmp_path)
        out = tmp_path / "report.json"
        decisions_out = tmp_path / "decisions.jsonl"
        code = main([
            "serve", "--shards", "2", "--duration", "600",
            "--interarrival", "0.5", "--seed", "7",
            "--autoscale", str(policy_file),
            "--decisions-out", str(decisions_out),
            "--json", str(out),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "autoscale grow at" in err
        assert "replay identical: True" in err
        payload = json.loads(out.read_text())
        assert payload["autoscale"]["ok"] is True
        # The written log replays byte-identically from its own
        # embedded snapshots.
        text = decisions_out.read_text()
        parsed = parse_decision_jsonl(text)
        policy = AutoscalePolicy.from_dict(
            payload["autoscale"]["policy"]
        )
        replayed = replay_decisions(policy, [d.snapshot for d in parsed])
        assert render_decision_jsonl(replayed) == text

    def test_metrics_out_does_not_change_autoscale_behavior(
        self, tmp_path, capsys
    ):
        """Regression pin: the recorder is the control loop's input,
        so requesting metrics files must not move the decision grid —
        the canonical report is identical with and without
        --metrics-out."""
        from repro.__main__ import main

        policy_file = self._policy_file(tmp_path)
        flags = [
            "serve", "--shards", "2", "--duration", "600",
            "--interarrival", "0.5", "--seed", "7",
            "--autoscale", str(policy_file),
        ]
        plain = tmp_path / "plain.json"
        instrumented = tmp_path / "instrumented.json"
        assert main(flags + ["--json", str(plain)]) == 0
        assert main(flags + [
            "--json", str(instrumented),
            "--metrics-out", str(tmp_path / "metrics.jsonl"),
        ]) == 0
        capsys.readouterr()
        a = canonical_payload(json.loads(plain.read_text()))
        b = canonical_payload(json.loads(instrumented.read_text()))
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )

    def test_autoscale_conflicts_with_grow(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main([
            "serve", "--grow", "2:4",
            "--autoscale", str(self._policy_file(tmp_path)),
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_decisions_out_needs_autoscale(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main([
            "serve", "--decisions-out", str(tmp_path / "d.jsonl"),
        ])
        assert code == 2
        assert "--decisions-out needs --autoscale" in capsys.readouterr().err

    def test_bad_policy_file_is_a_clear_error(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["serve", "--autoscale", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        assert main(["serve", "--autoscale", str(tmp_path / "nope")]) == 2
        assert "cannot read" in capsys.readouterr().err
