"""Multi-core fleet execution: group partitioning, process workers,
and the deterministic report merge.

The contract under test: for any scenario, ``workers=N`` produces a
report byte-identical to ``workers=1`` (and to the plain serial
runner) once :func:`canonical_payload` strips the wall-clock and
execution-metadata fields — checked as ``json.dumps(...,
sort_keys=True)`` string equality, the strongest form short of
comparing raw bytes on disk.
"""

import json
import pickle

import pytest

from repro.service import (
    FleetScenario,
    canonical_payload,
    default_failure_schedule,
    partition_scenario,
    run_fleet_scenario,
    run_fleet_scenario_parallel,
)
from repro.service.parallel import ShardGroup


def _canon(payload: dict) -> str:
    return json.dumps(canonical_payload(payload), sort_keys=True)


def replace_scenario(sc: FleetScenario, **overrides) -> FleetScenario:
    from dataclasses import replace

    return replace(sc, **overrides)


def _scenario(**overrides) -> FleetScenario:
    base = dict(
        shards=4,
        v=9,
        k=3,
        duration_ms=300.0,
        interarrival_ms=1.0,
        read_fraction=0.7,
        failures=(),
        admission=2,
        verify_data=True,
    )
    base.update(overrides)
    return FleetScenario(**base)


HEALTHY = _scenario()
FAILURES = _scenario(failures=default_failure_schedule(4, 9, 2, 80.0))
COUPLED = _scenario(
    shards=5, failures=default_failure_schedule(5, 9, 3, 80.0)
)
MIGRATION = _scenario(duration_ms=400.0, reshape_to=8)


class TestPartition:
    def test_healthy_fleet_fully_decouples(self):
        part = partition_scenario(HEALTHY)
        assert not part.serial_fallback
        assert [g.arrays for g in part.groups] == [(0,), (1,), (2,), (3,)]
        assert all(g.failures == () for g in part.groups)
        assert part.admission_partition() == {}

    def test_admitted_failures_get_dedicated_slots(self):
        """failures <= admission: every rebuild starts instantly in the
        serial run too, so the budget splits one slot per failed array
        and the partition records the split."""
        part = partition_scenario(FAILURES)
        assert not part.serial_fallback
        by_arrays = {g.arrays: g for g in part.groups}
        assert by_arrays[(0,)].admission_slots == 1
        assert by_arrays[(1,)].admission_slots == 1
        assert by_arrays[(2,)].admission_slots == 0
        assert len(by_arrays[(0,)].failures) == 1
        assert sum(part.admission_partition().values()) == 2

    def test_admission_pressure_couples_failed_arrays(self):
        """failures > admission: FIFO queueing orders rebuilds globally,
        so all failed arrays must co-locate in one group carrying the
        whole budget."""
        part = partition_scenario(COUPLED)
        assert not part.serial_fallback
        groups = {g.arrays: g for g in part.groups}
        assert (0, 1, 2) in groups
        assert groups[(0, 1, 2)].admission_slots == 2
        assert len(groups[(0, 1, 2)].failures) == 3
        assert groups[(3,)].failures == ()
        assert groups[(4,)].failures == ()

    def test_migration_collapses_to_serial_fallback(self):
        part = partition_scenario(MIGRATION)
        assert part.serial_fallback
        assert len(part.groups) == 1
        assert part.groups[0].arrays == (0, 1, 2, 3)

    def test_single_shard_is_serial(self):
        part = partition_scenario(_scenario(shards=1))
        assert part.serial_fallback

    def test_groups_cover_every_shard_exactly_once(self):
        for sc in (HEALTHY, FAILURES, COUPLED):
            part = partition_scenario(sc)
            seen = [a for g in part.groups for a in g.arrays]
            assert sorted(seen) == list(range(sc.shards))
            assert len(seen) == len(set(seen))

    def test_validation_matches_serial_runner(self):
        from repro.service import FailureEvent

        with pytest.raises(ValueError, match="targets array"):
            partition_scenario(
                _scenario(failures=(FailureEvent(10.0, 9, 0),))
            )
        with pytest.raises(ValueError, match="targets disk"):
            partition_scenario(
                _scenario(failures=(FailureEvent(10.0, 0, 99),))
            )
        with pytest.raises(ValueError, match="negative"):
            partition_scenario(
                _scenario(failures=(FailureEvent(-1.0, 0, 0),))
            )
        with pytest.raises(ValueError, match="two failures"):
            partition_scenario(
                _scenario(
                    failures=(
                        FailureEvent(10.0, 0, 0),
                        FailureEvent(20.0, 0, 1),
                    )
                )
            )
        with pytest.raises(ValueError, match="admission"):
            partition_scenario(_scenario(admission=0))


class TestReportEquality:
    """workers=N == workers=1 == serial, byte for byte (canonical)."""

    @pytest.mark.parametrize(
        "scenario", [HEALTHY, FAILURES, COUPLED], ids=["healthy", "failures", "coupled"]
    )
    def test_grouped_in_process_matches_serial(self, scenario):
        serial = run_fleet_scenario(scenario).to_dict()
        grouped = run_fleet_scenario_parallel(scenario, workers=1).to_dict()
        assert _canon(serial) == _canon(grouped)

    @pytest.mark.parametrize(
        "scenario", [HEALTHY, FAILURES], ids=["healthy", "failures"]
    )
    def test_process_workers_match_serial(self, scenario):
        serial = run_fleet_scenario(scenario).to_dict()
        par = run_fleet_scenario_parallel(scenario, workers=2).to_dict()
        assert _canon(serial) == _canon(par)

    def test_coupled_admission_delay_reproduced(self):
        """The third rebuild queues behind the admission budget; the
        grouped run must reproduce the exact queueing delay."""
        serial = run_fleet_scenario(COUPLED)
        par = run_fleet_scenario_parallel(COUPLED, workers=2)
        assert _canon(serial.to_dict()) == _canon(par.to_dict())
        delays = sorted(
            o.admission_delay_ms for o in par.report.rebuilds
        )
        assert delays[-1] > 0.0  # queueing actually happened

    def test_read_only_solver_path_matches(self):
        sc = _scenario(read_fraction=1.0)
        serial = run_fleet_scenario(sc).to_dict()
        par = run_fleet_scenario_parallel(sc, workers=2).to_dict()
        assert _canon(serial) == _canon(par)

    def test_migration_scenario_falls_back_and_matches(self):
        serial = run_fleet_scenario(MIGRATION).to_dict()
        run = run_fleet_scenario_parallel(MIGRATION, workers=4)
        assert run.execution.serial_fallback
        assert run.execution.fallback_reason
        assert _canon(serial) == _canon(run.to_dict())
        assert run.report.all_migrated_verified

    def test_spawn_context_is_safe(self):
        """The spawn start method re-imports everything in the worker —
        the strictest serialization test (no inherited state at all)."""
        sc = _scenario(
            shards=3,
            duration_ms=200.0,
            interarrival_ms=2.0,
            failures=default_failure_schedule(3, 9, 1, 50.0),
        )
        serial = run_fleet_scenario(sc).to_dict()
        par = run_fleet_scenario_parallel(
            sc, workers=2, mp_context="spawn"
        ).to_dict()
        assert _canon(serial) == _canon(par)

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            run_fleet_scenario_parallel(HEALTHY, workers=0)

    def test_stream_generated_once_in_parent(self, monkeypatch):
        """Workers receive pre-routed compiled slices — the fleet
        stream is generated exactly once, in the parent.  (This was the
        bug: every worker regenerated and re-routed the FULL stream,
        making the parallel path do O(groups x stream) redundant
        work.)"""
        import repro.service.parallel as par_mod

        calls = []
        real = par_mod.generate_request_stream

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(par_mod, "generate_request_stream", counting)
        serial = run_fleet_scenario(FAILURES).to_dict()
        grouped = run_fleet_scenario_parallel(
            FAILURES, workers=1
        ).to_dict()
        assert len(calls) == 1
        assert _canon(serial) == _canon(grouped)


#: The reshape whose move graph splits: 12 volumes over 4 shards grown
#: to 6 decomposes into two migration components plus one idle array —
#: the config the parallel-reshape acceptance gate pins.
RESHAPE_SPLIT = _scenario(
    duration_ms=400.0, reshape_to=6, volumes=12, seed=9
)


class TestReshapeComponents:
    """Reshape scenarios split into connected components of the move
    graph — each component a worker-runnable group with a static slice
    of the copy budget — instead of always collapsing to serial."""

    def test_move_graph_components_partition(self):
        part = partition_scenario(RESHAPE_SPLIT)
        assert not part.serial_fallback
        by_arrays = {g.arrays: g for g in part.groups}
        # Two components (each closed under its copy edges) plus the
        # one array no move touches.
        assert set(by_arrays) == {(0, 3, 4), (1,), (2, 5)}
        assert by_arrays[(0, 3, 4)].migration_volumes == (6, 11)
        assert by_arrays[(2, 5)].migration_volumes == (7,)
        assert by_arrays[(1,)].migration_volumes == ()
        # One copy destination per component -> one admission slot each.
        assert by_arrays[(0, 3, 4)].admission_slots == 1
        assert by_arrays[(2, 5)].admission_slots == 1
        assert by_arrays[(1,)].admission_slots == 0

    def test_admission_pressure_falls_back(self):
        """More copy destinations than admission slots: FIFO queueing
        at the shared gate couples every component."""
        part = partition_scenario(replace_scenario(RESHAPE_SPLIT, admission=1))
        assert part.serial_fallback
        assert "admission" in part.reason

    def test_single_component_falls_back(self):
        """The default 4->6 grow (64 volumes) couples every array into
        one component — the documented serial collapse."""
        part = partition_scenario(
            _scenario(duration_ms=400.0, reshape_to=6)
        )
        assert part.serial_fallback
        assert "one" in part.reason and "component" in part.reason

    def test_failures_alongside_reshape_fall_back(self):
        from repro.service import FailureEvent

        part = partition_scenario(
            replace_scenario(
                RESHAPE_SPLIT, failures=(FailureEvent(10.0, 1, 0),)
            )
        )
        assert part.serial_fallback
        assert "rebuild" in part.reason

    def test_coordinator_volume_filter_validated(self):
        from repro.service import Fleet
        from repro.service.migration import MigrationCoordinator

        fleet = Fleet(4, 9, 3, volumes=12, dataplane=False, seed=9)
        with pytest.raises(ValueError, match="unmoved"):
            MigrationCoordinator(fleet, 6, at_ms=10.0, volumes=(0,))

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_reshape_matches_serial(self, workers):
        serial = run_fleet_scenario(RESHAPE_SPLIT)
        run = run_fleet_scenario_parallel(RESHAPE_SPLIT, workers=workers)
        assert not run.execution.serial_fallback
        assert _canon(serial.to_dict()) == _canon(run.to_dict())
        assert run.report.all_migrated_verified
        assert len(run.report.migrations) == run.report.planned_moves

    def test_parallel_reshape_windowed_matches_serial(self):
        """Windowed workers regenerate and filter the stream per
        component; the merged report must still match the serial
        windowed run byte for byte."""
        sc = replace_scenario(RESHAPE_SPLIT, window_size=64)
        serial = run_fleet_scenario(sc)
        run = run_fleet_scenario_parallel(sc, workers=2)
        assert not run.execution.serial_fallback
        assert _canon(serial.to_dict()) == _canon(run.to_dict())
        assert run.report.all_migrated_verified


class TestWindowedParallel:
    """Windowed scenarios ship a window *iterator* to workers (never a
    materialized stream) and must merge to the serial windowed report."""

    @pytest.mark.parametrize(
        "scenario",
        [
            _scenario(window_size=128),
            _scenario(
                window_size=128,
                failures=default_failure_schedule(4, 9, 2, 80.0),
            ),
        ],
        ids=["healthy", "failures"],
    )
    def test_windowed_workers_match_serial(self, scenario):
        serial = run_fleet_scenario(scenario).to_dict()
        par = run_fleet_scenario_parallel(scenario, workers=2).to_dict()
        assert _canon(serial) == _canon(par)

    def test_windowed_read_only_solver_path(self):
        sc = _scenario(window_size=64, read_fraction=1.0)
        serial = run_fleet_scenario(sc).to_dict()
        par = run_fleet_scenario_parallel(sc, workers=2).to_dict()
        assert _canon(serial) == _canon(par)

    def test_no_stream_materialized_in_parent(self, monkeypatch):
        """The windowed parallel path never calls the whole-stream
        generator — not in the parent, not per group."""
        import repro.service.parallel as par_mod

        calls = []
        real = par_mod.generate_request_stream

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(par_mod, "generate_request_stream", counting)
        sc = _scenario(window_size=128)
        serial = run_fleet_scenario(sc).to_dict()
        grouped = run_fleet_scenario_parallel(sc, workers=1).to_dict()
        assert calls == []
        assert _canon(serial) == _canon(grouped)


class TestExecutionMetadata:
    def test_parallel_section_shape(self):
        run = run_fleet_scenario_parallel(FAILURES, workers=2)
        payload = run.to_dict()
        # The downgrade flag is part of the top-level summary, not
        # buried in the execution metadata.
        assert payload["serial_fallback"] is False
        assert payload["fallback_reason"] is None
        ex = payload["parallel"]
        assert ex["workers"] == 2
        assert ex["cpu_count"] >= 1
        assert ex["serial_fallback"] is False
        assert len(ex["groups"]) == 4
        for g in ex["groups"]:
            assert set(g) == {
                "arrays",
                "admission_slots",
                "failures",
                "migration_volumes",
                "duration_ms",
                "wall_s",
            }
        assert ex["admission_partition"]  # the recorded budget split

    def test_auto_workers_bounded_by_groups(self):
        run = run_fleet_scenario_parallel(
            _scenario(shards=2, duration_ms=150.0)
        )
        assert 1 <= run.execution.workers <= 2


class TestSpawnSafety:
    def test_scenario_pickle_round_trip(self):
        for sc in (HEALTHY, FAILURES, COUPLED, MIGRATION):
            clone = pickle.loads(pickle.dumps(sc))
            assert clone == sc

    def test_group_and_compiled_trace_pickle(self):
        from repro.service import Fleet
        from repro.sim.compile import generate_request_stream

        part = partition_scenario(COUPLED)
        for g in part.groups:
            assert pickle.loads(pickle.dumps(g)) == g
        fleet = Fleet(2, 9, 3, seed=0)
        times, is_read, lbas = generate_request_stream(
            HEALTHY.workload(), 100.0, fleet.capacity
        )
        compiled, _ = fleet.route_stream(times, is_read, lbas)
        for trace in compiled:
            clone = pickle.loads(pickle.dumps(trace))
            assert clone.n == trace.n
            assert (clone.times == trace.times).all()
            assert (clone.is_read == trace.is_read).all()
            assert (clone.lbas == trace.lbas).all()


class TestCanonicalPayload:
    def test_strips_wall_clock_everywhere(self):
        payload = {
            "wall_s": 1.0,
            "serial_fallback": True,
            "fallback_reason": "reshape",
            "fleet": {"wall_s": 2.0, "throughput_rps": 3.0},
            "rows": [{"wall_s": 4.0, "x": 1}],
            "parallel": {"workers": 8},
        }
        out = canonical_payload(payload)
        assert out == {
            "fleet": {"throughput_rps": 3.0},
            "rows": [{"x": 1}],
        }

    def test_does_not_mutate_input(self):
        payload = {"wall_s": 1.0, "keep": {"wall_s": 2.0}}
        canonical_payload(payload)
        assert payload == {"wall_s": 1.0, "keep": {"wall_s": 2.0}}


class TestServeCLIWorkers:
    def test_smoke_with_workers_matches_serial(self, tmp_path):
        from repro.__main__ import main

        a = tmp_path / "serial.json"
        b = tmp_path / "parallel.json"
        assert main(["serve", "--smoke", "--json", str(a)]) == 0
        assert (
            main(["serve", "--smoke", "--workers", "2", "--json", str(b)])
            == 0
        )
        serial = json.loads(a.read_text())
        par = json.loads(b.read_text())
        assert "parallel" not in serial  # default path untouched
        assert par["parallel"]["workers"] == 2
        assert _canon(serial) == _canon(par)

    def test_bad_worker_count_is_an_error(self):
        from repro.__main__ import main

        assert main(["serve", "--smoke", "--workers", "0"]) == 2

    def test_smoke_flags_unexpected_serial_fallback(self):
        """--workers 2 on a single-shard fleet silently downgrades to
        serial; under --smoke that downgrade must fail the run."""
        from repro.__main__ import main

        args = [
            "serve",
            "--smoke",
            "--workers",
            "2",
            "--shards",
            "1",
            "--failures",
            "0",
        ]
        assert main(args) == 1

    def test_reshape_fallback_stays_legitimate_under_smoke(self, tmp_path):
        """A reshape is the documented serial collapse — --smoke must
        not flag it."""
        from repro.__main__ import main

        out = tmp_path / "grow.json"
        args = [
            "serve",
            "--smoke",
            "--workers",
            "2",
            "--grow",
            "4:6",
            "--json",
            str(out),
        ]
        assert main(args) == 0
        payload = json.loads(out.read_text())
        assert payload["serial_fallback"] is True
        assert payload["fallback_reason"]

    def test_volumes_flag_splits_reshape_across_workers(self, tmp_path):
        """--volumes can shrink the move graph until it splits into
        components — then --grow + --workers genuinely parallelizes
        (no serial fallback, so --smoke's downgrade gate stays green)."""
        from repro.__main__ import main

        out = tmp_path / "grow_split.json"
        args = [
            "serve",
            "--smoke",
            "--workers",
            "2",
            "--grow",
            "4:6",
            "--volumes",
            "12",
            "--seed",
            "9",
            "--json",
            str(out),
        ]
        assert main(args) == 0
        payload = json.loads(out.read_text())
        assert payload["serial_fallback"] is False
        assert payload["scenario"]["volumes"] == 12
        groups = payload["parallel"]["groups"]
        assert [g["arrays"] for g in groups] == [[0, 3, 4], [1], [2, 5]]
        assert [g["migration_volumes"] for g in groups] == [[6, 11], [], [7]]
        assert payload["passed"] is True

    def test_write_policy_flag_reaches_scenario(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "wt.json"
        args = [
            "serve",
            "--smoke",
            "--write-policy",
            "write_through",
            "--json",
            str(out),
        ]
        assert main(args) == 0
        payload = json.loads(out.read_text())
        assert payload["scenario"]["write_policy"] == "write_through"
