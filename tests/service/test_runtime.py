"""The warm runtime: persistent pool + shared-memory transport +
compiled-artifact cache must serve reports **canonically identical** to
the cold serial runner at every window size and worker count — and tear
down without leaking a single ``/dev/shm`` segment."""

import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs import spans_from_payload, summarize_trace
from repro.service import (
    Fleet,
    FleetScenario,
    WarmRuntime,
    canonical_payload,
    default_failure_schedule,
    leaked_segments,
    run_fleet_scenario,
)
from repro.sim import generate_request_stream

REPO_ROOT = Path(__file__).resolve().parents[2]


def _scenario(**overrides):
    base = dict(
        shards=2,
        v=9,
        k=3,
        duration_ms=200.0,
        interarrival_ms=2.0,
        seed=3,
    )
    base.update(overrides)
    return FleetScenario(**base)


def _stream_for(scenario):
    capacity = Fleet(
        scenario.shards, scenario.v, scenario.k, seed=scenario.seed
    ).capacity
    return generate_request_stream(
        scenario.workload(), scenario.duration_ms, capacity
    )


def _canonical(payload):
    return json.dumps(canonical_payload(payload), sort_keys=True)


def _assert_clean(runtime):
    """Post-close oracle: no resident bytes, no segments on disk."""
    runtime.close()
    assert runtime.stats.shm_bytes == 0
    assert leaked_segments(os.getpid()) == []


class TestByteIdentityMatrix:
    """Warm reports vs the cold serial runner, across the full
    window-size x worker-count grid (the tentpole contract)."""

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize(
        "window", [None, 1, 7, 64, 1_000_000], ids=lambda w: f"window={w}"
    )
    def test_warm_matches_cold_serial(self, workers, window):
        scenario = _scenario(window_size=window)
        cold = run_fleet_scenario(scenario).to_dict()
        with WarmRuntime(scenario, workers=workers) as runtime:
            first = runtime.run()
            second = runtime.run()
            assert _canonical(first) == _canonical(cold)
            assert _canonical(second) == _canonical(cold)
            _assert_clean(runtime)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_submitted_stream_matches_batch(self, workers):
        scenario = _scenario()
        stream = _stream_for(scenario)
        batch = run_fleet_scenario(scenario, stream=stream).to_dict()
        with WarmRuntime(scenario, workers=workers) as runtime:
            first = runtime.run(stream=stream)
            second = runtime.run(stream=stream)
            assert _canonical(first) == _canonical(batch)
            assert _canonical(second) == _canonical(batch)
            if workers == 1 or first["parallel"]["workers"] > 1:
                # The repeated submit is the cache's reason to exist.
                assert runtime.stats.compile_cache_hits >= 1
            _assert_clean(runtime)

    def test_windowed_submitted_stream_rides_shared_memory(self):
        """window + submitted stream + workers>1 is the shm_windowed
        task path: raw arrays packed per serve, released after it."""
        scenario = _scenario(window_size=64)
        stream = _stream_for(scenario)
        batch = run_fleet_scenario(scenario, stream=stream).to_dict()
        with WarmRuntime(scenario, workers=2) as runtime:
            for _ in range(2):
                payload = runtime.run(stream=stream)
                assert _canonical(payload) == _canonical(batch)
                # Per-serve stream segments never outlive the serve.
                assert runtime.stats.shm_bytes == 0
            _assert_clean(runtime)

    def test_failures_and_rebuilds_identical(self):
        scenario = _scenario(
            shards=3,
            failures=default_failure_schedule(3, 9, 2, 50.0),
            admission=1,
        )
        cold = run_fleet_scenario(scenario).to_dict()
        with WarmRuntime(scenario, workers=2) as runtime:
            for _ in range(2):
                assert _canonical(runtime.run()) == _canonical(cold)
            _assert_clean(runtime)

    def test_spawn_context_identical(self):
        scenario = _scenario()
        cold = run_fleet_scenario(scenario).to_dict()
        with WarmRuntime(scenario, workers=2, mp_context="spawn") as runtime:
            assert _canonical(runtime.run()) == _canonical(cold)
            assert _canonical(runtime.run()) == _canonical(cold)
            assert runtime.stats.pool_warm_hits == 1
            _assert_clean(runtime)


class TestWarmth:
    """The counters must prove the fast paths actually engaged."""

    def test_pool_and_cache_reuse_across_runs(self):
        with WarmRuntime(_scenario(), workers=2) as runtime:
            runtime.run()
            stats = runtime.stats
            assert stats.pool_cold_boots == 1
            assert stats.compile_cache_misses == 1
            assert stats.shm_bytes > 0
            runtime.run()
            assert stats.pool_warm_hits == 1
            assert stats.compile_cache_hits == 1
            assert stats.compile_cache_misses == 1  # no rebuild
            assert stats.ipc_bytes_avoided > 0
            _assert_clean(runtime)

    def test_artifact_cache_is_bounded_lru(self):
        scenario = _scenario()
        with WarmRuntime(scenario, cache_artifacts=1) as runtime:
            runtime.run()
            one = runtime.stats.shm_bytes
            assert one > 0
            # A different stream evicts the synthetic artifact: the
            # cache holds one artifact, so resident bytes stay bounded
            # and the evicted segment is unlinked immediately.
            runtime.run(stream=_stream_for(scenario))
            assert runtime.stats.compile_cache_misses == 2
            assert len(leaked_segments(os.getpid())) == 1
            _assert_clean(runtime)

    def test_report_carries_runtime_stats_and_canonical_strips_them(self):
        with WarmRuntime(_scenario(), workers=2) as runtime:
            payload = runtime.run()
            assert payload["runtime"]["runs"] == 1
            assert payload["runtime"]["pool_cold_boots"] == 1
            assert "runtime" not in canonical_payload(payload)
            summary = summarize_trace(
                spans_from_payload(payload), runtime=payload["runtime"]
            )
            assert "warm runtime: 1 run(s)" in summary
            _assert_clean(runtime)


class TestInvalidation:
    def test_update_scenario_shape_change_invalidates(self):
        small = _scenario()
        with WarmRuntime(small, workers=2) as runtime:
            baseline = runtime.run()
            assert runtime.stats.shm_bytes > 0
            grown = _scenario(shards=4)
            runtime.update_scenario(grown)
            assert runtime.stats.shm_bytes == 0  # stale slices unlinked
            cold = run_fleet_scenario(grown).to_dict()
            assert _canonical(runtime.run()) == _canonical(cold)
            assert _canonical(runtime.run()) != _canonical(baseline)
            _assert_clean(runtime)

    def test_reshape_run_invalidates_and_stays_identical(self):
        scenario = _scenario(
            duration_ms=400.0, reshape_to=4, reshape_at_ms=100.0
        )
        cold = run_fleet_scenario(scenario).to_dict()
        with WarmRuntime(scenario, workers=2) as runtime:
            for _ in range(2):
                assert _canonical(runtime.run()) == _canonical(cold)
                # Reshape runs must never leave cached slices behind.
                assert runtime.stats.shm_bytes == 0
            _assert_clean(runtime)

    def test_run_after_close_raises(self):
        runtime = WarmRuntime(_scenario())
        runtime.close()
        with pytest.raises(RuntimeError, match="closed"):
            runtime.run()
        runtime.close()  # idempotent


class TestTeardown:
    """No ``/dev/shm`` orphans and no ``resource_tracker`` warnings on
    any exit path (the satellite regression suite)."""

    def _assert_child_clean(self, pid, returncode, err):
        assert returncode == 0, err
        assert "resource_tracker" not in err, err
        assert "Traceback" not in err, err
        assert list(Path("/dev/shm").glob(f"repro_wrt_{pid:x}_*")) == []

    def test_interpreter_exit_without_close_sweeps_segments(self):
        """The atexit net: a runtime abandoned without close() must
        still unlink its segments at interpreter exit."""
        script = textwrap.dedent(
            """
            import os
            from repro.service import FleetScenario, WarmRuntime
            runtime = WarmRuntime(
                FleetScenario(
                    shards=2, v=9, k=3, duration_ms=200.0,
                    interarrival_ms=2.0, seed=3,
                ),
                workers=2,
            )
            runtime.run()
            assert runtime.stats.shm_bytes > 0
            print(f"segments resident in pid {os.getpid()}")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert "segments resident" in proc.stdout
        pid = int(proc.stdout.split()[-1])
        self._assert_child_clean(pid, proc.returncode, proc.stderr)

    def test_sigterm_tears_down_frontend_cleanly(self):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--smoke",
                "--shards",
                "2",
                "--duration",
                "200",
                "--interarrival",
                "2.0",
                "--seed",
                "3",
                "--listen",
                "127.0.0.1:0",
                "--workers",
                "2",
            ],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stderr.readline()
            assert line.startswith("serving on "), line
            host, _, port = line.split()[-1].rpartition(":")
            # One real serve so the pool boots and segments exist.
            with socket.create_connection(
                (host, int(port)), timeout=120
            ) as sock:
                f = sock.makefile("rwb")
                f.write(b'{"op": "run"}\n')
                f.flush()
                reply = json.loads(f.readline())
                assert reply["ok"], reply
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        except BaseException:
            proc.kill()
            raise
        self._assert_child_clean(proc.pid, proc.returncode, line + err)
