"""Fleet routing and serving: partition exactness, determinism,
aggregation, and the analytic fast path."""

import numpy as np
import pytest

from repro.service import Fleet
from repro.sim import WorkloadConfig, simulate_workload
from repro.sim.compile import generate_request_stream


def _stream(fleet, n=500, read_fraction=0.7, seed=11):
    cfg = WorkloadConfig(
        interarrival_ms=1.0, read_fraction=read_fraction, seed=seed
    )
    return generate_request_stream(cfg, float(n), fleet.capacity)


class TestRouting:
    def test_partition_covers_stream_exactly(self):
        fleet = Fleet(4, 9, 3, seed=0)
        times, is_read, lbas = _stream(fleet)
        compiled, shard_ids = fleet.route_stream(times, is_read, lbas)
        assert sum(t.n for t in compiled) == len(times)
        counts = np.bincount(shard_ids, minlength=4)
        assert [t.n for t in compiled] == counts.tolist()

    def test_routing_deterministic_under_fixed_seed(self):
        f1 = Fleet(8, 9, 3, seed=5)
        f2 = Fleet(8, 9, 3, seed=5)
        times, is_read, lbas = _stream(f1)
        _, ids1 = f1.route_stream(times, is_read, lbas)
        _, ids2 = f2.route_stream(times, is_read, lbas)
        assert (ids1 == ids2).all()
        assert f1.shard_map.fingerprint() == f2.shard_map.fingerprint()

    def test_same_volume_routes_to_same_shard(self):
        fleet = Fleet(4, 9, 3, seed=0)
        vu = fleet.volume_units
        lbas = np.array([3 * vu, 3 * vu + 1, 3 * vu + vu - 1], dtype=np.int64)
        n = len(lbas)
        _, ids = fleet.route_stream(
            np.arange(n, dtype=np.float64), np.ones(n, dtype=bool), lbas
        )
        assert len(set(ids.tolist())) == 1

    def test_relative_order_preserved_within_shard(self):
        fleet = Fleet(4, 9, 3, seed=0)
        times, is_read, lbas = _stream(fleet, n=300)
        compiled, shard_ids = fleet.route_stream(times, is_read, lbas)
        for s, trace in enumerate(compiled):
            mask = shard_ids == s
            assert (trace.times == times[mask]).all()
            assert (trace.lbas == lbas[mask] % fleet.shard_capacity).all()


class TestServing:
    def test_single_shard_fleet_matches_simulate_workload(self):
        """A 1-shard fleet is just an array: its report must agree with
        the single-array pipeline on the same compiled stream."""
        fleet = Fleet(1, 9, 3, seed=0)
        cfg = WorkloadConfig(interarrival_ms=2.0, read_fraction=1.0, seed=3)
        rep = fleet.serve_workload(cfg, 400.0)
        solo = simulate_workload(
            fleet.layout, duration_ms=400.0, config=cfg, batched=True
        )
        assert rep.scheduled == solo.scheduled
        assert rep.duration_ms == solo.duration_ms
        assert rep.per_disk_ios[0] == solo.per_disk_ios
        assert rep.latency == solo.latency

    def test_fleet_report_deterministic(self):
        reports = []
        for _ in range(2):
            fleet = Fleet(4, 9, 3, seed=2)
            cfg = WorkloadConfig(interarrival_ms=1.0, read_fraction=0.6, seed=9)
            reports.append(fleet.serve_workload(cfg, 300.0))
        a, b = reports
        assert a.scheduled == b.scheduled
        assert a.duration_ms == b.duration_ms
        assert a.per_shard_scheduled == b.per_shard_scheduled
        assert a.latency == b.latency
        assert a.per_disk_ios == b.per_disk_ios

    def test_read_only_healthy_uses_analytic_solver(self):
        fleet = Fleet(3, 9, 3, seed=0)
        cfg = WorkloadConfig(interarrival_ms=1.0, read_fraction=1.0, seed=4)
        rep = fleet.serve_workload(cfg, 300.0)
        # The solver never runs the event loop.
        assert fleet.sim.events_processed == 0
        assert rep.scheduled > 0
        assert rep.duration_ms > 0

    def test_mixed_serves_through_batch_stepped_executor(self):
        """With an idle clock, mixed traffic executes per shard on the
        calendar-queue executor — the shared event heap never runs."""
        fleet = Fleet(3, 9, 3, seed=0)
        cfg = WorkloadConfig(interarrival_ms=1.0, read_fraction=0.5, seed=4)
        rep = fleet.serve_workload(cfg, 300.0)
        assert fleet.sim.events_processed == 0
        assert rep.scheduled > 0
        kinds = set(rep.latency)
        assert {"read", "write"} <= kinds

    def test_mixed_serves_through_heap_when_timers_armed(self):
        """Anything pending on the shared clock (here: a scheduled
        failure injection) forces the general event-heap path."""
        fleet = Fleet(3, 9, 3, seed=0)
        fleet.sim.schedule(150.0, lambda: fleet.controllers[0].fail_disk(0))
        cfg = WorkloadConfig(interarrival_ms=1.0, read_fraction=0.5, seed=4)
        rep = fleet.serve_workload(cfg, 300.0)
        assert fleet.sim.events_processed > 0
        assert rep.scheduled > 0
        assert fleet.controllers[0].failed_disk == 0

    def test_solver_and_event_path_agree_on_read_only(self):
        """The per-shard analytic fast path must match event-driven
        execution of the same routed traces."""
        cfg = WorkloadConfig(interarrival_ms=1.0, read_fraction=1.0, seed=8)

        fast = Fleet(3, 9, 3, seed=1)
        times, is_read, lbas = generate_request_stream(cfg, 400.0, fast.capacity)
        fast_rep = fast.serve_stream(times, is_read, lbas)

        slow = Fleet(3, 9, 3, seed=1)
        compiled, _ = slow.route_stream(times, is_read, lbas)
        from repro.sim.compile import schedule_compiled

        for ctrl, trace in zip(slow.controllers, compiled):
            schedule_compiled(ctrl, trace)
        slow.sim.run()
        slow_rep = slow._report(
            [t.n for t in compiled],
            start=0.0,
            accs=[
                {kind: st for kind, st in ctrl.latency.items() if st.count}
                for ctrl in slow.controllers
            ],
            ios_base=[[0] * slow.layout.v for _ in slow.controllers],
        )

        assert fast_rep.scheduled == slow_rep.scheduled
        assert fast_rep.duration_ms == slow_rep.duration_ms
        assert fast_rep.per_disk_ios == slow_rep.per_disk_ios
        for kind in fast_rep.latency:
            assert fast_rep.latency[kind]["count"] == (
                slow_rep.latency[kind]["count"]
            )
            assert fast_rep.latency[kind]["mean"] == pytest.approx(
                slow_rep.latency[kind]["mean"]
            )

    def test_throughput_improves_with_shards(self):
        cfg = WorkloadConfig(interarrival_ms=0.3, read_fraction=0.9, seed=7)
        one = Fleet(1, 9, 3, seed=0).serve_workload(cfg, 1000.0)
        eight = Fleet(8, 9, 3, seed=0).serve_workload(cfg, 1000.0)
        assert eight.scheduled == one.scheduled
        assert eight.throughput_rps > 1.5 * one.throughput_rps

    def test_repeated_serves_report_independently(self):
        """A long-lived fleet serves many streams; each report must
        cover its own stream only, not cumulative controller state."""
        fleet = Fleet(2, 9, 3, seed=0)
        cfg = WorkloadConfig(interarrival_ms=1.0, read_fraction=0.8, seed=6)
        first = fleet.serve_workload(cfg, 200.0)
        second = fleet.serve_workload(cfg, 200.0)
        assert second.scheduled == first.scheduled
        for kind, summary in second.latency.items():
            assert summary["count"] == first.latency[kind]["count"]
        total_first = sum(sum(d) for d in first.per_disk_ios)
        total_second = sum(sum(d) for d in second.per_disk_ios)
        assert total_second == total_first

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Fleet(0, 9, 3)
        fleet = Fleet(2, 9, 3)
        with pytest.raises(ValueError):
            fleet.serve_compiled([])
