"""Failure orchestration: concurrent multi-array rebuilds, bit-for-bit
verification, and the admission-control knob."""

import pytest

from repro.service import (
    FailureEvent,
    FailureOrchestrator,
    Fleet,
    default_failure_schedule,
)
from repro.sim import WorkloadConfig


def _run(fleet, failures, admission=2, duration_ms=600.0, read_fraction=0.7):
    orch = FailureOrchestrator(fleet, failures, admission=admission)
    orch.arm()
    cfg = WorkloadConfig(
        interarrival_ms=1.0, read_fraction=read_fraction, seed=13
    )
    fleet.serve_workload(cfg, duration_ms)
    fleet.sim.run()
    return orch


class TestConcurrentFailures:
    @pytest.mark.parametrize("k_failures", [2, 3, 5])
    def test_simultaneous_failures_all_rebuild_bit_for_bit(self, k_failures):
        """The satellite property: K simultaneous single-disk failures
        in different arrays, under live traffic, all rebuild and every
        rebuilt image matches the data plane bit for bit."""
        fleet = Fleet(8, 9, 3, dataplane=True, seed=0)
        failures = default_failure_schedule(8, 9, k_failures, 150.0)
        orch = _run(fleet, failures, admission=k_failures)
        assert orch.done
        assert len(orch.outcomes) == k_failures
        assert all(o.report.data_verified is True for o in orch.outcomes)
        assert orch.all_verified
        rebuilt_arrays = {o.array for o in orch.outcomes}
        assert len(rebuilt_arrays) == k_failures

    def test_rebuild_reads_only_survivors(self):
        fleet = Fleet(4, 9, 3, dataplane=True, seed=0)
        orch = _run(fleet, (FailureEvent(100.0, 2, 5),))
        (outcome,) = orch.outcomes
        assert outcome.array == 2
        assert outcome.report.failed_disk == 5
        assert outcome.report.units_read_per_disk[5] == 0
        assert outcome.report.stripes_rebuilt > 0

    def test_outcomes_deterministic(self):
        runs = []
        for _ in range(2):
            fleet = Fleet(6, 9, 3, dataplane=True, seed=4)
            orch = _run(fleet, default_failure_schedule(6, 9, 3, 120.0))
            runs.append(
                [
                    (o.array, o.failed_disk, o.started_at_ms,
                     o.report.duration_ms, o.report.stripes_rebuilt)
                    for o in orch.outcomes
                ]
            )
        assert runs[0] == runs[1]


class TestAdmissionControl:
    def test_admission_one_serializes_rebuilds(self):
        fleet = Fleet(6, 9, 3, dataplane=True, seed=0)
        failures = default_failure_schedule(6, 9, 3, 100.0)
        orch = _run(fleet, failures, admission=1)
        assert orch.done and orch.all_verified
        assert orch.max_concurrent_observed() == 1
        # Later rebuilds waited for the slot.
        delays = sorted(o.admission_delay_ms for o in orch.outcomes)
        assert delays[0] == 0.0
        assert delays[-1] > 0.0
        # No two rebuild intervals overlap.
        intervals = sorted(
            (o.started_at_ms, o.started_at_ms + o.report.duration_ms)
            for o in orch.outcomes
        )
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert start >= end

    def test_admission_k_runs_concurrently(self):
        fleet = Fleet(6, 9, 3, dataplane=True, seed=0)
        failures = default_failure_schedule(6, 9, 3, 100.0)
        orch = _run(fleet, failures, admission=3)
        assert orch.done and orch.all_verified
        assert orch.max_concurrent_observed() == 3
        assert all(o.admission_delay_ms == 0.0 for o in orch.outcomes)

    def test_admission_limits_peak_concurrency(self):
        fleet = Fleet(8, 9, 3, dataplane=True, seed=0)
        failures = default_failure_schedule(8, 9, 4, 100.0)
        orch = _run(fleet, failures, admission=2)
        assert orch.done and orch.all_verified
        assert orch.max_concurrent_observed() <= 2


class TestValidation:
    def test_rejects_bad_targets(self):
        fleet = Fleet(2, 9, 3)
        with pytest.raises(ValueError):
            FailureOrchestrator(fleet, (FailureEvent(0.0, 2, 0),))
        with pytest.raises(ValueError):
            FailureOrchestrator(fleet, (FailureEvent(0.0, 0, 9),))
        with pytest.raises(ValueError):
            FailureOrchestrator(fleet, (FailureEvent(-1.0, 0, 0),))
        with pytest.raises(ValueError):
            FailureOrchestrator(
                fleet, (FailureEvent(0.0, 1, 0), FailureEvent(5.0, 1, 1))
            )
        with pytest.raises(ValueError):
            FailureOrchestrator(fleet, (), admission=0)

    def test_double_arm_rejected(self):
        fleet = Fleet(2, 9, 3)
        orch = FailureOrchestrator(fleet, ())
        orch.arm()
        with pytest.raises(RuntimeError):
            orch.arm()

    def test_schedule_overflow_rejected(self):
        with pytest.raises(ValueError):
            default_failure_schedule(2, 9, 3, 100.0)
