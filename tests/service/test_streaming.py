"""Fleet-level streaming: ``serve_windows`` / ``serve_workload(
window_size=...)`` / the scenario ``window_size`` knob, serial and
multi-process.

The contract: a windowed serve is byte-identical to the materialized
serve of the same stream — through the carry engines (idle clock), the
window router (armed rebuild timers, live migration, data planes),
and the parallel runner's per-group window pumps.  Scenario payloads
are compared in canonical JSON form; the windowed scenario echoes its
``window_size``, so scenario-vs-scenario comparisons strip that one
field (everything below the echo must match byte for byte).
"""

import json
from dataclasses import asdict

import pytest

from repro.service import (
    Fleet,
    FleetScenario,
    canonical_payload,
    default_failure_schedule,
    run_fleet_scenario,
)
from repro.sim import WorkloadConfig

DURATION = 400.0
WINDOW_SIZES = (1, 13, 64, 10**6)


def _canon(payload: dict, *, ignore_window: bool = False) -> str:
    canon = canonical_payload(payload)
    if ignore_window:
        canon["scenario"] = {
            k: v for k, v in canon["scenario"].items() if k != "window_size"
        }
        # Engine labels legitimately differ between windowed and
        # materialized serves of the same scenario ("windowed-solver"
        # vs "solver", ...); the byte-identity contract covers them
        # only within one execution mode.
        canon.pop("engine", None)
        canon.pop("engine_per_shard", None)
    return json.dumps(canon, sort_keys=True)


def _workload(**overrides) -> WorkloadConfig:
    base = dict(interarrival_ms=1.0, read_fraction=0.7, seed=3)
    base.update(overrides)
    return WorkloadConfig(**base)


#: (id, Fleet kwargs, workload) — one per serve_windows mode: the two
#: carry engines (eager / solver), the router forced by data planes,
#: the single-phase write-through fleet, and a non-ring placement.
FLEET_CASES = [
    ("mixed_carry_eager", dict(dataplane=False), _workload()),
    ("read_only_solver", dict(dataplane=False), _workload(read_fraction=1.0)),
    ("dataplane_router", dict(dataplane=True), _workload()),
    (
        "write_through_solver",
        dict(dataplane=False, write_policy="write_through"),
        _workload(),
    ),
    ("p2c_placement", dict(dataplane=False, placement="p2c"), _workload()),
]


class TestServeWindowEquality:
    @pytest.mark.parametrize(
        "kwargs,config",
        [(c[1], c[2]) for c in FLEET_CASES],
        ids=[c[0] for c in FLEET_CASES],
    )
    def test_matches_materialized_at_every_window_size(self, kwargs, config):
        materialized = asdict(
            Fleet(3, 9, 3, seed=0, **kwargs).serve_workload(config, DURATION)
        )
        for ws in WINDOW_SIZES:
            windowed = asdict(
                Fleet(3, 9, 3, seed=0, **kwargs).serve_workload(
                    config, DURATION, window_size=ws
                )
            )
            assert windowed == materialized, ws


def _scenario(**overrides) -> FleetScenario:
    base = dict(
        shards=4,
        v=9,
        k=3,
        duration_ms=300.0,
        interarrival_ms=1.0,
        read_fraction=0.7,
        admission=2,
        verify_data=True,
    )
    base.update(overrides)
    return FleetScenario(**base)


#: (id, scenario overrides) — healthy carry, rebuilds interleaving
#: with the router mid-stream, and a reshape cutting volumes over
#: mid-stream (window boundaries land mid-rebuild and mid-copy).
SCENARIO_CASES = [
    ("healthy", {}),
    ("rebuilds_mid_stream", dict(failures=default_failure_schedule(4, 9, 2, 80.0))),
    (
        "reshape_mid_stream",
        dict(duration_ms=DURATION, reshape_to=6, volumes=12, seed=9),
    ),
]


class TestScenarioWindowed:
    @pytest.mark.parametrize(
        "overrides",
        [c[1] for c in SCENARIO_CASES],
        ids=[c[0] for c in SCENARIO_CASES],
    )
    def test_windowed_scenario_matches_materialized(self, overrides):
        materialized = _canon(
            run_fleet_scenario(_scenario(**overrides)).to_dict(),
            ignore_window=True,
        )
        for ws in (64, 1024):
            windowed = _canon(
                run_fleet_scenario(
                    _scenario(window_size=ws, **overrides)
                ).to_dict(),
                ignore_window=True,
            )
            assert windowed == materialized, ws

    def test_windowed_scenario_still_passes_gates(self):
        report = run_fleet_scenario(
            _scenario(
                window_size=128,
                failures=default_failure_schedule(4, 9, 2, 80.0),
            )
        )
        assert report.passed
        assert report.all_rebuilt_verified
        assert len(report.rebuilds) == 2
