"""ShardMap: determinism, balance, bounded load, consistency,
placement policies, and resize edge cases."""

import numpy as np
import pytest

from repro.service import PLACEMENT_POLICIES, ShardMap, splitmix64


class TestSplitmix64:
    def test_deterministic_and_seed_sensitive(self):
        x = np.arange(100, dtype=np.uint64)
        a = splitmix64(x, seed=1)
        b = splitmix64(x, seed=1)
        c = splitmix64(x, seed=2)
        assert (a == b).all()
        assert (a != c).any()

    def test_bijective_on_sample(self):
        x = np.arange(10_000, dtype=np.uint64)
        assert len(np.unique(splitmix64(x))) == len(x)


class TestShardMap:
    def test_assignment_deterministic_under_fixed_seed(self):
        a = ShardMap(8, 128, seed=42)
        b = ShardMap(8, 128, seed=42)
        assert (a.assignment() == b.assignment()).all()
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_placement(self):
        a = ShardMap(8, 128, seed=1)
        b = ShardMap(8, 128, seed=2)
        assert (a.assignment() != b.assignment()).any()

    def test_every_volume_assigned_in_range(self):
        m = ShardMap(5, 77, seed=0)
        assignment = m.assignment()
        assert assignment.shape == (77,)
        assert assignment.min() >= 0 and assignment.max() < 5

    def test_bounded_load(self):
        for shards, volumes in [(8, 64), (8, 128), (4, 100), (16, 256)]:
            m = ShardMap(shards, volumes, seed=3)
            cap = -(-volumes * m.load_factor // shards)
            assert m.volume_counts().max() <= cap
            assert m.volume_counts().sum() == volumes

    def test_shard_of_volume_vectorized_matches_table(self):
        m = ShardMap(6, 90, seed=5)
        vols = np.arange(90, dtype=np.int64)
        assert (m.shard_of_volume(vols) == m.assignment()).all()
        assert int(m.shard_of_volume(17)[0]) == int(m.assignment()[17])

    def test_out_of_range_volume_raises(self):
        m = ShardMap(4, 10, seed=0)
        with pytest.raises(IndexError):
            m.shard_of_volume(np.array([10]))
        with pytest.raises(IndexError):
            m.shard_of_volume(np.array([-1]))

    def test_consistency_under_shard_growth(self):
        """Adding shards moves some volumes but most stay put — the
        consistent-hashing property modulo the load rebound."""
        small = ShardMap(8, 256, seed=9).assignment()
        grown = ShardMap(9, 256, seed=9).assignment()
        moved = int((small != grown).sum())
        # Modulo placement would move ~8/9 of volumes; the ring moves
        # far fewer (1/9 ideal, plus bounded-load spill).
        assert moved < 256 // 2

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            ShardMap(0, 10)
        with pytest.raises(ValueError):
            ShardMap(2, 0)
        with pytest.raises(ValueError):
            ShardMap(2, 10, replicas=0)
        with pytest.raises(ValueError):
            ShardMap(2, 10, load_factor=0.5)
        with pytest.raises(ValueError):
            ShardMap(2, 10, policy="round-robin")
        with pytest.raises(ValueError):
            ShardMap(2, 10, weights=np.ones(9))
        with pytest.raises(ValueError):
            ShardMap(2, 10, weights=-np.ones(10))


class TestPlacementPolicies:
    def test_every_policy_deterministic_and_covering(self):
        for policy in PLACEMENT_POLICIES:
            a = ShardMap(8, 128, seed=4, policy=policy)
            b = ShardMap(8, 128, seed=4, policy=policy)
            assert (a.assignment() == b.assignment()).all()
            assert a.volume_counts().sum() == 128
            assert 0 <= a.assignment().min() <= a.assignment().max() < 8

    def test_p2c_tightens_weighted_balance(self):
        # Weight the live prefix only (the fleet's extent weighting):
        # p2c must balance the *weighted* load far tighter than the
        # ring baseline does.
        w = np.zeros(128)
        w[:96] = 1.0
        ring = ShardMap(8, 128, seed=0, policy="ring", weights=w)
        p2c = ShardMap(8, 128, seed=0, policy="p2c", weights=w)
        ring_spread = ring.weight_per_shard()
        p2c_spread = p2c.weight_per_shard()
        assert p2c_spread.max() - p2c_spread.min() <= 3
        assert (
            p2c_spread.max() - p2c_spread.min()
            < ring_spread.max() - ring_spread.min()
        )

    def test_weighted_policy_near_perfect_balance(self):
        w = np.zeros(128)
        w[:96] = 1.0
        m = ShardMap(8, 128, seed=0, policy="weighted", weights=w)
        spread = m.weight_per_shard()
        assert spread.max() - spread.min() <= 1

    def test_weighted_respects_unequal_weights(self):
        w = np.array([8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        m = ShardMap(2, 8, seed=0, policy="weighted", weights=w)
        spread = m.weight_per_shard()
        # LPT on this instance balances within the smallest weight.
        assert spread.max() - spread.min() <= 1.0


class TestResizeEdges:
    def test_reshaped_preserves_policy_and_weights(self):
        w = np.linspace(0, 1, 64)
        m = ShardMap(4, 64, seed=2, policy="p2c", weights=w)
        g = m.reshaped(8)
        assert g.shards == 8
        assert g.policy == "p2c"
        assert (g._weights == w).all()

    def test_shrink_to_single_shard(self):
        # Shrinking below the ring's replication factor (replicas per
        # shard) is fine — a 1-shard map still owns every volume.
        m = ShardMap(8, 64, seed=1, replicas=64)
        one = m.reshaped(1)
        assert (one.assignment() == 0).all()
        assert len(m.moved_volumes(one)) == int((m.assignment() != 0).sum())

    def test_shrink_to_zero_raises(self):
        with pytest.raises(ValueError):
            ShardMap(4, 64, seed=1).reshaped(0)

    def test_readding_removed_shard_id_restores_placement(self):
        # Placement is a pure function of (shards, volumes, seed, ...):
        # growing back to a previously used shard count reproduces the
        # original assignment bit for bit, for every policy.
        for policy in PLACEMENT_POLICIES:
            m = ShardMap(8, 128, seed=5, policy=policy)
            back = m.reshaped(7).reshaped(8)
            assert (back.assignment() == m.assignment()).all()
            assert back.fingerprint() == m.fingerprint()

    def test_moved_volume_set_deterministic_under_seed(self):
        for policy in PLACEMENT_POLICIES:
            a1 = ShardMap(4, 64, seed=9, policy=policy)
            a2 = ShardMap(4, 64, seed=9, policy=policy)
            moved1 = a1.moved_volumes(a1.reshaped(8))
            moved2 = a2.moved_volumes(a2.reshaped(8))
            assert (moved1 == moved2).all()

    def test_ring_growth_moves_few_volumes(self):
        m = ShardMap(8, 256, seed=9)
        moved = m.moved_volumes(m.reshaped(9))
        assert 0 < len(moved) < 256 // 2

    def test_moved_volumes_mismatched_maps_raise(self):
        with pytest.raises(ValueError):
            ShardMap(4, 64).moved_volumes(ShardMap(4, 65))
