"""ShardMap: determinism, balance, bounded load, consistency."""

import numpy as np
import pytest

from repro.service import ShardMap, splitmix64


class TestSplitmix64:
    def test_deterministic_and_seed_sensitive(self):
        x = np.arange(100, dtype=np.uint64)
        a = splitmix64(x, seed=1)
        b = splitmix64(x, seed=1)
        c = splitmix64(x, seed=2)
        assert (a == b).all()
        assert (a != c).any()

    def test_bijective_on_sample(self):
        x = np.arange(10_000, dtype=np.uint64)
        assert len(np.unique(splitmix64(x))) == len(x)


class TestShardMap:
    def test_assignment_deterministic_under_fixed_seed(self):
        a = ShardMap(8, 128, seed=42)
        b = ShardMap(8, 128, seed=42)
        assert (a.assignment() == b.assignment()).all()
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_placement(self):
        a = ShardMap(8, 128, seed=1)
        b = ShardMap(8, 128, seed=2)
        assert (a.assignment() != b.assignment()).any()

    def test_every_volume_assigned_in_range(self):
        m = ShardMap(5, 77, seed=0)
        assignment = m.assignment()
        assert assignment.shape == (77,)
        assert assignment.min() >= 0 and assignment.max() < 5

    def test_bounded_load(self):
        for shards, volumes in [(8, 64), (8, 128), (4, 100), (16, 256)]:
            m = ShardMap(shards, volumes, seed=3)
            cap = -(-volumes * m.load_factor // shards)
            assert m.volume_counts().max() <= cap
            assert m.volume_counts().sum() == volumes

    def test_shard_of_volume_vectorized_matches_table(self):
        m = ShardMap(6, 90, seed=5)
        vols = np.arange(90, dtype=np.int64)
        assert (m.shard_of_volume(vols) == m.assignment()).all()
        assert int(m.shard_of_volume(17)[0]) == int(m.assignment()[17])

    def test_out_of_range_volume_raises(self):
        m = ShardMap(4, 10, seed=0)
        with pytest.raises(IndexError):
            m.shard_of_volume(np.array([10]))
        with pytest.raises(IndexError):
            m.shard_of_volume(np.array([-1]))

    def test_consistency_under_shard_growth(self):
        """Adding shards moves some volumes but most stay put — the
        consistent-hashing property modulo the load rebound."""
        small = ShardMap(8, 256, seed=9).assignment()
        grown = ShardMap(9, 256, seed=9).assignment()
        moved = int((small != grown).sum())
        # Modulo placement would move ~8/9 of volumes; the ring moves
        # far fewer (1/9 ideal, plus bounded-load spill).
        assert moved < 256 // 2

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            ShardMap(0, 10)
        with pytest.raises(ValueError):
            ShardMap(2, 0)
        with pytest.raises(ValueError):
            ShardMap(2, 10, replicas=0)
        with pytest.raises(ValueError):
            ShardMap(2, 10, load_factor=0.5)
