"""The socket front-end: streams submitted over a local socket must
produce reports canonically identical to the equivalent batch run —
the front-end adds transport, never semantics."""

import asyncio
import json

import pytest

from repro.service import (
    AutoscalePolicy,
    Fleet,
    FleetScenario,
    ServiceFrontend,
    canonical_payload,
    run_fleet_scenario,
)
from repro.sim import generate_request_stream


def _scenario(**overrides):
    base = dict(
        shards=2,
        v=9,
        k=3,
        duration_ms=200.0,
        interarrival_ms=2.0,
        seed=3,
        window_size=64,
    )
    base.update(overrides)
    return FleetScenario(**base)


def _stream_for(scenario):
    capacity = Fleet(
        scenario.shards, scenario.v, scenario.k, seed=scenario.seed
    ).capacity
    return generate_request_stream(
        scenario.workload(), scenario.duration_ms, capacity
    )


def _canonical(payload):
    return json.dumps(canonical_payload(payload), sort_keys=True)


async def _client(frontend):
    host, port = frontend.address
    reader, writer = await asyncio.open_connection(host, port)

    async def rpc(obj):
        writer.write(json.dumps(obj).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())

    return rpc, writer


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


class TestFrontend:
    def test_socket_stream_matches_batch_report(self):
        """The tentpole identity: a stream submitted in chunks over the
        socket serves canonically identical to the same stream run
        directly through the scenario runner."""
        scenario = _scenario()
        times, is_read, lbas = _stream_for(scenario)
        batch = run_fleet_scenario(
            scenario, stream=(times, is_read, lbas)
        ).to_dict()

        async def main():
            frontend = ServiceFrontend(scenario)
            await frontend.start()
            try:
                rpc, writer = await _client(frontend)
                mid = len(times) // 2
                for lo, hi in ((0, mid), (mid, len(times))):
                    reply = await rpc({
                        "op": "submit",
                        "times": times[lo:hi].tolist(),
                        "is_read": is_read[lo:hi].tolist(),
                        "lbas": lbas[lo:hi].tolist(),
                    })
                    assert reply["ok"], reply
                assert reply["buffered"] == len(times)
                served = await rpc({"op": "serve"})
                assert served["ok"], served
                writer.close()
                return served["report"]
            finally:
                await frontend.close()

        served = _run(main())
        assert _canonical(served) == _canonical(batch)

    def test_warm_resubmit_is_identical_and_provably_warm(self):
        """The warm-runtime identity over the socket: the same stream
        submitted twice through a 2-process pool serves two canonically
        identical reports (warm == cold == batch), and the ping stats
        prove the pool and the compiled-artifact cache were reused."""
        scenario = _scenario(window_size=None)
        times, is_read, lbas = _stream_for(scenario)
        batch = run_fleet_scenario(
            scenario, stream=(times, is_read, lbas)
        ).to_dict()

        async def main():
            frontend = ServiceFrontend(scenario, workers=2)
            await frontend.start()
            try:
                rpc, writer = await _client(frontend)
                reports = []
                for _ in range(2):
                    mid = len(times) // 2
                    for lo, hi in ((0, mid), (mid, len(times))):
                        reply = await rpc({
                            "op": "submit",
                            "times": times[lo:hi].tolist(),
                            "is_read": is_read[lo:hi].tolist(),
                            "lbas": lbas[lo:hi].tolist(),
                        })
                        assert reply["ok"], reply
                    served = await rpc({"op": "serve"})
                    assert served["ok"], served
                    reports.append(served["report"])
                ping = await rpc({"op": "ping"})
                writer.close()
                return reports, ping
            finally:
                await frontend.close()

        (cold, warm), ping = _run(main())
        assert _canonical(cold) == _canonical(batch)
        assert _canonical(warm) == _canonical(cold)
        assert ping["workers"] == 2
        assert ping["runtime"]["pool_warm_hits"] >= 1
        assert ping["runtime"]["compile_cache_hits"] >= 1

    def test_run_op_matches_run_fleet_scenario(self):
        """Regression pin: the ``run`` op (no submitted stream) returns
        the scenario's own report byte-identically — a disabled
        autoscaler and the socket hop change nothing."""
        scenario = _scenario()
        direct = run_fleet_scenario(scenario).to_dict()
        assert direct["autoscale"] is None

        async def main():
            frontend = ServiceFrontend(scenario)
            await frontend.start()
            try:
                rpc, writer = await _client(frontend)
                reply = await rpc({"op": "run"})
                assert reply["ok"], reply
                writer.close()
                return reply["report"]
            finally:
                await frontend.close()

        assert _canonical(_run(main())) == _canonical(direct)

    def test_autoscaled_scenario_serves_through_socket(self):
        scenario = _scenario(
            duration_ms=600.0,
            interarrival_ms=0.5,
            seed=7,
            window_size=None,
            autoscale=AutoscalePolicy(
                cadence_ms=50.0,
                high_rate=0.5,
                sustain_ticks=2,
                cooldown_ms=200.0,
                grow_step=2,
                max_shards=8,
            ),
        )
        direct = run_fleet_scenario(scenario).to_dict()

        async def main():
            frontend = ServiceFrontend(scenario)
            await frontend.start()
            try:
                rpc, writer = await _client(frontend)
                ping = await rpc({"op": "ping"})
                assert ping["scenario"]["autoscale"] is True
                reply = await rpc({"op": "run"})
                writer.close()
                return reply["report"]
            finally:
                await frontend.close()

        report = _run(main())
        assert report["autoscale"]["ok"] is True
        assert len(report["autoscale"]["events"]) == 1
        assert _canonical(report) == _canonical(direct)

    def test_protocol_errors_keep_connection_usable(self):
        scenario = _scenario()

        async def main():
            frontend = ServiceFrontend(scenario)
            await frontend.start()
            try:
                rpc, writer = await _client(frontend)
                checks = []
                checks.append(await rpc({"op": "nope"}))
                checks.append(await rpc({"op": "serve"}))  # nothing buffered
                checks.append(await rpc({
                    "op": "submit",
                    "times": [1.0, 2.0],
                    "is_read": [True],
                    "lbas": [0, 0],
                }))
                checks.append(await rpc({
                    "op": "submit",
                    "times": [2.0, 1.0],
                    "is_read": [True, True],
                    "lbas": [0, 0],
                }))
                # Out-of-order chunk: ends at 5.0, next starts at 1.0.
                first = await rpc({
                    "op": "submit",
                    "times": [1.0, 5.0],
                    "is_read": [True, True],
                    "lbas": [0, 0],
                })
                assert first["ok"]
                checks.append(await rpc({
                    "op": "submit",
                    "times": [1.0],
                    "is_read": [True],
                    "lbas": [0],
                }))
                assert all(not c["ok"] and c["error"] for c in checks)
                # The connection survived every error; reset + ping work.
                reset = await rpc({"op": "reset"})
                assert reset["ok"] and reset["buffered"] == 0
                ping = await rpc({"op": "ping"})
                assert ping["ok"] and ping["buffered"] == 0
                writer.close()
            finally:
                await frontend.close()

        _run(main())

    def test_shutdown_op_closes_the_listener(self):
        scenario = _scenario()

        async def main():
            frontend = ServiceFrontend(scenario)
            await frontend.start()
            rpc, writer = await _client(frontend)
            reply = await rpc({"op": "shutdown"})
            assert reply["ok"]
            writer.close()
            await asyncio.wait_for(frontend.wait_closed(), timeout=10)

        _run(main())

    def test_reset_drops_buffered_chunks(self):
        scenario = _scenario()

        async def main():
            frontend = ServiceFrontend(scenario)
            await frontend.start()
            try:
                rpc, writer = await _client(frontend)
                await rpc({
                    "op": "submit",
                    "times": [1.0],
                    "is_read": [True],
                    "lbas": [0],
                })
                await rpc({"op": "reset"})
                reply = await rpc({"op": "serve"})
                assert not reply["ok"]
                assert "no buffered requests" in reply["error"]
                writer.close()
            finally:
                await frontend.close()

        _run(main())
