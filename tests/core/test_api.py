"""Tests for the top-level API."""

import pytest

import repro


class TestApi:
    def test_build_design(self):
        d = repro.build_design(9, 3)
        d.verify()
        assert (d.v, d.k) == (9, 3)

    def test_build_layout_and_evaluate(self):
        lay = repro.build_layout(13, 4)
        lay.validate()
        m = repro.evaluate(lay)
        assert m.v == 13
        assert "v=13" in m.summary()

    def test_plan_without_building(self):
        p = repro.plan(10, 4)
        assert p.v == 10 and p.k == 4
        assert p.predicted_size > 0

    def test_build_layout_unsatisfiable(self):
        with pytest.raises(ValueError):
            repro.build_layout(9, 3, max_size=1)

    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
