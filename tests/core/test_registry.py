"""Tests for the LRU-cached layout/mapper registry."""

import pytest

from repro.core import (
    NoFeasiblePlanError,
    clear_registry,
    get_layout,
    get_mapper,
    get_plan,
    plan_layout,
    registry_stats,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    clear_registry()
    yield
    clear_registry()


class TestRegistry:
    def test_repeat_requests_share_one_layout(self):
        first = get_layout(9, 3)
        second = get_layout(9, 3)
        assert first is second
        hits, misses, _, size = registry_stats()["layout"]
        assert (hits, misses, size) == (1, 1, 1)

    def test_cached_plan_matches_uncached(self):
        cached = get_plan(13, 4)
        direct = plan_layout(13, 4)
        assert (cached.method, cached.predicted_size) == (
            direct.method,
            direct.predicted_size,
        )

    def test_mappers_keyed_by_layout_value(self):
        lay = get_layout(9, 3)
        assert get_mapper(lay) is get_mapper(lay)
        assert get_mapper(lay, iterations=2) is not get_mapper(lay)
        assert get_mapper(lay, iterations=2).capacity == 2 * get_mapper(lay).capacity

    def test_distinct_budgets_are_distinct_entries(self):
        small = get_layout(9, 3, max_size=10)
        default = get_layout(9, 3)
        assert small.size <= 10
        assert registry_stats()["layout"][3] == 2 or small is default

    def test_layouts_come_validated(self):
        get_layout(24, 5).validate()  # second validate stays cheap/true

    def test_infeasible_request_propagates_structured_error(self):
        with pytest.raises(NoFeasiblePlanError):
            get_layout(33, 5, max_size=50)

    def test_clear_registry_resets_stats(self):
        get_layout(9, 3)
        clear_registry()
        for hits, misses, _, size in registry_stats().values():
            assert (hits, misses, size) == (0, 0, 0)
