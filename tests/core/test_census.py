"""Tests for the feasibility census."""

from repro.core import census


class TestCensus:
    def test_counts_consistent(self):
        c = census(list(range(5, 30)), list(range(2, 8)))
        assert c.total_pairs > 0
        for n in c.per_method.values():
            assert 0 < n <= c.total_pairs
        assert c.any_method <= c.total_pairs
        assert c.any_method >= max(c.per_method.values())

    def test_stairway_dominates_coverage(self):
        # The paper's claim: approximate layouts cover far more (v, k)
        # pairs than exact BIBD methods.
        c = census(list(range(20, 80)), list(range(2, 10)))
        assert c.per_method["stairway"] > c.per_method.get("ring", 0)
        assert c.per_method["stairway"] > c.per_method.get("hg_complete", 0)

    def test_tight_limit_shrinks_counts(self):
        vs, ks = list(range(5, 40)), list(range(2, 8))
        generous = census(vs, ks, limit=10_000)
        tight = census(vs, ks, limit=100)
        for m, n in tight.per_method.items():
            assert n <= generous.per_method.get(m, 0)

    def test_k_ge_v_excluded(self):
        c = census([5], [2, 3, 4, 5, 6])
        assert c.total_pairs == 3  # k in {2, 3, 4} only

    def test_table_renders(self):
        c = census(list(range(5, 15)), [2, 3])
        text = c.table()
        assert "ANY" in text and "method" in text
