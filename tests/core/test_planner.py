"""Tests for the layout planner."""

import pytest

from repro.core import enumerate_plans, plan_layout
from repro.layouts import evaluate_layout


class TestEnumeratePlans:
    def test_sorted_by_size(self):
        plans = enumerate_plans(9, 3)
        sizes = [p.predicted_size for p in plans]
        assert sizes == sorted(sizes)

    def test_prime_power_v_has_ring(self):
        methods = {p.method for p in enumerate_plans(9, 3)}
        assert "ring" in methods

    def test_composite_v_big_k_uses_perturbations(self):
        # v=33=3*11, k=5 > M(33)=3: only stairway/removal/complete apply.
        methods = {p.method for p in enumerate_plans(33, 5)}
        assert "ring" not in methods
        assert "stairway" in methods

    def test_removal_candidate_when_v_plus_one_prime_power(self):
        plans = {p.method: p for p in enumerate_plans(24, 5)}
        assert plans["removal"].detail == {"source_v": 25, "removed": 1}
        assert plans["removal"].balanced

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            enumerate_plans(5, 1)
        with pytest.raises(ValueError):
            enumerate_plans(5, 6)


class TestPlanLayout:
    @pytest.mark.parametrize("v,k", [(9, 3), (10, 4), (11, 4), (12, 3), (13, 4), (24, 5), (33, 5)])
    def test_plan_builds_and_validates(self, v, k):
        p = plan_layout(v, k)
        lay = p.build()
        lay.validate()
        assert lay.v == v
        assert lay.size <= p.predicted_size
        m = evaluate_layout(lay)
        assert m.k_max <= k  # stripes never exceed the requested size

    def test_balanced_plan_is_balanced(self):
        p = plan_layout(9, 3, require_balanced=True)
        assert p.balanced
        assert evaluate_layout(p.build()).parity_balanced

    def test_max_size_respected(self):
        p = plan_layout(9, 3, max_size=100)
        assert p.predicted_size <= 100

    def test_unsatisfiable_budget(self):
        with pytest.raises(ValueError, match="no feasible layout"):
            plan_layout(9, 3, max_size=1)

    def test_smaller_budget_changes_method(self):
        generous = plan_layout(33, 5, max_size=100_000)
        # Budget below the stairway size forces a different (or no) method.
        assert generous.predicted_size <= 100_000

    def test_balanced_requirement_can_change_choice(self):
        free = plan_layout(9, 3)
        balanced = plan_layout(9, 3, require_balanced=True)
        assert balanced.balanced
        assert balanced.predicted_size >= free.predicted_size
