"""Tests for the layout planner."""

import pytest

from repro.core import enumerate_plans, plan_layout
from repro.layouts import evaluate_layout


class TestEnumeratePlans:
    def test_sorted_by_size(self):
        plans = enumerate_plans(9, 3)
        sizes = [p.predicted_size for p in plans]
        assert sizes == sorted(sizes)

    def test_prime_power_v_has_ring(self):
        methods = {p.method for p in enumerate_plans(9, 3)}
        assert "ring" in methods

    def test_composite_v_big_k_uses_perturbations(self):
        # v=33=3*11, k=5 > M(33)=3: only stairway/removal/complete apply.
        methods = {p.method for p in enumerate_plans(33, 5)}
        assert "ring" not in methods
        assert "stairway" in methods

    def test_removal_candidate_when_v_plus_one_prime_power(self):
        plans = {p.method: p for p in enumerate_plans(24, 5)}
        assert plans["removal"].detail == {"source_v": 25, "removed": 1}
        assert plans["removal"].balanced

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            enumerate_plans(5, 1)
        with pytest.raises(ValueError):
            enumerate_plans(5, 6)


class TestPlanLayout:
    @pytest.mark.parametrize("v,k", [(9, 3), (10, 4), (11, 4), (12, 3), (13, 4), (24, 5), (33, 5)])
    def test_plan_builds_and_validates(self, v, k):
        p = plan_layout(v, k)
        lay = p.build()
        lay.validate()
        assert lay.v == v
        assert lay.size <= p.predicted_size
        m = evaluate_layout(lay)
        assert m.k_max <= k  # stripes never exceed the requested size

    def test_balanced_plan_is_balanced(self):
        p = plan_layout(9, 3, require_balanced=True)
        assert p.balanced
        assert evaluate_layout(p.build()).parity_balanced

    def test_max_size_respected(self):
        p = plan_layout(9, 3, max_size=100)
        assert p.predicted_size <= 100

    def test_unsatisfiable_budget(self):
        with pytest.raises(ValueError, match="no feasible layout"):
            plan_layout(9, 3, max_size=1)

    def test_smaller_budget_changes_method(self):
        generous = plan_layout(33, 5, max_size=100_000)
        # Budget below the stairway size forces a different (or no) method.
        assert generous.predicted_size <= 100_000

    def test_balanced_requirement_can_change_choice(self):
        free = plan_layout(9, 3)
        balanced = plan_layout(9, 3, require_balanced=True)
        assert balanced.balanced
        assert balanced.predicted_size >= free.predicted_size


class TestNoFeasiblePlanError:
    def test_structured_error_payload(self):
        from repro.core import NoFeasiblePlanError

        with pytest.raises(NoFeasiblePlanError) as exc_info:
            plan_layout(33, 5, max_size=50)
        err = exc_info.value
        assert isinstance(err, ValueError)  # callers catching ValueError still work
        assert (err.v, err.k, err.max_size) == (33, 5, 50)
        assert err.smallest is not None
        assert err.smallest.predicted_size > 50

    def test_error_lists_nearest_feasible_alternatives(self):
        from repro.core import NoFeasiblePlanError

        with pytest.raises(NoFeasiblePlanError) as exc_info:
            plan_layout(33, 5, max_size=50)
        err = exc_info.value
        assert err.alternatives, "expected nearby feasible (v, k) suggestions"
        for av, ak, method, size in err.alternatives:
            assert (av, ak) != (33, 5)
            assert abs(av - 33) <= 4 and abs(ak - 5) <= 4
            assert size <= 50
            # Each suggestion really is feasible under the same budget.
            alt = plan_layout(av, ak, max_size=50)
            assert alt.predicted_size <= size
        assert "nearest feasible" in str(err)

    def test_impossible_budget_reports_no_alternatives(self):
        from repro.core import NoFeasiblePlanError

        # Every layout has size >= 1, so a zero budget has no neighbors.
        with pytest.raises(NoFeasiblePlanError) as exc_info:
            plan_layout(9, 3, max_size=0)
        assert exc_info.value.alternatives == []

    def test_nearest_feasible_direct_query(self):
        from repro.core import nearest_feasible

        alts = nearest_feasible(33, 5, max_size=50, limit=2)
        assert 0 < len(alts) <= 2
        # Sorted closest-first by parameter distance.
        dists = [abs(av - 33) + abs(ak - 5) for av, ak, _, _ in alts]
        assert dists == sorted(dists)
