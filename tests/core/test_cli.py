"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_plan(self, capsys):
        assert main(["plan", "9", "3"]) == 0
        out = capsys.readouterr().out
        assert "ring" in out and "flow_single" in out

    def test_build(self, capsys):
        assert main(["build", "9", "3"]) == 0
        out = capsys.readouterr().out
        assert "v=9" in out

    def test_build_renders_small_layouts(self, capsys):
        assert main(["build", "7", "3"]) == 0
        out = capsys.readouterr().out
        assert "D0" in out  # the rendered table header

    def test_design(self, capsys):
        assert main(["design", "9", "3"]) == 0
        out = capsys.readouterr().out
        assert "lambda=1" in out

    def test_design_with_blocks(self, capsys):
        assert main(["design", "7", "3", "--blocks"]) == 0
        out = capsys.readouterr().out
        assert out.count("(") >= 7

    def test_census(self, capsys):
        assert main(["census", "30", "--kmax", "5"]) == 0
        out = capsys.readouterr().out
        assert "ANY" in out

    def test_rebuild(self, capsys):
        assert main(["rebuild", "9", "3", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verified bit-for-bit: True" in out
        assert "0.250" in out

    def test_error_reported(self, capsys):
        assert main(["build", "9", "3", "--max-size", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
