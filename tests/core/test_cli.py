"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_plan(self, capsys):
        assert main(["plan", "9", "3"]) == 0
        out = capsys.readouterr().out
        assert "ring" in out and "flow_single" in out

    def test_build(self, capsys):
        assert main(["build", "9", "3"]) == 0
        out = capsys.readouterr().out
        assert "v=9" in out

    def test_build_renders_small_layouts(self, capsys):
        assert main(["build", "7", "3"]) == 0
        out = capsys.readouterr().out
        assert "D0" in out  # the rendered table header

    def test_design(self, capsys):
        assert main(["design", "9", "3"]) == 0
        out = capsys.readouterr().out
        assert "lambda=1" in out

    def test_design_with_blocks(self, capsys):
        assert main(["design", "7", "3", "--blocks"]) == 0
        out = capsys.readouterr().out
        assert out.count("(") >= 7

    def test_census(self, capsys):
        assert main(["census", "30", "--kmax", "5"]) == 0
        out = capsys.readouterr().out
        assert "ANY" in out

    def test_rebuild(self, capsys):
        assert main(["rebuild", "9", "3", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verified bit-for-bit: True" in out
        assert "0.250" in out

    def test_verify_pair(self, capsys):
        assert main(["verify", "9", "3"]) == 0
        out = capsys.readouterr().out
        assert "0 with violations" in out
        assert "flow_single" in out and "ring" in out

    def test_verify_all_sweep(self, capsys):
        assert main(["verify", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 with violations" in out
        for family in ("catalog", "removal", "dual", "randomized"):
            assert family in out

    def test_verify_verbose_shows_conditions(self, capsys):
        assert main(["verify", "7", "3", "--verbose"]) == 0
        out = capsys.readouterr().out
        for row in ("C1", "C2", "C3", "C4"):
            assert row in out

    def test_verify_requires_target(self, capsys):
        assert main(["verify"]) == 2
        assert "give V K or --all" in capsys.readouterr().err

    def test_verify_infeasible_pair(self, capsys):
        assert main(["verify", "9", "3", "--max-size", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_error_reported(self, capsys):
        assert main(["build", "9", "3", "--max-size", "1"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "nearest feasible" in err  # structured plan error surfaced

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
