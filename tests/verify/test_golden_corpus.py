"""Golden-corpus regression tests for the layout constructions.

``golden_corpus.json`` pins the planner's chosen method and the full
metric fingerprint (stripe count, layout size, parity overhead,
reconstruction read fraction, mapper capacity) for every catalog
``(v, k)`` pair.  A refactor that silently changes any construction's
output — a different method winning, a shifted parity assignment, a
resized table — fails here loudly instead of drifting.

Regenerate deliberately (after an *intentional* layout change) with::

    PYTHONPATH=src python tests/verify/test_golden_corpus.py --regenerate
"""

import json
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core import plan_layout
from repro.layouts import AddressMapper, evaluate_layout
from repro.verify import catalog_pairs

CORPUS_PATH = Path(__file__).parent / "golden_corpus.json"


def fingerprint(v: int, k: int) -> dict:
    """The golden metric set for one catalog pair."""
    plan = plan_layout(v, k)
    layout = plan.build()
    layout.validate()
    m = evaluate_layout(layout)
    mapper = AddressMapper(layout)
    return {
        "v": v,
        "k": k,
        "method": plan.method,
        "size": m.size,
        "b": m.b,
        "k_min": m.k_min,
        "k_max": m.k_max,
        "parity_overhead_max": str(m.parity_overhead_max),
        "parity_spread": m.parity_spread,
        "workload_max": round(m.workload_max, 12),
        "capacity": mapper.capacity,
    }


def load_corpus() -> list[dict]:
    # Missing corpus -> empty parametrization; test_corpus_covers_the_
    # catalog still fails, pointing at --regenerate.
    if not CORPUS_PATH.exists():
        return []
    return json.loads(CORPUS_PATH.read_text())["entries"]


class TestGoldenCorpus:
    def test_corpus_covers_the_catalog(self):
        pairs = {(e["v"], e["k"]) for e in load_corpus()}
        assert pairs == set(catalog_pairs())
        assert len(pairs) >= 20

    @pytest.mark.parametrize(
        "entry", load_corpus(), ids=lambda e: f"v{e['v']}k{e['k']}"
    )
    def test_layout_matches_golden_fingerprint(self, entry):
        got = fingerprint(entry["v"], entry["k"])
        assert got == entry, (
            f"layout for (v={entry['v']}, k={entry['k']}) drifted from the "
            f"golden corpus; if the change is intentional, regenerate with "
            f"python tests/verify/test_golden_corpus.py --regenerate"
        )

    def test_overheads_are_valid_fractions(self):
        for e in load_corpus():
            frac = Fraction(e["parity_overhead_max"])
            assert 0 < frac <= Fraction(1, 2)


def _regenerate() -> None:
    entries = [fingerprint(v, k) for v, k in catalog_pairs()]
    CORPUS_PATH.write_text(
        json.dumps({"format": 1, "entries": entries}, indent=1) + "\n"
    )
    print(f"wrote {len(entries)} entries to {CORPUS_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
