"""Tests for the Conditions 1-4 conformance subsystem."""

import pytest

from repro.layouts import Layout, Stripe, raid5_layout, ring_layout
from repro.verify import (
    check_layout,
    default_scenarios,
    run_conformance_sweep,
    run_scenario,
    scenarios_for_pair,
)


class TestCheckLayout:
    def test_balanced_layout_passes_strict(self):
        report = check_layout(ring_layout(7, 3), parity_spread_allowance=0)
        assert report.passed
        assert [r.condition for r in report.results] == [1, 2, 3, 4]
        assert report.violations() == ()

    def test_summary_mentions_verdict(self):
        report = check_layout(raid5_layout(5), parity_spread_allowance=0)
        assert "PASS" in report.summary()
        assert "C4" in report.summary()

    def test_invalid_layout_fails_condition_1(self):
        # Two stripes claim the same unit: Condition 3 coverage broken.
        bad = Layout(
            v=3,
            size=2,
            stripes=(
                Stripe(units=((0, 0), (1, 0), (2, 0)), parity_index=0),
                Stripe(units=((0, 0), (1, 1), (2, 1)), parity_index=0),
            ),
        )
        report = check_layout(bad)
        assert not report.passed
        assert report.results[0].condition == 1
        assert not report.results[0].passed
        # Structure failed: the downstream conditions are not evaluated.
        assert len(report.results) == 1

    def test_parity_imbalance_detected(self):
        # All parity on disk 0 of a RAID4-ish layout: spread = size.
        v, size = 4, 3
        stripes = tuple(
            Stripe(
                units=tuple((d, off) for d in range(v)),
                parity_index=0,
            )
            for off in range(size)
        )
        report = check_layout(Layout(v=v, size=size, stripes=stripes))
        c2 = report.results[1]
        assert c2.condition == 2 and not c2.passed
        assert "spread" in c2.measured

    def test_workload_bound_enforced(self):
        # RAID5 reads every survivor fully: workload 1.0 > a 0.5 cap.
        report = check_layout(raid5_layout(5), workload_bound=0.5)
        c3 = report.results[2]
        assert c3.condition == 3 and not c3.passed

    def test_size_budget_enforced(self):
        lay = ring_layout(7, 3)  # size 18
        report = check_layout(lay, max_size=lay.size - 1)
        c4 = next(r for r in report.results if r.condition == 4)
        assert not c4.passed
        assert not report.passed


class TestScenarios:
    def test_full_sweep_has_zero_violations(self):
        results = run_conformance_sweep()
        assert len(results) >= 25
        for sc, report in results:
            assert report.passed, f"{sc.name}:\n{report.summary()}"

    def test_sweep_covers_every_family(self):
        families = {sc.family for sc in default_scenarios()}
        assert families >= {
            "catalog",
            "raid5",
            "ring",
            "holland_gibson",
            "reduction",
            "complement",
            "removal",
            "dual",
            "randomized",
        }

    def test_scenarios_for_pair_lists_all_methods(self):
        scenarios = scenarios_for_pair(9, 3)
        methods = {sc.name.split(":")[0] for sc in scenarios}
        assert "ring" in methods and "flow_single" in methods
        for sc in scenarios:
            assert run_scenario(sc).passed

    def test_scenarios_for_pair_rejects_bad_params(self):
        with pytest.raises(ValueError):
            scenarios_for_pair(5, 9)

    def test_dual_scenario_adds_extra_check(self):
        dual_sc = next(
            sc for sc in default_scenarios() if sc.family == "dual"
        )
        report = run_scenario(dual_sc)
        names = [r.name for r in report.results]
        assert "dual-parity Q balance" in names
        assert report.passed
