"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_equal_times_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        assert sim.pending() == 1
        sim.run()
        assert log == [1, 10]

    def test_at_absolute(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run()
        hit = []
        sim.at(7.0, lambda: hit.append(sim.now))
        sim.run()
        assert hit == [7.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.001, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=1000)

    def test_step_and_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.step()
        assert not sim.step()
        assert sim.events_processed == 1

    def test_runaway_guard_reports_progress(self):
        # The budget error must be diagnosable: events processed this
        # run, lifetime total, and the remaining backlog.
        sim = Simulator()

        def rearm():
            sim.schedule(0.5, rearm)
            sim.schedule(0.5, lambda: None)

        sim.schedule(0.0, rearm)
        with pytest.raises(RuntimeError) as exc:
            sim.run(max_events=100)
        msg = str(exc.value)
        assert "max_events=100" in msg
        assert "processed 100 events this run" in msg
        assert "still pending" in msg
        # The guard stops *at* the budget, not one event past it.
        assert sim.events_processed == 100

    def test_at_exact_times_chain(self):
        # at() must fire at the exact absolute float pushed, even when
        # armed from a prior event at an "awkward" time.
        sim = Simulator()
        target = 0.1 + 0.2 + 7.3  # not exactly representable sums
        hits = []
        sim.schedule(0.1, lambda: sim.at(target, lambda: hits.append(sim.now)))
        sim.run()
        assert hits == [target]
        with pytest.raises(ValueError):
            sim.at(target - 1.0, lambda: None)
