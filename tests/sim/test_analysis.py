"""Tests for the Muntz–Lui-style analytic load model."""

import pytest

from repro.layouts import raid5_layout, ring_layout
from repro.sim import WorkloadConfig, simulate_workload
from repro.sim.analysis import analyze_load, declustering_ratio


class TestDeclusteringRatio:
    def test_values(self):
        assert declustering_ratio(9, 3) == pytest.approx(0.25)
        assert declustering_ratio(9, 9) == 1.0  # RAID5

    def test_monotone_in_k(self):
        ratios = [declustering_ratio(10, k) for k in range(2, 11)]
        assert ratios == sorted(ratios)


class TestAnalyzeLoad:
    def test_normal_mode_scales_with_rate(self):
        lay = ring_layout(9, 3)
        light = analyze_load(lay, arrival_per_ms=0.05)
        heavy = analyze_load(lay, arrival_per_ms=0.15)
        assert heavy.utilization > light.utilization
        assert heavy.response_ms > light.response_ms

    def test_degraded_mode_loads_more(self):
        lay = ring_layout(9, 3)
        normal = analyze_load(lay, arrival_per_ms=0.1, mode="normal")
        degraded = analyze_load(lay, arrival_per_ms=0.1, mode="degraded")
        assert degraded.utilization > normal.utilization

    def test_rebuild_mode_loads_most(self):
        lay = ring_layout(9, 3)
        degraded = analyze_load(lay, arrival_per_ms=0.1, mode="degraded")
        rebuild = analyze_load(
            lay, arrival_per_ms=0.1, mode="rebuild", rebuild_parallelism=2
        )
        assert rebuild.utilization > degraded.utilization

    def test_declustering_degrades_more_gracefully(self):
        # The Muntz–Lui point: degraded-mode overload shrinks with k.
        small_k = ring_layout(9, 3)
        raid5 = raid5_layout(9, rotations=8)
        rate, rf = 0.08, 1.0
        deg_small = analyze_load(small_k, arrival_per_ms=rate, read_fraction=rf, mode="degraded")
        deg_raid5 = analyze_load(raid5, arrival_per_ms=rate, read_fraction=rf, mode="degraded")
        assert deg_small.utilization < deg_raid5.utilization

    def test_saturation_reported(self):
        est = analyze_load(ring_layout(5, 3), arrival_per_ms=10.0)
        assert est.saturated
        assert est.response_ms == float("inf")

    def test_validation(self):
        lay = ring_layout(5, 3)
        with pytest.raises(ValueError, match="mode"):
            analyze_load(lay, arrival_per_ms=0.1, mode="weird")
        with pytest.raises(ValueError):
            analyze_load(lay, arrival_per_ms=-1.0)
        with pytest.raises(ValueError):
            analyze_load(lay, arrival_per_ms=0.1, read_fraction=2.0)


class TestAgainstSimulator:
    def test_normal_mode_utilization_tracks_simulation(self):
        # At moderate load the analytic estimate must land near the
        # simulator's measured max utilization.
        lay = ring_layout(9, 3)
        interarrival = 4.0
        rep = simulate_workload(
            lay,
            duration_ms=30_000.0,
            config=WorkloadConfig(interarrival_ms=interarrival, read_fraction=0.7, seed=17),
        )
        measured = max(rep.utilizations)
        est = analyze_load(lay, arrival_per_ms=1 / interarrival, read_fraction=0.7)
        assert est.utilization == pytest.approx(measured, rel=0.35)

    def test_read_only_agreement_is_tight(self):
        lay = ring_layout(9, 3)
        interarrival = 3.0
        rep = simulate_workload(
            lay,
            duration_ms=30_000.0,
            config=WorkloadConfig(interarrival_ms=interarrival, read_fraction=1.0, seed=18),
        )
        measured = max(rep.utilizations)
        est = analyze_load(lay, arrival_per_ms=1 / interarrival, read_fraction=1.0)
        assert est.utilization == pytest.approx(measured, rel=0.2)
