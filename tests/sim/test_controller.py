"""Tests for the array controller."""

import pytest

from repro.layouts import raid5_layout, ring_layout
from repro.sim import ArrayController


class TestNormalMode:
    def test_read_is_one_io(self):
        ctrl = ArrayController(ring_layout(5, 3))
        ctrl.submit_read(0)
        ctrl.sim.run()
        assert sum(ctrl.per_disk_completed()) == 1
        assert ctrl.latency["read"].count == 1

    def test_write_is_four_ios_two_disks(self):
        ctrl = ArrayController(ring_layout(5, 3))
        kind = ctrl.submit_write(0)
        ctrl.sim.run()
        assert kind == "write"
        per_disk = ctrl.per_disk_completed()
        assert sum(per_disk) == 4
        assert sorted(c for c in per_disk if c) == [2, 2]

    def test_write_latency_exceeds_read(self):
        ctrl = ArrayController(ring_layout(5, 3))
        ctrl.submit_read(0)
        ctrl.submit_write(1)
        ctrl.sim.run()
        assert ctrl.latency["write"].mean > ctrl.latency["read"].mean

    def test_write_keeps_parity_consistent(self):
        ctrl = ArrayController(ring_layout(5, 3), dataplane=True)
        for lba in range(10):
            ctrl.submit_write(lba)
        ctrl.sim.run()
        assert ctrl.data.all_parity_consistent()


class TestDegradedMode:
    def test_degraded_read_fans_out(self):
        lay = ring_layout(5, 3)
        ctrl = ArrayController(lay)
        ctrl.fail_disk(0)
        # Find an lba on the failed disk.
        lba = next(
            i for i in range(ctrl.mapper.capacity)
            if ctrl.mapper.logical_to_physical(i).disk == 0
        )
        kind = ctrl.submit_read(lba)
        ctrl.sim.run()
        assert kind == "degraded_read"
        assert sum(ctrl.per_disk_completed()) == 2  # k-1 survivors

    def test_read_of_surviving_disk_unaffected(self):
        ctrl = ArrayController(ring_layout(5, 3))
        ctrl.fail_disk(0)
        lba = next(
            i for i in range(ctrl.mapper.capacity)
            if ctrl.mapper.logical_to_physical(i).disk != 0
        )
        assert ctrl.submit_read(lba) == "read"

    def test_degraded_write_data_disk(self):
        lay = ring_layout(5, 3)
        ctrl = ArrayController(lay, dataplane=True)
        ctrl.fail_disk(1)
        lba = next(
            i for i in range(ctrl.mapper.capacity)
            if ctrl.mapper.logical_to_physical(i).disk == 1
        )
        kind = ctrl.submit_write(lba)
        ctrl.sim.run()
        assert kind == "degraded_write"
        # Parity folded the write in: reconstruction recovers new value.
        pu = ctrl.mapper.logical_to_physical(lba)
        sid = pu.stripe % lay.b
        import numpy as np

        rebuilt = ctrl.data.reconstruct_unit(sid, 1)
        assert np.array_equal(rebuilt, ctrl.data.read_unit(1, pu.offset))

    def test_degraded_write_parity_disk(self):
        lay = ring_layout(5, 3)
        ctrl = ArrayController(lay)
        ctrl.fail_disk(2)
        # Find an lba whose stripe has parity on the failed disk.
        for i in range(ctrl.mapper.capacity):
            pu = ctrl.mapper.logical_to_physical(i)
            stripe = lay.stripes[pu.stripe % lay.b]
            if stripe.parity_unit[0] == 2 and pu.disk != 2:
                kind = ctrl.submit_write(i)
                break
        else:
            pytest.fail("no suitable lba found")
        ctrl.sim.run()
        assert kind == "degraded_write"
        assert sum(ctrl.per_disk_completed()) == 1  # data write only

    def test_double_fault_rejected(self):
        ctrl = ArrayController(raid5_layout(4))
        ctrl.fail_disk(0)
        with pytest.raises(ValueError, match="one failure"):
            ctrl.fail_disk(1)

    def test_invalid_disk_rejected(self):
        ctrl = ArrayController(raid5_layout(4))
        with pytest.raises(ValueError):
            ctrl.fail_disk(4)


class TestReporting:
    def test_utilizations(self):
        ctrl = ArrayController(ring_layout(5, 3))
        for lba in range(20):
            ctrl.submit_read(lba)
        ctrl.sim.run()
        utils = ctrl.utilizations()
        assert len(utils) == 5
        assert all(0.0 <= u <= 1.0 for u in utils)
