"""Property tests for the compiled simulation pipeline.

The batched paths (compiled executor, analytic queue solver, vectorized
rebuild scan) must produce *identical* reports to the scalar per-event
pipeline — same stream, same submission order, same float arithmetic.
These tests sweep seeded random traces across construction families and
compare the two paths field by field.
"""

import numpy as np
import pytest

from repro.core import get_layout
from repro.layouts import raid5_layout, random_layout, ring_layout
from repro.layouts.sparing import with_distributed_sparing
from repro.sim import (
    ArrayController,
    RebuildProcess,
    TraceRecord,
    WorkloadConfig,
    compile_trace,
    compile_workload,
    drive_workload,
    replay_trace,
    simulate_rebuild,
    simulate_workload,
    solve_compiled,
    spare_map_for_failure,
    spare_plan_for_failure,
)

# One representative layout per construction family the planner can
# emit: ring (exact), Holland-Gibson over a design, stairway, RAID5
# baseline, and the randomized Merchant-Yu baseline.
FAMILIES = {
    "ring": lambda: ring_layout(9, 4),
    "holland_gibson": lambda: get_layout(13, 4),
    "stairway": lambda: get_layout(33, 5),
    "raid5": lambda: raid5_layout(6, rotations=4),
    "randomized": lambda: random_layout(10, 4, stripes_per_disk=6, seed=2),
}


def assert_workload_reports_equal(a, b):
    """Field-by-field equality; the latency mean tolerates tie-order
    float association, everything else must match exactly."""
    assert a.scheduled == b.scheduled
    assert a.duration_ms == b.duration_ms
    assert a.per_disk_ios == b.per_disk_ios
    assert a.utilizations == b.utilizations
    assert set(a.latency) == set(b.latency)
    for kind in a.latency:
        for field in ("count", "p50", "p95", "max"):
            assert a.latency[kind][field] == b.latency[kind][field], (kind, field)
        assert a.latency[kind]["mean"] == pytest.approx(
            b.latency[kind]["mean"], rel=1e-12
        )


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("read_fraction", [1.0, 0.6])
class TestWorkloadEquivalence:
    def test_healthy(self, family, read_fraction):
        lay = FAMILIES[family]()
        cfg = WorkloadConfig(
            interarrival_ms=3.0, read_fraction=read_fraction, seed=11
        )
        a = simulate_workload(lay, duration_ms=1500.0, config=cfg, batched=True)
        b = simulate_workload(lay, duration_ms=1500.0, config=cfg, batched=False)
        assert a.scheduled > 0
        assert_workload_reports_equal(a, b)

    def test_degraded(self, family, read_fraction):
        lay = FAMILIES[family]()
        cfg = WorkloadConfig(
            interarrival_ms=3.0, read_fraction=read_fraction, seed=13
        )
        a = simulate_workload(
            lay, duration_ms=1500.0, config=cfg, failed_disk=1, batched=True
        )
        b = simulate_workload(
            lay, duration_ms=1500.0, config=cfg, failed_disk=1, batched=False
        )
        assert_workload_reports_equal(a, b)


class TestWorkloadEquivalenceVariants:
    def test_zipf_skewed_stream(self):
        lay = ring_layout(9, 4)
        cfg = WorkloadConfig(
            interarrival_ms=2.0, read_fraction=0.5, zipf_theta=1.5, seed=7
        )
        a = simulate_workload(lay, duration_ms=2000.0, config=cfg, batched=True)
        b = simulate_workload(lay, duration_ms=2000.0, config=cfg, batched=False)
        assert_workload_reports_equal(a, b)

    def test_with_dataplane_contents_match(self):
        lay = ring_layout(7, 3)
        cfg = WorkloadConfig(interarrival_ms=4.0, read_fraction=0.3, seed=3)
        ctrls = []
        for batched in (True, False):
            ctrl = ArrayController(lay, dataplane=True, seed=5)
            drive_workload(ctrl, cfg, 1200.0, batched=batched)
            ctrl.sim.run()
            ctrls.append(ctrl)
        assert np.array_equal(ctrls[0].data.store, ctrls[1].data.store)
        assert ctrls[0].data.all_parity_consistent()

    def test_drive_workload_paths_schedule_same_stream(self):
        lay = ring_layout(5, 3)
        cfg = WorkloadConfig(interarrival_ms=6.0, seed=21)
        c1, c2 = ArrayController(lay), ArrayController(lay)
        n1 = drive_workload(c1, cfg, 2500.0, batched=True)
        n2 = drive_workload(c2, cfg, 2500.0, batched=False)
        c1.sim.run()
        c2.sim.run()
        assert n1 == n2
        assert c1.per_disk_completed() == c2.per_disk_completed()
        assert c1.sim.now == c2.sim.now


class TestTraceReplayEquivalence:
    def _random_trace(self, rng, n=300, tick=None):
        times = np.cumsum(rng.exponential(2.0, size=n))
        if tick is not None:
            # Quantized arrivals: duplicate timestamps exercise the
            # executor's epoch batching.
            times = np.floor(times / tick) * tick
        ops = rng.random(n) < 0.7
        lbas = rng.integers(0, 10_000, size=n)
        return [
            TraceRecord(time_ms=float(t), op="r" if r else "w", lba=int(l))
            for t, r, l in zip(times, ops, lbas)
        ]

    @pytest.mark.parametrize("tick", [None, 5.0])
    def test_replay_batched_matches_scalar(self, tick):
        rng = np.random.default_rng(17)
        records = self._random_trace(rng, tick=tick)
        results = []
        for batched in (True, False):
            ctrl = ArrayController(ring_layout(9, 4))
            n = replay_trace(ctrl, records, batched=batched)
            ctrl.sim.run()
            results.append((n, ctrl.per_disk_completed(), ctrl.sim.now,
                            {k: s.count for k, s in ctrl.latency.items()}))
        assert results[0] == results[1]

    def test_unsorted_trace_normalized(self):
        records = [
            TraceRecord(time_ms=t, op="r", lba=i)
            for i, t in enumerate([9.0, 1.0, 5.0, 1.0])
        ]
        results = []
        for batched in (True, False):
            ctrl = ArrayController(ring_layout(5, 3))
            replay_trace(ctrl, records, batched=batched)
            ctrl.sim.run()
            results.append((ctrl.per_disk_completed(), ctrl.sim.now))
        assert results[0] == results[1]


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestRebuildEquivalence:
    def test_plain_rebuild(self, family):
        lay = FAMILIES[family]()
        a = simulate_rebuild(lay, failed_disk=0, batched=True)
        b = simulate_rebuild(lay, failed_disk=0, batched=False)
        assert a == b

    def test_rebuild_under_load_with_dataplane(self, family):
        lay = FAMILIES[family]()
        cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=0.5, seed=23)
        a = simulate_rebuild(
            lay, failed_disk=2, workload=cfg, workload_duration_ms=800.0,
            verify_data=True, batched=True,
        )
        b = simulate_rebuild(
            lay, failed_disk=2, workload=cfg, workload_duration_ms=800.0,
            verify_data=True, batched=False,
        )
        assert a == b
        assert a.data_verified is True


class TestSparePlan:
    def test_plan_matches_scalar_map(self):
        lay = ring_layout(9, 4)
        sp = with_distributed_sparing(lay)
        for failed in range(lay.v):
            plan = spare_plan_for_failure(sp, failed)
            assert plan.as_dict() == spare_map_for_failure(sp, failed)
            # Every target avoids the failed disk and the scan covers
            # exactly the crossing stripes, ascending.
            assert not (np.asarray(plan.disks) == failed).any()
            expected = [
                sid for sid, s in enumerate(lay.stripes) if failed in s.disks
            ]
            assert plan.stripe_ids.tolist() == expected

    def test_sparing_rebuild_equivalence(self):
        lay = ring_layout(9, 4)
        sp = with_distributed_sparing(lay)
        a = simulate_rebuild(
            lay, failed_disk=3, sparing=sp, verify_data=True, batched=True
        )
        b = simulate_rebuild(
            lay, failed_disk=3, sparing=sp, verify_data=True, batched=False
        )
        assert a == b
        assert a.data_verified is True


class TestCompiledTrace:
    def test_compiled_mapping_matches_scalar(self):
        lay = ring_layout(9, 4)
        ctrl = ArrayController(lay)
        cfg = WorkloadConfig(interarrival_ms=2.0, seed=5)
        compiled = compile_workload(ctrl.mapper, cfg, 800.0)
        for i in range(compiled.n):
            pu = ctrl.mapper.logical_to_physical(int(compiled.lbas[i]))
            assert (pu.disk, pu.offset, pu.stripe) == (
                int(compiled.disks[i]),
                int(compiled.offsets[i]),
                int(compiled.stripes[i]),
            )

    def test_stream_is_deterministic(self):
        lay = ring_layout(5, 3)
        m = ArrayController(lay).mapper
        cfg = WorkloadConfig(seed=9)
        c1 = compile_workload(m, cfg, 2000.0)
        c2 = compile_workload(m, cfg, 2000.0)
        assert np.array_equal(c1.times, c2.times)
        assert np.array_equal(c1.lbas, c2.lbas)
        assert np.array_equal(c1.is_read, c2.is_read)

    def test_trace_lba_wrapped(self):
        lay = ring_layout(5, 3)
        ctrl = ArrayController(lay)
        cap = ctrl.mapper.capacity
        compiled = compile_trace(
            ctrl.mapper, [TraceRecord(time_ms=1.0, op="r", lba=cap * 2 + 3)]
        )
        assert compiled.lbas[0] == 3

    def test_zero_duration_empty(self):
        lay = ring_layout(5, 3)
        m = ArrayController(lay).mapper
        assert compile_workload(m, WorkloadConfig(seed=0), 0.0).n == 0


class TestSolverGuards:
    def test_rejects_writes(self):
        lay = ring_layout(5, 3)
        ctrl = ArrayController(lay)
        cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=0.0, seed=1)
        compiled = compile_workload(ctrl.mapper, cfg, 500.0)
        with pytest.raises(ValueError, match="read-only"):
            solve_compiled(ctrl, compiled)

    def test_rejects_busy_simulator(self):
        lay = ring_layout(5, 3)
        ctrl = ArrayController(lay)
        ctrl.sim.schedule(1.0, lambda: None)
        cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=1.0, seed=1)
        compiled = compile_workload(ctrl.mapper, cfg, 500.0)
        with pytest.raises(RuntimeError, match="idle"):
            solve_compiled(ctrl, compiled)

    def test_solver_label_set(self):
        lay = ring_layout(5, 3)
        ctrl = ArrayController(lay)
        cfg = WorkloadConfig(interarrival_ms=5.0, read_fraction=1.0, seed=1)
        compiled = compile_workload(ctrl.mapper, cfg, 500.0)
        solve_compiled(ctrl, compiled)
        assert ctrl.last_engine == "solver"


class TestMidRunFailure:
    def test_disk_failure_after_scheduling_replans_live(self):
        # A disk failing between drive_workload() and sim.run() must not
        # crash the compiled executor or diverge from the scalar path.
        lay = ring_layout(9, 4)
        cfg = WorkloadConfig(interarrival_ms=4.0, read_fraction=0.6, seed=31)
        results = []
        for batched in (True, False):
            ctrl = ArrayController(lay)
            drive_workload(ctrl, cfg, 1500.0, batched=batched)
            ctrl.fail_disk(0)
            ctrl.sim.run()
            results.append(
                (ctrl.per_disk_completed(), ctrl.sim.now,
                 {k: s.count for k, s in sorted(ctrl.latency.items())})
            )
        assert results[0] == results[1]
        assert "degraded_read" in results[0][2] or "degraded_write" in results[0][2]
