"""Property tests for the batch-stepped (calendar-queue) executor.

The contract under test: :func:`repro.sim.batchstep.step_compiled`
replays a compiled trace WITHOUT the event heap (``events_processed``
stays 0) and lands the controller in the same state the heap engine
would — same clock, same per-disk counters and float accumulators,
same latency samples.

Two equality tiers, matching the engine's two tiers:

* an **explicit** ``bucket_ms`` forces the calendar engine, which is
  bit-exact against the heap including sample ORDER (it replays the
  heap's ``(time, seq)`` serialization event for event);
* the **default** path may take the eager FIFO tier, whose documented
  relaxation is sample order at *exact* completion-time ties (it
  follows submission order instead of event-seq order) — multisets,
  counts, percentiles, and max stay equal; the mean agrees within
  float re-association.
"""

import numpy as np
import pytest

from repro.core import get_layout
from repro.layouts import raid5_layout, ring_layout
from repro.sim import (
    ArrayController,
    WorkloadConfig,
    calendar_bucket_width,
    compile_trace,
    compile_workload,
    schedule_compiled,
    step_compiled,
)
from repro.sim.trace import TraceRecord

FAMILIES = {
    "ring": lambda: ring_layout(9, 4),
    "holland_gibson": lambda: get_layout(13, 4),
    "raid5": lambda: raid5_layout(6, rotations=4),
}

# Bucket widths chosen to stress the calendar walk, not to be
# realistic: a near-service-time width (snaps to 8.0, so quantized
# 8 ms arrivals land boundary-exact), a sliver that puts nearly every
# event in its own bucket, and a width swallowing the whole run.
BUCKETS = [8.06, 1e-4, 1000.0]


def _exact_state(ctrl):
    """Everything the heap engine mutates, float-exact."""
    return (
        ctrl.sim.now,
        [
            (
                d.busy_time,
                d.total_queue_delay,
                d.completed_reads,
                d.completed_writes,
                d._last_offset,
            )
            for d in ctrl.disks
        ],
        {k: tuple(s.samples) for k, s in ctrl.latency.items()},
    )


def _run(engine, layout_fn, cfg, *, duration=900.0, failed=None,
         policy="rmw", bucket=None, quantize=None):
    ctrl = ArrayController(layout_fn(), write_policy=policy)
    if failed is not None:
        ctrl.fail_disk(failed)
    trace = compile_workload(ctrl.mapper, cfg, duration)
    if quantize is not None:
        # Snap arrivals onto a grid: duplicate timestamps + boundary
        # collisions with power-of-two bucket widths.
        times = np.floor(trace.times / quantize) * quantize
        order = np.argsort(times, kind="stable")
        records = [
            TraceRecord(
                time_ms=float(times[i]),
                op="r" if trace.is_read[i] else "w",
                lba=int(trace.lbas[i]),
            )
            for i in order
        ]
        trace = compile_trace(ctrl.mapper, records)
    if engine == "heap":
        schedule_compiled(ctrl, trace)
        ctrl.sim.run()
    else:
        n = step_compiled(ctrl, trace, bucket_ms=bucket)
        assert n == trace.n
        # The whole point: the event heap never runs.
        assert ctrl.sim.events_processed == 0
    return ctrl


def assert_states_equal(a, b, *, sample_order_exact=True):
    sa, sb = _exact_state(a), _exact_state(b)
    assert sb[0] == sa[0]  # clock
    assert sb[1] == sa[1]  # per-disk counters + float accumulators
    assert set(sb[2]) == set(sa[2])
    for kind in sa[2]:
        if sample_order_exact:
            assert sb[2][kind] == sa[2][kind], kind
        else:
            assert sorted(sb[2][kind]) == sorted(sa[2][kind]), kind


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("read_fraction", [1.0, 0.6, 0.0])
@pytest.mark.parametrize("failed", [None, 1])
@pytest.mark.parametrize("policy", ["rmw", "write_through"])
class TestCalendarBitExactness:
    """Explicit bucket widths force the calendar engine: bit-exact
    including sample order, across families x mixes x failure states x
    write policies x degenerate widths."""

    def test_matches_heap_for_every_bucket_width(
        self, family, read_fraction, failed, policy
    ):
        cfg = WorkloadConfig(
            interarrival_ms=3.0, read_fraction=read_fraction, seed=11
        )
        heap = _run("heap", FAMILIES[family], cfg, failed=failed,
                    policy=policy)
        for bucket in BUCKETS:
            step = _run("step", FAMILIES[family], cfg, failed=failed,
                        policy=policy, bucket=bucket)
            assert_states_equal(heap, step)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("read_fraction", [1.0, 0.6, 0.0])
class TestDefaultPathReportEquality:
    """The default (no bucket hint) path — eager tier eligible on
    healthy rmw mixes — must agree with the heap on everything except
    possibly sample order at exact completion-time ties."""

    def test_matches_heap(self, family, read_fraction):
        cfg = WorkloadConfig(
            interarrival_ms=3.0, read_fraction=read_fraction, seed=19
        )
        heap = _run("heap", FAMILIES[family], cfg)
        step = _run("step", FAMILIES[family], cfg)
        assert_states_equal(heap, step, sample_order_exact=False)

    def test_summaries_match_heap(self, family, read_fraction):
        from repro.sim.stats import summarize

        cfg = WorkloadConfig(
            interarrival_ms=3.0, read_fraction=read_fraction, seed=23
        )
        heap = _run("heap", FAMILIES[family], cfg)
        step = _run("step", FAMILIES[family], cfg)
        for kind in heap.latency:
            a = summarize(heap.latency[kind])
            b = summarize(step.latency[kind])
            for field in ("count", "p50", "p95", "max"):
                assert a[field] == b[field], (kind, field)
            assert a["mean"] == pytest.approx(b["mean"], rel=1e-12)


class TestQuantizedTies:
    """Grid-quantized arrivals mass-produce equal timestamps — the
    worst case for both the calendar walk (boundary-exact events) and
    the eager tier (which must detect ambiguous ties and fall back)."""

    @pytest.mark.parametrize("tick", [8.0, 5.0])
    def test_boundary_exact_arrivals_bit_exact(self, tick):
        cfg = WorkloadConfig(interarrival_ms=2.0, read_fraction=0.6, seed=7)
        heap = _run("heap", FAMILIES["ring"], cfg, quantize=tick)
        # bucket 8.06 snaps to width 8.0: tick-8.0 arrivals land
        # exactly on bucket boundaries.
        step = _run("step", FAMILIES["ring"], cfg, quantize=tick,
                    bucket=8.06)
        assert_states_equal(heap, step)

    def test_default_path_survives_mass_ties(self):
        """No bucket hint: the eager tier either resolves the ties or
        falls back to the calendar engine — both must end report-equal
        to the heap, never wrong."""
        cfg = WorkloadConfig(interarrival_ms=2.0, read_fraction=0.5, seed=3)
        heap = _run("heap", FAMILIES["ring"], cfg, quantize=5.0)
        step = _run("step", FAMILIES["ring"], cfg, quantize=5.0)
        assert_states_equal(heap, step, sample_order_exact=False)


class TestBucketWidth:
    def test_power_of_two_not_exceeding_hint(self):
        for hint in (8.06, 1.0, 0.75, 1e-4, 1000.0, 17.56):
            w = calendar_bucket_width(hint)
            assert w <= hint
            m, e = np.frexp(w)
            assert m == 0.5  # exact power of two
            assert 2.0 * w > hint

    def test_rejects_degenerate_hints(self):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                calendar_bucket_width(bad)


class TestEngineOwnership:
    def test_busy_simulator_rejected(self):
        ctrl = ArrayController(ring_layout(5, 3))
        ctrl.sim.schedule(1.0, lambda: None)
        cfg = WorkloadConfig(interarrival_ms=5.0, seed=1)
        trace = compile_workload(ctrl.mapper, cfg, 200.0)
        with pytest.raises(RuntimeError, match="idle"):
            step_compiled(ctrl, trace)

    def test_empty_trace_is_a_noop(self):
        ctrl = ArrayController(ring_layout(5, 3))
        trace = compile_workload(ctrl.mapper, WorkloadConfig(seed=0), 0.0)
        assert step_compiled(ctrl, trace) == 0
        assert ctrl.sim.now == 0.0
        assert ctrl.sim.events_processed == 0

    def test_engine_label_set(self):
        """step_compiled labels the controller with the tier that
        actually finished the trace (eager, or calendar after a tie
        demotion)."""
        ctrl = ArrayController(ring_layout(5, 3))
        cfg = WorkloadConfig(interarrival_ms=5.0, seed=1)
        trace = compile_workload(ctrl.mapper, cfg, 200.0)
        step_compiled(ctrl, trace)
        assert ctrl.last_engine in ("eager", "calendar")
