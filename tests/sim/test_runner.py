"""Tests for the high-level simulation runners."""

import pytest

from repro.layouts import raid5_layout, ring_layout
from repro.sim import WorkloadConfig, simulate_rebuild, simulate_workload


class TestSimulateRebuild:
    def test_basic(self):
        lay = ring_layout(7, 3)
        rep = simulate_rebuild(lay, failed_disk=0)
        assert rep.duration_ms > 0
        assert rep.spare_units_written == lay.size

    def test_verified(self):
        rep = simulate_rebuild(ring_layout(5, 3), failed_disk=1, verify_data=True)
        assert rep.data_verified is True

    def test_with_foreground_workload_slower(self):
        lay = ring_layout(9, 3)
        quiet = simulate_rebuild(lay, failed_disk=0)
        busy = simulate_rebuild(
            lay,
            failed_disk=0,
            workload=WorkloadConfig(interarrival_ms=3.0, seed=5),
            workload_duration_ms=10_000.0,
        )
        assert busy.duration_ms > quiet.duration_ms

    def test_declustering_reduces_survivor_reads(self):
        # The paper's core claim: smaller k reads a smaller fraction.
        v = 9
        small_k = simulate_rebuild(ring_layout(v, 3), failed_disk=0)
        raid5 = simulate_rebuild(raid5_layout(v, rotations=6), failed_disk=0)
        f_small = max(small_k.read_fractions(ring_layout(v, 3).size))
        f_raid5 = max(raid5.read_fractions(raid5_layout(v, rotations=6).size))
        assert f_small == pytest.approx(2 / 8)
        assert f_raid5 == pytest.approx(1.0)


class TestSimulateWorkload:
    def test_report_fields(self):
        rep = simulate_workload(
            ring_layout(5, 3),
            duration_ms=3000.0,
            config=WorkloadConfig(interarrival_ms=6.0, seed=2),
        )
        assert rep.scheduled > 0
        assert "read" in rep.latency
        assert len(rep.per_disk_ios) == 5
        assert rep.max_min_io_ratio >= 1.0

    def test_degraded_mode(self):
        rep = simulate_workload(
            ring_layout(5, 3),
            duration_ms=3000.0,
            config=WorkloadConfig(interarrival_ms=6.0, seed=2),
            failed_disk=0,
        )
        assert rep.per_disk_ios[0] == 0
        assert "degraded_read" in rep.latency or "degraded_write" in rep.latency

    def test_engine_label_surfaced(self):
        """The report carries the engine the run actually used, for
        every gate outcome: analytic solver (single-phase), batch
        stepper (mixed), windowed variants, and the unlabeled scalar
        baseline."""
        lay = ring_layout(5, 3)
        common = dict(duration_ms=400.0, config=WorkloadConfig(seed=2))
        mixed = simulate_workload(lay, **common)
        assert mixed.engine in ("eager", "calendar")
        solver = simulate_workload(
            lay,
            duration_ms=400.0,
            config=WorkloadConfig(read_fraction=1.0, seed=2),
        )
        assert solver.engine == "solver"
        windowed = simulate_workload(lay, window_size=16, **common)
        assert windowed.engine in ("windowed-eager", "windowed-pump")
        windowed_ro = simulate_workload(
            lay,
            duration_ms=400.0,
            window_size=16,
            config=WorkloadConfig(read_fraction=1.0, seed=2),
        )
        assert windowed_ro.engine == "windowed-solver"
        scalar = simulate_workload(lay, batched=False, **common)
        assert scalar.engine is None

    def test_saturation_raises_latency(self):
        lay = ring_layout(5, 3)
        light = simulate_workload(
            lay, duration_ms=3000.0, config=WorkloadConfig(interarrival_ms=30.0, seed=3)
        )
        heavy = simulate_workload(
            lay, duration_ms=3000.0, config=WorkloadConfig(interarrival_ms=4.0, seed=3)
        )
        assert heavy.latency["read"]["mean"] > light.latency["read"]["mean"]
