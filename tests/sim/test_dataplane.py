"""Tests for the XOR data plane (Condition 1 made executable)."""

import numpy as np
import pytest

from repro.layouts import raid5_layout, ring_layout, theorem8_layout, theorem10_layout
from repro.sim import DataPlane


class TestDataPlane:
    def test_initial_parity_consistent(self):
        dp = DataPlane(ring_layout(5, 3), seed=1)
        assert dp.all_parity_consistent()

    def test_small_write_preserves_parity(self):
        lay = ring_layout(5, 3)
        dp = DataPlane(lay, seed=2)
        stripe = lay.stripes[7]
        d, off = stripe.data_units()[0]
        new = np.arange(dp.unit_words, dtype=np.uint64)
        dp.small_write(7, d, off, new)
        assert np.array_equal(dp.read_unit(d, off), new)
        assert dp.parity_consistent(7)

    def test_corruption_detected(self):
        lay = ring_layout(5, 3)
        dp = DataPlane(lay, seed=3)
        d, off = lay.stripes[0].data_units()[0]
        dp.write_unit(d, off, np.zeros(dp.unit_words, dtype=np.uint64))
        assert not dp.parity_consistent(0)
        dp.recompute_all_parity()
        assert dp.all_parity_consistent()

    def test_reconstruct_unit(self):
        lay = ring_layout(7, 3)
        dp = DataPlane(lay, seed=4)
        for sid in range(10):
            stripe = lay.stripes[sid]
            for d, off in stripe.units:
                rebuilt = dp.reconstruct_unit(sid, d)
                assert np.array_equal(rebuilt, dp.read_unit(d, off))

    def test_reconstruct_unit_wrong_disk(self):
        lay = ring_layout(5, 3)
        dp = DataPlane(lay, seed=5)
        absent = next(
            d for d in range(5) if d not in [u[0] for u in lay.stripes[0].units]
        )
        with pytest.raises(ValueError, match="no unit"):
            dp.reconstruct_unit(0, absent)

    @pytest.mark.parametrize(
        "layout",
        [raid5_layout(5), ring_layout(7, 3), theorem8_layout(9, 3), theorem10_layout(5, 3)],
        ids=["raid5", "ring", "thm8", "thm10"],
    )
    def test_reconstruct_whole_disk(self, layout):
        dp = DataPlane(layout, seed=6)
        for victim in (0, layout.v - 1):
            image = dp.reconstruct_disk(victim)
            assert np.array_equal(image, dp.snapshot_disk(victim))

    def test_write_unit_validates_shape(self):
        dp = DataPlane(ring_layout(5, 3))
        with pytest.raises(ValueError, match="unit data"):
            dp.write_unit(0, 0, np.zeros(3, dtype=np.uint64))
        with pytest.raises(ValueError, match="unit data"):
            dp.write_unit(0, 0, np.zeros(dp.unit_words, dtype=np.int64))

    def test_reconstruction_after_small_writes(self):
        # Writes through small_write keep the array reconstructible.
        lay = ring_layout(5, 3)
        dp = DataPlane(lay, seed=7)
        rng = np.random.default_rng(0)
        for sid in rng.integers(0, lay.b, size=25):
            stripe = lay.stripes[sid]
            d, off = stripe.data_units()[int(rng.integers(0, stripe.size - 1))]
            dp.small_write(int(sid), d, off, rng.integers(0, 2**63, size=dp.unit_words, dtype=np.uint64))
        for victim in range(5):
            assert np.array_equal(dp.reconstruct_disk(victim), dp.snapshot_disk(victim))
