"""Tests for synthetic workload generation."""

import pytest

from repro.layouts import ring_layout
from repro.sim import ArrayController, WorkloadConfig, drive_workload


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(interarrival_ms=0)
        with pytest.raises(ValueError):
            WorkloadConfig(read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(zipf_theta=-1)


class TestDriveWorkload:
    def test_scheduled_count_matches_rate(self):
        ctrl = ArrayController(ring_layout(5, 3))
        n = drive_workload(ctrl, WorkloadConfig(interarrival_ms=10.0, seed=0), 10_000.0)
        # Poisson with mean 1000 arrivals; allow wide slack.
        assert 800 <= n <= 1200

    def test_deterministic_given_seed(self):
        c1 = ArrayController(ring_layout(5, 3))
        c2 = ArrayController(ring_layout(5, 3))
        cfg = WorkloadConfig(seed=7)
        n1 = drive_workload(c1, cfg, 2000.0)
        n2 = drive_workload(c2, cfg, 2000.0)
        c1.sim.run()
        c2.sim.run()
        assert n1 == n2
        assert c1.per_disk_completed() == c2.per_disk_completed()

    def test_read_fraction_respected(self):
        ctrl = ArrayController(ring_layout(5, 3))
        drive_workload(ctrl, WorkloadConfig(interarrival_ms=5.0, read_fraction=1.0, seed=1), 3000.0)
        ctrl.sim.run()
        assert "write" not in ctrl.latency
        assert ctrl.latency["read"].count > 0

    def test_all_writes(self):
        ctrl = ArrayController(ring_layout(5, 3))
        drive_workload(ctrl, WorkloadConfig(interarrival_ms=5.0, read_fraction=0.0, seed=1), 2000.0)
        ctrl.sim.run()
        assert "read" not in ctrl.latency

    def test_zipf_skews_load(self):
        # With heavy skew, a few units absorb most accesses; per-disk
        # spread should exceed the uniform case.
        import numpy as np

        def spread(theta):
            ctrl = ArrayController(ring_layout(5, 3))
            drive_workload(
                ctrl,
                WorkloadConfig(interarrival_ms=2.0, read_fraction=1.0, zipf_theta=theta, seed=3),
                5000.0,
            )
            ctrl.sim.run()
            per = np.array(ctrl.per_disk_completed(), dtype=float)
            return per.std() / per.mean()

        assert spread(3.0) > spread(0.0)

    def test_zero_duration(self):
        ctrl = ArrayController(ring_layout(5, 3))
        assert drive_workload(ctrl, WorkloadConfig(seed=0), 0.0) == 0
