"""Tests for the disk service model."""

import pytest

from repro.sim import Disk, DiskFailedError, DiskIO, DiskParameters, Simulator


def make_disk(**kw):
    sim = Simulator()
    return sim, Disk(sim, 0, DiskParameters(**kw))


class TestServiceTime:
    def test_random_access(self):
        p = DiskParameters()
        t = p.service_time(None, 100)
        assert t == p.average_seek_ms + p.rotational_latency_ms + p.transfer_ms_per_unit

    def test_sequential_discount(self):
        p = DiskParameters()
        seq = p.service_time(100, 101)
        rand = p.service_time(100, 500)
        assert seq < rand
        assert seq == p.sequential_seek_ms + p.rotational_latency_ms + p.transfer_ms_per_unit

    def test_same_offset_counts_sequential(self):
        p = DiskParameters()
        assert p.service_time(7, 7) == p.service_time(7, 8)


class TestDisk:
    def test_single_io_completion_time(self):
        sim, disk = make_disk()
        done = []
        disk.submit(DiskIO(offset=10, is_write=False, on_complete=done.append))
        sim.run()
        expected = DiskParameters().service_time(None, 10)
        assert done == [expected]
        assert disk.completed_reads == 1

    def test_fifo_queueing(self):
        sim, disk = make_disk()
        order = []
        for off in (5, 500, 50):
            disk.submit(DiskIO(offset=off, is_write=False,
                               on_complete=lambda t, off=off: order.append(off)))
        sim.run()
        assert order == [5, 500, 50]
        assert disk.completed_ios == 3

    def test_busy_time_accumulates(self):
        sim, disk = make_disk()
        for off in (1, 100):
            disk.submit(DiskIO(offset=off, is_write=True))
        sim.run()
        assert disk.busy_time == pytest.approx(sim.now)
        assert disk.completed_writes == 2
        assert disk.utilization(sim.now) == pytest.approx(1.0)

    def test_queue_delay_tracked(self):
        sim, disk = make_disk()
        disk.submit(DiskIO(offset=1, is_write=False))
        disk.submit(DiskIO(offset=999, is_write=False))
        sim.run()
        assert disk.total_queue_delay > 0

    def test_failed_disk_rejects(self):
        _sim, disk = make_disk()
        disk.fail()
        with pytest.raises(DiskFailedError):
            disk.submit(DiskIO(offset=0, is_write=False))

    def test_fail_drops_queue(self):
        sim, disk = make_disk()
        done = []
        for off in range(5):
            disk.submit(DiskIO(offset=off, is_write=False,
                               on_complete=lambda t: done.append(t)))
        sim.step()  # let the first IO complete
        disk.fail()
        sim.run()
        # Only the in-service IO completed; the queue was dropped.
        assert len(done) == 1

    def test_queue_length(self):
        _sim, disk = make_disk()
        assert disk.queue_length == 0
        disk.submit(DiskIO(offset=0, is_write=False))
        disk.submit(DiskIO(offset=1, is_write=False))
        assert disk.queue_length == 2
