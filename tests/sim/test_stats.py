"""Latency accumulator edge cases: empty and single-sample digests,
mid-window stability of polled values, and multi-part percentiles."""

import numpy as np
import pytest

from repro.sim.stats import (
    LatencyDigest,
    LatencyStats,
    percentile_of_parts,
    quantize_latency,
    summarize,
)


class TestEmpty:
    @pytest.mark.parametrize("make", [LatencyStats, LatencyDigest])
    @pytest.mark.parametrize("p", [0, 50, 95, 99, 100])
    def test_empty_percentile_is_zero(self, make, p):
        assert make().percentile(p) == 0.0

    @pytest.mark.parametrize("make", [LatencyStats, LatencyDigest])
    def test_empty_summary(self, make):
        s = summarize(make())
        assert s == {
            "count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0
        }

    @pytest.mark.parametrize("make", [LatencyStats, LatencyDigest])
    def test_empty_bucket_counts(self, make):
        assert make().bucket_counts() == {}

    def test_empty_extend_array_is_a_no_op(self):
        d = LatencyDigest()
        d.extend_array(np.array([], dtype=np.float64))
        assert d.count == 0 and d.percentile(99) == 0.0

    def test_percentile_of_no_parts_is_zero(self):
        assert percentile_of_parts([], 99.0) == 0.0
        assert percentile_of_parts(
            [LatencyStats(), LatencyDigest()], 99.0
        ) == 0.0


class TestSingleSample:
    @pytest.mark.parametrize("make", [LatencyStats, LatencyDigest])
    @pytest.mark.parametrize("value", [0.0, 0.25, 7.3, 1e6])
    def test_every_percentile_is_the_quantized_sample(self, make, value):
        acc = make()
        acc.record(value)
        expected = quantize_latency(value)
        for p in (0, 1, 50, 99, 100):
            assert acc.percentile(p) == expected
        assert acc.max == value
        assert acc.mean == value

    @pytest.mark.parametrize("make", [LatencyStats, LatencyDigest])
    def test_single_sample_bucket(self, make):
        acc = make()
        acc.record(3.7)
        counts = acc.bucket_counts()
        assert len(counts) == 1
        assert sum(counts.values()) == 1

    def test_zero_latency_gets_its_own_bucket(self):
        acc = LatencyDigest()
        acc.record(0.0)
        acc.record(1.0)
        assert len(acc.bucket_counts()) == 2
        assert acc.percentile(0) == 0.0


class TestMidWindowStability:
    """The snapshot-poll path: values read from a digest mid-window
    must be stable — identical before and after unrelated churn, and
    identical between scalar and vectorized ingestion."""

    def test_polling_does_not_perturb_state(self):
        d = LatencyDigest()
        d.extend([5.0, 1.0, 9.0])
        first = (d.count, d.total, d.percentile(50), d.bucket_counts())
        # Poll repeatedly (the controller does this every tick).
        for _ in range(3):
            assert d.percentile(50) == first[2]
            assert d.bucket_counts() == first[3]
        assert (d.count, d.total) == first[:2]

    def test_scalar_and_vector_paths_agree_mid_window(self):
        rng = np.random.default_rng(11)
        samples = rng.exponential(4.0, size=500)
        scalar = LatencyDigest()
        vector = LatencyDigest()
        # Interleave ingestion with polling: values must agree at every
        # cut point, not just at the end.
        for lo in range(0, 500, 100):
            chunk = samples[lo:lo + 100]
            scalar.extend(chunk.tolist())
            vector.extend_array(chunk)
            assert vector.count == scalar.count
            assert vector.total == scalar.total
            assert vector.max == scalar.max
            for p in (50, 95, 99):
                assert vector.percentile(p) == scalar.percentile(p)
            assert vector.bucket_counts() == scalar.bucket_counts()

    def test_digest_matches_exact_stats(self):
        rng = np.random.default_rng(5)
        samples = rng.exponential(2.0, size=1000).tolist()
        exact = LatencyStats()
        digest = LatencyDigest()
        for x in samples:
            exact.record(x)
            digest.record(x)
        assert summarize(digest) == summarize(exact)


class TestPercentileOfParts:
    def test_union_equals_single_accumulator(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(4.0, size=900)
        whole = LatencyDigest()
        whole.extend_array(samples)
        parts = []
        for lo in range(0, 900, 300):
            part = LatencyDigest()
            part.extend_array(samples[lo:lo + 300])
            parts.append(part)
        for p in (1, 50, 95, 99, 100):
            assert percentile_of_parts(parts, p) == whole.percentile(p)

    def test_mixed_part_types(self):
        a = LatencyStats()
        a.record(1.0)
        b = LatencyDigest()
        b.record(100.0)
        # 2 samples: p50 hits the first bucket, p100 the second.
        assert percentile_of_parts([a, b], 50) == quantize_latency(1.0)
        assert percentile_of_parts([a, b], 100) == quantize_latency(100.0)

    def test_empty_parts_are_skipped(self):
        a = LatencyDigest()
        a.record(2.0)
        assert (
            percentile_of_parts([LatencyDigest(), a, LatencyStats()], 99)
            == quantize_latency(2.0)
        )
