"""Tests for the rebuild process."""

import numpy as np
import pytest

from repro.layouts import raid5_layout, ring_layout
from repro.sim import ArrayController, RebuildProcess


def run_rebuild(layout, failed=0, parallelism=4, dataplane=False):
    ctrl = ArrayController(layout, dataplane=dataplane)
    ctrl.fail_disk(failed)
    rb = RebuildProcess(ctrl, parallelism=parallelism)
    rb.start()
    ctrl.sim.run()
    assert rb.done
    return ctrl, rb.report


class TestRebuild:
    def test_rebuilds_every_crossing_stripe(self):
        lay = ring_layout(7, 3)
        _, rep = run_rebuild(lay, failed=3)
        expected = sum(1 for s in lay.stripes if 3 in s.disks)
        assert rep.stripes_rebuilt == expected
        assert rep.spare_units_written == lay.size

    def test_read_fractions_match_analytic(self):
        v, k = 9, 3
        lay = ring_layout(v, k)
        _, rep = run_rebuild(lay, failed=0)
        fractions = rep.read_fractions(lay.size)
        for d in range(1, v):
            assert fractions[d] == pytest.approx((k - 1) / (v - 1))
        assert fractions[0] == 0  # failed disk reads nothing

    def test_raid5_reads_full_disks(self):
        lay = raid5_layout(6, rotations=4)
        _, rep = run_rebuild(lay, failed=2)
        fractions = rep.read_fractions(lay.size)
        for d in range(6):
            if d != 2:
                assert fractions[d] == pytest.approx(1.0)

    def test_data_verified(self):
        lay = ring_layout(7, 3)
        _, rep = run_rebuild(lay, failed=1, dataplane=True)
        assert rep.data_verified is True

    def test_data_verification_skipped_without_dataplane(self):
        _, rep = run_rebuild(ring_layout(5, 3))
        assert rep.data_verified is None

    def test_parallelism_speeds_rebuild(self):
        lay = ring_layout(9, 3)
        _, slow = run_rebuild(lay, parallelism=1)
        _, fast = run_rebuild(lay, parallelism=8)
        assert fast.duration_ms < slow.duration_ms

    def test_requires_failed_disk(self):
        ctrl = ArrayController(ring_layout(5, 3))
        rb = RebuildProcess(ctrl)
        with pytest.raises(RuntimeError, match="fail a disk"):
            rb.start()

    def test_rejects_bad_parallelism(self):
        ctrl = ArrayController(ring_layout(5, 3))
        with pytest.raises(ValueError):
            RebuildProcess(ctrl, parallelism=0)

    def test_rebuild_with_dirty_data(self):
        # Writes before the failure must be recovered faithfully.
        lay = ring_layout(7, 3)
        ctrl = ArrayController(lay, dataplane=True)
        rng = np.random.default_rng(1)
        for lba in rng.integers(0, ctrl.mapper.capacity, size=40):
            ctrl.submit_write(int(lba))
        ctrl.sim.run()
        ctrl.fail_disk(4)
        rb = RebuildProcess(ctrl)
        rb.start()
        ctrl.sim.run()
        assert rb.report.data_verified is True
