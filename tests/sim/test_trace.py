"""Tests for trace recording and replay."""

import pytest

from repro.layouts import ring_layout
from repro.sim import ArrayController, WorkloadConfig, drive_workload
from repro.sim.trace import (
    TraceRecord,
    load_trace,
    replay_trace,
    save_trace,
    synthesize_trace,
)


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(time_ms=1.0, op="x", lba=0)
        with pytest.raises(ValueError):
            TraceRecord(time_ms=-1.0, op="r", lba=0)
        with pytest.raises(ValueError):
            TraceRecord(time_ms=1.0, op="w", lba=-5)


class TestSynthesize:
    def test_matches_live_workload(self):
        # A synthesized trace replayed must equal driving the workload live.
        cfg = WorkloadConfig(interarrival_ms=7.0, seed=11)
        live = ArrayController(ring_layout(5, 3))
        n_live = drive_workload(live, cfg, 3000.0)
        live.sim.run()

        replayed = ArrayController(ring_layout(5, 3))
        trace = synthesize_trace(cfg, 3000.0, replayed.mapper.capacity)
        n_rep = replay_trace(replayed, trace)
        replayed.sim.run()

        assert n_live == n_rep
        assert live.per_disk_completed() == replayed.per_disk_completed()

    def test_times_sorted(self):
        trace = synthesize_trace(WorkloadConfig(seed=1), 2000.0, 100)
        times = [r.time_ms for r in trace]
        assert times == sorted(times)


class TestFileRoundTrip:
    def test_roundtrip(self, tmp_path):
        trace = synthesize_trace(WorkloadConfig(seed=2), 1000.0, 50)
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        back = load_trace(path)
        assert len(back) == len(trace)
        for a, b in zip(trace, back):
            assert a.op == b.op and a.lba == b.lba
            assert a.time_ms == pytest.approx(b.time_ms, abs=1e-5)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1.0,r,0\n")
        with pytest.raises(ValueError, match="header"):
            load_trace(path)

    def test_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_ms,op,lba\n1.0,r\n")
        with pytest.raises(ValueError, match="columns"):
            load_trace(path)


class TestReplay:
    def test_lba_wrapping(self):
        ctrl = ArrayController(ring_layout(5, 3))
        big = ctrl.mapper.capacity * 3 + 1
        replay_trace(ctrl, [TraceRecord(time_ms=1.0, op="r", lba=big)])
        ctrl.sim.run()
        assert sum(ctrl.per_disk_completed()) == 1

    def test_same_trace_different_layouts(self):
        # The point of traces: identical request stream, two layouts.
        trace = synthesize_trace(WorkloadConfig(seed=3), 2000.0, 60)
        results = []
        for k in (3, 4):
            ctrl = ArrayController(ring_layout(9, k))
            replay_trace(ctrl, trace)
            ctrl.sim.run()
            results.append(sum(ctrl.per_disk_completed()))
        assert all(r > 0 for r in results)
