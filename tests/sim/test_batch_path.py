"""Tests for the batched I/O path: controller batch submission and the
data plane's vectorized logical reads/writes."""

import numpy as np
import pytest

from repro.layouts import AddressMapper, ring_layout
from repro.sim.controller import ArrayController
from repro.sim.dataplane import DataPlane


def _drain(ctrl: ArrayController) -> None:
    ctrl.sim.run()


class TestControllerBatchReads:
    def test_batch_kinds_match_scalar(self):
        lay = ring_layout(7, 3)
        batch = ArrayController(lay)
        scalar = ArrayController(lay)
        lbas = list(range(0, batch.mapper.capacity, 3))
        kinds_batch = batch.submit_read_batch(lbas)
        kinds_scalar = [scalar.submit_read(lba) for lba in lbas]
        assert kinds_batch == kinds_scalar
        _drain(batch)
        _drain(scalar)
        assert batch.per_disk_completed() == scalar.per_disk_completed()

    def test_degraded_batch_reads_fan_out(self):
        lay = ring_layout(7, 3)
        ctrl = ArrayController(lay)
        ctrl.fail_disk(0)
        lbas = np.arange(ctrl.mapper.capacity)
        kinds = ctrl.submit_read_batch(lbas)
        assert "degraded_read" in kinds and "read" in kinds
        _drain(ctrl)
        assert ctrl.per_disk_completed()[0] == 0  # failed disk serves nothing

    def test_batch_latency_recorded_per_request(self):
        ctrl = ArrayController(ring_layout(5, 3))
        n = 10
        ctrl.submit_read_batch(list(range(n)))
        _drain(ctrl)
        assert ctrl.latency["read"].count == n


class TestControllerBatchWrites:
    def test_healthy_batch_write_keeps_parity_consistent(self):
        ctrl = ArrayController(ring_layout(7, 3), dataplane=True)
        lbas = np.arange(0, ctrl.mapper.capacity, 2)
        kinds = ctrl.submit_write_batch(lbas)
        assert set(kinds) == {"write"}
        _drain(ctrl)
        assert ctrl.data is not None and ctrl.data.all_parity_consistent()

    def test_batch_write_contents_match_scalar_path(self):
        lay = ring_layout(7, 3)
        batch = ArrayController(lay, dataplane=True, seed=5)
        scalar = ArrayController(lay, dataplane=True, seed=5)
        lbas = list(range(0, batch.mapper.capacity, 3))
        batch.submit_write_batch(lbas)
        for lba in lbas:
            scalar.submit_write(lba)
        _drain(batch)
        _drain(scalar)
        assert np.array_equal(batch.data.store, scalar.data.store)

    def test_degraded_batch_write_folds_into_parity(self):
        ctrl = ArrayController(ring_layout(7, 3), dataplane=True)
        before = ctrl.data.snapshot_disk(2)
        ctrl.fail_disk(2)
        lbas = np.arange(ctrl.mapper.capacity)
        kinds = ctrl.submit_write_batch(lbas)
        assert "degraded_write" in kinds
        _drain(ctrl)
        # Every *data* unit of the failed disk is recoverable by XOR of
        # the survivors (parity units on the failed disk are lost until
        # rebuild — same as the scalar path).
        rebuilt = ctrl.data.reconstruct_disk(2)
        stored = ctrl.data.snapshot_disk(2)
        changed = False
        for off in range(ctrl.layout.size):
            lba, is_parity = ctrl.mapper.physical_to_logical(2, off)
            if is_parity:
                continue
            assert np.array_equal(rebuilt[off], stored[off])
            changed = changed or not np.array_equal(rebuilt[off], before[off])
        assert changed

    def test_batch_write_payload_shape_checked(self):
        ctrl = ArrayController(ring_layout(5, 3), dataplane=True)
        with pytest.raises(ValueError):
            ctrl.submit_write_batch([0, 1], data=np.zeros((3, 8), dtype=np.uint64))


class TestDataPlaneBatch:
    def test_read_logical_batch_matches_scalar(self):
        lay = ring_layout(7, 3)
        plane = DataPlane(lay, seed=9)
        mapper = AddressMapper(lay)
        lbas = np.arange(0, mapper.capacity, 5)
        batch = plane.read_logical_batch(mapper, lbas)
        for i, lba in enumerate(lbas.tolist()):
            pu = mapper.logical_to_physical(lba)
            assert np.array_equal(batch[i], plane.read_unit(pu.disk, pu.offset))

    def test_write_logical_batch_is_a_correct_small_write(self):
        lay = ring_layout(7, 3)
        plane = DataPlane(lay, seed=9)
        mapper = AddressMapper(lay)
        lbas = np.arange(mapper.capacity, dtype=np.int64)
        data = np.arange(
            len(lbas) * plane.unit_words, dtype=np.uint64
        ).reshape(len(lbas), plane.unit_words)
        plane.write_logical_batch(mapper, lbas, data)
        assert np.array_equal(plane.read_logical_batch(mapper, lbas), data)
        assert plane.all_parity_consistent()

    def test_duplicate_addresses_get_last_write_wins(self):
        lay = ring_layout(5, 3)
        plane = DataPlane(lay, seed=1)
        mapper = AddressMapper(lay)
        lbas = np.array([4, 4, 4], dtype=np.int64)
        data = np.stack(
            [np.full(plane.unit_words, fill, dtype=np.uint64) for fill in (1, 2, 3)]
        )
        plane.write_logical_batch(mapper, lbas, data)
        assert np.array_equal(
            plane.read_logical_batch(mapper, np.array([4]))[0], data[2]
        )
        assert plane.all_parity_consistent()

    def test_batch_write_shape_rejected(self):
        lay = ring_layout(5, 3)
        plane = DataPlane(lay)
        mapper = AddressMapper(lay)
        with pytest.raises(ValueError):
            plane.write_logical_batch(
                mapper, [0, 1], np.zeros((2, 3), dtype=np.uint64)
            )

    def test_multi_iteration_mapper_rejected(self):
        # The store holds one iteration; a tiling mapper must not
        # silently alias onto it.
        lay = ring_layout(5, 3)
        plane = DataPlane(lay)
        tiled = AddressMapper(lay, iterations=2)
        with pytest.raises(ValueError, match="iteration"):
            plane.read_logical_batch(tiled, [0])
        with pytest.raises(ValueError, match="iteration"):
            plane.write_logical_batch(
                tiled, [0], np.zeros((1, plane.unit_words), dtype=np.uint64)
            )
        with pytest.raises(ValueError, match="geometry"):
            plane.read_logical_batch(AddressMapper(ring_layout(7, 3)), [0])

    def test_vectorized_full_parity_matches_per_stripe(self):
        lay = ring_layout(7, 3)
        plane = DataPlane(lay, seed=2)
        plane.store[:] += np.uint64(1)  # corrupt everything
        plane.recompute_all_parity()
        for sid in range(lay.b):
            assert plane.parity_consistent(sid)
