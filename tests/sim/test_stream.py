"""Streaming compiled execution: window generation and the
constant-memory executors.

The contract under test: for every engine the selection gate can pick
(analytic solver, eager core, chained heap pump) and every failure
state, a windowed run produces a report equal — field for field,
including every float — to the materialized run of the same config,
at any window size.  Window boundaries are adversarial by
construction: ``window_size=1`` puts a boundary between every pair of
requests (so every multi-phase read-modify-write spans one), a prime
size keeps boundaries sliding relative to any internal periodicity,
and a size beyond the stream length degenerates to one window.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core import get_layout
from repro.sim import WorkloadConfig, simulate_workload
from repro.sim.compile import StreamWindows, generate_request_stream
from repro.sim.controller import ArrayController
from repro.sim.stats import summarize
from repro.sim.stream import execute_windows

LAYOUT = get_layout(9, 3)
DURATION = 600.0
#: One of each shape: a boundary everywhere, a sliding prime, a
#: power of two, and larger than the whole stream.
WINDOW_SIZES = (1, 13, 64, 10**6)


def _cfg(**overrides) -> WorkloadConfig:
    base = dict(interarrival_ms=2.0, read_fraction=0.6, seed=5)
    base.update(overrides)
    return WorkloadConfig(**base)


class TestStreamWindows:
    def test_concatenation_matches_whole_stream_at_every_size(self):
        cfg = _cfg()
        whole = generate_request_stream(cfg, DURATION, 100)
        for ws in (1, 7, 64, 10**6):
            chunks = list(StreamWindows(cfg, DURATION, 100, window_size=ws))
            for i in range(3):
                got = np.concatenate([c[i] for c in chunks])
                assert np.array_equal(got, whole[i]), (ws, i)

    def test_zipf_addresses_chunk_identically(self):
        cfg = _cfg(zipf_theta=0.9)
        whole = generate_request_stream(cfg, DURATION, 100)
        chunks = list(StreamWindows(cfg, DURATION, 100, window_size=7))
        got = np.concatenate([c[2] for c in chunks])
        assert np.array_equal(got, whole[2])

    def test_reiterable_and_deterministic(self):
        """Each ``iter()`` builds fresh generators: two full iterations
        (and two interleaved iterators) yield identical windows."""
        w = StreamWindows(_cfg(), DURATION, 100, window_size=16)
        first = [tuple(map(np.copy, c)) for c in w]
        second = list(w)
        assert len(first) == len(second) and len(first) > 1
        for a, b in zip(first, second):
            for i in range(3):
                assert np.array_equal(a[i], b[i])
        it1, it2 = iter(w), iter(w)
        a, _ = next(it1), next(it1)
        b = next(it2)
        assert np.array_equal(a[0], b[0])

    def test_times_strictly_ordered_across_boundaries(self):
        last = float("-inf")
        for times, _, _ in StreamWindows(_cfg(), DURATION, 100, window_size=9):
            assert float(times[0]) > last
            assert np.all(np.diff(times) >= 0)
            assert float(times[-1]) < DURATION
            last = float(times[-1])

    def test_oversized_window_is_one_window(self):
        chunks = list(StreamWindows(_cfg(), DURATION, 100, window_size=10**6))
        assert len(chunks) == 1

    def test_window_size_validated(self):
        with pytest.raises(ValueError, match="window_size"):
            StreamWindows(_cfg(), DURATION, 100, window_size=0)


#: (id, simulate_workload overrides) — one per engine/failure state
#: the selection gate distinguishes.
CASES = [
    ("read_only_solver", dict(config=_cfg(read_fraction=1.0))),
    ("write_through_solver", dict(config=_cfg(), write_policy="write_through")),
    ("mixed_rmw_eager", dict(config=_cfg())),
    ("degraded_mixed", dict(config=_cfg(), failed_disk=1)),
    ("degraded_read_only", dict(config=_cfg(read_fraction=1.0), failed_disk=1)),
    ("dataplane_pump", dict(config=_cfg(read_fraction=0.5), verify_data=True)),
    ("zipf_mixed", dict(config=_cfg(zipf_theta=0.9))),
]


class TestWindowedReportEquality:
    """Windowed == materialized, per engine, per failure state, per
    window size — the report dataclass compared whole (latency floats,
    per-disk counters, utilizations, final clock)."""

    @pytest.mark.parametrize(
        "overrides", [c[1] for c in CASES], ids=[c[0] for c in CASES]
    )
    def test_matches_materialized_at_every_window_size(self, overrides):
        materialized = asdict(
            simulate_workload(LAYOUT, duration_ms=DURATION, **overrides)
        )
        for ws in WINDOW_SIZES:
            windowed = asdict(
                simulate_workload(
                    LAYOUT, duration_ms=DURATION, window_size=ws, **overrides
                )
            )
            assert windowed == materialized, ws

    def test_window_boundary_mid_rmw(self):
        """``window_size=1`` places a boundary after *every* request —
        each write's read and write phases straddle one.  The eager
        core must carry its pending-phase heap across all of them."""
        overrides = dict(config=_cfg(read_fraction=0.0))
        materialized = asdict(
            simulate_workload(LAYOUT, duration_ms=DURATION, **overrides)
        )
        windowed = asdict(
            simulate_workload(
                LAYOUT, duration_ms=DURATION, window_size=1, **overrides
            )
        )
        assert windowed == materialized


class TestExecuteWindowsGate:
    def test_unbatched_windowed_rejected(self):
        with pytest.raises(ValueError, match="batched"):
            simulate_workload(
                LAYOUT, duration_ms=50.0, window_size=8, batched=False
            )

    def test_lying_read_only_hint_raises(self):
        """The hint is a caller promise; a mixed stream under it must
        fail loudly in the solver, not silently mis-simulate."""
        ctrl = ArrayController(LAYOUT)
        windows = StreamWindows(
            _cfg(read_fraction=0.5), 100.0, ctrl.mapper.capacity, window_size=16
        )
        with pytest.raises(ValueError, match="read-only"):
            execute_windows(ctrl, windows, read_only_hint=True)

    def test_one_shot_generator_streams_through_pump(self):
        """A non-re-iterable window source skips the eager tier (no
        replay possible) and still reproduces the materialized report
        through the chained heap pump."""
        cfg = _cfg()
        materialized = asdict(
            simulate_workload(LAYOUT, duration_ms=400.0, config=cfg)
        )
        ctrl = ArrayController(LAYOUT)
        one_shot = iter(
            StreamWindows(cfg, 400.0, ctrl.mapper.capacity, window_size=32)
        )
        scheduled, digests = execute_windows(ctrl, one_shot)
        assert ctrl.last_engine == "windowed-pump"
        assert scheduled == materialized["scheduled"]
        latency = {kind: summarize(d) for kind, d in digests.items()}
        assert latency == materialized["latency"]
        assert ctrl.per_disk_completed() == materialized["per_disk_ios"]

    def test_empty_stream(self):
        """A horizon shorter than the first arrival yields no windows
        and a zero report on both paths."""
        overrides = dict(config=_cfg(seed=11))
        materialized = simulate_workload(
            LAYOUT, duration_ms=1e-9, **overrides
        )
        windowed = simulate_workload(
            LAYOUT, duration_ms=1e-9, window_size=4, **overrides
        )
        assert materialized.scheduled == windowed.scheduled == 0
        assert asdict(windowed) == asdict(materialized)
