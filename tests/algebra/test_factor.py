"""Tests for integer factorization and prime-power utilities."""

import pytest

from repro.algebra import (
    divisors,
    is_prime,
    is_prime_power,
    largest_prime_power_leq,
    min_prime_power_factor,
    prime_factorization,
    prime_power_decomposition,
    prime_powers_upto,
    primes_upto,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (1, 4, 6, 9, 15, 91, 1001, 7917):
            assert not is_prime(n)

    def test_non_positive(self):
        assert not is_prime(0)
        assert not is_prime(-7)

    def test_agrees_with_sieve(self):
        sieve = set(primes_upto(500))
        for n in range(500 + 1):
            assert is_prime(n) == (n in sieve)


class TestPrimeFactorization:
    def test_small_cases(self):
        assert prime_factorization(360) == ((2, 3), (3, 2), (5, 1))
        assert prime_factorization(97) == ((97, 1),)
        assert prime_factorization(1) == ()

    def test_reconstruction(self):
        for n in range(2, 300):
            prod = 1
            for p, e in prime_factorization(n):
                assert is_prime(p)
                prod *= p**e
            assert prod == n

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prime_factorization(0)

    def test_increasing_prime_order(self):
        facs = prime_factorization(2 * 3 * 5 * 7 * 11)
        primes = [p for p, _ in facs]
        assert primes == sorted(primes)


class TestPrimePower:
    def test_prime_powers(self):
        for n in (2, 3, 4, 8, 9, 16, 25, 27, 32, 121, 128, 243):
            assert is_prime_power(n)

    def test_non_prime_powers(self):
        for n in (1, 6, 10, 12, 15, 36, 100):
            assert not is_prime_power(n)

    def test_decomposition(self):
        assert prime_power_decomposition(8) == (2, 3)
        assert prime_power_decomposition(121) == (11, 2)
        assert prime_power_decomposition(7) == (7, 1)

    def test_decomposition_rejects_composite(self):
        with pytest.raises(ValueError):
            prime_power_decomposition(12)


class TestMinPrimePowerFactor:
    """M(v) of Theorem 2."""

    def test_prime_power_is_itself(self):
        for q in (2, 3, 4, 9, 16, 27):
            assert min_prime_power_factor(q) == q

    def test_composites(self):
        assert min_prime_power_factor(12) == 3  # 12 = 4 * 3
        assert min_prime_power_factor(6) == 2
        assert min_prime_power_factor(100) == 4  # 4 * 25
        assert min_prime_power_factor(72) == 8  # 8 * 9
        assert min_prime_power_factor(1000) == 8  # 8 * 125

    def test_paper_example_bad_v(self):
        # v divisible once by a small prime caps k hard.
        assert min_prime_power_factor(2 * 101) == 2


class TestDivisors:
    def test_examples(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(49) == [1, 7, 49]

    def test_each_divides(self):
        for n in (30, 64, 97, 360):
            for d in divisors(n):
                assert n % d == 0

    def test_count_matches_formula(self):
        for n in range(1, 200):
            expected = 1
            for _, e in prime_factorization(n):
                expected *= e + 1
            assert len(divisors(n)) == expected


class TestEnumerations:
    def test_primes_upto(self):
        assert primes_upto(20) == [2, 3, 5, 7, 11, 13, 17, 19]
        assert primes_upto(1) == []

    def test_prime_powers_upto(self):
        assert prime_powers_upto(16) == [2, 3, 4, 5, 7, 8, 9, 11, 13, 16]

    def test_prime_powers_sorted_and_complete(self):
        pps = prime_powers_upto(200)
        assert pps == sorted(pps)
        assert set(pps) == {n for n in range(2, 201) if is_prime_power(n)}

    def test_largest_prime_power_leq(self):
        assert largest_prime_power_leq(10) == 9
        assert largest_prime_power_leq(16) == 16
        assert largest_prime_power_leq(2) == 2
        assert largest_prime_power_leq(100) == 97

    def test_largest_prime_power_rejects_below_two(self):
        with pytest.raises(ValueError):
            largest_prime_power_leq(1)
