"""Tests for the ring abstraction, Zmod, and cross products."""

import itertools

import pytest

from repro.algebra import GF, CrossProductRing, NotInvertible, Zmod


def check_ring_axioms(ring, sample=None):
    """Exhaustively (or on a sample) verify the commutative-ring-with-unit
    axioms the paper's Section 2 relies on."""
    elems = list(ring.elements()) if sample is None else sample
    assert ring.zero in ring.elements()
    assert ring.one in ring.elements()
    assert ring.zero != ring.one
    for a in elems:
        assert ring.add(a, ring.zero) == a
        assert ring.mul(a, ring.one) == a
        assert ring.add(a, ring.neg(a)) == ring.zero
    for a, b in itertools.product(elems, repeat=2):
        assert ring.add(a, b) == ring.add(b, a)
        assert ring.mul(a, b) == ring.mul(b, a)
    for a, b, c in itertools.islice(itertools.product(elems, repeat=3), 3000):
        assert ring.add(ring.add(a, b), c) == ring.add(a, ring.add(b, c))
        assert ring.mul(ring.mul(a, b), c) == ring.mul(a, ring.mul(b, c))
        assert ring.mul(a, ring.add(b, c)) == ring.add(ring.mul(a, b), ring.mul(a, c))


class TestZmod:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 9, 12])
    def test_axioms(self, n):
        check_ring_axioms(Zmod(n))

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            Zmod(1)

    def test_units(self):
        r = Zmod(12)
        units = {a for a in r.elements() if r.is_unit(a)}
        assert units == {1, 5, 7, 11}

    def test_inverse_roundtrip(self):
        r = Zmod(35)
        for a in r.elements():
            if r.is_unit(a):
                assert r.mul(a, r.inverse(a)) == 1

    def test_inverse_of_nonunit_raises(self):
        with pytest.raises(NotInvertible):
            Zmod(12).inverse(4)

    def test_index_element_roundtrip(self):
        r = Zmod(10)
        for i in range(10):
            assert r.index(r.element(i)) == i


class TestDerivedOps:
    def test_sub(self):
        r = Zmod(7)
        assert r.sub(3, 5) == 5

    def test_nsmul(self):
        r = Zmod(10)
        assert r.nsmul(7, 3) == 1
        assert r.nsmul(0, 3) == 0

    def test_pow(self):
        r = Zmod(11)
        assert r.pow(2, 10) == 1  # Fermat
        assert r.pow(5, 0) == 1

    def test_additive_order_divides_ring_order(self):
        # Algebra Fact (1) from the paper.
        for n in (6, 8, 12):
            r = Zmod(n)
            for a in r.elements():
                assert n % r.additive_order(a) == 0

    def test_additive_order_zmod(self):
        r = Zmod(12)
        assert r.additive_order(0) == 1
        assert r.additive_order(1) == 12
        assert r.additive_order(4) == 3
        assert r.additive_order(6) == 2

    def test_multiplicative_order(self):
        r = Zmod(7)
        assert r.multiplicative_order(1) == 1
        assert r.multiplicative_order(6) == 2
        assert r.multiplicative_order(3) == 6

    def test_multiplicative_order_nonunit_raises(self):
        with pytest.raises(NotInvertible):
            Zmod(8).multiplicative_order(2)


class TestCrossProduct:
    def test_axioms_z2_x_z3(self):
        check_ring_axioms(CrossProductRing([Zmod(2), Zmod(3)]))

    def test_order(self):
        r = CrossProductRing([Zmod(4), Zmod(3), Zmod(5)])
        assert r.order == 60
        assert len(r.elements()) == 60

    def test_componentwise_ops(self):
        r = CrossProductRing([Zmod(4), Zmod(3)])
        assert r.add((1, 2), (3, 2)) == (0, 1)
        assert r.mul((2, 2), (2, 2)) == (0, 1)
        assert r.neg((1, 1)) == (3, 2)

    def test_unit_iff_all_components_units(self):
        r = CrossProductRing([Zmod(4), Zmod(3)])
        assert r.is_unit((1, 1))
        assert r.is_unit((3, 2))
        assert not r.is_unit((2, 1))  # 2 not a unit mod 4
        assert not r.is_unit((1, 0))

    def test_cross_product_of_fields_is_not_field(self):
        # The paper's remark after Lemma 3.
        r = CrossProductRing([GF(2), GF(3)])
        nonzero_nonunits = [
            a for a in r.elements() if a != r.zero and not r.is_unit(a)
        ]
        assert nonzero_nonunits  # a field would have none

    def test_empty_product_rejected(self):
        with pytest.raises(ValueError):
            CrossProductRing([])

    def test_identity_elements(self):
        r = CrossProductRing([Zmod(2), Zmod(5)])
        assert r.zero == (0, 0)
        assert r.one == (1, 1)
