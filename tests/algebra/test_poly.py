"""Tests for polynomial arithmetic over GF(p)."""

import pytest

from repro.algebra.poly import (
    find_irreducible,
    is_irreducible,
    poly_add,
    poly_divmod,
    poly_from_int,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_neg,
    poly_powmod,
    poly_sub,
    poly_to_int,
    poly_trim,
)


class TestBasicOps:
    def test_trim(self):
        assert poly_trim([1, 2, 0, 0]) == (1, 2)
        assert poly_trim([0, 0]) == ()
        assert poly_trim([]) == ()

    def test_add_mod2(self):
        # (1 + x) + (1 + x^2) = x + x^2 over GF(2)
        assert poly_add((1, 1), (1, 0, 1), 2) == (0, 1, 1)

    def test_add_cancellation(self):
        assert poly_add((2, 1), (1, 2), 3) == ()

    def test_neg_sub(self):
        a, b = (1, 2, 1), (2, 2)
        p = 5
        assert poly_add(a, poly_neg(a, p), p) == ()
        assert poly_add(poly_sub(a, b, p), b, p) == a

    def test_mul_known(self):
        # (1+x)(1+x) = 1 + 2x + x^2 over GF(5); over GF(2) = 1 + x^2
        assert poly_mul((1, 1), (1, 1), 5) == (1, 2, 1)
        assert poly_mul((1, 1), (1, 1), 2) == (1, 0, 1)

    def test_mul_zero(self):
        assert poly_mul((), (1, 1), 3) == ()
        assert poly_mul((1, 1), (), 3) == ()


class TestDivMod:
    def test_divmod_identity(self):
        p = 7
        a = (3, 0, 2, 5)
        b = (1, 4, 1)
        q, r = poly_divmod(a, b, p)
        recombined = poly_add(poly_mul(q, b, p), r, p)
        assert recombined == a
        assert len(r) < len(b)

    def test_exact_division(self):
        p = 3
        b = (1, 1)
        q = (2, 0, 1)
        a = poly_mul(b, q, p)
        quot, rem = poly_divmod(a, b, p)
        assert quot == q and rem == ()

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod((1, 1), (), 3)

    def test_divmod_nonmonic_divisor(self):
        p = 5
        a = (1, 2, 3, 4)
        b = (2, 3)  # leading coefficient 3, not monic
        q, r = poly_divmod(a, b, p)
        assert poly_add(poly_mul(q, b, p), r, p) == a


class TestGcd:
    def test_gcd_of_multiples(self):
        p = 5
        g = (1, 1)
        a = poly_mul(g, (2, 3, 1), p)
        b = poly_mul(g, (4, 1), p)
        got = poly_gcd(a, b, p)
        # gcd is monic and divisible by (1 + x)
        assert got[-1] == 1
        _, rem = poly_divmod(got, g, p)
        assert rem == ()

    def test_gcd_coprime(self):
        p = 2
        # x and x+1 are coprime
        assert poly_gcd((0, 1), (1, 1), p) == (1,)


class TestPowMod:
    def test_powmod_small(self):
        p = 3
        mod = (1, 0, 1)  # 1 + x^2
        x = (0, 1)
        direct = poly_mod(poly_mul(poly_mul(x, x, p), x, p), mod, p)
        assert poly_powmod(x, 3, mod, p) == direct

    def test_powmod_zero_exponent(self):
        assert poly_powmod((0, 1), 0, (1, 1, 1), 2) == (1,)

    def test_fermat_in_field(self):
        # x^(p^n) == x mod f for irreducible f of degree n.
        p, n = 2, 4
        f = find_irreducible(p, n)
        assert poly_powmod((0, 1), p**n, f, p) == (0, 1)


class TestIrreducibility:
    def test_known_irreducible_gf2(self):
        assert is_irreducible((1, 1, 0, 1), 2)  # x^3 + x + 1
        assert is_irreducible((1, 1, 1), 2)  # x^2 + x + 1

    def test_known_reducible_gf2(self):
        assert not is_irreducible((1, 0, 1), 2)  # x^2 + 1 = (x+1)^2
        assert not is_irreducible((0, 1, 1), 2)  # x(1 + x)

    def test_degree_one_always_irreducible(self):
        assert is_irreducible((2, 1), 5)

    def test_constants_not_irreducible(self):
        assert not is_irreducible((1,), 3)
        assert not is_irreducible((), 3)

    def test_counts_gf2_degree4(self):
        # There are exactly 3 monic irreducible quartics over GF(2).
        count = 0
        for code in range(16):
            coeffs = list(poly_from_int(code, 2))
            coeffs += [0] * (4 - len(coeffs))
            coeffs.append(1)
            if is_irreducible(tuple(coeffs), 2):
                count += 1
        assert count == 3

    def test_counts_gf3_degree2(self):
        # (p^2 - p)/2 = 3 monic irreducible quadratics over GF(3).
        count = 0
        for code in range(9):
            coeffs = list(poly_from_int(code, 3))
            coeffs += [0] * (2 - len(coeffs))
            coeffs.append(1)
            if is_irreducible(tuple(coeffs), 3):
                count += 1
        assert count == 3


class TestFindIrreducible:
    @pytest.mark.parametrize("p,m", [(2, 2), (2, 3), (2, 8), (3, 2), (3, 3), (5, 2), (7, 2)])
    def test_returns_monic_irreducible(self, p, m):
        f = find_irreducible(p, m)
        assert len(f) - 1 == m
        assert f[-1] == 1
        assert is_irreducible(f, p)

    def test_deterministic(self):
        assert find_irreducible(2, 5) == find_irreducible(2, 5)

    def test_degree_one(self):
        assert find_irreducible(7, 1) == (0, 1)

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            find_irreducible(3, 0)


class TestIntCodec:
    def test_roundtrip(self):
        for p in (2, 3, 5):
            for code in range(p**3):
                assert poly_to_int(poly_from_int(code, p), p) == code

    def test_zero(self):
        assert poly_from_int(0, 2) == ()
        assert poly_to_int((), 2) == 0
