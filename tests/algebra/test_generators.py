"""Tests for generator sets and the Theorem 2 characterization."""

import pytest

from repro.algebra import (
    GF,
    CrossProductRing,
    Zmod,
    generator_capacity,
    is_generator_set,
    max_generator_set_size,
    ring_with_generators,
)


class TestGeneratorCapacity:
    """M(v) values used throughout the paper."""

    def test_prime_powers(self):
        for q in (2, 3, 4, 5, 8, 9, 16):
            assert generator_capacity(q) == q

    def test_composites(self):
        assert generator_capacity(6) == 2
        assert generator_capacity(12) == 3
        assert generator_capacity(15) == 3
        assert generator_capacity(45) == 5  # 9 * 5
        assert generator_capacity(72) == 8  # 8 * 9


class TestIsGeneratorSet:
    def test_field_any_subset(self):
        f = GF(7)
        assert is_generator_set(f, [0, 1, 3, 5])
        assert is_generator_set(f, list(f.elements()))

    def test_repeats_rejected(self):
        assert not is_generator_set(GF(7), [0, 1, 1])

    def test_zmod_bad_difference(self):
        r = Zmod(6)
        assert is_generator_set(r, [0, 1])
        assert not is_generator_set(r, [0, 2])  # 2 not a unit mod 6
        assert not is_generator_set(r, [0, 1, 2])  # 2 - 1 = 1 ok, 2 - 0 = 2 bad

    def test_cross_product(self):
        r = CrossProductRing([GF(4), GF(3)])
        gens = [(j, j) for j in range(3)]
        assert is_generator_set(r, gens)


class TestRingWithGenerators:
    @pytest.mark.parametrize("v,k", [(5, 3), (8, 8), (9, 4), (12, 3), (15, 3), (45, 5), (100, 4)])
    def test_valid_construction(self, v, k):
        ring, gens = ring_with_generators(v, k)
        assert ring.order == v
        assert len(gens) == k
        assert is_generator_set(ring, gens)

    def test_g0_is_zero_for_fields(self):
        ring, gens = ring_with_generators(9, 3)
        assert gens[0] == ring.zero

    @pytest.mark.parametrize("v,k", [(6, 3), (12, 4), (10, 3), (2 * 101, 3)])
    def test_rejects_k_above_capacity(self, v, k):
        with pytest.raises(ValueError):
            ring_with_generators(v, k)

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            ring_with_generators(9, 0)


class TestTheorem2UpperBound:
    """Exhaustive confirmation that no ring beats M(v) on small orders."""

    @pytest.mark.parametrize("n", [6, 10, 12, 15])
    def test_zmod_within_bound(self, n):
        assert max_generator_set_size(Zmod(n)) <= generator_capacity(n)

    @pytest.mark.parametrize("v", [6, 12, 15])
    def test_cross_product_achieves_bound(self, v):
        ring, gens = ring_with_generators(v, generator_capacity(v))
        assert max_generator_set_size(ring) == generator_capacity(v)

    def test_field_achieves_v(self):
        assert max_generator_set_size(GF(5)) == 5
        assert max_generator_set_size(GF(4)) == 4

    def test_zmod12_is_suboptimal(self):
        # Z_12 only reaches 2, but M(12) = 3 — the Lemma 3 cross product
        # is genuinely needed.
        assert max_generator_set_size(Zmod(12)) == 2
        ring, _ = ring_with_generators(12, 3)
        assert max_generator_set_size(ring) == 3
