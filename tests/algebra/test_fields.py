"""Tests for finite fields GF(p) and GF(p^m)."""

import itertools

import pytest

from repro.algebra import GF, ExtensionField, NotInvertible, PrimeField
from tests.algebra.test_rings import check_ring_axioms


class TestGFFactory:
    @pytest.mark.parametrize("q", [2, 3, 5, 7, 11])
    def test_prime_orders(self, q):
        f = GF(q)
        assert isinstance(f, PrimeField)
        assert f.order == q and f.m == 1

    @pytest.mark.parametrize("q,p,m", [(4, 2, 2), (8, 2, 3), (9, 3, 2), (16, 2, 4), (25, 5, 2), (27, 3, 3)])
    def test_prime_power_orders(self, q, p, m):
        f = GF(q)
        assert isinstance(f, ExtensionField)
        assert (f.order, f.p, f.m) == (q, p, m)

    @pytest.mark.parametrize("q", [1, 6, 12, 100])
    def test_rejects_non_prime_powers(self, q):
        with pytest.raises(ValueError):
            GF(q)


class TestFieldAxioms:
    @pytest.mark.parametrize("q", [2, 3, 4, 5, 8, 9])
    def test_ring_axioms(self, q):
        check_ring_axioms(GF(q))

    @pytest.mark.parametrize("q", [2, 3, 4, 5, 7, 8, 9, 16, 25, 27])
    def test_every_nonzero_invertible(self, q):
        f = GF(q)
        for a in f.elements():
            if a == f.zero:
                with pytest.raises(NotInvertible):
                    f.inverse(a)
            else:
                assert f.mul(a, f.inverse(a)) == f.one

    @pytest.mark.parametrize("q", [4, 8, 9, 16])
    def test_no_zero_divisors(self, q):
        f = GF(q)
        for a, b in itertools.product(f.elements(), repeat=2):
            if a != 0 and b != 0:
                assert f.mul(a, b) != 0

    @pytest.mark.parametrize("q", [4, 9, 8])
    def test_characteristic(self, q):
        f = GF(q)
        # Adding 1 to itself p times gives 0.
        acc = f.zero
        for _ in range(f.p):
            acc = f.add(acc, f.one)
        assert acc == f.zero


class TestPrimitiveElements:
    @pytest.mark.parametrize("q", [3, 4, 5, 7, 8, 9, 13, 16, 25, 27, 32])
    def test_primitive_generates_all_nonzero(self, q):
        f = GF(q)
        g = f.primitive_element()
        seen = set()
        x = f.one
        for _ in range(q - 1):
            seen.add(x)
            x = f.mul(x, g)
        assert len(seen) == q - 1

    def test_element_of_order(self):
        f = GF(16)
        for d in (1, 3, 5, 15):
            a = f.element_of_order(d)
            assert f.multiplicative_order(a) == d

    def test_element_of_order_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            GF(16).element_of_order(7)

    @pytest.mark.parametrize("q", [8, 9, 27])
    def test_multiplicative_order_consistency(self, q):
        f = GF(q)
        for a in f.elements():
            if a == f.zero:
                continue
            d = f.multiplicative_order(a)
            assert f.pow(a, d) == f.one
            assert (q - 1) % d == 0


class TestSubfields:
    def test_gf9_prime_subfield(self):
        assert GF(9).subfield_elements(3) == [0, 1, 2]

    @pytest.mark.parametrize("q,sub", [(4, 2), (16, 4), (16, 2), (64, 8), (64, 4), (64, 2), (81, 9), (81, 3), (27, 3)])
    def test_subfield_is_closed_field(self, q, sub):
        f = GF(q)
        g = f.subfield_elements(sub)
        assert len(g) == sub
        gset = set(g)
        assert f.zero in gset and f.one in gset
        for a, b in itertools.product(g, repeat=2):
            assert f.add(a, b) in gset
            assert f.mul(a, b) in gset
        for a in g:
            if a != f.zero:
                assert f.inverse(a) in gset

    def test_no_such_subfield(self):
        with pytest.raises(ValueError):
            GF(16).subfield_elements(8)  # 8 = 2^3, 3 does not divide 4
        with pytest.raises(ValueError):
            GF(9).subfield_elements(2)  # wrong characteristic


class TestExtensionFieldInternals:
    def test_add_is_carryless(self):
        f = GF(4)  # GF(2^m): addition is XOR
        for a, b in itertools.product(f.elements(), repeat=2):
            assert f.add(a, b) == a ^ b

    def test_poly_codec_roundtrip(self):
        f = GF(27)
        for a in f.elements():
            assert f.from_poly(f.to_poly(a)) == a

    def test_rejects_degree_one(self):
        with pytest.raises(ValueError):
            ExtensionField(7, 1)

    def test_rejects_composite_characteristic(self):
        with pytest.raises(ValueError):
            ExtensionField(6, 2)

    def test_rejects_wrong_modulus_degree(self):
        with pytest.raises(ValueError):
            ExtensionField(2, 3, modulus=(1, 1, 1))  # degree 2, m = 3

    def test_custom_modulus(self):
        # x^3 + x^2 + 1 is the other irreducible cubic over GF(2).
        f = ExtensionField(2, 3, modulus=(1, 0, 1, 1))
        check_ring_axioms(f)
        assert f.order == 8
