"""Unit coverage for the bench suite's peak-RSS probe.

``peak_rss_mb`` feeds the CLI's ``--max-rss-mb`` gate, so its two
sources — procfs ``VmHWM`` and the ``getrusage`` fallback with its
platform-dependent unit — are pinned here without monkeypatching the
live process state.
"""

import sys

from repro.bench import _rusage_mb, _vm_hwm_mb, peak_rss_mb


class TestVmHwm:
    def test_parses_vm_hwm_line(self, tmp_path):
        status = tmp_path / "status"
        status.write_text(
            "Name:\tpython\nVmPeak:\t  999999 kB\nVmHWM:\t   51200 kB\n"
        )
        assert _vm_hwm_mb(str(status)) == 50.0

    def test_missing_file_returns_none(self, tmp_path):
        assert _vm_hwm_mb(str(tmp_path / "no-such-status")) is None

    def test_file_without_hwm_returns_none(self, tmp_path):
        """A procfs without VmHWM (or any non-Linux stand-in) falls
        through to the rusage path instead of crashing."""
        status = tmp_path / "status"
        status.write_text("Name:\tpython\nVmPeak:\t  999999 kB\n")
        assert _vm_hwm_mb(str(status)) is None


class TestRusageFallback:
    def test_linux_reports_kib(self):
        assert _rusage_mb(2048, "linux") == 2.0

    def test_darwin_reports_bytes(self):
        assert _rusage_mb(2 * 1024 * 1024, "darwin") == 2.0

    def test_other_posix_defaults_to_kib(self):
        assert _rusage_mb(1024, "freebsd14") == 1.0


class TestPeakRss:
    def test_live_probe_positive_on_posix(self):
        peak = peak_rss_mb()
        if sys.platform.startswith(("linux", "darwin")):
            assert peak is not None and peak > 0.0
        elif peak is not None:
            assert peak > 0.0

    def test_fallback_used_without_procfs(self, monkeypatch):
        """With procfs unavailable the probe still answers via
        getrusage where the resource module exists."""
        import repro.bench as bench

        monkeypatch.setattr(bench, "_vm_hwm_mb", lambda: None)
        try:
            import resource  # noqa: F401
        except ImportError:
            assert bench.peak_rss_mb() is None
        else:
            peak = bench.peak_rss_mb()
            assert peak is not None and peak > 0.0
