"""Broad planner sweep: every planned layout on a wide grid builds,
validates, and honours its plan's predictions."""

import pytest

from repro.core import plan_layout
from repro.layouts import evaluate_layout

# A grid mixing prime powers, composites with large/small M(v), and
# awkward values with no exact BIBD.
SWEEP = [
    (7, 3), (8, 3), (9, 4), (10, 3), (11, 3), (12, 4), (14, 4), (15, 4),
    (16, 5), (17, 4), (18, 3), (20, 4), (21, 5), (22, 4), (26, 5), (28, 4),
]


@pytest.mark.parametrize("v,k", SWEEP)
def test_planned_layout_end_to_end(v, k):
    plan = plan_layout(v, k)
    layout = plan.build()
    layout.validate()
    assert layout.v == v
    assert layout.size <= plan.predicted_size

    m = evaluate_layout(layout)
    # Stripes never exceed the requested size (approximate methods may
    # shrink some stripes to k-1 or k-i, never grow them).
    assert m.k_max <= k
    # Balance promise: perfect when claimed, within the approximate
    # bands otherwise (overhead at most 1/(k-1), which every Theorem
    # 8-12 band respects for the planner's candidates).
    if plan.balanced:
        assert m.parity_spread == 0
    else:
        assert float(m.parity_overhead_max) <= 1 / (k - 1) + 1e-9


@pytest.mark.parametrize("v,k", [(9, 3), (13, 4), (25, 5)])
def test_balanced_plans_available_for_prime_powers(v, k):
    plan = plan_layout(v, k, require_balanced=True)
    assert plan.balanced
    assert evaluate_layout(plan.build()).parity_balanced
