"""Integration: the §5 extension features composed with planned layouts."""

import pytest

import repro
from repro.layouts import (
    sequential_metrics,
    verify_double_fault_tolerance,
    with_distributed_sparing,
    with_dual_parity,
)
from repro.sim import simulate_rebuild


class TestExtensionsOnPlannedLayouts:
    @pytest.mark.parametrize("v,k", [(9, 4), (13, 4), (10, 4)])
    def test_dual_parity_on_planner_output(self, v, k):
        layout = repro.build_layout(v, k)
        dual = with_dual_parity(layout)
        dual.validate()
        assert verify_double_fault_tolerance(dual, failure_pairs=[(0, 1)])

    def test_sparing_on_planner_output(self):
        layout = repro.build_layout(9, 4)
        sparing = with_distributed_sparing(layout)
        rep = simulate_rebuild(layout, failed_disk=3, sparing=sparing, verify_data=True)
        assert rep.data_verified is True

    def test_sequential_metrics_on_planner_output(self):
        layout = repro.build_layout(9, 3)
        m = sequential_metrics(layout)
        assert 0.0 <= m.large_write_fraction <= 1.0
        assert 1 <= m.min_parallelism <= layout.v

    def test_compact_stairway_plan_builds(self):
        from repro.core import enumerate_plans

        plans = {p.method: p for p in enumerate_plans(33, 5)}
        assert "stairway_compact" in plans
        compact = plans["stairway_compact"]
        assert compact.predicted_size < plans["stairway"].predicted_size
        layout = compact.build()
        layout.validate()
        assert layout.size == compact.predicted_size  # geometric: exact

    def test_serialization_of_planned_layout(self, tmp_path):
        from repro.layouts import load_layout, save_layout

        layout = repro.build_layout(11, 4)
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        assert load_layout(path) == layout
