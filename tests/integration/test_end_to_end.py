"""End-to-end integration: plan → build → map → simulate → verify."""

import numpy as np
import pytest

import repro
from repro.layouts import AddressMapper, evaluate_layout
from repro.sim import (
    ArrayController,
    RebuildProcess,
    WorkloadConfig,
    simulate_rebuild,
    simulate_workload,
)

GRID = [(9, 3), (10, 4), (11, 4), (12, 3), (13, 4), (24, 5)]


class TestPlanBuildSimulate:
    @pytest.mark.parametrize("v,k", GRID)
    def test_full_pipeline(self, v, k):
        layout = repro.build_layout(v, k)
        layout.validate()

        # Metrics respect the requested stripe size and balance claims.
        m = evaluate_layout(layout)
        assert m.k_max <= k
        assert m.parity_spread <= 1 or m.parity_overhead_max <= 1 / (k - 1)

        # The mapping is a bijection on data units.
        am = AddressMapper(layout)
        seen = set()
        for lba in range(am.capacity):
            pu = am.logical_to_physical(lba)
            seen.add((pu.disk, pu.offset))
        assert len(seen) == am.capacity

        # A failed disk rebuilds bit-for-bit.
        rep = simulate_rebuild(layout, failed_disk=v // 2, verify_data=True)
        assert rep.data_verified is True

    @pytest.mark.parametrize("v,k", [(9, 3), (13, 4)])
    def test_rebuild_under_load_still_correct(self, v, k):
        layout = repro.build_layout(v, k)
        ctrl = ArrayController(layout, dataplane=True)
        rng = np.random.default_rng(3)
        for lba in rng.integers(0, ctrl.mapper.capacity, size=30):
            ctrl.submit_write(int(lba))
        ctrl.sim.run()
        ctrl.fail_disk(0)
        # Degraded traffic concurrent with the rebuild.
        from repro.sim import drive_workload

        drive_workload(ctrl, WorkloadConfig(interarrival_ms=12.0, seed=4), 400.0)
        rb = RebuildProcess(ctrl, parallelism=2)
        rb.start()
        ctrl.sim.run()
        assert rb.report.data_verified is True


class TestCrossMethodConsistency:
    def test_all_plans_for_one_target_respect_their_workload_bound(self):
        # Each method has an analytic worst-case reconstruction workload:
        # (k-1)/(v-1) for exact methods, (k-1)/(q-1) for stairway plans
        # built from a q-disk base (the paper's size/imbalance trade-off).
        from repro.core import enumerate_plans

        v, k = 9, 3
        for plan in enumerate_plans(v, k):
            if plan.predicted_size > 3000:
                continue
            layout = plan.build()
            layout.validate()
            m = evaluate_layout(layout)
            base = plan.detail.get("q", plan.detail.get("source_v", v))
            bound = (k - 1) / (base - 1)
            assert m.workload_max <= bound + 1e-9, plan.method

    def test_degraded_reads_cost_k_minus_1(self):
        layout = repro.build_layout(9, 3)
        rep = simulate_workload(
            layout,
            duration_ms=2000.0,
            config=WorkloadConfig(interarrival_ms=8.0, read_fraction=1.0, seed=6),
            failed_disk=0,
        )
        # Degraded reads exist and are slower than normal reads.
        if "degraded_read" in rep.latency:
            assert rep.latency["degraded_read"]["mean"] >= rep.latency["read"]["mean"] * 0.9
