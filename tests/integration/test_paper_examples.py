"""The paper's concrete examples, reproduced exactly."""

from fractions import Fraction

import numpy as np

from repro.designs import complete_design, ring_design
from repro.layouts import (
    evaluate_layout,
    holland_gibson_layout,
    raid5_layout,
    reconstruction_workloads,
    ring_layout,
)


class TestFigure1:
    """One parity stripe across all disks: RAID5 with k = v."""

    def test_single_stripe_geometry(self):
        lay = raid5_layout(5)
        stripe = lay.stripes[0]
        assert stripe.size == 5
        assert len({d for d, _ in stripe.units}) == 5


class TestFigure2:
    """Parity-declustered layout for v=4, k=3 (complete design)."""

    def test_fig2_layout(self):
        design = complete_design(4, 3)
        assert design.b == 4  # the four 3-subsets of {0,1,2,3}
        lay = holland_gibson_layout(design)
        lay.validate()
        m = evaluate_layout(lay)
        # Parity overhead 1/3, workload 2/3 — the Fig. 2 numbers.
        assert m.parity_overhead_max == Fraction(1, 3)
        assert abs(m.workload_max - 2 / 3) < 1e-12
        assert m.parity_balanced and m.workload_balanced


class TestFigure3:
    """BIBD-based layout for v=4, k=3: k copies, rotated parity."""

    def test_fig3_layout(self):
        design = complete_design(4, 3)
        lay = holland_gibson_layout(design)
        # k copies of b=4 blocks, size k*r = 3*3 = 9.
        assert lay.b == 12
        assert lay.size == 9
        # Each copy places parity at a different tuple position, so each
        # disk holds exactly r = 3 parity units.
        from repro.layouts import parity_counts

        assert parity_counts(lay) == [3, 3, 3, 3]


class TestSection3RingLayout:
    """v disks, parity of stripe (x, y) on disk x: size k(v-1)."""

    def test_paper_parameters(self):
        v, k = 4, 3
        lay = ring_layout(v, k)
        assert lay.size == k * (v - 1)
        m = evaluate_layout(lay)
        assert m.parity_balanced
        # Reconstruction workload (k-1)/(v-1) = 2/3 for every pair.
        w = reconstruction_workloads(lay)
        off = w[~np.eye(v, dtype=bool)]
        assert np.allclose(off, 2 / 3)

    def test_against_holland_gibson_size(self):
        # Same design family, k-fold smaller layout.
        v, k = 9, 3
        ring = ring_layout(v, k)
        hg = holland_gibson_layout(ring_design(v, k).to_block_design())
        assert hg.size == k * ring.size


class TestTheorem1Worked:
    """b = v(v-1), r = k(v-1), λ = k(k-1) on the paper's favourite sizes."""

    def test_parameters_table(self):
        for v, k in [(4, 3), (5, 3), (8, 4), (9, 3)]:
            d = ring_design(v, k).to_block_design()
            d.verify()
            assert d.b == v * (v - 1)
            assert d.r == k * (v - 1)
            assert d.lambda_ == k * (k - 1)
