"""Property-based tests for block-design constructions."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import min_prime_power_factor
from repro.designs import (
    bibd_lower_bound_b,
    best_design,
    ring_design,
    theorem4_design,
    theorem5_design,
)

PRIME_POWERS = [4, 5, 7, 8, 9, 11, 13]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=4, max_value=30), st.data())
def test_ring_design_is_always_bibd(v, data):
    cap = min(min_prime_power_factor(v), 6)
    if cap < 2:
        return
    k = data.draw(st.integers(min_value=2, max_value=cap))
    d = ring_design(v, k).to_block_design()
    d.verify()
    assert d.b == v * (v - 1)


@settings(max_examples=25, deadline=None)
@given(st.sampled_from(PRIME_POWERS), st.data())
def test_theorem4_parameters_hold(v, data):
    k = data.draw(st.integers(min_value=2, max_value=v))
    d = theorem4_design(v, k)
    d.verify()
    assert d.b == v * (v - 1) // math.gcd(v - 1, k - 1)


@settings(max_examples=25, deadline=None)
@given(st.sampled_from(PRIME_POWERS), st.data())
def test_theorem5_parameters_hold(v, data):
    k = data.draw(st.integers(min_value=2, max_value=v - 1))
    d = theorem5_design(v, k)
    d.verify()
    assert d.b == v * (v - 1) // math.gcd(v - 1, k)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=4, max_value=16), st.data())
def test_best_design_respects_lower_bound(v, data):
    k = data.draw(st.integers(min_value=2, max_value=v))
    d = best_design(v, k)
    d.verify()
    assert d.b >= bibd_lower_bound_b(v, k)
    # Identities every BIBD satisfies.
    assert d.b * d.k == d.v * d.r
    assert d.lambda_ * (d.v - 1) == d.r * (d.k - 1)
