"""Property tests: the batched mapping engine agrees with the scalar
path on randomized layouts and address sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import AddressMapper, random_layout, ring_layout

#: Randomized layouts spanning sizes, stripe widths, and seeds.
_RANDOM_CASES = [
    (6, 2, 4),
    (8, 4, 6),
    (10, 4, 8),
    (10, 5, 6),
    (12, 3, 5),
    (15, 5, 9),
]


def _mapper(case_index: int, seed: int, iterations: int) -> AddressMapper:
    v, k, spd = _RANDOM_CASES[case_index % len(_RANDOM_CASES)]
    layout = random_layout(v, k, stripes_per_disk=spd, seed=seed)
    return AddressMapper(layout, iterations=iterations)


@settings(max_examples=30, deadline=None)
@given(
    case=st.integers(min_value=0, max_value=len(_RANDOM_CASES) - 1),
    seed=st.integers(min_value=0, max_value=7),
    iterations=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_map_batch_matches_scalar(case, seed, iterations, data):
    mapper = _mapper(case, seed, iterations)
    lbas = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=mapper.capacity - 1),
            min_size=0,
            max_size=64,
        )
    )
    disks, offsets = mapper.map_batch(lbas)
    assert disks.shape == offsets.shape == (len(lbas),)
    for i, lba in enumerate(lbas):
        pu = mapper.logical_to_physical(lba)
        assert (pu.disk, pu.offset) == (int(disks[i]), int(offsets[i]))


@settings(max_examples=30, deadline=None)
@given(
    case=st.integers(min_value=0, max_value=len(_RANDOM_CASES) - 1),
    seed=st.integers(min_value=0, max_value=7),
    data=st.data(),
)
def test_physical_batch_matches_scalar(case, seed, data):
    mapper = _mapper(case, seed, 2)
    layout = mapper.layout
    pairs = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=layout.v - 1),
                st.integers(min_value=0, max_value=2 * layout.size - 1),
            ),
            min_size=0,
            max_size=64,
        )
    )
    disks = np.array([d for d, _ in pairs], dtype=np.int64)
    offsets = np.array([o for _, o in pairs], dtype=np.int64)
    lbas, is_par = mapper.physical_to_logical_batch(disks, offsets)
    for i, (d, off) in enumerate(pairs):
        lba, par = mapper.physical_to_logical(d, off)
        assert (lba, par) == (int(lbas[i]), bool(is_par[i]))


@settings(max_examples=25, deadline=None)
@given(
    case=st.integers(min_value=0, max_value=len(_RANDOM_CASES) - 1),
    seed=st.integers(min_value=0, max_value=7),
)
def test_map_batch_parity_targets_the_stripe_parity(case, seed):
    mapper = _mapper(case, seed, 2)
    lbas = np.arange(mapper.capacity, dtype=np.int64)
    disks, offsets, stripes, pdisks, poffs = mapper.map_batch_parity(lbas)
    layout = mapper.layout
    for i in range(len(lbas)):
        stripe = layout.stripes[int(stripes[i]) % layout.b]
        shift = (int(stripes[i]) // layout.b) * layout.size
        pd, poff = stripe.parity_unit
        assert (pd, poff + shift) == (int(pdisks[i]), int(poffs[i]))
        assert (int(disks[i]), int(offsets[i]) - shift) in stripe.data_units()


def test_map_batch_rejects_out_of_range():
    mapper = AddressMapper(ring_layout(5, 3))
    with pytest.raises(IndexError):
        mapper.map_batch([0, mapper.capacity])
    with pytest.raises(IndexError):
        mapper.map_batch([-1])
    with pytest.raises(ValueError):
        mapper.map_batch(np.zeros((2, 2), dtype=np.int64))
    with pytest.raises(IndexError):
        mapper.physical_to_logical_batch([0], [99])


def test_full_address_space_round_trips_batched():
    mapper = AddressMapper(ring_layout(7, 3), iterations=3)
    lbas = np.arange(mapper.capacity, dtype=np.int64)
    disks, offsets = mapper.map_batch(lbas)
    back, is_par = mapper.physical_to_logical_batch(disks, offsets)
    assert not is_par.any()
    assert (back == lbas).all()
