"""Property-based tests for layout constructions."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import is_prime_power, min_prime_power_factor
from repro.layouts import (
    evaluate_layout,
    parity_counts,
    remove_disks,
    ring_layout,
    stairway_layout,
    stairway_params,
)
from repro.designs import ring_design

PRIME_POWERS = [4, 5, 7, 8, 9, 11, 13, 16]


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=4, max_value=20), st.data())
def test_ring_layout_invariants(v, data):
    cap = min(min_prime_power_factor(v), 6)
    if cap < 2:
        return
    k = data.draw(st.integers(min_value=2, max_value=cap))
    lay = ring_layout(v, k)
    lay.validate()
    m = evaluate_layout(lay)
    assert m.size == k * (v - 1)
    assert m.parity_overhead_max == Fraction(1, k)
    assert m.parity_balanced and m.workload_balanced


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(PRIME_POWERS), st.data())
def test_single_removal_any_victim(v, data):
    k = data.draw(st.integers(min_value=3, max_value=min(v, 5)))
    victim = data.draw(st.integers(min_value=0, max_value=v - 1))
    lay = remove_disks(ring_design(v, k), [victim])
    lay.validate()
    counts = parity_counts(lay)
    assert set(counts) == {v}  # each survivor gains exactly one


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([9, 16, 25]), st.data())
def test_multi_removal_band(v, data):
    k = data.draw(st.sampled_from([kk for kk in (9, 16) if kk <= v]))
    max_i = 1
    while (max_i + 1) * max_i <= k - (max_i + 1):
        max_i += 1
    i = data.draw(st.integers(min_value=2, max_value=max(2, max_i)))
    victims = data.draw(
        st.lists(st.integers(min_value=0, max_value=v - 1), min_size=i, max_size=i, unique=True)
    )
    if i * (i - 1) > k - i:
        return
    lay = remove_disks(ring_design(v, k), victims)
    lay.validate()
    counts = parity_counts(lay)
    assert set(counts) <= {v + i - 1, v + i}


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=5, max_value=40), st.data())
def test_stairway_always_valid_when_params_exist(v, data):
    qs = [q for q in range(3, v) if is_prime_power(q) and stairway_params(v, q)]
    if not qs:
        return
    q = data.draw(st.sampled_from(qs))
    k = data.draw(st.integers(min_value=3, max_value=max(3, min(q, 5))))
    if k > q:
        return
    if stairway_params(v, q)[1] > 0 and k < 3:
        return
    lay = stairway_layout(v, q, k)
    lay.validate()
    c, w = stairway_params(v, q)
    m = evaluate_layout(lay)
    assert m.size == k * (c - 1) * (q - 1)
    denom = k * (c - 1) * (q - 1)
    hi_p = Fraction(1, k) + Fraction(w, denom)
    lo_p = Fraction(1, k) + Fraction(max(0, w - 1), denom) if w else Fraction(1, k)
    assert lo_p <= m.parity_overhead_min
    assert m.parity_overhead_max <= hi_p
    assert m.workload_max <= (k - 1) / (q - 1) + 1e-12
