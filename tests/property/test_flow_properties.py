"""Property-based tests for the flow substrate."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import (
    BoundedEdge,
    FlowNetwork,
    InfeasibleFlow,
    dinic_max_flow,
    edmonds_karp_max_flow,
    max_flow_with_lower_bounds,
)


@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=3, max_value=6))
    edges = []
    for u, v in itertools.permutations(range(n), 2):
        if draw(st.booleans()):
            edges.append((u, v, draw(st.integers(min_value=1, max_value=8))))
    return n, edges


def brute_force_min_cut(n, edges, s, t):
    best = None
    others = [x for x in range(n) if x not in (s, t)]
    for mask in range(1 << len(others)):
        side = {s} | {x for i, x in enumerate(others) if mask >> i & 1}
        cut = sum(c for u, v, c in edges if u in side and v not in side)
        best = cut if best is None else min(best, cut)
    return best


@settings(max_examples=60, deadline=None)
@given(random_graph())
def test_dinic_equals_mincut_and_edmonds_karp(graph):
    n, edges = graph
    net1 = FlowNetwork(n)
    net2 = FlowNetwork(n)
    for u, v, c in edges:
        net1.add_edge(u, v, c)
        net2.add_edge(u, v, c)
    f1 = dinic_max_flow(net1, 0, n - 1)
    f2 = edmonds_karp_max_flow(net2, 0, n - 1)
    ref = brute_force_min_cut(n, edges, 0, n - 1)
    assert f1 == f2 == ref


@settings(max_examples=40, deadline=None)
@given(random_graph(), st.data())
def test_lower_bounds_solution_is_valid_when_feasible(graph, data):
    n, edges = graph
    bounded = []
    for u, v, c in edges:
        lo = data.draw(st.integers(min_value=0, max_value=min(2, c)))
        bounded.append(BoundedEdge(u, v, lo, c))
    try:
        value, flows = max_flow_with_lower_bounds(n, bounded, 0, n - 1)
    except InfeasibleFlow:
        return  # infeasibility is a legal outcome for random bounds
    balance = [0] * n
    for f, e in zip(flows, bounded):
        assert e.lo <= f <= e.hi
        balance[e.u] -= f
        balance[e.v] += f
    for x in range(1, n - 1):
        assert balance[x] == 0
    assert balance[n - 1] == value == -balance[0]
    # Maximality: the plain max flow with capacities hi is an upper bound,
    # and dropping lower bounds can only increase the optimum.
    net = FlowNetwork(n)
    for e in bounded:
        net.add_edge(e.u, e.v, e.hi)
    assert value <= dinic_max_flow(net, 0, n - 1)
