"""Property-based tests for the algebra substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    GF,
    Zmod,
    divisors,
    is_prime_power,
    min_prime_power_factor,
    prime_factorization,
    ring_with_generators,
)
from repro.algebra.poly import (
    poly_add,
    poly_divmod,
    poly_from_int,
    poly_mul,
    poly_to_int,
)

PRIME_POWERS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]
PRIMES = [2, 3, 5, 7]


@given(st.integers(min_value=2, max_value=10_000))
def test_factorization_reconstructs(n):
    prod = 1
    for p, e in prime_factorization(n):
        prod *= p**e
    assert prod == n


@given(st.integers(min_value=2, max_value=5_000))
def test_min_prime_power_factor_divides(v):
    m = min_prime_power_factor(v)
    assert is_prime_power(m)
    assert v % m == 0


@given(st.integers(min_value=1, max_value=2_000))
def test_divisors_closed_under_complement(n):
    ds = divisors(n)
    assert set(ds) == {n // d for d in ds}


@given(
    st.sampled_from(PRIMES),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=200),
)
def test_poly_codec_and_ring_laws(p, ca, cb):
    a, b = poly_from_int(ca, p), poly_from_int(cb, p)
    assert poly_to_int(a, p) == ca or ca >= p ** len(a)  # codec sanity below
    assert poly_add(a, b, p) == poly_add(b, a, p)
    assert poly_mul(a, b, p) == poly_mul(b, a, p)


@given(
    st.sampled_from(PRIMES),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=1, max_value=500),
)
def test_poly_divmod_invariant(p, ca, cb):
    a, b = poly_from_int(ca, p), poly_from_int(cb, p)
    if not b:
        return
    q, r = poly_divmod(a, b, p)
    assert poly_add(poly_mul(q, b, p), r, p) == a
    assert len(r) < len(b)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(PRIME_POWERS), st.data())
def test_field_inverse_and_distributivity(q, data):
    f = GF(q)
    elems = st.integers(min_value=0, max_value=q - 1)
    a = f.element(data.draw(elems))
    b = f.element(data.draw(elems))
    c = f.element(data.draw(elems))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    if a != f.zero:
        assert f.mul(a, f.inverse(a)) == f.one


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(PRIME_POWERS), st.data())
def test_frobenius_is_additive(q, data):
    # (a + b)^p = a^p + b^p in characteristic p.
    f = GF(q)
    elems = st.integers(min_value=0, max_value=q - 1)
    a = f.element(data.draw(elems))
    b = f.element(data.draw(elems))
    lhs = f.pow(f.add(a, b), f.p)
    rhs = f.add(f.pow(a, f.p), f.pow(b, f.p))
    assert lhs == rhs


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=120), st.data())
def test_ring_with_generators_always_valid(v, data):
    cap = min_prime_power_factor(v)
    k = data.draw(st.integers(min_value=1, max_value=cap))
    ring, gens = ring_with_generators(v, k)
    assert ring.order == v and len(gens) == k
    for i in range(k):
        for j in range(i + 1, k):
            assert ring.is_unit(ring.sub(gens[i], gens[j]))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.data())
def test_zmod_units_form_group(n, data):
    r = Zmod(n)
    units = [a for a in r.elements() if math.gcd(a, n) == 1]
    a = data.draw(st.sampled_from(units))
    b = data.draw(st.sampled_from(units))
    assert r.is_unit(r.mul(a, b))
    assert r.mul(r.inverse(a), a) == r.one
