"""Property-based tests for the Theorem 14 parity assignment."""

import math
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import assign_parity, parity_loads


@st.composite
def stripe_partition(draw):
    """A random valid stripe set: each stripe distinct disks."""
    v = draw(st.integers(min_value=3, max_value=10))
    n_stripes = draw(st.integers(min_value=1, max_value=25))
    stripes = []
    for _ in range(n_stripes):
        k = draw(st.integers(min_value=2, max_value=v))
        disks = draw(
            st.lists(
                st.integers(min_value=0, max_value=v - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        stripes.append(tuple(disks))
    return v, stripes


@settings(max_examples=60, deadline=None)
@given(stripe_partition())
def test_theorem14_bounds_always_hold(partition):
    v, stripes = partition
    parity = assign_parity(stripes, v)
    assert len(parity) == len(stripes)
    for p, s in zip(parity, stripes):
        assert p in s
    loads = parity_loads(stripes, v)
    counts = Counter(parity)
    for d in range(v):
        assert math.floor(loads[d]) <= counts.get(d, 0) <= math.ceil(loads[d])


@settings(max_examples=40, deadline=None)
@given(stripe_partition())
def test_total_parity_equals_stripe_count(partition):
    v, stripes = partition
    parity = assign_parity(stripes, v)
    assert sum(Counter(parity).values()) == len(stripes)
