"""Property-based tests for the GF(256) P+Q code and serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import GF256, PQCode
from repro.layouts import layout_from_dict, layout_to_dict, ring_layout

_GF = GF256()


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)
def test_gf256_field_laws(a, b, c):
    mul = lambda x, y: int(_GF.mul(x, y))
    assert mul(a, b) == mul(b, a)
    assert mul(mul(a, b), c) == mul(a, mul(b, c))
    assert mul(a, b ^ c) == mul(a, b) ^ mul(a, c)  # distributes over XOR


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.data(),
)
def test_pq_recovers_any_two_erasures(m, width, seed, data_strategy):
    code = PQCode(m)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(m, width), dtype=np.uint8)
    p, q = code.encode(data)

    # Erase any 2 of the m+2 units (data rows, P, Q).
    targets = data_strategy.draw(
        st.lists(st.integers(min_value=0, max_value=m + 1), min_size=2, max_size=2, unique=True)
    )
    missing_rows = [t for t in targets if t < m]
    lost_p = m in targets
    lost_q = (m + 1) in targets

    broken = data.copy()
    for i in missing_rows:
        broken[i] = 0
    repaired = code.reconstruct(
        broken, None if lost_p else p, None if lost_q else q, missing_rows
    )
    assert np.array_equal(repaired, data)
    p2, q2 = code.encode(repaired)
    assert np.array_equal(p2, p) and np.array_equal(q2, q)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([(5, 3), (7, 3), (8, 4), (9, 3)]))
def test_serialization_roundtrip_property(vk):
    v, k = vk
    layout = ring_layout(v, k)
    assert layout_from_dict(layout_to_dict(layout)) == layout
