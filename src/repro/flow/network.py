"""Flow-network data structure (paired residual-edge representation).

The substrate for Section 4's parity assignment graphs.  Edges are
stored in a flat array where edge ``i`` and its residual twin ``i ^ 1``
are adjacent, the standard representation for augmenting-path and
blocking-flow algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowNetwork", "INF"]

#: Effectively-infinite capacity for auxiliary edges.
INF = 1 << 60


@dataclass
class _Edge:
    to: int
    cap: int


class FlowNetwork:
    """A directed flow network on nodes ``0..n-1`` with integer capacities.

    ``add_edge`` returns the forward edge id; the flow pushed through it
    after a max-flow run is ``self.flow(edge_id)``.
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValueError(f"a flow network needs at least 2 nodes, got {n}")
        self.n = n
        self.head: list[list[int]] = [[] for _ in range(n)]
        self._to: list[int] = []
        self._cap: list[int] = []

    def add_edge(self, u: int, v: int, cap: int) -> int:
        """Add edge ``u -> v`` with the given capacity; returns its id."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n}")
        if cap < 0:
            raise ValueError(f"negative capacity {cap}")
        eid = len(self._to)
        self._to.append(v)
        self._cap.append(cap)
        self.head[u].append(eid)
        self._to.append(u)
        self._cap.append(0)  # residual twin
        self.head[v].append(eid + 1)
        return eid

    def flow(self, edge_id: int) -> int:
        """Flow currently pushed through forward edge ``edge_id`` (the
        capacity accumulated on its residual twin)."""
        return self._cap[edge_id ^ 1]

    def residual(self, edge_id: int) -> int:
        """Remaining capacity of edge ``edge_id``."""
        return self._cap[edge_id]

    def edge_count(self) -> int:
        """Number of forward edges added."""
        return len(self._to) // 2

    def push(self, edge_id: int, amount: int) -> None:
        """Move ``amount`` units of capacity from an edge to its twin."""
        self._cap[edge_id] -= amount
        self._cap[edge_id ^ 1] += amount
