"""Parity assignment via network flow (Section 4, Theorems 13-14,
Corollaries 15-17).

Given any partition of a disk array into stripes — each stripe crossing
every disk at most once, stripe sizes arbitrary — choose one parity unit
per stripe so that disk ``d`` receives either ``⌊L(d)⌋`` or ``⌈L(d)⌉``
parity units, where the *parity load* is ``L(d) = Σ_{s ∋ d} 1/k_s``.

Loads are computed with exact rational arithmetic
(:class:`fractions.Fraction`): the floor/ceil bounds are the theorem's
payload and must not be corrupted by floating-point rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from .bounded import BoundedEdge, InfeasibleFlow, max_flow_with_lower_bounds
from .dinic import dinic_max_flow
from .network import FlowNetwork

__all__ = [
    "ParityAssignmentGraph",
    "parity_loads",
    "build_parity_graph",
    "assign_parity",
    "assign_distinguished",
    "copies_for_perfect_balance",
    "perfect_balance_possible",
]


def parity_loads(
    stripes: Sequence[Sequence[int]],
    v: int,
    counts: Sequence[int] | None = None,
) -> list[Fraction]:
    """Exact parity loads ``L(d) = Σ_{s ∋ d} c_s / k_s`` for every disk.

    ``counts[s]`` is the number of distinguished units stripe ``s``
    must contribute (1 for plain parity; >1 for e.g. distributed
    sparing, the paper's Theorem 14 extension).
    """
    loads = [Fraction(0)] * v
    for si, stripe in enumerate(stripes):
        c = 1 if counts is None else counts[si]
        share = Fraction(c, len(stripe))
        for d in stripe:
            if not 0 <= d < v:
                raise ValueError(f"stripe {si} references disk {d} (v={v})")
            loads[d] += share
    return loads


@dataclass(frozen=True)
class ParityAssignmentGraph:
    """The Fig. 7 graph, materialized for inspection and benchmarks.

    Node numbering: 0 = source; ``1..b`` = stripes; ``b+1..b+v`` =
    disks; ``b+v+1`` = sink.
    """

    b: int
    v: int
    edges: tuple[BoundedEdge, ...]
    #: ids into ``edges`` of the stripe→disk edges, grouped by stripe.
    stripe_edge_ids: tuple[tuple[int, ...], ...]

    @property
    def source(self) -> int:
        return 0

    @property
    def sink(self) -> int:
        return self.b + self.v + 1

    def node_count(self) -> int:
        return self.b + self.v + 2


def build_parity_graph(
    stripes: Sequence[Sequence[int]],
    v: int,
    counts: Sequence[int] | None = None,
) -> ParityAssignmentGraph:
    """Construct the parity assignment graph for a stripe partition.

    Source→stripe edges carry exactly ``c_s`` units; stripe→disk edges
    carry 0 or 1; disk→sink edges are bounded by ``[⌊L(d)⌋, ⌈L(d)⌉]``.

    Raises:
        ValueError: if a stripe repeats a disk or references one out of
            range (such a partition cannot come from a valid layout).
    """
    b = len(stripes)
    loads = parity_loads(stripes, v, counts)
    edges: list[BoundedEdge] = []
    stripe_edge_ids: list[tuple[int, ...]] = []

    for si, stripe in enumerate(stripes):
        if len(set(stripe)) != len(stripe):
            raise ValueError(f"stripe {si} crosses a disk twice: {stripe}")
        c = 1 if counts is None else counts[si]
        if not 0 < c <= len(stripe):
            raise ValueError(
                f"stripe {si} must contribute between 1 and {len(stripe)} units, got {c}"
            )
        edges.append(BoundedEdge(0, 1 + si, c, c))

    for si, stripe in enumerate(stripes):
        ids = []
        for d in stripe:
            if not 0 <= d < v:
                raise ValueError(f"stripe {si} references disk {d} (v={v})")
            ids.append(len(edges))
            edges.append(BoundedEdge(1 + si, 1 + b + d, 0, 1))
        stripe_edge_ids.append(tuple(ids))

    sink = b + v + 1
    for d in range(v):
        lo = math.floor(loads[d])
        hi = math.ceil(loads[d])
        edges.append(BoundedEdge(1 + b + d, sink, lo, hi))

    return ParityAssignmentGraph(
        b=b, v=v, edges=tuple(edges), stripe_edge_ids=tuple(stripe_edge_ids)
    )


def assign_parity(
    stripes: Sequence[Sequence[int]],
    v: int,
    *,
    max_flow: Callable[[FlowNetwork, int, int], int] = dinic_max_flow,
) -> list[int]:
    """Choose the parity disk of every stripe (Theorem 14).

    Returns ``parity[s]`` = disk holding stripe ``s``'s parity unit.
    Guarantee: disk ``d`` is chosen for either ``⌊L(d)⌋`` or ``⌈L(d)⌉``
    stripes.

    Raises:
        InfeasibleFlow: never for a valid stripe partition (Theorem 13
            proves feasibility); surfaced only on malformed input.
    """
    assignment = assign_distinguished(stripes, v, counts=None, max_flow=max_flow)
    return [disks[0] for disks in assignment]


def assign_distinguished(
    stripes: Sequence[Sequence[int]],
    v: int,
    counts: Sequence[int] | None = None,
    *,
    max_flow: Callable[[FlowNetwork, int, int], int] = dinic_max_flow,
) -> list[list[int]]:
    """Generalized Theorem 14: choose ``counts[s]`` distinguished units
    per stripe, balanced to ``{⌊L(d)⌋, ⌈L(d)⌉}`` per disk.

    Returns, for each stripe, the list of disks chosen.
    """
    graph = build_parity_graph(stripes, v, counts)
    total_required = sum(e.lo for e in graph.edges[: graph.b])

    value, flows = max_flow_with_lower_bounds(
        graph.node_count(), graph.edges, graph.source, graph.sink, max_flow=max_flow
    )
    if value != total_required:
        raise InfeasibleFlow(
            f"parity flow value {value} != required {total_required} "
            "(Theorem 13 guarantees equality for valid stripe partitions)"
        )

    chosen: list[list[int]] = []
    for si, stripe in enumerate(stripes):
        picks = [
            d
            for d, eid in zip(stripe, graph.stripe_edge_ids[si])
            if flows[eid] == 1
        ]
        expected = 1 if counts is None else counts[si]
        if len(picks) != expected:
            raise AssertionError(
                f"stripe {si}: integral flow selected {len(picks)} units, "
                f"expected {expected}"
            )
        chosen.append(picks)
    return chosen


def copies_for_perfect_balance(b: int, v: int) -> int:
    """The Holland–Gibson lcm conjecture, proven by Corollary 17: the
    number of copies of a ``b``-block design needed for perfectly
    balanced parity on ``v`` disks is ``lcm(b, v) / b``."""
    return math.lcm(b, v) // b


def perfect_balance_possible(b: int, v: int) -> bool:
    """Corollary 17: perfect parity balance in a fixed-stripe-size layout
    is possible iff ``v`` divides ``b``."""
    return b % v == 0
