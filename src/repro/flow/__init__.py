"""Network-flow substrate and the Section 4 parity assignment method."""

from .bounded import BoundedEdge, InfeasibleFlow, max_flow_with_lower_bounds
from .dinic import dinic_max_flow, edmonds_karp_max_flow
from .network import INF, FlowNetwork
from .parity import (
    ParityAssignmentGraph,
    assign_distinguished,
    assign_parity,
    build_parity_graph,
    copies_for_perfect_balance,
    parity_loads,
    perfect_balance_possible,
)

__all__ = [
    "BoundedEdge",
    "InfeasibleFlow",
    "max_flow_with_lower_bounds",
    "dinic_max_flow",
    "edmonds_karp_max_flow",
    "INF",
    "FlowNetwork",
    "ParityAssignmentGraph",
    "assign_distinguished",
    "assign_parity",
    "build_parity_graph",
    "copies_for_perfect_balance",
    "parity_loads",
    "perfect_balance_possible",
]
