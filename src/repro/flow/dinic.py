"""Maximum-flow algorithms: Dinic (default) and Edmonds–Karp (ablation).

Theorem 13 only needs *an* efficient integral max-flow; we provide two
independent implementations so the test suite can cross-check them and
the benchmark suite can compare their cost on parity assignment graphs.
Both produce integral flows on integral capacities, which is what makes
the Theorem 14 rounding argument work.
"""

from __future__ import annotations

from collections import deque

from .network import FlowNetwork

__all__ = ["dinic_max_flow", "edmonds_karp_max_flow"]


def dinic_max_flow(net: FlowNetwork, s: int, t: int) -> int:
    """Dinic's algorithm: BFS level graph + DFS blocking flow.

    O(V^2 E) in general, O(E sqrt(V)) on the unit-capacity bipartite
    cores of parity assignment graphs.
    """
    if s == t:
        raise ValueError("source and sink must differ")
    total = 0
    n = net.n
    cap = net._cap
    to = net._to
    head = net.head

    while True:
        # BFS: build level graph.
        level = [-1] * n
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in head[u]:
                v = to[eid]
                if cap[eid] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[t] < 0:
            return total

        # DFS blocking flow with iteration pointers (each edge retired
        # once per phase).
        it = [0] * n

        def dfs(u: int, pushed: int) -> int:
            if u == t:
                return pushed
            while it[u] < len(head[u]):
                eid = head[u][it[u]]
                v = to[eid]
                if cap[eid] > 0 and level[v] == level[u] + 1:
                    got = dfs(v, min(pushed, cap[eid]))
                    if got > 0:
                        cap[eid] -= got
                        cap[eid ^ 1] += got
                        return got
                it[u] += 1
            return 0

        while True:
            pushed = dfs(s, 1 << 62)
            if pushed == 0:
                break
            total += pushed


def edmonds_karp_max_flow(net: FlowNetwork, s: int, t: int) -> int:
    """Edmonds–Karp: repeated shortest augmenting paths (BFS). O(V E^2)."""
    if s == t:
        raise ValueError("source and sink must differ")
    total = 0
    cap = net._cap
    to = net._to
    head = net.head

    while True:
        parent_edge = [-1] * net.n
        parent_edge[s] = -2
        queue = deque([s])
        while queue and parent_edge[t] == -1:
            u = queue.popleft()
            for eid in head[u]:
                v = to[eid]
                if cap[eid] > 0 and parent_edge[v] == -1:
                    parent_edge[v] = eid
                    queue.append(v)
        if parent_edge[t] == -1:
            return total

        # Find bottleneck along the path, then apply it.
        bottleneck = 1 << 62
        v = t
        while v != s:
            eid = parent_edge[v]
            bottleneck = min(bottleneck, cap[eid])
            v = to[eid ^ 1]
        v = t
        while v != s:
            eid = parent_edge[v]
            cap[eid] -= bottleneck
            cap[eid ^ 1] += bottleneck
            v = to[eid ^ 1]
        total += bottleneck
