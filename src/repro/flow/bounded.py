"""Max flow with edge lower bounds.

The parity assignment graph (Fig. 7) puts *lower* bounds on the
disk→sink edges (``⌊L(d)⌋``).  This module reduces bounded max-flow to
two plain max-flow runs via the standard excess-node transformation —
the same reduction the paper sketches concretely in the proof of
Theorem 13 (their auxiliary graph ``G'``).

``solve`` returns per-edge flows, which is what the parity assignment
needs (the chosen parity unit is the saturated stripe→disk edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .dinic import dinic_max_flow
from .network import INF, FlowNetwork

__all__ = ["BoundedEdge", "InfeasibleFlow", "max_flow_with_lower_bounds"]


@dataclass(frozen=True)
class BoundedEdge:
    """A directed edge with flow bounds ``lo <= f <= hi``."""

    u: int
    v: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ValueError(f"invalid bounds [{self.lo}, {self.hi}]")


class InfeasibleFlow(RuntimeError):
    """No flow satisfies all lower bounds."""


def max_flow_with_lower_bounds(
    n: int,
    edges: Sequence[BoundedEdge],
    s: int,
    t: int,
    *,
    max_flow: Callable[[FlowNetwork, int, int], int] = dinic_max_flow,
) -> tuple[int, list[int]]:
    """Compute a maximum ``s``→``t`` flow respecting edge lower bounds.

    Returns ``(value, flows)`` where ``flows[i]`` is the (integral) flow
    on ``edges[i]``.

    The reduction: replace each edge's capacity with ``hi - lo`` and
    account the mandatory ``lo`` units as node excesses; a super
    source/sink absorbs the excesses, with a ``t -> s`` edge of infinite
    capacity closing the circulation.  Feasible iff the super flow
    saturates all excess edges; afterwards, augment ``s -> t`` in the
    residual network to maximality.

    Raises:
        InfeasibleFlow: if the lower bounds admit no feasible flow.
    """
    super_s, super_t = n, n + 1
    net = FlowNetwork(n + 2)

    excess = [0] * n
    edge_ids: list[int] = []
    for e in edges:
        edge_ids.append(net.add_edge(e.u, e.v, e.hi - e.lo))
        excess[e.v] += e.lo
        excess[e.u] -= e.lo

    required = 0
    for node, x in enumerate(excess):
        if x > 0:
            net.add_edge(super_s, node, x)
            required += x
        elif x < 0:
            net.add_edge(node, super_t, -x)

    ts_edge = net.add_edge(t, s, INF)

    feasible = max_flow(net, super_s, super_t)
    if feasible != required:
        raise InfeasibleFlow(
            f"lower bounds are infeasible: pushed {feasible} of {required} required units"
        )

    # Freeze the circulation closer, then maximize s -> t on the residual.
    base_flow = net.flow(ts_edge)
    net._cap[ts_edge] = 0
    net._cap[ts_edge ^ 1] = 0

    extra = max_flow(net, s, t)
    flows = [net.flow(eid) + e.lo for eid, e in zip(edge_ids, edges)]
    return base_flow + extra, flows
