"""Erasure codes: GF(2^8) arithmetic and the P+Q double-fault code."""

from .gf256 import GF256
from .pq import PQCode

__all__ = ["GF256", "PQCode"]
