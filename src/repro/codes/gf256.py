"""Vectorized GF(2^8) arithmetic for the P+Q erasure code.

Built on the same extension-field machinery as the design constructions
(:class:`repro.algebra.ExtensionField`), but exposed as NumPy table
lookups so the data plane can encode/decode whole units at once: the
log/antilog tables of GF(256) are precomputed once and byte arrays are
multiplied in bulk.
"""

from __future__ import annotations

import numpy as np

from ..algebra.fields import ExtensionField

__all__ = ["GF256"]


class GF256:
    """GF(2^8) with NumPy-vectorized multiply/divide on byte arrays."""

    def __init__(self) -> None:
        field = ExtensionField(2, 8)
        self.field = field
        order = field.order
        exp = np.zeros(order - 1, dtype=np.uint8)
        log = np.zeros(order, dtype=np.int32)
        for i, code in enumerate(field._exp):
            exp[i] = code
            log[code] = i
        self._exp = exp
        self._log = log
        #: The field's primitive element (generator of the code's
        #: coefficient sequence g^0, g^1, ...).
        self.generator = field.primitive_element()

    def power(self, exponent: int) -> int:
        """``g^exponent`` as a byte value."""
        return int(self._exp[exponent % 255])

    def mul(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
        """Element-wise GF(256) product of byte arrays (or scalars)."""
        a_arr = np.asarray(a, dtype=np.uint8)
        b_arr = np.asarray(b, dtype=np.uint8)
        out_shape = np.broadcast_shapes(a_arr.shape, b_arr.shape)
        a_arr, b_arr = np.broadcast_to(a_arr, out_shape), np.broadcast_to(b_arr, out_shape)
        out = np.zeros(out_shape, dtype=np.uint8)
        nz = (a_arr != 0) & (b_arr != 0)
        idx = (self._log[a_arr[nz]] + self._log[b_arr[nz]]) % 255
        out[nz] = self._exp[idx]
        return out

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a nonzero byte.

        Raises:
            ZeroDivisionError: if ``a`` is zero.
        """
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(self._exp[(-self._log[a]) % 255])

    def div(self, a: np.ndarray | int, b: int) -> np.ndarray:
        """Element-wise division by a nonzero scalar."""
        return self.mul(a, self.inverse(b))
