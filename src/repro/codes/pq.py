"""The P+Q double-erasure code (RAID6-style) over GF(2^8).

A stripe holds ``m`` data units ``d_0..d_{m-1}`` plus two check units::

    P = d_0 ⊕ d_1 ⊕ ... ⊕ d_{m-1}
    Q = c_0·d_0 ⊕ c_1·d_1 ⊕ ... ⊕ c_{m-1}·d_{m-1},   c_i = g^i

with ``g`` a generator of GF(256)*.  Any two erasures among
``{d_i} ∪ {P, Q}`` are recoverable because the ``c_i`` are distinct
nonzero elements (a 2-erasure MDS code for ``m <= 255``).

This is the natural double-fault extension of the paper's layouts: the
generalized Theorem 14 balances *two* distinguished units per stripe,
and the stairway/removal constructions carry over unchanged.
"""

from __future__ import annotations

import numpy as np

from .gf256 import GF256

__all__ = ["PQCode"]


class PQCode:
    """Encoder/decoder for one stripe's worth of byte units."""

    def __init__(self, data_units: int):
        if not 1 <= data_units <= 255:
            raise ValueError(f"P+Q supports 1..255 data units, got {data_units}")
        self.m = data_units
        self.gf = GF256()
        self.coefficients = np.array(
            [self.gf.power(i) for i in range(data_units)], dtype=np.uint8
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Compute ``(P, Q)`` for a ``(m, width)`` uint8 data matrix.

        Raises:
            ValueError: on a shape/dtype mismatch.
        """
        self._check(data)
        p = np.bitwise_xor.reduce(data, axis=0)
        q = np.zeros(data.shape[1], dtype=np.uint8)
        for i in range(self.m):
            q ^= self.gf.mul(self.coefficients[i], data[i])
        return p, q

    def _check(self, data: np.ndarray) -> None:
        if data.ndim != 2 or data.shape[0] != self.m or data.dtype != np.uint8:
            raise ValueError(
                f"data must be uint8 of shape ({self.m}, width), got "
                f"{data.dtype}{data.shape}"
            )

    # ------------------------------------------------------------------
    # Erasure decoding
    # ------------------------------------------------------------------

    def reconstruct(
        self,
        data: np.ndarray,
        p: np.ndarray | None,
        q: np.ndarray | None,
        missing_data: list[int],
    ) -> np.ndarray:
        """Recover up to two erasures.

        Args:
            data: ``(m, width)`` matrix; rows listed in ``missing_data``
                are ignored (treated as lost).
            p, q: the check units, or ``None`` if lost.
            missing_data: indices of lost data rows.

        Returns:
            The repaired ``(m, width)`` data matrix (a new array).

        Raises:
            ValueError: if more than two units are missing in total, or
                the combination is undecodable (e.g. two data rows lost
                and P also absent).
        """
        lost = len(missing_data) + (p is None) + (q is None)
        if lost > 2:
            raise ValueError(f"{lost} erasures exceed the P+Q correction limit of 2")
        if len(set(missing_data)) != len(missing_data) or not all(
            0 <= i < self.m for i in missing_data
        ):
            raise ValueError(f"invalid missing rows {missing_data}")

        out = data.copy()
        known = [i for i in range(self.m) if i not in missing_data]

        if len(missing_data) == 0:
            return out

        if len(missing_data) == 1:
            (i,) = missing_data
            if p is not None:
                # Plain parity path.
                acc = p.copy()
                for j in known:
                    acc ^= out[j]
                out[i] = acc
            elif q is not None:
                acc = q.copy()
                for j in known:
                    acc ^= self.gf.mul(self.coefficients[j], out[j])
                out[i] = self.gf.div(acc, int(self.coefficients[i]))
            else:
                raise ValueError("one data row lost but both P and Q are missing")
            return out

        # Two data rows lost: need both P and Q.
        if p is None or q is None:
            raise ValueError("two data rows lost: both P and Q are required")
        i, j = missing_data
        ci, cj = int(self.coefficients[i]), int(self.coefficients[j])
        p_prime = p.copy()
        q_prime = q.copy()
        for r in known:
            p_prime ^= out[r]
            q_prime ^= self.gf.mul(self.coefficients[r], out[r])
        # Solve: x_i ^ x_j = P', ci·x_i ^ cj·x_j = Q'.
        denom = ci ^ cj  # nonzero: coefficients are distinct
        out[i] = self.gf.div(q_prime ^ self.gf.mul(cj, p_prime), denom)
        out[j] = p_prime ^ out[i]
        return out
