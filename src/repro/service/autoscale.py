"""The autoscaling control loop: metric snapshots -> pure decisions ->
live migrations.

Closes the serving loop over the existing machinery: a fixed-cadence
tick on the fleet's *simulated* clock polls the live
:class:`repro.obs.MetricsRecorder`, reduces what it sees to a plain
:class:`MetricSnapshot`, and feeds it to :func:`decide` — a **pure
function** ``(policy, state, snapshot) -> (decision, state)`` with no
wall clock, no RNG, and no access to the fleet.  When a sustained load
spike or per-shard imbalance crosses the policy's thresholds (with
hysteresis and a cooldown so the loop cannot flap), the controller arms
a :class:`repro.service.MigrationCoordinator` at the tick time — the
same grow/shrink path ``serve --grow`` uses, sharing the one admission
budget with rebuilds.

Determinism contract (the foundation of the test harness): because
``decide`` sees nothing but the snapshot, replaying the recorded
snapshots through :func:`replay_decisions` reproduces the decision log
**byte-identically** (:func:`render_decision_jsonl` of both is string-
equal).  The scenario runner re-checks this on every autoscaled run and
reports it as ``autoscale.replay_identical``.

Why decisions read *arrival* buckets only: windowed serving delivers
each window at its first arrival time, so by simulated time ``t`` every
arrival before ``t`` has been recorded — per-shard arrival counts for
fully elapsed buckets are therefore independent of the window size.
Completion-side state (latency digests) is swept at window boundaries
and *is* window-dependent mid-run, so it stays out of the decision
function; SLO percentiles are computed from the final recorder instead
(:func:`repro.sim.stats.percentile_of_parts`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields, replace

import numpy as np

from .migration import MigrationCoordinator

__all__ = [
    "AutoscalePolicy",
    "MetricSnapshot",
    "PolicyState",
    "AutoscaleDecision",
    "AutoscaleSummary",
    "decide",
    "replay_decisions",
    "render_decision_jsonl",
    "parse_decision_jsonl",
    "AutoscaleController",
]

#: Streaming window forced onto autoscaled scenarios that did not pick
#: one: the control loop needs the window router (per-window routing
#: against the live volume table) for mid-stream cutovers to take
#: effect, and the tick events keep the clock busy anyway.
DEFAULT_AUTOSCALE_WINDOW = 256


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and pacing of the control loop (all sim-clock).

    Attributes:
        cadence_ms: tick period — how often the loop polls the
            recorder.
        window_ms: lookback over which per-shard arrival rates are
            measured (default: one cadence).
        high_rate: mean arrivals per simulated ms *per active shard*
            at or above which the fleet is overloaded (grow signal).
        low_rate: rate at or below which the fleet is underloaded
            (shrink signal); 0.0 disables shrinking.  Must sit strictly
            below ``high_rate`` — the hysteresis band between them is
            where the loop holds steady.
        imbalance_ratio: max/mean per-shard arrival ratio at or above
            which the placement is imbalanced (also a grow signal);
            ``None`` disables the signal.
        sustain_ticks: consecutive ticks a signal must persist before
            an action fires (debounce).
        cooldown_ms: minimum simulated time between actions.
        grow_step / shrink_step: shards added / removed per action.
        min_shards / max_shards: bounds on the active shard count.
    """

    cadence_ms: float = 100.0
    window_ms: float | None = None
    high_rate: float = 1.0
    low_rate: float = 0.0
    imbalance_ratio: float | None = None
    sustain_ticks: int = 2
    cooldown_ms: float = 500.0
    grow_step: int = 2
    shrink_step: int = 1
    min_shards: int = 1
    max_shards: int = 16

    def __post_init__(self) -> None:
        if self.cadence_ms <= 0:
            raise ValueError(f"cadence_ms must be > 0, got {self.cadence_ms}")
        if self.window_ms is not None and self.window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {self.window_ms}")
        if self.high_rate <= 0:
            raise ValueError(f"high_rate must be > 0, got {self.high_rate}")
        if self.low_rate < 0:
            raise ValueError(f"low_rate must be >= 0, got {self.low_rate}")
        if self.low_rate >= self.high_rate:
            raise ValueError(
                f"low_rate ({self.low_rate}) must sit strictly below "
                f"high_rate ({self.high_rate}) — the hysteresis band"
            )
        if self.imbalance_ratio is not None and self.imbalance_ratio <= 1.0:
            raise ValueError(
                f"imbalance_ratio must be > 1, got {self.imbalance_ratio}"
            )
        if self.sustain_ticks < 1:
            raise ValueError(
                f"sustain_ticks must be >= 1, got {self.sustain_ticks}"
            )
        if self.cooldown_ms < 0:
            raise ValueError(
                f"cooldown_ms must be >= 0, got {self.cooldown_ms}"
            )
        if self.grow_step < 1 or self.shrink_step < 1:
            raise ValueError("grow_step and shrink_step must be >= 1")
        if self.min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards ({self.max_shards}) must be >= min_shards "
                f"({self.min_shards})"
            )

    @property
    def lookback_ms(self) -> float:
        """The resolved measurement window."""
        return self.window_ms if self.window_ms is not None else self.cadence_ms

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "AutoscalePolicy":
        """Build a policy from a JSON object (the ``--autoscale`` file).

        Raises:
            ValueError: on unknown keys or invalid values.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown autoscale policy keys {unknown}; known keys: "
                f"{sorted(known)}"
            )
        return cls(**d)


@dataclass(frozen=True)
class MetricSnapshot:
    """What the control loop saw at one tick — plain data, JSON-ready.

    ``arrivals[i]`` counts arrivals routed to shard ``active[i]`` over
    the last ``lookback_buckets`` fully elapsed recorder buckets
    (window-size independent; see the module docstring).
    """

    seq: int
    t_ms: float
    shards: int
    active: tuple[int, ...]
    arrivals: tuple[int, ...]
    window_ms: float
    complete_buckets: int
    lookback_buckets: int
    admission_active: int
    admission_queued: int
    admission_slots: int
    migration_active: bool
    failed_arrays: int

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t_ms": self.t_ms,
            "shards": self.shards,
            "active": list(self.active),
            "arrivals": list(self.arrivals),
            "window_ms": self.window_ms,
            "complete_buckets": self.complete_buckets,
            "lookback_buckets": self.lookback_buckets,
            "admission_active": self.admission_active,
            "admission_queued": self.admission_queued,
            "admission_slots": self.admission_slots,
            "migration_active": self.migration_active,
            "failed_arrays": self.failed_arrays,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricSnapshot":
        return cls(
            seq=int(d["seq"]),
            t_ms=float(d["t_ms"]),
            shards=int(d["shards"]),
            active=tuple(int(s) for s in d["active"]),
            arrivals=tuple(int(a) for a in d["arrivals"]),
            window_ms=float(d["window_ms"]),
            complete_buckets=int(d["complete_buckets"]),
            lookback_buckets=int(d["lookback_buckets"]),
            admission_active=int(d["admission_active"]),
            admission_queued=int(d["admission_queued"]),
            admission_slots=int(d["admission_slots"]),
            migration_active=bool(d["migration_active"]),
            failed_arrays=int(d["failed_arrays"]),
        )

    @property
    def rate_per_shard(self) -> float:
        """Mean arrivals per ms per active shard over the lookback."""
        if not self.active or self.window_ms <= 0:
            return 0.0
        return sum(self.arrivals) / (self.window_ms * len(self.active))

    @property
    def imbalance(self) -> float:
        """Max over mean per-shard arrivals (1.0 when idle/uniform)."""
        if not self.arrivals:
            return 1.0
        mean = sum(self.arrivals) / len(self.arrivals)
        if mean <= 0:
            return 1.0
        return max(self.arrivals) / mean


@dataclass(frozen=True)
class PolicyState:
    """The loop's memory between ticks (hysteresis + cooldown)."""

    high_streak: int = 0
    low_streak: int = 0
    last_action_ms: float | None = None


@dataclass(frozen=True)
class AutoscaleDecision:
    """One tick's outcome: the action (or refusal) and why.

    ``high_streak`` / ``low_streak`` are the *post-tick* streaks — the
    state the next tick decides from — so the decision log alone tells
    the whole hysteresis story.
    """

    seq: int
    t_ms: float
    action: str  # "grow" | "shrink" | "none"
    reason: str
    from_shards: int
    to_shards: int | None
    high_streak: int
    low_streak: int
    snapshot: MetricSnapshot

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t_ms": self.t_ms,
            "action": self.action,
            "reason": self.reason,
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "high_streak": self.high_streak,
            "low_streak": self.low_streak,
            "snapshot": self.snapshot.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AutoscaleDecision":
        return cls(
            seq=int(d["seq"]),
            t_ms=float(d["t_ms"]),
            action=str(d["action"]),
            reason=str(d["reason"]),
            from_shards=int(d["from_shards"]),
            to_shards=(
                int(d["to_shards"]) if d["to_shards"] is not None else None
            ),
            high_streak=int(d["high_streak"]),
            low_streak=int(d["low_streak"]),
            snapshot=MetricSnapshot.from_dict(d["snapshot"]),
        )


def decide(
    policy: AutoscalePolicy,
    state: PolicyState,
    snapshot: MetricSnapshot,
) -> tuple[AutoscaleDecision, PolicyState]:
    """One tick of the control loop — a pure function of its arguments.

    Gate order (each refusal names itself in the decision's reason):

    1. **warmup** — the lookback window has not fully elapsed yet;
       streaks stay zero.
    2. signal evaluation — the high streak advances while the rate sits
       at/above ``high_rate`` *or* the imbalance at/above
       ``imbalance_ratio``; the low streak advances while the rate sits
       at/below ``low_rate``; either resets when its signal clears.
    3. **migration-active** — one reshape at a time.
    4. **cooldown** — too soon after the last action.
    5. **degraded-arrays** — never reshape while a rebuild is owed.
    6. a sustained high streak grows (bounded by ``max_shards``,
       refused while the admission budget is exhausted); a sustained
       low streak shrinks symmetrically.
    """
    n = len(snapshot.active)

    def none(reason: str, st: PolicyState) -> tuple[AutoscaleDecision, PolicyState]:
        return (
            AutoscaleDecision(
                seq=snapshot.seq,
                t_ms=snapshot.t_ms,
                action="none",
                reason=reason,
                from_shards=n,
                to_shards=None,
                high_streak=st.high_streak,
                low_streak=st.low_streak,
                snapshot=snapshot,
            ),
            st,
        )

    if snapshot.complete_buckets < snapshot.lookback_buckets:
        return none("warmup", replace(state, high_streak=0, low_streak=0))

    rate = snapshot.rate_per_shard
    high_load = rate >= policy.high_rate
    imbalanced = (
        policy.imbalance_ratio is not None
        and snapshot.imbalance >= policy.imbalance_ratio
    )
    low_load = policy.low_rate > 0.0 and rate <= policy.low_rate
    state = replace(
        state,
        high_streak=state.high_streak + 1 if (high_load or imbalanced) else 0,
        low_streak=state.low_streak + 1 if low_load else 0,
    )

    if snapshot.migration_active:
        return none("migration-active", state)
    if (
        state.last_action_ms is not None
        and snapshot.t_ms - state.last_action_ms < policy.cooldown_ms
    ):
        return none("cooldown", state)
    if snapshot.failed_arrays:
        return none("degraded-arrays", state)

    if state.high_streak >= policy.sustain_ticks:
        if n >= policy.max_shards:
            return none("at-max-shards", state)
        if snapshot.admission_active >= snapshot.admission_slots:
            return none("admission-exhausted", state)
        target = min(n + policy.grow_step, policy.max_shards)
        reason = "+".join(
            s
            for s, on in (("load-spike", high_load), ("imbalance", imbalanced))
            if on
        )
        state = PolicyState(
            high_streak=0, low_streak=0, last_action_ms=snapshot.t_ms
        )
        return (
            AutoscaleDecision(
                seq=snapshot.seq,
                t_ms=snapshot.t_ms,
                action="grow",
                reason=reason,
                from_shards=n,
                to_shards=target,
                high_streak=0,
                low_streak=0,
                snapshot=snapshot,
            ),
            state,
        )

    if state.low_streak >= policy.sustain_ticks:
        if n <= policy.min_shards:
            return none("at-min-shards", state)
        if snapshot.admission_active >= snapshot.admission_slots:
            return none("admission-exhausted", state)
        target = max(n - policy.shrink_step, policy.min_shards)
        state = PolicyState(
            high_streak=0, low_streak=0, last_action_ms=snapshot.t_ms
        )
        return (
            AutoscaleDecision(
                seq=snapshot.seq,
                t_ms=snapshot.t_ms,
                action="shrink",
                reason="low-load",
                from_shards=n,
                to_shards=target,
                high_streak=0,
                low_streak=0,
                snapshot=snapshot,
            ),
            state,
        )

    if state.high_streak or state.low_streak:
        return none("sustaining", state)
    return none("steady", state)


def replay_decisions(
    policy: AutoscalePolicy, snapshots: list[MetricSnapshot]
) -> list[AutoscaleDecision]:
    """Re-derive the whole decision log from recorded snapshots.

    Because :func:`decide` is pure and the state fold starts from the
    same initial :class:`PolicyState`, the result is byte-identical to
    the live log (:func:`render_decision_jsonl` string equality) — the
    subsystem's determinism contract.
    """
    state = PolicyState()
    decisions = []
    for snap in snapshots:
        decision, state = decide(policy, state, snap)
        decisions.append(decision)
    return decisions


def render_decision_jsonl(decisions: list[AutoscaleDecision]) -> str:
    """Serialize a decision log as sorted-key JSONL (the byte-identity
    form, and the ``--decisions-out`` file format)."""
    return "".join(
        json.dumps(d.to_dict(), sort_keys=True) + "\n" for d in decisions
    )


def parse_decision_jsonl(text: str) -> list[AutoscaleDecision]:
    """Parse a ``--decisions-out`` file back into decisions.

    Raises:
        ValueError: on a line that is not a decision object.
    """
    decisions = []
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"line {i} is not valid decision JSON ({exc.msg})"
            ) from exc
        if not isinstance(row, dict) or "snapshot" not in row:
            raise ValueError(f"line {i} is not a decision object")
        try:
            decisions.append(AutoscaleDecision.from_dict(row))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"line {i} is not a valid decision ({exc!r})"
            ) from exc
    return decisions


@dataclass(frozen=True)
class AutoscaleSummary:
    """The autoscale section of a scenario report (JSON-ready).

    ``events`` holds one entry per fired action with its migration
    outcomes (the same per-volume schema as the static reshape
    section); ``replay_identical`` is the runner's own re-check of the
    determinism contract.
    """

    policy: AutoscalePolicy
    decisions: tuple[AutoscaleDecision, ...]
    events: tuple[dict, ...]
    replay_identical: bool
    final_shards: int
    zero_lost: bool | None

    @property
    def actions(self) -> int:
        return len(self.events)

    @property
    def ok(self) -> bool:
        """The autoscale gate: the decision log replays byte-identically
        and every fired event converged fully verified (and lost
        nothing, when the scenario is loss-free)."""
        if not self.replay_identical:
            return False
        if self.zero_lost is False:
            return False
        return all(
            e["completed_moves"] == e["planned_moves"] and e["all_verified"]
            for e in self.events
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy.to_dict(),
            "decisions": [d.to_dict() for d in self.decisions],
            "actions": self.actions,
            "events": list(self.events),
            "replay_identical": self.replay_identical,
            "final_shards": self.final_shards,
            "zero_lost": self.zero_lost,
            "ok": self.ok,
        }


class AutoscaleController:
    """Runs the control loop on a live fleet's simulated clock.

    Args:
        fleet: the fleet to watch and reshape.
        policy: thresholds and pacing.
        recorder: the live :class:`repro.obs.MetricsRecorder` the fleet
            records into (snapshots read its arrival buckets).
        admission: the shared :class:`AdmissionController` — fired
            migrations submit their copies through it, so autoscale
            events and rebuilds share the one fleet-wide budget.
        horizon_ms: last tick time; ticks fire at ``cadence_ms``
            multiples in ``(0, horizon_ms]`` relative to :meth:`arm`.
        copy_parallelism: concurrent unit copies per migrating volume.

    Raises:
        ValueError: if the recorder grid is too coarse to resolve the
            policy's lookback window.
    """

    def __init__(
        self,
        fleet,
        policy: AutoscalePolicy,
        recorder,
        *,
        admission,
        horizon_ms: float,
        copy_parallelism: int = 4,
    ) -> None:
        if recorder.interval_ms > policy.lookback_ms:
            raise ValueError(
                f"metrics interval {recorder.interval_ms} ms is coarser "
                f"than the policy lookback {policy.lookback_ms} ms — the "
                "snapshot would cover zero complete buckets"
            )
        self.fleet = fleet
        self.policy = policy
        self.recorder = recorder
        self.admission = admission
        self.horizon_ms = float(horizon_ms)
        self.copy_parallelism = copy_parallelism
        self.state = PolicyState()
        self.decisions: list[AutoscaleDecision] = []
        #: Coordinators fired by this loop, in decision order, paired
        #: with the decision that fired them.
        self.fired: list[tuple[AutoscaleDecision, MigrationCoordinator]] = []
        self._t0 = 0.0
        self._armed = False

    def arm(self) -> None:
        """Schedule the first tick on the fleet's clock.

        Raises:
            RuntimeError: if armed twice.
        """
        if self._armed:
            raise RuntimeError("autoscale controller already armed")
        self._armed = True
        self._t0 = self.fleet.sim.now
        if self.policy.cadence_ms <= self.horizon_ms:
            self.fleet.sim.at(self._t0 + self.policy.cadence_ms, self._tick)

    # -- the tick ---------------------------------------------------------

    def _snapshot(self, now: float, seq: int) -> MetricSnapshot:
        """Reduce the live fleet + recorder to plain data (the only
        place the loop touches mutable state)."""
        rec = self.recorder
        iv = rec.interval_ms
        # Buckets [0, complete) have fully elapsed: bucket b covers
        # [b*iv, (b+1)*iv).  The epsilon absorbs float noise when the
        # cadence is an exact multiple of the grid.
        complete = int(math.floor(now / iv + 1e-9))
        lookback = max(1, int(round(self.policy.lookback_ms / iv)))
        lo = complete - lookback
        active = tuple(
            int(s) for s in np.unique(self.fleet._volume_route)
        )
        arrivals = tuple(
            sum(
                count
                for b, count in rec.arrival_buckets(s).items()
                if lo <= b < complete
            )
            for s in active
        )
        mig = self.fleet._migration
        return MetricSnapshot(
            seq=seq,
            t_ms=now,
            shards=self.fleet.shards,
            active=active,
            arrivals=arrivals,
            window_ms=lookback * iv,
            complete_buckets=complete,
            lookback_buckets=lookback,
            admission_active=self.admission.active,
            admission_queued=self.admission.queued,
            admission_slots=self.admission.slots,
            migration_active=mig is not None and not mig.done,
            failed_arrays=len(self.fleet.failed_arrays()),
        )

    def _tick(self) -> None:
        now = self.fleet.sim.now
        snapshot = self._snapshot(now, len(self.decisions))
        decision, self.state = decide(self.policy, self.state, snapshot)
        self.decisions.append(decision)
        obs = self.fleet._obs
        if obs.enabled:
            obs.count("autoscale_ticks")
            obs.gauge(
                "autoscale_shards", 0, now, float(len(snapshot.active))
            )
        if decision.action != "none":
            coordinator = MigrationCoordinator(
                self.fleet,
                decision.to_shards,
                at_ms=now,
                admission_controller=self.admission,
                copy_parallelism=self.copy_parallelism,
            )
            coordinator.arm()
            self.fired.append((decision, coordinator))
            if obs.enabled:
                obs.count("autoscale_actions")
                obs.gauge(
                    "autoscale_shards", 0, now, float(decision.to_shards)
                )
        next_t = now + self.policy.cadence_ms
        if next_t <= self._t0 + self.horizon_ms:
            self.fleet.sim.at(next_t, self._tick)

    # -- reporting --------------------------------------------------------

    def events(self, verify_data: bool) -> list[dict]:
        """One JSON-ready entry per fired action, with its migration
        outcomes (canonical volume order)."""
        out = []
        for decision, co in self.fired:
            outcomes = sorted(co.outcomes, key=lambda o: o.volume)
            if verify_data:
                verified = co.done and all(
                    o.data_verified is True
                    for o in outcomes
                    if o.units_copied
                )
            else:
                verified = co.done and all(
                    o.data_verified is not False for o in outcomes
                )
            out.append(
                {
                    "seq": decision.seq,
                    "t_ms": decision.t_ms,
                    "action": decision.action,
                    "reason": decision.reason,
                    "from_shards": decision.from_shards,
                    "to_shards": decision.to_shards,
                    "planned_moves": len(co.owned_moves),
                    "completed_moves": len(co.outcomes),
                    "units_copied": sum(o.units_copied for o in outcomes),
                    "held_requests": sum(o.held_requests for o in outcomes),
                    "forwarded_writes": sum(
                        o.forwarded_writes for o in outcomes
                    ),
                    "converged_at_ms": (
                        max(o.cutover_at_ms for o in outcomes)
                        if outcomes
                        else decision.t_ms
                    ),
                    "all_verified": verified,
                    "volumes": [
                        {
                            "volume": o.volume,
                            "source": o.source,
                            "dest": o.dest,
                            "units_copied": o.units_copied,
                            "requested_at_ms": o.requested_at_ms,
                            "started_at_ms": o.started_at_ms,
                            "copied_at_ms": o.copied_at_ms,
                            "cutover_at_ms": o.cutover_at_ms,
                            "admission_delay_ms": o.admission_delay_ms,
                            "copy_ms": o.copy_ms,
                            "drain_ms": o.drain_ms,
                            "held_requests": o.held_requests,
                            "forwarded_writes": o.forwarded_writes,
                            "data_verified": o.data_verified,
                        }
                        for o in outcomes
                    ],
                }
            )
        return out

    def summary(self, *, verify_data: bool, lost: int | None) -> AutoscaleSummary:
        """The report section: decisions, events, and the runner-side
        replay re-check.  ``lost`` is the fleet's lost-request count
        (``None`` when the scenario schedules failures — losses then
        have a legitimate cause outside the autoscaler)."""
        replayed = replay_decisions(
            self.policy, [d.snapshot for d in self.decisions]
        )
        replay_ok = render_decision_jsonl(replayed) == render_decision_jsonl(
            self.decisions
        )
        active = int(np.unique(self.fleet._volume_route).size)
        return AutoscaleSummary(
            policy=self.policy,
            decisions=tuple(self.decisions),
            events=tuple(self.events(verify_data)),
            replay_identical=replay_ok,
            final_shards=active,
            zero_lost=(lost == 0) if lost is not None else None,
        )
