"""A fleet of parity-declustered arrays served from one process.

The :class:`Fleet` owns N :class:`ArrayController` shards over one
registry-cached layout, all driven by a **single shared event clock**:
disk IOs, foreground traffic, failure injections, and rebuilds across
every array interleave on one simulator, which is what makes
fleet-level statements ("two arrays rebuild concurrently while traffic
continues") meaningful.

Routing is batched end to end.  An incoming request stream (arrival
times, read flags, fleet-global LBAs) is split per shard with one
vectorized consistent-hash pass (:class:`ShardMap`), each shard's
sub-stream is compiled with one ``map_batch`` call
(:func:`repro.sim.compile.compile_stream`), and execution picks the
cheapest engine per shard (:func:`repro.sim.compile.execute_compiled`):
the analytic queue solver for single-phase traces, the calendar-queue
batch-stepped executor for mixed ones, and the shared event heap only
when timers (failure injections, migration copies) are armed on the
clock.  No per-request Python happens between the socket (here: the
stream vectors) and the disk queues.

Routing is also *mutable* per volume: the fleet routes through a
volume→shard table seeded from the :class:`ShardMap` and updated one
volume at a time as a live migration
(:class:`repro.service.MigrationCoordinator`) cuts volumes over to new
shards.  While a migration is active, requests to moving volumes are
diverted out of the batched per-shard compile and dispatched
request-by-request on the shared clock, so each one follows the
volume's *current* owner (source before cutover, destination after)
and can be drained and counted exactly — the seam that makes "grow the
fleet under load with zero lost requests" a checkable property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import get_layout
from ..layouts import Layout
from ..obs.nullrec import NULL_RECORDER
from ..sim.batchstep import _EagerCore
from ..sim.compile import (
    CompiledTrace,
    StreamWindows,
    _CompiledRun,
    compile_stream,
    execute_compiled,
    generate_request_stream,
    schedule_compiled,
)
from ..sim.controller import ArrayController
from ..sim.disk import DiskParameters
from ..sim.events import Simulator
from ..sim.stats import LatencyDigest, LatencyStats, merge_summaries, summarize
from ..sim.stream import _digest_sink, _WindowedSolver
from ..sim.workload import WorkloadConfig
from .sharding import ShardMap

__all__ = ["Fleet", "FleetReport"]


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of serving one stream through the fleet.

    Attributes:
        shards: number of arrays.
        scheduled: total requests routed into the fleet.
        completed: requests that finished (one latency sample each).
            Requests in flight when a disk fails are lost — a real
            controller would retry them degraded — so ``completed``
            can trail ``scheduled`` in failure scenarios.
        duration_ms: simulated time from stream start to last
            completion (the makespan).
        throughput_rps: *completed* requests per simulated second over
            the makespan — the fleet's achieved service rate (lost
            requests don't inflate it).
        latency: fleet-level latency summaries keyed by request kind
            (samples merged across shards).
        per_shard_scheduled: requests routed to each shard.
        per_shard_latency: per-shard latency summaries.
        per_disk_ios: completed IOs per disk, per shard.
    """

    shards: int
    scheduled: int
    completed: int
    duration_ms: float
    throughput_rps: float
    latency: dict[str, dict[str, float]]
    per_shard_scheduled: list[int]
    per_shard_latency: list[dict[str, dict[str, float]]]
    per_disk_ios: list[list[int]]

    @property
    def lost(self) -> int:
        """Requests dropped by mid-flight disk failures."""
        return self.scheduled - self.completed

    @property
    def shard_balance(self) -> float:
        """Busiest over least-busy shard by routed requests (1.0 is
        perfect balance)."""
        active = [c for c in self.per_shard_scheduled if c > 0]
        return max(active) / min(active) if active else 1.0


class Fleet:
    """N array shards, one shared clock, batched request routing.

    Args:
        shards: number of arrays.
        v: disks per array.
        k: stripe size.
        volumes: logical-volume count (routing granularity; default
            ``16 * shards``).
        disk_params: service-time model shared by every disk.
        dataplane: attach byte-level data planes (enables bit-for-bit
            rebuild and migration verification at simulation cost).
        seed: shard-ring seed and per-array data-plane fill seed base.
        replicas: consistent-hash ring points per shard.
        placement: :class:`ShardMap` placement policy — ``"ring"``
            (baseline), ``"p2c"``, or ``"weighted"``.  The non-ring
            policies balance per-volume *traffic weights* (each
            volume's addressable extent), which is what tightens
            request-level shard balance from ~2x to <= 1.3x max/min.
        write_policy: small-write handling for every shard —
            ``"rmw"`` (read-modify-write, the paper's model) or
            ``"write_through"`` (single-phase, analytically solvable).

    Raises:
        ValueError: on a non-positive shard count, unknown placement,
            or unknown write policy.
        NoFeasiblePlanError: if no layout construction fits ``(v, k)``.
    """

    def __init__(
        self,
        shards: int,
        v: int,
        k: int,
        *,
        volumes: int | None = None,
        disk_params: DiskParameters | None = None,
        dataplane: bool = False,
        seed: int = 0,
        replicas: int = 64,
        placement: str = "ring",
        write_policy: str = "rmw",
    ):
        if shards < 1:
            raise ValueError(f"a fleet needs >= 1 shard, got {shards}")
        self.sim = Simulator()
        self.layout: Layout = get_layout(v, k)
        self.seed = seed
        self.placement = placement
        self._disk_params = disk_params
        self._dataplane = dataplane
        self.write_policy = write_policy
        self.controllers = [
            ArrayController(
                self.layout,
                sim=self.sim,
                disk_params=disk_params,
                dataplane=dataplane,
                seed=seed + i,
                write_policy=write_policy,
            )
            for i in range(shards)
        ]
        # Metrics recording: the null default makes uninstrumented
        # serves free; attach_recorder swaps in a real recorder and
        # tags every controller with its fleet-global shard id.
        self._obs = NULL_RECORDER
        for i, ctrl in enumerate(self.controllers):
            ctrl.obs_shard = i
        self.shard_capacity = self.controllers[0].mapper.capacity
        # The logical address space is fixed at creation: growing the
        # fleet adds serving capacity for the *same* volumes (the
        # migration story), it does not extend the LBA range.
        self.capacity = self.shard_capacity * shards
        n_volumes = volumes if volumes is not None else 16 * shards
        # Volume extent: ceil so every global LBA falls in a volume.
        self.volume_units = -(-self.capacity // n_volumes)
        self.shard_map = ShardMap(
            shards,
            n_volumes,
            seed=seed,
            replicas=replicas,
            policy=placement,
            weights=self.volume_weights(n_volumes),
        )
        # Mutable routing: starts as the map's placement, updated one
        # volume at a time by a live migration's cutovers.
        self._volume_route = self.shard_map.assignment()
        self._migration = None  # attached by MigrationCoordinator
        # Every coordinator ever attached, in order — serve accounting
        # sums dispatch counts across all of them, so migrations fired
        # mid-serve (the autoscale loop can run several sequentially)
        # still land in the per-shard scheduled totals.
        self._migrations: list = []

    @property
    def shards(self) -> int:
        """Number of arrays in the fleet (including any shards a shrink
        migration has drained — they idle but stay on the clock)."""
        return len(self.controllers)

    def failed_arrays(self) -> list[int]:
        """Indices of arrays currently running degraded."""
        return [
            i
            for i, c in enumerate(self.controllers)
            if c.failed_disk is not None
        ]

    def volume_weights(self, n_volumes: int | None = None) -> np.ndarray:
        """Per-volume traffic weights: each volume's *addressable
        extent* in units.  Tail volumes past the capacity edge weigh 0
        (they receive no traffic), a partial last volume weighs its
        real extent — what the ``p2c``/``weighted`` policies balance.
        """
        n = n_volumes if n_volumes is not None else self.shard_map.volumes
        starts = np.arange(n, dtype=np.int64) * self.volume_units
        return np.clip(
            self.capacity - starts, 0, self.volume_units
        ).astype(np.float64)

    def volume_route(self) -> np.ndarray:
        """The live volume→shard routing table (a copy) — equals
        :meth:`ShardMap.assignment` except mid-migration, where cut-over
        volumes already point at their destination."""
        return self._volume_route.copy()

    def routing_fingerprint(self) -> int:
        """Deterministic digest of the live routing table (the
        :meth:`ShardMap.fingerprint` analogue for mid-migration
        states)."""
        from .sharding import fingerprint_assignment

        return fingerprint_assignment(self._volume_route, self.seed)

    # ------------------------------------------------------------------
    # Reconfiguration plumbing (driven by MigrationCoordinator)
    # ------------------------------------------------------------------

    def ensure_shards(self, target: int) -> None:
        """Grow the controller set to ``target`` arrays on the shared
        clock (no-op when already that large).  New arrays serve no
        volumes until a migration cuts some over to them."""
        while len(self.controllers) < target:
            i = len(self.controllers)
            ctrl = ArrayController(
                self.layout,
                sim=self.sim,
                disk_params=self._disk_params,
                dataplane=self._dataplane,
                seed=self.seed + i,
                write_policy=self.write_policy,
            )
            ctrl.obs_shard = i
            ctrl.obs = self._obs
            self.controllers.append(ctrl)

    def attach_recorder(self, recorder) -> None:
        """Route every shard's instrumentation into ``recorder`` (a
        :class:`repro.obs.MetricsRecorder`); shards added later by
        :meth:`ensure_shards` inherit it."""
        self._obs = recorder
        for ctrl in self.controllers:
            ctrl.obs = recorder

    def attach_migration(self, coordinator) -> None:
        """Register the live migration that diverts moving-volume
        traffic (one at a time).

        Raises:
            RuntimeError: if an unfinished migration is already
                attached.
        """
        if self._migration is not None and not self._migration.done:
            raise RuntimeError("a migration is already in progress")
        self._migration = coordinator
        self._migrations.append(coordinator)

    def migration_dispatch_totals(self) -> list[int]:
        """Requests dispatched per shard by every migration ever
        attached (diverted traffic counts where the coordinator sent
        it).  Serve paths snapshot this before and after a stream so
        scheduled counts cover coordinators created mid-serve too."""
        totals = [0] * self.shards
        for co in self._migrations:
            for s, n in enumerate(co.dispatched_per_shard):
                totals[s] += n
        return totals

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route_stream(
        self,
        times: np.ndarray,
        is_read: np.ndarray,
        lbas: np.ndarray,
    ) -> tuple[list[CompiledTrace], np.ndarray]:
        """Split and compile a fleet-global stream per shard.

        One vectorized pass: global LBA → volume → live routing table,
        then one ``map_batch``-backed compile per shard over its
        sub-stream (global LBAs fold onto the shard's address space).
        Relative arrival order within a shard is preserved.

        While a migration is active, requests to moving volumes are
        *diverted*: they carry shard id ``-1`` here and are handed to
        the coordinator, which dispatches each one at its arrival time
        to the volume's current owner (so cutovers mid-stream take
        effect) — see :class:`repro.service.MigrationCoordinator`.

        Returns:
            ``(compiled, shard_ids)`` — one :class:`CompiledTrace` per
            shard plus each request's routed shard (``-1`` = diverted).

        Raises:
            IndexError: if any LBA falls outside the fleet capacity.
        """
        times = np.asarray(times, dtype=np.float64)
        is_read = np.asarray(is_read, dtype=bool)
        lbas = np.ascontiguousarray(lbas, dtype=np.int64)
        vols = lbas // self.volume_units
        if vols.size and (
            vols.min() < 0 or vols.max() >= self.shard_map.volumes
        ):
            raise IndexError(
                f"LBAs outside the fleet capacity {self.capacity}: "
                f"volume range [{vols.min()}, {vols.max()}]"
            )
        shard_ids = self._volume_route[vols]
        mig = self._migration
        if mig is not None and not mig.done:
            moving = mig.claims(vols)
            if moving.any():
                mig.register_stream(
                    times[moving], is_read[moving], lbas[moving], vols[moving]
                )
                shard_ids = np.where(moving, np.int64(-1), shard_ids)
        compiled = []
        for s, ctrl in enumerate(self.controllers):
            mask = shard_ids == s
            compiled.append(
                compile_stream(
                    ctrl.mapper,
                    times[mask],
                    is_read[mask],
                    lbas[mask] % self.shard_capacity,
                )
            )
        return compiled, shard_ids

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _execute_all(self, compiled: list[CompiledTrace]) -> None:
        """Batched fast path: simulator idle, so the shards share no
        events and each executes independently against the common start
        time — the analytic queue solver for single-phase traces, the
        calendar-queue batch-stepped executor for mixed ones (see
        :func:`repro.sim.compile.execute_compiled`).  The shared clock
        then advances to the fleet-wide makespan."""
        base = self.sim.now
        end = base
        for ctrl, trace in zip(self.controllers, compiled):
            self.sim.now = base
            execute_compiled(ctrl, trace)
            end = max(end, self.sim.now)
        self.sim.now = end

    def serve_stream(
        self,
        times: np.ndarray,
        is_read: np.ndarray,
        lbas: np.ndarray,
    ) -> FleetReport:
        """Serve one fleet-global stream to completion.

        Routes, compiles, executes (per-shard solver/batch-stepped
        engines on an idle clock, the shared event heap otherwise), and
        aggregates per-shard reports.  Failure injections armed on the
        shared clock (see :class:`repro.service.FailureOrchestrator`)
        fire mid-stream.
        """
        compiled, _ = self.route_stream(times, is_read, lbas)
        return self.serve_compiled(compiled)

    def serve_compiled(self, compiled: list[CompiledTrace]) -> FleetReport:
        """Execute pre-routed per-shard traces (the
        :meth:`route_stream` output) and report.

        Raises:
            ValueError: if the trace count does not match the fleet.
        """
        if len(compiled) != self.shards:
            raise ValueError(
                f"expected {self.shards} per-shard traces, got {len(compiled)}"
            )
        start = self.sim.now
        # Snapshot cumulative controller state so the report covers this
        # stream only — a long-lived fleet serves many streams and each
        # report must stand alone.
        lat_base = [
            {kind: st.count for kind, st in ctrl.latency.items()}
            for ctrl in self.controllers
        ]
        ios_base = [ctrl.per_disk_completed() for ctrl in self.controllers]
        mig_base = self.migration_dispatch_totals()
        obs = self._obs
        if obs.enabled:
            for s, trace in enumerate(compiled):
                if trace.n:
                    obs.arrivals(s, start + trace.times)
        if not self.sim.pending():
            # No armed timers or in-flight events: shards are
            # independent, so each picks its cheapest engine.
            self._execute_all(compiled)
        else:
            for ctrl, trace in zip(self.controllers, compiled):
                schedule_compiled(ctrl, trace)
            self.sim.run()
        # A reshape mid-run grows the controller set; pad the per-shard
        # snapshots so the report covers the shards born during it.
        scheduled = [t.n for t in compiled]
        while len(scheduled) < len(self.controllers):
            scheduled.append(0)
            lat_base.append({})
            ios_base.append([0] * self.layout.v)
        # Diverted requests count where the coordinators actually
        # dispatched them (source pre-cutover, destination after).
        for s, total in enumerate(self.migration_dispatch_totals()):
            base = mig_base[s] if s < len(mig_base) else 0
            if total != base:
                scheduled[s] += total - base
        # This stream's samples as per-shard exact accumulators.
        accs: list[dict[str, LatencyStats]] = []
        for ctrl, base in zip(self.controllers, lat_base):
            shard: dict[str, LatencyStats] = {}
            for kind, st in ctrl.latency.items():
                fresh = st.samples[base.get(kind, 0):]
                if fresh:
                    shard[kind] = LatencyStats(samples=fresh)
            accs.append(shard)
        return self._report(
            scheduled=scheduled,
            start=start,
            accs=accs,
            ios_base=ios_base,
        )

    def serve_workload(
        self,
        config: WorkloadConfig,
        duration_ms: float,
        *,
        window_size: int | None = None,
    ) -> FleetReport:
        """Generate a fleet-level synthetic stream and serve it.

        ``config.interarrival_ms`` is the *aggregate* fleet interarrival
        — the offered load the shards split between them.  Addresses
        are drawn over the whole fleet capacity.

        With ``window_size`` set, the stream is never materialized: it
        is generated, routed, and executed one window at a time
        (:meth:`serve_windows`) with latency reduced to constant-memory
        digests, so peak memory is one window at any horizon and the
        report is byte-identical to the materialized serve.
        """
        if window_size is not None:
            return self.serve_windows(
                StreamWindows(
                    config, duration_ms, self.capacity, window_size=window_size
                ),
                read_only_hint=config.read_fraction >= 1.0,
            )
        times, is_read, lbas = generate_request_stream(
            config, duration_ms, self.capacity
        )
        return self.serve_stream(times, is_read, lbas)

    def serve_windows(
        self,
        windows,
        *,
        read_only_hint: bool = False,
    ) -> FleetReport:
        """Serve a windowed fleet-global stream in constant memory.

        ``windows`` yields ``(times, is_read, lbas)`` slices in arrival
        order (times relative to the stream start, LBAs fleet-global) —
        :class:`repro.sim.compile.StreamWindows` over the fleet
        capacity, typically.  Two modes mirror :meth:`serve_compiled`:

        * **carry** (idle clock, no live migration): each shard runs a
          windowed engine that carries its queue state across window
          boundaries — the analytic solver when every request is
          single-phase (``read_only_hint`` or a write-through fleet),
          the eager core for mixed read-modify-write fleets without
          data planes.  No event loop at all.  An eager tie abort
          replays the stream exactly on the window router (``windows``
          must be re-iterable for eager; one-shot generators stream
          through the router directly).
        * **window router** (armed timers, live migration, data
          planes): one self-rescheduling event loads each window onto
          the shared heap when it is due — per-window routing follows
          the *live* volume table, so migration cutovers mid-stream
          take effect, and diverted windows are handed to the
          coordinator with absolute arrival times.

        ``read_only_hint`` is a caller promise (every request is a
        read); a lying hint raises ``ValueError`` from the solver.
        Reports are byte-identical to the materialized serve of the
        same stream, with the documented measure-zero exception of
        exact event-time ties.
        """
        start = self.sim.now
        ios_base = [ctrl.per_disk_completed() for ctrl in self.controllers]
        mig = self._migration
        mig_base = self.migration_dispatch_totals()
        digests: list[dict[str, LatencyDigest]] = [
            {} for _ in self.controllers
        ]
        scheduled = [0] * len(self.controllers)
        carried = False
        if not self.sim.pending() and (mig is None or mig.done):
            carried = self._serve_windows_carry(
                windows, digests, scheduled, read_only_hint
            )
        if not carried:
            # Router mode — either the clock is busy, or the carry
            # engines declined / aborted (nothing touched; replay).
            for d in digests:
                d.clear()
            for s in range(len(scheduled)):
                scheduled[s] = 0
            router = _WindowRouter(self, iter(windows), digests, scheduled)
            router.start()
            self.sim.run()
            router.drain()
        while len(scheduled) < len(self.controllers):
            if not carried:
                # Shards born after the final window delivery (a single
                # oversized window covers the whole stream): the pad in
                # ``_WindowRouter._deliver`` never saw them — label here
                # so engine labels match at every window size.
                born = self.controllers[len(scheduled)]
                born.last_engine = "windowed-pump"
                born.obs.set_engine(born.obs_shard, "windowed-pump")
            scheduled.append(0)
            ios_base.append([0] * self.layout.v)
            digests.append({})
        for s, total in enumerate(self.migration_dispatch_totals()):
            base = mig_base[s] if s < len(mig_base) else 0
            if total != base:
                scheduled[s] += total - base
        return self._report(
            scheduled=scheduled,
            start=start,
            accs=digests,
            ios_base=ios_base,
        )

    def _serve_windows_carry(
        self,
        windows,
        digests: list[dict[str, LatencyDigest]],
        scheduled: list[int],
        read_only_hint: bool,
    ) -> bool:
        """Batched windowed fast path: per-shard carry engines, no
        event loop (the windowed analogue of :meth:`_execute_all`).
        False when the engines don't apply or the eager core hits an
        ambiguous tie — in both cases the controllers are untouched."""
        return _windows_carry(
            self.sim,
            self.controllers,
            range(len(self.controllers)),
            route=self._volume_route,
            volume_units=self.volume_units,
            shard_capacity=self.shard_capacity,
            n_volumes=self.shard_map.volumes,
            capacity=self.capacity,
            write_policy=self.write_policy,
            dataplane=self._dataplane,
            windows=windows,
            digests=digests,
            scheduled=scheduled,
            read_only_hint=read_only_hint,
        )

    def _replay_shard(
        self,
        s: int,
        windows,
        digest: dict[str, LatencyDigest],
    ) -> int:
        """Replay one shard's sub-stream on a chained heap pump (fresh
        pass over the re-iterable windows, routed and filtered to shard
        ``s``) — the carry path's per-shard fallback when its eager
        core hits an ambiguous tie.  Constant memory: one window
        buffered, samples swept into the digest at window boundaries.
        Returns the shard's request count."""
        count, drain = _arm_shard_pump(
            self.controllers[s],
            s,
            windows,
            digest,
            self._volume_route,
            self.volume_units,
            self.shard_capacity,
        )
        self.sim.run()
        drain()
        return count[0]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(
        self,
        scheduled: list[int],
        start: float,
        accs: list[dict[str, LatencyStats | LatencyDigest]],
        ios_base: list[list[int]],
    ) -> FleetReport:
        duration = self.sim.now - start
        per_shard_latency: list[dict[str, dict[str, float]]] = []
        # Kind keys iterate sorted so every latency dict in the report
        # has a canonical key order — report equality (serial vs merged
        # multi-process runs) must not hinge on which request kind
        # happened to complete first.  Fleet-level summaries fold the
        # per-shard accumulators in shard order (merge_summaries), the
        # same fold whether they are exact sample lists (materialized
        # serves), streaming digests (windowed serves), or summaries
        # merged across worker processes — the byte-identity seam.
        for shard in accs:
            per_shard_latency.append(
                {kind: summarize(shard[kind]) for kind in sorted(shard)}
            )
        kinds = sorted({kind for shard in accs for kind in shard})
        merged = {
            kind: merge_summaries(
                [shard[kind] for shard in accs if kind in shard]
            )
            for kind in kinds
        }
        total = int(sum(scheduled))
        completed = int(
            sum(acc.count for shard in accs for acc in shard.values())
        )  # one sample per finished request; lost requests have none
        report = FleetReport(
            shards=self.shards,
            scheduled=total,
            completed=completed,
            duration_ms=duration,
            throughput_rps=(
                completed / (duration / 1000.0) if duration > 0 else 0.0
            ),
            latency=merged,
            per_shard_scheduled=list(scheduled),
            per_shard_latency=per_shard_latency,
            per_disk_ios=[
                [now - then for now, then in zip(c.per_disk_completed(), base)]
                for c, base in zip(self.controllers, ios_base)
            ],
        )
        # A plain (non-field) attribute: the engine each shard's
        # execution actually used.  Kept out of the dataclass fields so
        # asdict()/equality comparisons — the byte-identity tests —
        # never see it (windowed and materialized serves legitimately
        # pick differently-labelled engines for identical reports).
        object.__setattr__(
            report, "engines", [c.last_engine for c in self.controllers]
        )
        return report


class _WindowRouter:
    """Streams a windowed fleet workload onto the shared event heap.

    One self-rescheduling event per window: at the first arrival time
    of window *W*, the router sweeps completed latency samples into the
    per-shard digests, routes *W* through the **live** volume table
    (so migration cutovers that happened since the last window take
    effect), hands any diverted sub-stream to the coordinator with
    absolute arrival times, compiles each shard's slice, and arms one
    :class:`repro.sim.compile._CompiledRun` pump per non-empty slice —
    all of whose arrivals fire before the next window is due (windows
    partition the stream by time).  Exactly one window is ever
    buffered, so heap pressure and sample memory stay constant at any
    horizon while failures, rebuilds, and migration copies interleave
    on the shared clock.
    """

    __slots__ = ("fleet", "it", "digests", "scheduled", "base", "_next", "_lat_base")

    def __init__(
        self,
        fleet: Fleet,
        it,
        digests: list[dict[str, LatencyDigest]],
        scheduled: list[int],
    ):
        self.fleet = fleet
        self.it = it
        self.digests = digests
        self.scheduled = scheduled
        self.base = fleet.sim.now
        self._next = None
        # A long-lived fleet's controllers may carry samples from
        # earlier streams; the sweep must only claim this stream's tail.
        self._lat_base = [
            {kind: len(st.samples) for kind, st in ctrl.latency.items()}
            for ctrl in fleet.controllers
        ]

    def start(self) -> None:
        # Router mode runs every shard on the chained heap pump; label
        # all controllers up front so serial and multi-process serves
        # agree even for shards that see no traffic.
        for ctrl in self.fleet.controllers:
            ctrl.last_engine = "windowed-pump"
            ctrl.obs.set_engine(ctrl.obs_shard, "windowed-pump")
        self._next = self._pull()
        if self._next is not None:
            self._arm()

    def _pull(self):
        for w in self.it:
            if len(w[0]):
                return w
        return None

    def _arm(self) -> None:
        self.fleet.sim.at(self.base + float(self._next[0][0]), self._deliver)

    def _deliver(self) -> None:
        self.drain()
        fleet = self.fleet
        times, is_read, lbas = self._next
        self._next = None
        vols = lbas // fleet.volume_units
        if vols.min() < 0 or vols.max() >= fleet.shard_map.volumes:
            raise IndexError(
                f"LBAs outside the fleet capacity {fleet.capacity}: "
                f"volume range [{vols.min()}, {vols.max()}]"
            )
        shard_ids = fleet._volume_route[vols]
        mig = fleet._migration
        if mig is not None and not mig.done:
            moving = mig.claims(vols)
            if moving.any():
                mig.register_stream(
                    self.base + times[moving],
                    is_read[moving],
                    lbas[moving],
                    vols[moving],
                    absolute=True,
                )
                shard_ids = np.where(moving, np.int64(-1), shard_ids)
        scheduled = self.scheduled
        while len(scheduled) < len(fleet.controllers):
            # Shards born from a reshape mid-run: label them with the
            # engine that will serve them from here on.
            born = fleet.controllers[len(scheduled)]
            born.last_engine = "windowed-pump"
            born.obs.set_engine(born.obs_shard, "windowed-pump")
            scheduled.append(0)
        obs = fleet._obs
        obs.count("window_boundaries", volatile=True)
        for s, ctrl in enumerate(fleet.controllers):
            mask = shard_ids == s
            if not mask.any():
                continue
            if obs.enabled:
                obs.arrivals(s, self.base + times[mask])
            w = compile_stream(
                ctrl.mapper,
                times[mask],
                is_read[mask],
                lbas[mask] % fleet.shard_capacity,
            )
            scheduled[s] += w.n
            # The explicit base keeps arrival times bit-equal to a
            # stream-start schedule even though the pump is built
            # mid-run.
            _CompiledRun(ctrl, w, base=self.base).schedule()
        self._next = self._pull()
        if self._next is not None:
            self._arm()

    def drain(self) -> None:
        """Sweep each controller's fresh latency samples (in recording
        order) into the per-shard digests and trim the lists back, so
        sample memory never exceeds one window's completions."""
        fleet = self.fleet
        digests = self.digests
        lat_base = self._lat_base
        while len(digests) < len(fleet.controllers):
            digests.append({})
            lat_base.append({})
        for s, ctrl in enumerate(fleet.controllers):
            dig = digests[s]
            base = lat_base[s]
            for kind, st in ctrl.latency.items():
                lst = st.samples
                b = base.get(kind, 0)
                if len(lst) > b:
                    d = dig.get(kind)
                    if d is None:
                        d = dig[kind] = LatencyDigest()
                    d.extend(lst[b:])
                    del lst[b:]


def _windows_carry(
    sim: Simulator,
    controllers: list[ArrayController],
    gids,
    *,
    route: np.ndarray,
    volume_units: int,
    shard_capacity: int,
    n_volumes: int,
    capacity: int,
    write_policy: str,
    dataplane: bool,
    windows,
    digests: list[dict[str, LatencyDigest]],
    scheduled: list[int],
    read_only_hint: bool,
) -> bool:
    """Carry-engine windowed execution over ``controllers`` serving the
    global shard ids ``gids`` (``gids[i]`` is what the routing table
    calls ``controllers[i]``) — the whole fleet for a serial serve,
    one group's slice for a multi-process worker.  ``digests`` and
    ``scheduled`` are indexed like ``controllers``.  Returns False when
    the engines don't apply or an eager core hits an ambiguous tie with
    the controllers untouched (aborted shards replay on a per-shard
    chained heap pump before returning True)."""
    base = sim.now
    sinks = [
        _digest_sink(d, c.obs if c.obs.enabled else None, g)
        for d, c, g in zip(digests, controllers, gids)
    ]
    solver = read_only_hint or write_policy == "write_through"
    if solver:
        engines = [_WindowedSolver(c) for c in controllers]
        for c, g in zip(controllers, gids):
            c.last_engine = "windowed-solver"
            c.obs.set_engine(g, "windowed-solver")
    else:
        # The eager tier needs re-iterable windows: an abort replays
        # the whole stream from the top.
        if (
            dataplane
            or write_policy != "rmw"
            or iter(windows) is windows
        ):
            return False
        p = controllers[0].params
        seq_s = (
            p.sequential_seek_ms
            + p.rotational_latency_ms
            + p.transfer_ms_per_unit
        )
        avg_s = (
            p.average_seek_ms
            + p.rotational_latency_ms
            + p.transfer_ms_per_unit
        )
        if min(seq_s, avg_s) <= 0.0:
            return False
        engines = [_EagerCore(c, seq_s, avg_s) for c in controllers]
        for c, g in zip(controllers, gids):
            c.last_engine = "windowed-eager"
            c.obs.set_engine(g, "windowed-eager")
    # Shards whose eager core hit an ambiguous tie: their core is
    # dropped (it wrote nothing back) and their whole sub-stream
    # replays on a per-shard chained heap pump at the end — the
    # same per-shard granularity as execute_compiled's eager →
    # event-engine fallback, so reports stay byte-identical.
    fallback: set[int] = set()

    def demote(i: int) -> None:
        fallback.add(i)
        digests[i].clear()
        scheduled[i] = 0
        obs_i = controllers[i].obs
        obs_i.reset_shard(gids[i])
        obs_i.count("tie_abort_replays")

    for times, is_read, lbas in windows:
        if not len(times):
            continue
        controllers[0].obs.count("window_boundaries", volatile=True)
        vols = lbas // volume_units
        if vols.min() < 0 or vols.max() >= n_volumes:
            raise IndexError(
                f"LBAs outside the fleet capacity {capacity}: "
                f"volume range [{vols.min()}, {vols.max()}]"
            )
        shard_ids = route[vols]
        for i, ctrl in enumerate(controllers):
            if i in fallback:
                continue
            mask = shard_ids == gids[i]
            if not mask.any():
                continue
            if ctrl.obs.enabled:
                ctrl.obs.arrivals(gids[i], base + times[mask])
            w = compile_stream(
                ctrl.mapper,
                times[mask],
                is_read[mask],
                lbas[mask] % shard_capacity,
            )
            scheduled[i] += w.n
            if solver:
                engines[i].feed(w, sinks[i])
            else:
                run = _CompiledRun(ctrl, w)
                if not engines[i].feed(run):
                    demote(i)
                    continue
                engines[i].drain(run.times[-1], sinks[i])
    if not solver:
        # Settle every surviving shard before the first write-back
        # so a late abort still demotes cleanly.
        for i, eng in enumerate(engines):
            if i not in fallback and not eng.settle():
                demote(i)
    # Finish each shard from the common start time and advance the
    # shared clock to the fleet-wide makespan (_execute_all's move).
    end = base
    for i, eng in enumerate(engines):
        sim.now = base
        if i in fallback:
            count, drain = _arm_shard_pump(
                controllers[i],
                gids[i],
                windows,
                digests[i],
                route,
                volume_units,
                shard_capacity,
            )
            sim.run()
            drain()
            scheduled[i] = count[0]
        else:
            eng.finish(sinks[i])
        if sim.now > end:
            end = sim.now
    sim.now = end
    return True


def _arm_shard_pump(
    ctrl: ArrayController,
    gid: int,
    windows,
    digest: dict[str, LatencyDigest],
    route: np.ndarray,
    volume_units: int,
    shard_capacity: int,
) -> tuple[list[int], object]:
    """Arm a chained heap pump for the shard the routing table calls
    ``gid`` over its slice of a re-iterable windowed stream (a fresh
    filtered pass — one window buffered at a time).

    Returns ``(count, drain)``: ``count[0]`` accumulates the shard's
    request count as windows are pulled, and ``drain()`` sweeps fresh
    latency samples into ``digest`` (the pump calls it at each window
    boundary; call it once more after the clock drains).  The caller
    runs the simulator — so a worker can arm every shard's pump before
    one shared ``sim.run()`` when failure timers interleave."""
    ctrl.last_engine = "windowed-pump"
    obs = ctrl.obs
    obs.set_engine(gid, "windowed-pump")
    base = ctrl.sim.now

    def slices():
        for times, is_read, lbas in windows:
            if not len(times):
                continue
            mask = route[lbas // volume_units] == gid
            if not mask.any():
                continue
            if obs.enabled:
                obs.arrivals(gid, base + times[mask])
            yield compile_stream(
                ctrl.mapper,
                times[mask],
                is_read[mask],
                lbas[mask] % shard_capacity,
            )

    gen = slices()
    first = next(gen, None)
    count = [0]
    latency = ctrl.latency
    lat_base = {kind: len(st.samples) for kind, st in latency.items()}

    def drain():
        for kind, st in latency.items():
            lst = st.samples
            b = lat_base.get(kind, 0)
            if len(lst) > b:
                d = digest.get(kind)
                if d is None:
                    d = digest[kind] = LatencyDigest()
                d.extend(lst[b:])
                del lst[b:]

    if first is None:
        return count, drain
    count[0] = first.n

    def source():
        w = next(gen, None)
        if w is not None:
            count[0] += w.n
        return w

    _CompiledRun(ctrl, first, source=source, on_window=drain).schedule()
    return count, drain
