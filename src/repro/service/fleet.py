"""A fleet of parity-declustered arrays served from one process.

The :class:`Fleet` owns N :class:`ArrayController` shards over one
registry-cached layout, all driven by a **single shared event clock**:
disk IOs, foreground traffic, failure injections, and rebuilds across
every array interleave on one simulator, which is what makes
fleet-level statements ("two arrays rebuild concurrently while traffic
continues") meaningful.

Routing is batched end to end.  An incoming request stream (arrival
times, read flags, fleet-global LBAs) is split per shard with one
vectorized consistent-hash pass (:class:`ShardMap`), each shard's
sub-stream is compiled with one ``map_batch`` call
(:func:`repro.sim.compile.compile_stream`), and execution picks the
cheapest engine per shard (:func:`repro.sim.compile.execute_compiled`):
the analytic queue solver for single-phase traces, the calendar-queue
batch-stepped executor for mixed ones, and the shared event heap only
when timers (failure injections, migration copies) are armed on the
clock.  No per-request Python happens between the socket (here: the
stream vectors) and the disk queues.

Routing is also *mutable* per volume: the fleet routes through a
volume→shard table seeded from the :class:`ShardMap` and updated one
volume at a time as a live migration
(:class:`repro.service.MigrationCoordinator`) cuts volumes over to new
shards.  While a migration is active, requests to moving volumes are
diverted out of the batched per-shard compile and dispatched
request-by-request on the shared clock, so each one follows the
volume's *current* owner (source before cutover, destination after)
and can be drained and counted exactly — the seam that makes "grow the
fleet under load with zero lost requests" a checkable property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import get_layout
from ..layouts import Layout
from ..sim.compile import (
    CompiledTrace,
    compile_stream,
    execute_compiled,
    generate_request_stream,
    schedule_compiled,
)
from ..sim.controller import ArrayController
from ..sim.disk import DiskParameters
from ..sim.events import Simulator
from ..sim.stats import LatencyStats, summarize
from ..sim.workload import WorkloadConfig
from .sharding import ShardMap

__all__ = ["Fleet", "FleetReport"]


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of serving one stream through the fleet.

    Attributes:
        shards: number of arrays.
        scheduled: total requests routed into the fleet.
        completed: requests that finished (one latency sample each).
            Requests in flight when a disk fails are lost — a real
            controller would retry them degraded — so ``completed``
            can trail ``scheduled`` in failure scenarios.
        duration_ms: simulated time from stream start to last
            completion (the makespan).
        throughput_rps: *completed* requests per simulated second over
            the makespan — the fleet's achieved service rate (lost
            requests don't inflate it).
        latency: fleet-level latency summaries keyed by request kind
            (samples merged across shards).
        per_shard_scheduled: requests routed to each shard.
        per_shard_latency: per-shard latency summaries.
        per_disk_ios: completed IOs per disk, per shard.
    """

    shards: int
    scheduled: int
    completed: int
    duration_ms: float
    throughput_rps: float
    latency: dict[str, dict[str, float]]
    per_shard_scheduled: list[int]
    per_shard_latency: list[dict[str, dict[str, float]]]
    per_disk_ios: list[list[int]]

    @property
    def lost(self) -> int:
        """Requests dropped by mid-flight disk failures."""
        return self.scheduled - self.completed

    @property
    def shard_balance(self) -> float:
        """Busiest over least-busy shard by routed requests (1.0 is
        perfect balance)."""
        active = [c for c in self.per_shard_scheduled if c > 0]
        return max(active) / min(active) if active else 1.0


class Fleet:
    """N array shards, one shared clock, batched request routing.

    Args:
        shards: number of arrays.
        v: disks per array.
        k: stripe size.
        volumes: logical-volume count (routing granularity; default
            ``16 * shards``).
        disk_params: service-time model shared by every disk.
        dataplane: attach byte-level data planes (enables bit-for-bit
            rebuild and migration verification at simulation cost).
        seed: shard-ring seed and per-array data-plane fill seed base.
        replicas: consistent-hash ring points per shard.
        placement: :class:`ShardMap` placement policy — ``"ring"``
            (baseline), ``"p2c"``, or ``"weighted"``.  The non-ring
            policies balance per-volume *traffic weights* (each
            volume's addressable extent), which is what tightens
            request-level shard balance from ~2x to <= 1.3x max/min.
        write_policy: small-write handling for every shard —
            ``"rmw"`` (read-modify-write, the paper's model) or
            ``"write_through"`` (single-phase, analytically solvable).

    Raises:
        ValueError: on a non-positive shard count, unknown placement,
            or unknown write policy.
        NoFeasiblePlanError: if no layout construction fits ``(v, k)``.
    """

    def __init__(
        self,
        shards: int,
        v: int,
        k: int,
        *,
        volumes: int | None = None,
        disk_params: DiskParameters | None = None,
        dataplane: bool = False,
        seed: int = 0,
        replicas: int = 64,
        placement: str = "ring",
        write_policy: str = "rmw",
    ):
        if shards < 1:
            raise ValueError(f"a fleet needs >= 1 shard, got {shards}")
        self.sim = Simulator()
        self.layout: Layout = get_layout(v, k)
        self.seed = seed
        self.placement = placement
        self._disk_params = disk_params
        self._dataplane = dataplane
        self.write_policy = write_policy
        self.controllers = [
            ArrayController(
                self.layout,
                sim=self.sim,
                disk_params=disk_params,
                dataplane=dataplane,
                seed=seed + i,
                write_policy=write_policy,
            )
            for i in range(shards)
        ]
        self.shard_capacity = self.controllers[0].mapper.capacity
        # The logical address space is fixed at creation: growing the
        # fleet adds serving capacity for the *same* volumes (the
        # migration story), it does not extend the LBA range.
        self.capacity = self.shard_capacity * shards
        n_volumes = volumes if volumes is not None else 16 * shards
        # Volume extent: ceil so every global LBA falls in a volume.
        self.volume_units = -(-self.capacity // n_volumes)
        self.shard_map = ShardMap(
            shards,
            n_volumes,
            seed=seed,
            replicas=replicas,
            policy=placement,
            weights=self.volume_weights(n_volumes),
        )
        # Mutable routing: starts as the map's placement, updated one
        # volume at a time by a live migration's cutovers.
        self._volume_route = self.shard_map.assignment()
        self._migration = None  # attached by MigrationCoordinator

    @property
    def shards(self) -> int:
        """Number of arrays in the fleet (including any shards a shrink
        migration has drained — they idle but stay on the clock)."""
        return len(self.controllers)

    def failed_arrays(self) -> list[int]:
        """Indices of arrays currently running degraded."""
        return [
            i
            for i, c in enumerate(self.controllers)
            if c.failed_disk is not None
        ]

    def volume_weights(self, n_volumes: int | None = None) -> np.ndarray:
        """Per-volume traffic weights: each volume's *addressable
        extent* in units.  Tail volumes past the capacity edge weigh 0
        (they receive no traffic), a partial last volume weighs its
        real extent — what the ``p2c``/``weighted`` policies balance.
        """
        n = n_volumes if n_volumes is not None else self.shard_map.volumes
        starts = np.arange(n, dtype=np.int64) * self.volume_units
        return np.clip(
            self.capacity - starts, 0, self.volume_units
        ).astype(np.float64)

    def volume_route(self) -> np.ndarray:
        """The live volume→shard routing table (a copy) — equals
        :meth:`ShardMap.assignment` except mid-migration, where cut-over
        volumes already point at their destination."""
        return self._volume_route.copy()

    def routing_fingerprint(self) -> int:
        """Deterministic digest of the live routing table (the
        :meth:`ShardMap.fingerprint` analogue for mid-migration
        states)."""
        from .sharding import fingerprint_assignment

        return fingerprint_assignment(self._volume_route, self.seed)

    # ------------------------------------------------------------------
    # Reconfiguration plumbing (driven by MigrationCoordinator)
    # ------------------------------------------------------------------

    def ensure_shards(self, target: int) -> None:
        """Grow the controller set to ``target`` arrays on the shared
        clock (no-op when already that large).  New arrays serve no
        volumes until a migration cuts some over to them."""
        while len(self.controllers) < target:
            i = len(self.controllers)
            self.controllers.append(
                ArrayController(
                    self.layout,
                    sim=self.sim,
                    disk_params=self._disk_params,
                    dataplane=self._dataplane,
                    seed=self.seed + i,
                    write_policy=self.write_policy,
                )
            )

    def attach_migration(self, coordinator) -> None:
        """Register the live migration that diverts moving-volume
        traffic (one at a time).

        Raises:
            RuntimeError: if an unfinished migration is already
                attached.
        """
        if self._migration is not None and not self._migration.done:
            raise RuntimeError("a migration is already in progress")
        self._migration = coordinator

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route_stream(
        self,
        times: np.ndarray,
        is_read: np.ndarray,
        lbas: np.ndarray,
    ) -> tuple[list[CompiledTrace], np.ndarray]:
        """Split and compile a fleet-global stream per shard.

        One vectorized pass: global LBA → volume → live routing table,
        then one ``map_batch``-backed compile per shard over its
        sub-stream (global LBAs fold onto the shard's address space).
        Relative arrival order within a shard is preserved.

        While a migration is active, requests to moving volumes are
        *diverted*: they carry shard id ``-1`` here and are handed to
        the coordinator, which dispatches each one at its arrival time
        to the volume's current owner (so cutovers mid-stream take
        effect) — see :class:`repro.service.MigrationCoordinator`.

        Returns:
            ``(compiled, shard_ids)`` — one :class:`CompiledTrace` per
            shard plus each request's routed shard (``-1`` = diverted).

        Raises:
            IndexError: if any LBA falls outside the fleet capacity.
        """
        times = np.asarray(times, dtype=np.float64)
        is_read = np.asarray(is_read, dtype=bool)
        lbas = np.ascontiguousarray(lbas, dtype=np.int64)
        vols = lbas // self.volume_units
        if vols.size and (
            vols.min() < 0 or vols.max() >= self.shard_map.volumes
        ):
            raise IndexError(
                f"LBAs outside the fleet capacity {self.capacity}: "
                f"volume range [{vols.min()}, {vols.max()}]"
            )
        shard_ids = self._volume_route[vols]
        mig = self._migration
        if mig is not None and not mig.done:
            moving = mig.claims(vols)
            if moving.any():
                mig.register_stream(
                    times[moving], is_read[moving], lbas[moving], vols[moving]
                )
                shard_ids = np.where(moving, np.int64(-1), shard_ids)
        compiled = []
        for s, ctrl in enumerate(self.controllers):
            mask = shard_ids == s
            compiled.append(
                compile_stream(
                    ctrl.mapper,
                    times[mask],
                    is_read[mask],
                    lbas[mask] % self.shard_capacity,
                )
            )
        return compiled, shard_ids

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _execute_all(self, compiled: list[CompiledTrace]) -> None:
        """Batched fast path: simulator idle, so the shards share no
        events and each executes independently against the common start
        time — the analytic queue solver for single-phase traces, the
        calendar-queue batch-stepped executor for mixed ones (see
        :func:`repro.sim.compile.execute_compiled`).  The shared clock
        then advances to the fleet-wide makespan."""
        base = self.sim.now
        end = base
        for ctrl, trace in zip(self.controllers, compiled):
            self.sim.now = base
            execute_compiled(ctrl, trace)
            end = max(end, self.sim.now)
        self.sim.now = end

    def serve_stream(
        self,
        times: np.ndarray,
        is_read: np.ndarray,
        lbas: np.ndarray,
    ) -> FleetReport:
        """Serve one fleet-global stream to completion.

        Routes, compiles, executes (per-shard solver/batch-stepped
        engines on an idle clock, the shared event heap otherwise), and
        aggregates per-shard reports.  Failure injections armed on the
        shared clock (see :class:`repro.service.FailureOrchestrator`)
        fire mid-stream.
        """
        compiled, _ = self.route_stream(times, is_read, lbas)
        return self.serve_compiled(compiled)

    def serve_compiled(self, compiled: list[CompiledTrace]) -> FleetReport:
        """Execute pre-routed per-shard traces (the
        :meth:`route_stream` output) and report.

        Raises:
            ValueError: if the trace count does not match the fleet.
        """
        if len(compiled) != self.shards:
            raise ValueError(
                f"expected {self.shards} per-shard traces, got {len(compiled)}"
            )
        start = self.sim.now
        # Snapshot cumulative controller state so the report covers this
        # stream only — a long-lived fleet serves many streams and each
        # report must stand alone.
        lat_base = [
            {kind: st.count for kind, st in ctrl.latency.items()}
            for ctrl in self.controllers
        ]
        ios_base = [ctrl.per_disk_completed() for ctrl in self.controllers]
        mig = self._migration
        mig_base = list(mig.dispatched_per_shard) if mig is not None else None
        if not self.sim.pending():
            # No armed timers or in-flight events: shards are
            # independent, so each picks its cheapest engine.
            self._execute_all(compiled)
        else:
            for ctrl, trace in zip(self.controllers, compiled):
                schedule_compiled(ctrl, trace)
            self.sim.run()
        # A reshape mid-run grows the controller set; pad the per-shard
        # snapshots so the report covers the shards born during it.
        scheduled = [t.n for t in compiled]
        while len(scheduled) < len(self.controllers):
            scheduled.append(0)
            lat_base.append({})
            ios_base.append([0] * self.layout.v)
        if mig is not None:
            # Diverted requests count where the coordinator actually
            # dispatched them (source pre-cutover, destination after).
            for s, total in enumerate(mig.dispatched_per_shard):
                base = mig_base[s] if s < len(mig_base) else 0
                scheduled[s] += total - base
        return self._report(
            scheduled=scheduled,
            start=start,
            lat_base=lat_base,
            ios_base=ios_base,
        )

    def serve_workload(
        self, config: WorkloadConfig, duration_ms: float
    ) -> FleetReport:
        """Generate a fleet-level synthetic stream and serve it.

        ``config.interarrival_ms`` is the *aggregate* fleet interarrival
        — the offered load the shards split between them.  Addresses
        are drawn over the whole fleet capacity.
        """
        times, is_read, lbas = generate_request_stream(
            config, duration_ms, self.capacity
        )
        return self.serve_stream(times, is_read, lbas)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(
        self,
        scheduled: list[int],
        start: float,
        lat_base: list[dict[str, int]],
        ios_base: list[list[int]],
    ) -> FleetReport:
        duration = self.sim.now - start
        merged: dict[str, LatencyStats] = {}
        per_shard_latency: list[dict[str, dict[str, float]]] = []
        # Kind keys iterate sorted so every latency dict in the report
        # has a canonical key order — report equality (serial vs merged
        # multi-process runs) must not hinge on which request kind
        # happened to complete first.
        for ctrl, base in zip(self.controllers, lat_base):
            shard: dict[str, dict[str, float]] = {}
            for kind in sorted(ctrl.latency):
                fresh = ctrl.latency[kind].samples[base.get(kind, 0):]
                if not fresh:
                    continue
                shard[kind] = summarize(LatencyStats(samples=list(fresh)))
                merged.setdefault(kind, LatencyStats()).samples.extend(fresh)
            per_shard_latency.append(shard)
        total = int(sum(scheduled))
        completed = int(
            sum(st.count for st in merged.values())
        )  # one sample per finished request; lost requests have none
        return FleetReport(
            shards=self.shards,
            scheduled=total,
            completed=completed,
            duration_ms=duration,
            throughput_rps=(
                completed / (duration / 1000.0) if duration > 0 else 0.0
            ),
            latency={k: summarize(merged[k]) for k in sorted(merged)},
            per_shard_scheduled=list(scheduled),
            per_shard_latency=per_shard_latency,
            per_disk_ios=[
                [now - then for now, then in zip(c.per_disk_completed(), base)]
                for c, base in zip(self.controllers, ios_base)
            ],
        )
