"""A fleet of parity-declustered arrays served from one process.

The :class:`Fleet` owns N :class:`ArrayController` shards over one
registry-cached layout, all driven by a **single shared event clock**:
disk IOs, foreground traffic, failure injections, and rebuilds across
every array interleave on one simulator, which is what makes
fleet-level statements ("two arrays rebuild concurrently while traffic
continues") meaningful.

Routing is batched end to end.  An incoming request stream (arrival
times, read flags, fleet-global LBAs) is split per shard with one
vectorized consistent-hash pass (:class:`ShardMap`), each shard's
sub-stream is compiled with one ``map_batch`` call
(:func:`repro.sim.compile.compile_stream`), and execution picks the
cheapest engine per shard: the analytic queue solver when the whole
fleet is healthy and read-only, the compiled executor otherwise.  No
per-request Python happens between the socket (here: the stream
vectors) and the disk queues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import get_layout
from ..layouts import Layout
from ..sim.compile import (
    CompiledTrace,
    compile_stream,
    generate_request_stream,
    schedule_compiled,
    solve_compiled,
)
from ..sim.controller import ArrayController
from ..sim.disk import DiskParameters
from ..sim.events import Simulator
from ..sim.stats import LatencyStats, summarize
from ..sim.workload import WorkloadConfig
from .sharding import ShardMap

__all__ = ["Fleet", "FleetReport"]


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of serving one stream through the fleet.

    Attributes:
        shards: number of arrays.
        scheduled: total requests routed into the fleet.
        completed: requests that finished (one latency sample each).
            Requests in flight when a disk fails are lost — a real
            controller would retry them degraded — so ``completed``
            can trail ``scheduled`` in failure scenarios.
        duration_ms: simulated time from stream start to last
            completion (the makespan).
        throughput_rps: *completed* requests per simulated second over
            the makespan — the fleet's achieved service rate (lost
            requests don't inflate it).
        latency: fleet-level latency summaries keyed by request kind
            (samples merged across shards).
        per_shard_scheduled: requests routed to each shard.
        per_shard_latency: per-shard latency summaries.
        per_disk_ios: completed IOs per disk, per shard.
    """

    shards: int
    scheduled: int
    completed: int
    duration_ms: float
    throughput_rps: float
    latency: dict[str, dict[str, float]]
    per_shard_scheduled: list[int]
    per_shard_latency: list[dict[str, dict[str, float]]]
    per_disk_ios: list[list[int]]

    @property
    def lost(self) -> int:
        """Requests dropped by mid-flight disk failures."""
        return self.scheduled - self.completed

    @property
    def shard_balance(self) -> float:
        """Busiest over least-busy shard by routed requests (1.0 is
        perfect balance)."""
        active = [c for c in self.per_shard_scheduled if c > 0]
        return max(active) / min(active) if active else 1.0


class Fleet:
    """N array shards, one shared clock, batched request routing.

    Args:
        shards: number of arrays.
        v: disks per array.
        k: stripe size.
        volumes: logical-volume count (routing granularity; default
            ``16 * shards``).
        disk_params: service-time model shared by every disk.
        dataplane: attach byte-level data planes (enables bit-for-bit
            rebuild verification at simulation cost).
        seed: shard-ring seed and per-array data-plane fill seed base.
        replicas: consistent-hash ring points per shard.

    Raises:
        ValueError: on a non-positive shard count.
        NoFeasiblePlanError: if no layout construction fits ``(v, k)``.
    """

    def __init__(
        self,
        shards: int,
        v: int,
        k: int,
        *,
        volumes: int | None = None,
        disk_params: DiskParameters | None = None,
        dataplane: bool = False,
        seed: int = 0,
        replicas: int = 64,
    ):
        if shards < 1:
            raise ValueError(f"a fleet needs >= 1 shard, got {shards}")
        self.sim = Simulator()
        self.layout: Layout = get_layout(v, k)
        self.seed = seed
        self.controllers = [
            ArrayController(
                self.layout,
                sim=self.sim,
                disk_params=disk_params,
                dataplane=dataplane,
                seed=seed + i,
            )
            for i in range(shards)
        ]
        self.shard_capacity = self.controllers[0].mapper.capacity
        self.capacity = self.shard_capacity * shards
        n_volumes = volumes if volumes is not None else 16 * shards
        self.shard_map = ShardMap(
            shards, n_volumes, seed=seed, replicas=replicas
        )
        # Volume extent: ceil so every global LBA falls in a volume.
        self.volume_units = -(-self.capacity // n_volumes)

    @property
    def shards(self) -> int:
        """Number of arrays in the fleet."""
        return len(self.controllers)

    def failed_arrays(self) -> list[int]:
        """Indices of arrays currently running degraded."""
        return [
            i
            for i, c in enumerate(self.controllers)
            if c.failed_disk is not None
        ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route_stream(
        self,
        times: np.ndarray,
        is_read: np.ndarray,
        lbas: np.ndarray,
    ) -> tuple[list[CompiledTrace], np.ndarray]:
        """Split and compile a fleet-global stream per shard.

        One vectorized pass: global LBA → volume → shard (consistent
        hash), then one ``map_batch``-backed compile per shard over its
        sub-stream (global LBAs fold onto the shard's address space).
        Relative arrival order within a shard is preserved.

        Returns:
            ``(compiled, shard_ids)`` — one :class:`CompiledTrace` per
            shard plus each request's routed shard.
        """
        times = np.asarray(times, dtype=np.float64)
        is_read = np.asarray(is_read, dtype=bool)
        lbas = np.ascontiguousarray(lbas, dtype=np.int64)
        shard_ids = self.shard_map.shard_of_volume(lbas // self.volume_units)
        compiled = []
        for s, ctrl in enumerate(self.controllers):
            mask = shard_ids == s
            compiled.append(
                compile_stream(
                    ctrl.mapper,
                    times[mask],
                    is_read[mask],
                    lbas[mask] % self.shard_capacity,
                )
            )
        return compiled, shard_ids

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _all_healthy(self) -> bool:
        return all(c.failed_disk is None for c in self.controllers)

    def _solve_all(self, compiled: list[CompiledTrace]) -> None:
        """Analytic fast path: every shard healthy, every request a
        read, simulator idle — each shard's queues solve independently
        against the common start time, and the shared clock advances to
        the fleet-wide makespan."""
        base = self.sim.now
        end = base
        for ctrl, trace in zip(self.controllers, compiled):
            self.sim.now = base
            solve_compiled(ctrl, trace)
            end = max(end, self.sim.now)
        self.sim.now = end

    def serve_stream(
        self,
        times: np.ndarray,
        is_read: np.ndarray,
        lbas: np.ndarray,
    ) -> FleetReport:
        """Serve one fleet-global stream to completion.

        Routes, compiles, executes (analytic solver when the fleet is
        healthy and the stream read-only, the compiled executor on the
        shared clock otherwise), and aggregates per-shard reports.
        Failure injections armed on the shared clock (see
        :class:`repro.service.FailureOrchestrator`) fire mid-stream.
        """
        compiled, _ = self.route_stream(times, is_read, lbas)
        return self.serve_compiled(compiled)

    def serve_compiled(self, compiled: list[CompiledTrace]) -> FleetReport:
        """Execute pre-routed per-shard traces (the
        :meth:`route_stream` output) and report.

        Raises:
            ValueError: if the trace count does not match the fleet.
        """
        if len(compiled) != self.shards:
            raise ValueError(
                f"expected {self.shards} per-shard traces, got {len(compiled)}"
            )
        start = self.sim.now
        # Snapshot cumulative controller state so the report covers this
        # stream only — a long-lived fleet serves many streams and each
        # report must stand alone.
        lat_base = [
            {kind: st.count for kind, st in ctrl.latency.items()}
            for ctrl in self.controllers
        ]
        ios_base = [ctrl.per_disk_completed() for ctrl in self.controllers]
        read_only = all(t.read_only() for t in compiled)
        if read_only and self._all_healthy() and not self.sim.pending():
            self._solve_all(compiled)
        else:
            for ctrl, trace in zip(self.controllers, compiled):
                schedule_compiled(ctrl, trace)
            self.sim.run()
        return self._report(
            scheduled=[t.n for t in compiled],
            start=start,
            lat_base=lat_base,
            ios_base=ios_base,
        )

    def serve_workload(
        self, config: WorkloadConfig, duration_ms: float
    ) -> FleetReport:
        """Generate a fleet-level synthetic stream and serve it.

        ``config.interarrival_ms`` is the *aggregate* fleet interarrival
        — the offered load the shards split between them.  Addresses
        are drawn over the whole fleet capacity.
        """
        times, is_read, lbas = generate_request_stream(
            config, duration_ms, self.capacity
        )
        return self.serve_stream(times, is_read, lbas)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(
        self,
        scheduled: list[int],
        start: float,
        lat_base: list[dict[str, int]],
        ios_base: list[list[int]],
    ) -> FleetReport:
        duration = self.sim.now - start
        merged: dict[str, LatencyStats] = {}
        per_shard_latency: list[dict[str, dict[str, float]]] = []
        for ctrl, base in zip(self.controllers, lat_base):
            shard: dict[str, dict[str, float]] = {}
            for kind, st in ctrl.latency.items():
                fresh = st.samples[base.get(kind, 0):]
                if not fresh:
                    continue
                shard[kind] = summarize(LatencyStats(samples=list(fresh)))
                merged.setdefault(kind, LatencyStats()).samples.extend(fresh)
            per_shard_latency.append(shard)
        total = int(sum(scheduled))
        completed = int(
            sum(st.count for st in merged.values())
        )  # one sample per finished request; lost requests have none
        return FleetReport(
            shards=self.shards,
            scheduled=total,
            completed=completed,
            duration_ms=duration,
            throughput_rps=(
                completed / (duration / 1000.0) if duration > 0 else 0.0
            ),
            latency={k: summarize(st) for k, st in merged.items()},
            per_shard_scheduled=list(scheduled),
            per_shard_latency=per_shard_latency,
            per_disk_ios=[
                [now - then for now, then in zip(c.per_disk_completed(), base)]
                for c, base in zip(self.controllers, ios_base)
            ],
        )
