"""Fleet failure orchestration: injection, admission-controlled
rebuilds, and fleet-level recovery reporting.

A :class:`FailureOrchestrator` arms a schedule of
:class:`FailureEvent`s on the fleet's shared clock.  When a failure
fires, the array flips to degraded mode (foreground traffic re-plans
live — the compiled executor was built for exactly this) and a rebuild
is *requested*.  At most ``admission`` recovery jobs run concurrently
across the whole fleet; excess requests queue FIFO and start the
moment a slot frees.  That knob is the classic recovery/foreground
trade-off: admission 1 serializes rebuild IO (least interference,
longest window of reduced redundancy), admission K rebuilds everything
at once (fastest redundancy restoration, most contention).

The slot gate itself is a standalone :class:`AdmissionController`, so
*all* background data movement can share one budget: the scenario
runner hands the same controller to the orchestrator and to
:class:`repro.service.MigrationCoordinator`, making volume copies and
rebuilds compete for the same fleet-wide concurrency slots instead of
stacking on top of each other.

Every completed rebuild carries the :class:`RebuildReport` of the
underlying sweep, so with data planes attached the fleet-level verdict
("every recovered array matches bit for bit") is just a conjunction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..sim.reconstruction import RebuildProcess, RebuildReport
from .fleet import Fleet

__all__ = [
    "AdmissionController",
    "FailureEvent",
    "RebuildOutcome",
    "FailureOrchestrator",
    "max_concurrent_rebuilds",
    "validate_failure_schedule",
]


def validate_failure_schedule(
    failures: Sequence["FailureEvent"], shards: int, v: int
) -> None:
    """Validate a failure schedule against a fleet's geometry — the
    single source of the schedule checks, shared by
    :class:`FailureOrchestrator` and the parallel scenario runner
    (:mod:`repro.service.parallel`) so both paths reject the same
    scenarios with the same errors.

    Raises:
        ValueError: on an out-of-range array/disk target, a negative
            failure time, or two failures on one (single-parity) array.
    """
    seen_arrays: set[int] = set()
    for ev in failures:
        if not 0 <= ev.array < shards:
            raise ValueError(
                f"failure targets array {ev.array} in a "
                f"{shards}-shard fleet"
            )
        if not 0 <= ev.disk < v:
            raise ValueError(
                f"failure targets disk {ev.disk} in a {v}-disk array"
            )
        if ev.time_ms < 0:
            raise ValueError(f"failure time {ev.time_ms} is negative")
        if ev.array in seen_arrays:
            raise ValueError(
                f"two failures target array {ev.array}; the "
                "single-parity arrays tolerate one each"
            )
        seen_arrays.add(ev.array)


def max_concurrent_rebuilds(outcomes: Sequence[RebuildOutcome]) -> int:
    """Upper bound on rebuild overlap actually achieved, from outcome
    intervals (sanity check for the admission knob).  Order-independent,
    so serial and group-merged outcome lists give the same answer."""
    intervals = [
        (o.started_at_ms, o.started_at_ms + o.report.duration_ms)
        for o in outcomes
    ]
    peak = 0
    for start, _ in intervals:
        overlap = sum(1 for s, e in intervals if s <= start < e)
        peak = max(peak, overlap)
    return peak


class AdmissionController:
    """FIFO gate on concurrent background data movement.

    ``submit(start)`` queues a job; at most ``slots`` started jobs are
    outstanding at any time, and each must call :meth:`release` exactly
    once when it finishes.  Rebuilds and volume migrations share one
    instance, so "at most K recovery/migration streams at once" is a
    single fleet-wide invariant rather than two independent caps.
    """

    def __init__(self, slots: int):
        if slots < 1:
            raise ValueError(f"admission slots must be >= 1, got {slots}")
        self.slots = slots
        self.active = 0
        self._queue: deque[Callable[[], None]] = deque()

    def submit(self, start: Callable[[], None]) -> None:
        """Queue a job; ``start`` fires as soon as a slot is free
        (possibly immediately, inline)."""
        self._queue.append(start)
        self._pump()

    def release(self) -> None:
        """Return a slot (called by a finished job) and start the next
        queued one, if any.

        Raises:
            RuntimeError: on a release without a matching start.
        """
        if self.active < 1:
            raise RuntimeError("release() without an active admission slot")
        self.active -= 1
        self._pump()

    def _pump(self) -> None:
        while self.active < self.slots and self._queue:
            self.active += 1
            self._queue.popleft()()

    @property
    def queued(self) -> int:
        """Jobs waiting for a slot."""
        return len(self._queue)


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled disk failure.

    Attributes:
        time_ms: simulated time of the failure.
        array: fleet shard index.
        disk: disk index within that array.
    """

    time_ms: float
    array: int
    disk: int


@dataclass(frozen=True)
class RebuildOutcome:
    """One array's completed recovery.

    Attributes:
        array: fleet shard index.
        failed_disk: the disk that was lost.
        failed_at_ms: when the failure fired.
        started_at_ms: when admission control released the rebuild.
        report: the sweep's :class:`RebuildReport` (duration, per-disk
            reads, bit-for-bit verdict when a data plane is attached).
    """

    array: int
    failed_disk: int
    failed_at_ms: float
    started_at_ms: float
    report: RebuildReport

    @property
    def admission_delay_ms(self) -> float:
        """Time the rebuild waited for a concurrency slot."""
        return self.started_at_ms - self.failed_at_ms


@dataclass
class FailureOrchestrator:
    """Drives a failure schedule against a fleet.

    Call :meth:`arm` before running the fleet's simulator; outcomes
    accumulate in :attr:`outcomes` as rebuilds finish.

    Attributes:
        fleet: the fleet under test.
        failures: the schedule (any order; at most one per array — the
            arrays are single-parity).
        admission: max recovery jobs running concurrently fleet-wide
            (ignored when ``admission_controller`` is given).
        parallelism: stripes rebuilt concurrently within one array.
        admission_controller: optional shared slot gate — pass the same
            instance to a :class:`repro.service.MigrationCoordinator`
            to make rebuilds and volume copies share one budget.
    """

    fleet: Fleet
    failures: tuple[FailureEvent, ...]
    admission: int = 2
    parallelism: int = 4
    admission_controller: AdmissionController | None = None

    outcomes: list[RebuildOutcome] = field(default_factory=list, init=False)
    _armed: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.admission_controller is None:
            self.admission_controller = AdmissionController(self.admission)
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        validate_failure_schedule(
            self.failures, self.fleet.shards, self.fleet.layout.v
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every failure on the fleet's shared clock.

        Raises:
            RuntimeError: if armed twice.
        """
        if self._armed:
            raise RuntimeError("orchestrator already armed")
        self._armed = True
        for ev in self.failures:
            self.fleet.sim.at(ev.time_ms, self._make_failure(ev))

    def _make_failure(self, ev: FailureEvent):
        def fire() -> None:
            self.fleet.controllers[ev.array].fail_disk(ev.disk)
            failed_at = self.fleet.sim.now
            self.admission_controller.submit(
                lambda: self._start_rebuild(ev, failed_at)
            )

        return fire

    def _start_rebuild(self, ev: FailureEvent, failed_at: float) -> None:
        ctrl = self.fleet.controllers[ev.array]
        started_at = self.fleet.sim.now

        def on_done(report: RebuildReport) -> None:
            self.outcomes.append(
                RebuildOutcome(
                    array=ev.array,
                    failed_disk=ev.disk,
                    failed_at_ms=failed_at,
                    started_at_ms=started_at,
                    report=report,
                )
            )
            self.admission_controller.release()

        RebuildProcess(
            ctrl, parallelism=self.parallelism, on_complete=on_done
        ).start()

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every scheduled failure has been rebuilt."""
        return len(self.outcomes) == len(self.failures)

    @property
    def all_verified(self) -> bool:
        """True when every rebuild completed and (with data planes
        attached) every recovered image matched bit for bit."""
        return self.done and all(
            o.report.data_verified is not False for o in self.outcomes
        )

    def max_concurrent_observed(self) -> int:
        """Upper bound on rebuild overlap actually achieved (see
        :func:`max_concurrent_rebuilds`)."""
        return max_concurrent_rebuilds(self.outcomes)
