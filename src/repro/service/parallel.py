"""Multi-core fleet execution: process-parallel shard groups with a
deterministic report merge.

A :class:`repro.service.Fleet` interleaves every shard on ONE Python
event loop, so an 8-shard scenario burns one core no matter how many
the host has.  But most shards never interact: an array's disks, its
foreground traffic, and its rebuild IOs are invisible to every other
array.  The only cross-shard couplings a scenario can introduce are

* the **failure schedule + shared admission budget** — rebuilds queue
  FIFO on one fleet-wide :class:`AdmissionController`, so when more
  rebuilds are scheduled than there are slots, every failed array's
  timing depends on every other failed array's completion;
* the **migration plan** — a reshape copies volumes between arrays,
  mutates the fleet-global routing table, and shares the admission
  budget with rebuilds, coupling the whole fleet.

:func:`partition_scenario` turns that observation into **independent
execution groups** (connected components of the coupling relation):

* no failures → every shard is its own group;
* ``len(failures) <= admission`` → every rebuild is admitted the
  moment its failure fires in the serial run too, so the budget can be
  **statically partitioned** — each failed array becomes its own group
  carrying one dedicated slot (the partition is recorded in the
  report);
* ``len(failures) > admission`` → admission queueing orders rebuilds
  globally, so all failed arrays collapse into one group that carries
  the whole budget (healthy arrays still split off);
* a reshape (``scenario.reshape_to``) without failures whose copy
  destinations fit the admission budget → the move graph's **connected
  components** (union-find over each move's ``(source, dest)`` edge)
  become migration groups: a component's arrays share disk queues,
  mirror hooks, and per-destination copy serialization, but two
  components touch disjoint arrays and — because every destination
  holds at most one admission slot and the destinations fit the budget
  fleet-wide — the shared admission gate never queues in the serial
  run either, so the copy budget partitions statically per component
  (each carries its destination count in slots).  Arrays no move
  touches stay singleton groups.  A reshape whose components collapse
  into one fleet-wide group, whose destinations exceed the budget, or
  that runs alongside failures still **falls back to the serial path**
  (recorded in the execution metadata).

:func:`run_fleet_scenario_parallel` then runs each group's sub-fleet
in a worker process (``multiprocessing`` via
``concurrent.futures.ProcessPoolExecutor``).  The parent generates the
fleet stream **once**, routes and compiles it per shard through the
real :class:`Fleet` (one vectorized pass), and ships each worker only
its group's compiled slices — workers never regenerate or re-route the
full stream.  Everything crossing the process boundary is spawn-safe:
workers receive the (picklable) :class:`FleetScenario`, their
:class:`ShardGroup`, and their :class:`repro.sim.CompiledTrace` slices,
rebuild layouts/mappers through their own local registry, and simulate
only their own arrays on a fresh clock.  Per-group results are merged
**deterministically** — per-shard vectors placed by global shard id,
latency samples concatenated in shard order (exactly the serial
report's float-summation order), rebuild outcomes re-sorted — so the
merged report is equal to the serial shared-clock report field for
field, and ``workers=N`` output is byte-identical to ``workers=1``
after :func:`canonical_payload` strips the wall-clock and
execution-metadata fields that legitimately differ run to run.

Why the decomposition is *exact* (not approximate): within one shard,
event order on the shared clock is decided by ``(time, seq)`` with a
monotonic sequence number, so removing another shard's events never
reorders this shard's; shards share no state except through the
couplings the partition keys on; and each group replicates the serial
runner's engine choice (the per-shard
:func:`repro.sim.compile.execute_compiled` fast engines only when the
whole scenario is failure-free — exactly when the serial fleet's clock
is idle at serve time) and its final drain-the-clock step.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.registry import get_layout
from ..obs.recorder import MetricsRecorder
from ..sim.compile import (
    CompiledTrace,
    StreamWindows,
    execute_compiled,
    generate_request_stream,
    schedule_compiled,
)
from ..sim.controller import ArrayController
from ..sim.events import Simulator
from ..sim.stats import (
    LatencyDigest,
    LatencyStats,
    merge_summaries,
    summarize,
)
from .conformance import check_fleet
from .fleet import (
    Fleet,
    FleetReport,
    _arm_shard_pump,
    _windows_carry,
    _WindowRouter,
)
from .migration import (
    MigrationCoordinator,
    VolumeMigrationOutcome,
    plan_migration,
)
from .orchestrator import (
    AdmissionController,
    FailureEvent,
    FailureOrchestrator,
    RebuildOutcome,
    max_concurrent_rebuilds,
    validate_failure_schedule,
)
from .scenario import FleetScenario, FleetScenarioReport, run_fleet_scenario

__all__ = [
    "ShardGroup",
    "GroupPartition",
    "partition_scenario",
    "GroupResult",
    "ParallelExecution",
    "ParallelScenarioRun",
    "run_fleet_scenario_parallel",
    "canonical_payload",
    "available_cpus",
]


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware where the
    platform exposes it) — what ``workers=None`` auto-sizes to and what
    the benchmark suite records next to its scaling numbers."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Group partitioning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardGroup:
    """One independent execution group.

    Attributes:
        arrays: global shard ids in this group (ascending).
        failures: the failure-schedule slice targeting those arrays
            (global ids preserved).
        admission_slots: this group's share of the fleet admission
            budget (0 for groups with no background jobs).
        migration_volumes: volume ids of the reshape moves this group
            executes (one connected component of the move graph; empty
            for non-migration groups).
    """

    arrays: tuple[int, ...]
    failures: tuple[FailureEvent, ...] = ()
    admission_slots: int = 0
    migration_volumes: tuple[int, ...] = ()


@dataclass(frozen=True)
class GroupPartition:
    """A scenario's full group decomposition.

    Attributes:
        groups: disjoint groups covering every shard (ascending by
            first array).
        serial_fallback: True when coupling collapsed everything into
            one group, so process parallelism cannot help and the
            runner uses the serial path.
        reason: human-readable explanation of the partition shape.
    """

    groups: tuple[ShardGroup, ...]
    serial_fallback: bool
    reason: str

    def admission_partition(self) -> dict[int, int]:
        """Recorded budget split: group index → admission slots (only
        groups holding slots appear)."""
        return {
            i: g.admission_slots
            for i, g in enumerate(self.groups)
            if g.admission_slots
        }


def _validate_scenario(scenario: FleetScenario) -> None:
    """The serial runner's parameter checks, run up front so the
    parallel path rejects a bad scenario with the same errors *before*
    spinning up workers (the schedule checks are the orchestrator's
    own, shared)."""
    if scenario.admission < 1:
        raise ValueError(
            f"admission slots must be >= 1, got {scenario.admission}"
        )
    validate_failure_schedule(
        scenario.failures, scenario.shards, scenario.v
    )


def partition_scenario(scenario: FleetScenario) -> GroupPartition:
    """Partition a scenario's shards into independent execution groups
    (see the module docstring for the coupling rules).

    Raises:
        ValueError: on inconsistent scenario parameters (same checks as
            the serial runner).
    """
    _validate_scenario(scenario)
    n = scenario.shards
    if scenario.autoscale is not None:
        # The control loop watches fleet-wide metrics and can fire a
        # reshape at any tick — every shard is coupled to every other
        # through the decisions, so the whole fleet is one group.
        return _serial_reshape(
            scenario,
            "the autoscale control loop watches fleet-wide metrics and "
            "can reshape at any tick — the whole fleet is one execution "
            "group",
        )
    if scenario.reshape_to is not None:
        return _partition_reshape(scenario)
    by_array: dict[int, FailureEvent] = {
        ev.array: ev for ev in scenario.failures
    }
    failed = sorted(by_array)
    groups: list[ShardGroup] = []
    if len(failed) <= scenario.admission:
        # Every rebuild is admitted immediately in the serial run, so
        # the budget splits statically: one dedicated slot per failed
        # array, zero cross-array timing dependence.
        reason = (
            f"{len(failed)} rebuild job(s) fit the admission budget "
            f"({scenario.admission}) — one slot per failed array, every "
            "shard its own group"
        )
        coupled: set[int] = set()
    else:
        reason = (
            f"{len(failed)} rebuild jobs exceed the admission budget "
            f"({scenario.admission}) — FIFO queueing couples all failed "
            "arrays into one group"
        )
        coupled = set(failed)
        groups.append(
            ShardGroup(
                arrays=tuple(failed),
                failures=tuple(by_array[a] for a in failed),
                admission_slots=scenario.admission,
            )
        )
    for a in range(n):
        if a in coupled:
            continue
        ev = by_array.get(a)
        groups.append(
            ShardGroup(
                arrays=(a,),
                failures=(ev,) if ev is not None else (),
                admission_slots=1 if ev is not None else 0,
            )
        )
    groups.sort(key=lambda g: g.arrays[0])
    fallback = len(groups) == 1
    if fallback and not coupled:
        # One group without coupling = a one-shard fleet; the
        # decoupling rationale above would read nonsensically here.
        reason = (
            "a single-shard fleet is one execution group — nothing to "
            "run in parallel"
        )
    return GroupPartition(
        groups=tuple(groups),
        serial_fallback=fallback,
        reason=reason,
    )


def _serial_reshape(scenario: FleetScenario, reason: str) -> GroupPartition:
    return GroupPartition(
        groups=(
            ShardGroup(
                arrays=tuple(range(scenario.shards)),
                failures=tuple(scenario.failures),
                admission_slots=scenario.admission,
                migration_volumes=tuple(),
            ),
        ),
        serial_fallback=True,
        reason=reason,
    )


def _partition_reshape(scenario: FleetScenario) -> GroupPartition:
    """Decompose a reshape scenario into migration components plus
    singleton healthy groups (see the module docstring for why the
    components are exact)."""
    if scenario.failures:
        return _serial_reshape(
            scenario,
            "a reshape alongside failures shares the admission budget "
            "with rebuilds — the whole fleet is one group",
        )
    # The move graph is a pure function of the shard map (same seed /
    # placement / volume count), so the partition can plan it on a
    # throwaway routing-only fleet.
    fleet = Fleet(
        scenario.shards,
        scenario.v,
        scenario.k,
        volumes=scenario.volumes,
        dataplane=False,
        seed=scenario.seed,
        placement=scenario.placement,
        write_policy=scenario.write_policy,
    )
    plan = plan_migration(fleet, scenario.reshape_to)
    if not plan.moves:
        # Nothing moves: the reshape is a no-op at serve time, but a
        # coordinator must still exist to report convergence — keep the
        # serial path for this degenerate case.
        return _serial_reshape(
            scenario, "the reshape moves no volumes — nothing to split"
        )
    dests = {m.dest for m in plan.data_moves}
    if len(dests) > scenario.admission:
        return _serial_reshape(
            scenario,
            f"{len(dests)} copy destinations exceed the admission "
            f"budget ({scenario.admission}) — FIFO queueing couples "
            "every component",
        )
    # Union-find over each move's (source, dest) edge — copies sharing
    # an array share disk queues and mirror hooks, so they must run in
    # one worker.
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for m in plan.moves:
        parent[find(m.source)] = find(m.dest)
    comps: dict[int, list] = {}
    for m in plan.moves:
        comps.setdefault(find(m.source), []).append(m)
    involved: set[int] = set()
    groups: list[ShardGroup] = []
    for moves in comps.values():
        arrays = sorted({a for m in moves for a in (m.source, m.dest)})
        involved.update(arrays)
        groups.append(
            ShardGroup(
                arrays=tuple(arrays),
                failures=(),
                admission_slots=len(
                    {m.dest for m in moves if len(m.lbas)}
                ),
                migration_volumes=tuple(
                    sorted(m.volume for m in moves)
                ),
            )
        )
    for a in range(scenario.shards):
        if a not in involved:
            groups.append(ShardGroup(arrays=(a,)))
    groups.sort(key=lambda g: g.arrays[0])
    if len(groups) == 1:
        return _serial_reshape(
            scenario,
            "the reshape's move graph couples every array into one "
            "component — nothing to run in parallel",
        )
    return GroupPartition(
        groups=tuple(groups),
        serial_fallback=False,
        reason=(
            f"the reshape's move graph splits into "
            f"{len(comps)} independent component(s) "
            f"({len(dests)} copy destination(s) fit the admission "
            f"budget {scenario.admission}, so the shared gate never "
            "queues and the copy budget partitions statically)"
        ),
    )


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------


@dataclass
class GroupResult:
    """One group's raw simulation outcome (everything the merge needs,
    nothing summarized early — summaries must be computed over the
    merged sample streams to match the serial report bit for bit).

    Attributes:
        group_index: position in the partition.
        arrays: global shard ids (ascending, mirrors the group spec).
        scheduled: per-shard routed request counts (group order).
        samples: per-shard ``{kind: [latency, ...]}`` in completion
            order (group order).  Every built-in executor now reduces
            latency worker-side into ``digests`` and leaves these
            empty — raw O(requests) sample lists never ride the result
            pickle — but the merge still accepts samples for
            compatibility.
        per_disk_ios: per-shard completed-IO vectors (group order).
        duration_ms: this group's makespan on its own clock.
        outcomes: completed rebuilds (global array ids, completion
            order).
        wall_s: worker wall-clock for the group (build + simulate).
        digests: per-shard ``{kind: LatencyDigest}`` accumulators —
            constant-size result IPC for windowed *and* materialized
            workers (summary-identical to the raw sample lists; see
            ``repro.sim.stats``).
        migrations: completed volume moves this group's coordinator
            executed (global ids, completion order).
        engines: per-shard engine labels (group order; ``None`` entries
            for shards that never ran an engine).  Always populated —
            the report surfaces engine choice even with metrics off.
        obs: the worker's :class:`repro.obs.MetricsRecorder` when the
            run is instrumented (the parent absorbs it), else ``None``.
    """

    group_index: int
    arrays: tuple[int, ...]
    scheduled: list[int]
    samples: list[dict[str, list[float]]]
    per_disk_ios: list[list[int]]
    duration_ms: float
    outcomes: list[RebuildOutcome]
    wall_s: float
    digests: list[dict[str, LatencyDigest]] | None = None
    migrations: list[VolumeMigrationOutcome] = field(default_factory=list)
    engines: list[str | None] = field(default_factory=list)
    obs: MetricsRecorder | None = None


@dataclass
class _LocalFleet:
    """Duck-typed stand-in for :class:`Fleet` inside a worker — just
    the surface :class:`FailureOrchestrator` drives (controllers on one
    clock, the served layout, the shard count)."""

    controllers: list[ArrayController]
    sim: Simulator
    layout: object

    @property
    def shards(self) -> int:
        return len(self.controllers)


def _digest_latency(ctrl: ArrayController) -> dict[str, LatencyDigest]:
    """Reduce a controller's raw latency samples into constant-size
    digests for the result pickle — O(requests) sample lists never
    cross the process boundary.  Bit-exactness: the digest's seeded
    ``np.add.accumulate`` fold reproduces ``sum(samples)`` exactly and
    its percentiles are pure functions of the quantization-bucket
    counts (see ``repro.sim.stats``), so ``summarize(digest)`` equals
    ``summarize(LatencyStats(samples))`` for the same completion-order
    samples."""
    out: dict[str, LatencyDigest] = {}
    for kind in sorted(ctrl.latency):
        samples = ctrl.latency[kind].samples
        if not samples:
            continue
        digest = LatencyDigest()
        digest.extend_array(np.asarray(samples, dtype=np.float64))
        out[kind] = digest
    return out


def _execute_group(
    scenario: FleetScenario,
    group: ShardGroup,
    compiled: tuple[CompiledTrace, ...],
    group_index: int,
    allow_batched: bool,
    metrics_interval_ms: float | None = None,
) -> GroupResult:
    """Run one group's sub-fleet to completion (worker side).

    Mirrors ``run_fleet_scenario`` + ``Fleet.serve_compiled`` step for
    step for the arrays it owns: same seeds, same pre-routed traces
    (compiled once in the parent — workers never regenerate the fleet
    stream), same engine choice, same final clock drain — so the
    merged report equals the serial one exactly.  With
    ``metrics_interval_ms`` the worker records into a local
    :class:`repro.obs.MetricsRecorder` keyed by *global* shard ids, so
    the parent's absorb is a pure placement merge.
    """
    t0 = time.perf_counter()
    sim = Simulator()
    layout = get_layout(scenario.v, scenario.k)
    controllers = [
        ArrayController(
            layout,
            sim=sim,
            dataplane=scenario.verify_data,
            seed=scenario.seed + gid,
            write_policy=scenario.write_policy,
        )
        for gid in group.arrays
    ]
    rec = (
        MetricsRecorder(metrics_interval_ms)
        if metrics_interval_ms is not None
        else None
    )
    for gid, ctrl in zip(group.arrays, controllers):
        ctrl.obs_shard = gid
        if rec is not None:
            ctrl.obs = rec
    if rec is not None:
        # Same point the serial serve records arrivals (stream start is
        # sim time 0 in workers, exactly as in the serial scenario run).
        for gid, trace in zip(group.arrays, compiled):
            if trace.n:
                rec.arrivals(gid, trace.times)

    orchestrator = None
    if group.failures:
        local_index = {gid: i for i, gid in enumerate(group.arrays)}
        shim = _LocalFleet(controllers=controllers, sim=sim, layout=layout)
        orchestrator = FailureOrchestrator(
            shim,  # type: ignore[arg-type] - duck-typed Fleet surface
            tuple(
                replace(ev, array=local_index[ev.array])
                for ev in group.failures
            ),
            admission=group.admission_slots,
            parallelism=scenario.rebuild_parallelism,
        )
        orchestrator.arm()

    # Engine choice replicates the serial gate exactly: the serial
    # fleet takes the per-shard batched engines
    # (``Fleet._execute_all``) only when its shared clock is idle at
    # serve time — i.e. when the scenario arms no failures anywhere —
    # so a healthy group must not take the fast engines just because
    # its own slice is quiet while another group rebuilds.
    if allow_batched and not sim.pending():
        base = sim.now
        end = base
        for ctrl, trace in zip(controllers, compiled):
            sim.now = base
            execute_compiled(ctrl, trace)
            end = max(end, sim.now)
        sim.now = end
    else:
        for ctrl, trace in zip(controllers, compiled):
            schedule_compiled(ctrl, trace)
        sim.run()
    duration = sim.now
    # Failures scheduled beyond the last completion (empty-stream edge)
    # — the serial runner's trailing drain, replicated per group.
    sim.run()

    outcomes = []
    if orchestrator is not None:
        outcomes = [
            replace(o, array=group.arrays[o.array])
            for o in orchestrator.outcomes
        ]
    if rec is not None:
        for gid, ctrl in zip(group.arrays, controllers):
            rec.set_stat(
                gid,
                "queue_delay_ms",
                sum(d.total_queue_delay for d in ctrl.disks),
            )
    return GroupResult(
        group_index=group_index,
        arrays=group.arrays,
        scheduled=[t.n for t in compiled],
        samples=[{} for _ in controllers],
        per_disk_ios=[ctrl.per_disk_completed() for ctrl in controllers],
        duration_ms=duration,
        outcomes=outcomes,
        wall_s=time.perf_counter() - t0,
        digests=[_digest_latency(ctrl) for ctrl in controllers],
        engines=[ctrl.last_engine for ctrl in controllers],
        obs=rec,
    )


class _FilteredWindows:
    """Re-iterable view of a windowed fleet stream restricted to the
    volumes a worker's arrays serve under the *static* routing table
    (moving volumes route to their source array until cutover, and the
    source is always in the migration component, so the static filter
    captures every request the worker must see)."""

    __slots__ = ("windows", "keep", "volume_units")

    def __init__(self, windows, keep: np.ndarray, volume_units: int):
        self.windows = windows
        self.keep = keep
        self.volume_units = volume_units

    def __iter__(self):
        keep = self.keep
        vu = self.volume_units
        for times, is_read, lbas in self.windows:
            if not len(times):
                continue
            mask = keep[lbas // vu]
            yield times[mask], is_read[mask], lbas[mask]


def _execute_group_windowed(
    scenario: FleetScenario,
    group: ShardGroup,
    route: np.ndarray,
    volume_units: int,
    shard_capacity: int,
    capacity: int,
    n_volumes: int,
    group_index: int,
    allow_batched: bool,
    metrics_interval_ms: float | None = None,
    *,
    windows=None,
) -> GroupResult:
    """Run one group's sub-fleet with a windowed stream (worker side).

    Instead of receiving pre-split compiled traces, the worker
    regenerates the fleet stream one window at a time
    (:class:`StreamWindows` is seed-deterministic) and routes each
    window to its own arrays through the shipped static table — peak
    memory stays one window per shard at any horizon, in the parent
    *and* in every worker.  The warm runtime passes ``windows``
    explicitly instead — any re-iterable ``(times, is_read, lbas)``
    window source, e.g. :class:`repro.sim.compile.ArrayWindows` over
    shared-memory views of a submitted stream — and the worker serves
    it through the identical pumps.  Engine choice mirrors the serial
    :meth:`Fleet.serve_windows` gate exactly: the carry engines only
    when the whole scenario arms nothing on any clock, the per-shard
    chained heap pumps otherwise (the serial window router's per-shard
    event order, minus other groups' events, which never reorder
    ours).  Latency reduces into per-shard digests — the same
    accumulators the serial windowed serve feeds ``_report``.
    """
    t0 = time.perf_counter()
    sim = Simulator()
    layout = get_layout(scenario.v, scenario.k)
    controllers = [
        ArrayController(
            layout,
            sim=sim,
            dataplane=scenario.verify_data,
            seed=scenario.seed + gid,
            write_policy=scenario.write_policy,
        )
        for gid in group.arrays
    ]
    rec = (
        MetricsRecorder(metrics_interval_ms)
        if metrics_interval_ms is not None
        else None
    )
    for gid, ctrl in zip(group.arrays, controllers):
        ctrl.obs_shard = gid
        if rec is not None:
            ctrl.obs = rec
    orchestrator = None
    if group.failures:
        local_index = {gid: i for i, gid in enumerate(group.arrays)}
        shim = _LocalFleet(controllers=controllers, sim=sim, layout=layout)
        orchestrator = FailureOrchestrator(
            shim,  # type: ignore[arg-type] - duck-typed Fleet surface
            tuple(
                replace(ev, array=local_index[ev.array])
                for ev in group.failures
            ),
            admission=group.admission_slots,
            parallelism=scenario.rebuild_parallelism,
        )
        orchestrator.arm()

    if windows is None:
        windows = StreamWindows(
            scenario.workload(),
            scenario.duration_ms,
            capacity,
            window_size=scenario.window_size,
        )
    digests: list[dict[str, LatencyDigest]] = [{} for _ in controllers]
    scheduled = [0] * len(controllers)
    carried = False
    if allow_batched and not sim.pending():
        carried = _windows_carry(
            sim,
            controllers,
            group.arrays,
            route=route,
            volume_units=volume_units,
            shard_capacity=shard_capacity,
            n_volumes=n_volumes,
            capacity=capacity,
            write_policy=scenario.write_policy,
            dataplane=scenario.verify_data,
            windows=windows,
            digests=digests,
            scheduled=scheduled,
            read_only_hint=scenario.read_fraction >= 1.0,
        )
    if not carried:
        for d in digests:
            d.clear()
        # Arm every shard's pump before the one shared run so failure
        # timers interleave with all of them, exactly as the serial
        # window router's heap does.
        pumps = [
            _arm_shard_pump(
                ctrl,
                gid,
                windows,
                digests[i],
                route,
                volume_units,
                shard_capacity,
            )
            for i, (gid, ctrl) in enumerate(zip(group.arrays, controllers))
        ]
        sim.run()
        for i, (count, drain) in enumerate(pumps):
            drain()
            scheduled[i] = count[0]
    duration = sim.now
    sim.run()

    outcomes = []
    if orchestrator is not None:
        outcomes = [
            replace(o, array=group.arrays[o.array])
            for o in orchestrator.outcomes
        ]
    if rec is not None:
        for gid, ctrl in zip(group.arrays, controllers):
            rec.set_stat(
                gid,
                "queue_delay_ms",
                sum(d.total_queue_delay for d in ctrl.disks),
            )
    return GroupResult(
        group_index=group_index,
        arrays=group.arrays,
        scheduled=scheduled,
        samples=[{} for _ in controllers],
        per_disk_ios=[ctrl.per_disk_completed() for ctrl in controllers],
        duration_ms=duration,
        outcomes=outcomes,
        wall_s=time.perf_counter() - t0,
        digests=digests,
        engines=[ctrl.last_engine for ctrl in controllers],
        obs=rec,
    )


def _execute_migration_group(
    scenario: FleetScenario,
    group: ShardGroup,
    group_index: int,
    metrics_interval_ms: float | None = None,
) -> GroupResult:
    """Run one migration component to completion (worker side).

    The worker builds a full-size fleet (controller construction is
    deterministic per global shard id, and arrays outside the
    component stay idle — zero events), attaches a coordinator
    filtered to the component's moves with its static share of the
    copy budget, and serves only the traffic the static routing table
    sends to the component's arrays.  Because the component is closed
    under the move graph, every diverted request, mirror write, and
    copy IO lands inside it — the same events the serial run produces
    on these arrays, in the same per-shard order.
    """
    t0 = time.perf_counter()
    fleet = Fleet(
        scenario.shards,
        scenario.v,
        scenario.k,
        volumes=scenario.volumes,
        dataplane=scenario.verify_data,
        seed=scenario.seed,
        placement=scenario.placement,
        write_policy=scenario.write_policy,
    )
    coordinator = MigrationCoordinator(
        fleet,
        scenario.reshape_to,
        at_ms=scenario.reshape_time(),
        admission_controller=AdmissionController(
            max(1, group.admission_slots)
        ),
        copy_parallelism=scenario.copy_parallelism,
        volumes=group.migration_volumes,
    )
    rec = (
        MetricsRecorder(metrics_interval_ms)
        if metrics_interval_ms is not None
        else None
    )
    if rec is not None:
        # The worker's fleet is full-size, so shard ids are already
        # global; only the group's arrays see traffic (the keep filter
        # below), so the recorder state stays disjoint across workers.
        fleet.attach_recorder(rec)
    coordinator.arm()
    static_route = fleet.volume_route()
    keep = np.isin(static_route, np.array(group.arrays, dtype=np.int64))

    if scenario.window_size is not None:
        windows = _FilteredWindows(
            StreamWindows(
                scenario.workload(),
                scenario.duration_ms,
                fleet.capacity,
                window_size=scenario.window_size,
            ),
            keep,
            fleet.volume_units,
        )
        digests: list[dict[str, LatencyDigest]] = [
            {} for _ in fleet.controllers
        ]
        scheduled = [0] * len(fleet.controllers)
        router = _WindowRouter(fleet, iter(windows), digests, scheduled)
        router.start()
        fleet.sim.run()
        router.drain()
        samples = None
    else:
        times, is_read, lbas = generate_request_stream(
            scenario.workload(), scenario.duration_ms, fleet.capacity
        )
        mask = keep[lbas // fleet.volume_units]
        compiled, _ = fleet.route_stream(
            times[mask], is_read[mask], lbas[mask]
        )
        if rec is not None:
            for s, trace in enumerate(compiled):
                if trace.n:
                    rec.arrivals(s, trace.times)
        for ctrl, trace in zip(fleet.controllers, compiled):
            schedule_compiled(ctrl, trace)
        fleet.sim.run()
        scheduled = [t.n for t in compiled]
        digests = [_digest_latency(ctrl) for ctrl in fleet.controllers]
        samples = None
    duration = fleet.sim.now
    fleet.sim.run()
    while len(scheduled) < len(fleet.controllers):
        scheduled.append(0)
    # The coordinator's dispatches count where they actually ran
    # (fresh coordinator: the base is zero).
    for s, total in enumerate(coordinator.dispatched_per_shard):
        scheduled[s] += total

    local = list(group.arrays)
    if rec is not None:
        for a in local:
            rec.set_stat(
                a,
                "queue_delay_ms",
                sum(
                    d.total_queue_delay
                    for d in fleet.controllers[a].disks
                ),
            )
    return GroupResult(
        group_index=group_index,
        arrays=group.arrays,
        scheduled=[scheduled[a] for a in local],
        samples=(
            [samples[a] for a in local]
            if samples is not None
            else [{} for _ in local]
        ),
        per_disk_ios=[
            fleet.controllers[a].per_disk_completed() for a in local
        ],
        duration_ms=duration,
        outcomes=[],
        wall_s=time.perf_counter() - t0,
        digests=(
            [digests[a] for a in local] if digests is not None else None
        ),
        migrations=list(coordinator.outcomes),
        engines=[fleet.controllers[a].last_engine for a in local],
        obs=rec,
    )


def _execute_group_task(
    task: tuple,
) -> GroupResult:
    """Pool entry point (top-level so it pickles under spawn): the
    task's first element names the worker mode."""
    kind = task[0]
    if kind == "compiled":
        return _execute_group(*task[1:])
    if kind == "windowed":
        return _execute_group_windowed(*task[1:])
    return _execute_migration_group(*task[1:])


# ----------------------------------------------------------------------
# Merge + runner
# ----------------------------------------------------------------------


def _merge_results(
    scenario: FleetScenario,
    results: list[GroupResult],
) -> tuple[
    FleetReport,
    tuple[RebuildOutcome, ...],
    tuple[VolumeMigrationOutcome, ...],
]:
    """Fold per-group raw results into one fleet report.

    Placement is by global shard id; merged latency samples concatenate
    in shard order — the exact order the serial report sums them in, so
    float reductions (means) agree bit for bit.  A reshape scenario's
    report covers ``reshape_to`` shards (reshape-born shards a group
    didn't touch stay zero rows, matching the serial pads); migration
    outcomes merge sorted by volume id — the canonical order the
    report serializes them in.
    """
    n = max(scenario.shards, scenario.reshape_to or 0)
    scheduled = [0] * n
    accs: list[dict] = [{} for _ in range(n)]
    per_disk: list[list[int]] = [[0] * scenario.v for _ in range(n)]
    engines: list[str | None] = [None] * n
    duration = 0.0
    outcomes: list[RebuildOutcome] = []
    migrations: list[VolumeMigrationOutcome] = []
    for res in results:
        duration = max(duration, res.duration_ms)
        outcomes.extend(res.outcomes)
        migrations.extend(res.migrations)
        for i, gid in enumerate(res.arrays):
            scheduled[gid] = res.scheduled[i]
            per_disk[gid] = res.per_disk_ios[i]
            if i < len(res.engines):
                engines[gid] = res.engines[i]
            if res.digests is not None:
                accs[gid] = {
                    kind: res.digests[i][kind]
                    for kind in res.digests[i]
                    if res.digests[i][kind].count
                }
            else:
                accs[gid] = {
                    kind: LatencyStats(samples=res.samples[i][kind])
                    for kind in res.samples[i]
                    if res.samples[i][kind]
                }

    # Per-shard accumulators feed the same shard-order merge_summaries
    # fold the serial Fleet._report performs, so merged means and
    # histograms agree bit for bit.
    per_shard_latency = [
        {kind: summarize(shard[kind]) for kind in sorted(shard)}
        for shard in accs
    ]
    kinds = sorted({kind for shard in accs for kind in shard})
    completed = int(
        sum(acc.count for shard in accs for acc in shard.values())
    )
    report = FleetReport(
        shards=n,
        scheduled=int(sum(scheduled)),
        completed=completed,
        duration_ms=duration,
        throughput_rps=(
            completed / (duration / 1000.0) if duration > 0 else 0.0
        ),
        latency={
            kind: merge_summaries(
                [shard[kind] for shard in accs if kind in shard]
            )
            for kind in kinds
        },
        per_shard_scheduled=list(scheduled),
        per_shard_latency=per_shard_latency,
        per_disk_ios=per_disk,
    )
    # Same non-field attribute Fleet._report sets on the serial path —
    # the payload's engine keys must agree serial vs merged bit for bit.
    object.__setattr__(report, "engines", engines)
    return (
        report,
        tuple(sorted(outcomes, key=lambda o: o.array)),
        tuple(sorted(migrations, key=lambda m: m.volume)),
    )


@dataclass(frozen=True)
class ParallelExecution:
    """How a parallel run actually executed (metadata only — everything
    here may differ between two equal-report runs, which is why
    :func:`canonical_payload` drops it before equality checks).

    Attributes:
        requested_workers: the ``workers`` argument (``None`` = auto).
        workers: processes actually used (1 = in-process).
        cpu_count: :func:`available_cpus` at run time.
        mp_context: multiprocessing start method (``None`` in-process).
        serial_fallback: True when the run used the serial path.
        fallback_reason: partition reason when it did.
        groups: per-group execution rows (arrays, slots, failure count,
            group makespan, worker wall time).
        admission_partition: recorded budget split (group index →
            slots).
    """

    requested_workers: int | None
    workers: int
    cpu_count: int
    mp_context: str | None
    serial_fallback: bool
    fallback_reason: str | None
    groups: tuple[dict, ...]
    admission_partition: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready execution metadata."""
        return {
            "requested_workers": self.requested_workers,
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "mp_context": self.mp_context,
            "serial_fallback": self.serial_fallback,
            "fallback_reason": self.fallback_reason,
            "groups": [dict(g) for g in self.groups],
            "admission_partition": {
                str(k): v for k, v in sorted(self.admission_partition.items())
            },
        }


@dataclass(frozen=True)
class ParallelScenarioRun:
    """A parallel run's outcome: the scenario report (identical in
    content to the serial runner's) plus execution metadata."""

    report: FleetScenarioReport
    execution: ParallelExecution

    def to_dict(self) -> dict:
        """The serial report payload plus a ``parallel`` section.

        ``serial_fallback``/``fallback_reason`` are ALSO surfaced at the
        payload's top level: a ``--workers N`` run that silently
        downgraded to serial used to be discoverable only by digging
        into the ``parallel`` metadata, so dashboards (and the CLI
        smoke gate) never noticed.  Top-level placement makes the
        downgrade part of the report summary itself.
        """
        payload = self.report.to_dict()
        payload["serial_fallback"] = self.execution.serial_fallback
        payload["fallback_reason"] = self.execution.fallback_reason
        payload["parallel"] = self.execution.to_dict()
        return payload


_VOLATILE_KEYS = frozenset(
    {"wall_s", "parallel", "serial_fallback", "fallback_reason", "runtime"}
)


def canonical_payload(payload: dict) -> dict:
    """A report payload with run-to-run-volatile fields removed: wall
    clock times (``wall_s`` at any depth), the ``parallel``
    execution-metadata section, and the warm runtime's ``runtime``
    stats section (cache hits and pool reuse are properties of the
    serving session, not of the report).  Two runs of the same
    scenario — serial, ``workers=1``, ``workers=N``, cold or warm —
    must produce *identical* canonical payloads; this is the
    merge-equality gate the tests and the benchmark suite check with
    ``json.dumps(..., sort_keys=True)`` string comparison.
    """

    def strip(node):
        if isinstance(node, dict):
            return {
                k: strip(v)
                for k, v in node.items()
                if k not in _VOLATILE_KEYS
            }
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return strip(payload)


def run_fleet_scenario_parallel(
    scenario: FleetScenario,
    workers: int | None = None,
    *,
    mp_context: str = "auto",
    recorder=None,
) -> ParallelScenarioRun:
    """Run a scenario across worker processes, one per shard group.

    Args:
        scenario: the scenario to run (must be failure/migration
            consistent, exactly as :func:`run_fleet_scenario` requires).
        recorder: optional :class:`repro.obs.MetricsRecorder`.  Workers
            record into local recorders on their own simulated clocks
            (keyed by global shard id) and the parent absorbs them —
            per-shard state is disjoint across groups, so the merged
            recorder renders snapshot rows byte-identical to a serial
            instrumented run's.
        workers: process budget.  ``None`` auto-sizes to
            ``min(groups, available_cpus())``; ``1`` runs the grouped
            pipeline in-process (useful for testing the merge without
            process overhead) — the CLI maps ``--workers 1`` to the
            plain serial runner instead.
        mp_context: multiprocessing start method — ``"auto"`` picks
            ``fork`` where available (cheap) and falls back to
            ``spawn``; pass ``"spawn"``/``"forkserver"`` explicitly to
            exercise those paths (everything shipped to workers is
            spawn-safe).

    Returns:
        A :class:`ParallelScenarioRun` whose report content matches the
        serial runner's for the same scenario.

    Raises:
        ValueError: on inconsistent scenario parameters or a
            non-positive ``workers``.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    t0 = time.perf_counter()
    cpus = available_cpus()
    partition = partition_scenario(scenario)

    if partition.serial_fallback:
        report = run_fleet_scenario(scenario, recorder=recorder)
        group = partition.groups[0]
        execution = ParallelExecution(
            requested_workers=workers,
            workers=1,
            cpu_count=cpus,
            mp_context=None,
            serial_fallback=True,
            fallback_reason=partition.reason,
            groups=(
                {
                    "arrays": list(group.arrays),
                    "admission_slots": group.admission_slots,
                    "failures": len(group.failures),
                    "migration_volumes": list(group.migration_volumes),
                    "duration_ms": report.fleet.duration_ms,
                    "wall_s": report.wall_s,
                },
            ),
            admission_partition=partition.admission_partition(),
        )
        return ParallelScenarioRun(report=report, execution=execution)

    # Parent-side work that must not be duplicated per worker: the
    # stream is generated, routed, and compiled ONCE through the real
    # fleet (one vectorized pass) for materialized tasks — windowed
    # tasks instead ship the routing table and regenerate windows
    # worker-side, so neither the parent nor any worker ever holds the
    # full stream.  The conformance gate and the routing fingerprint
    # also run here.  Data planes stay off — the parent never
    # simulates.
    fleet = Fleet(
        scenario.shards,
        scenario.v,
        scenario.k,
        volumes=scenario.volumes,
        dataplane=False,
        seed=scenario.seed,
        placement=scenario.placement,
        write_policy=scenario.write_policy,
    )
    conformance = (
        check_fleet(fleet) if scenario.check_conformance else None
    )
    planned_moves = 0
    fingerprint = fleet.shard_map.fingerprint()
    if scenario.reshape_to is not None:
        # The serial runner reports the post-reshape table (scenarios
        # always run their migration to convergence) — compute it from
        # the plan without simulating.
        plan = plan_migration(fleet, scenario.reshape_to)
        planned_moves = len(plan.moves)
        fingerprint = plan.target_map.fingerprint()
    # Mirrors the serial engine gate: the serial fleet only takes the
    # batched/carry engines when its shared clock is idle at serve
    # time, i.e. when nothing (failure or reshape) is armed anywhere.
    allow_batched = (
        not scenario.failures and scenario.reshape_to is None
    )
    windowed = scenario.window_size is not None
    plain_groups = [
        (i, g)
        for i, g in enumerate(partition.groups)
        if not g.migration_volumes
    ]
    compiled = None
    if plain_groups and not windowed:
        times, is_read, lbas = generate_request_stream(
            scenario.workload(), scenario.duration_ms, fleet.capacity
        )
        compiled, _ = fleet.route_stream(times, is_read, lbas)
    route = fleet.volume_route()
    interval = recorder.interval_ms if recorder is not None else None
    tasks: list[tuple] = []
    for i, group in enumerate(partition.groups):
        if group.migration_volumes:
            tasks.append(("migration", scenario, group, i, interval))
        elif windowed:
            tasks.append(
                (
                    "windowed",
                    scenario,
                    group,
                    route,
                    fleet.volume_units,
                    fleet.shard_capacity,
                    fleet.capacity,
                    fleet.shard_map.volumes,
                    i,
                    allow_batched,
                    interval,
                )
            )
        else:
            tasks.append(
                (
                    "compiled",
                    scenario,
                    group,
                    tuple(compiled[a] for a in group.arrays),
                    i,
                    allow_batched,
                    interval,
                )
            )

    n_workers = workers if workers is not None else min(len(tasks), cpus)
    n_workers = min(n_workers, len(tasks))
    context_name: str | None = None
    if n_workers <= 1:
        results = [_execute_group_task(t) for t in tasks]
    else:
        import multiprocessing

        if mp_context == "auto":
            methods = multiprocessing.get_all_start_methods()
            context_name = "fork" if "fork" in methods else "spawn"
        else:
            context_name = mp_context
        ctx = multiprocessing.get_context(context_name)
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=ctx
        ) as pool:
            results = list(pool.map(_execute_group_task, tasks))
    results.sort(key=lambda r: r.group_index)

    if recorder is not None:
        for res in results:
            if res.obs is not None:
                recorder.absorb(res.obs)

    fleet_report, outcomes, migrations = _merge_results(scenario, results)
    report = FleetScenarioReport(
        scenario=scenario,
        conformance=conformance,
        fleet=fleet_report,
        rebuilds=outcomes,
        migrations=migrations,
        planned_moves=planned_moves,
        routing_fingerprint=fingerprint,
        wall_s=time.perf_counter() - t0,
        max_concurrent_rebuilds=max_concurrent_rebuilds(outcomes),
    )
    execution = ParallelExecution(
        requested_workers=workers,
        workers=n_workers,
        cpu_count=cpus,
        mp_context=context_name,
        serial_fallback=False,
        fallback_reason=None,
        groups=tuple(
            {
                "arrays": list(g.arrays),
                "admission_slots": g.admission_slots,
                "failures": len(g.failures),
                "migration_volumes": list(g.migration_volumes),
                "duration_ms": r.duration_ms,
                "wall_s": r.wall_s,
            }
            for g, r in zip(partition.groups, results)
        ),
        admission_partition=partition.admission_partition(),
    )
    return ParallelScenarioRun(report=report, execution=execution)
