"""Long-lived serving front-end: request streams over a local socket.

A :class:`ServiceFrontend` owns one :class:`FleetScenario` (optionally
with an :class:`~repro.service.autoscale.AutoscalePolicy`) and listens
on a local TCP socket for line-delimited JSON requests.  Clients submit
request-stream chunks and ask the front-end to serve them; each serve
runs through a :class:`~repro.service.runtime.WarmRuntime` in a worker
thread — the persistent worker pool, shared-memory trace transport,
and compiled-artifact cache amortize the cold batch path across
repeated serves, and a submitted stream still produces a report
**canonically identical** to the equivalent batch scenario — the
front-end adds transport and warmth, never semantics.

The front-end owns the runtime's lifecycle: :meth:`ServiceFrontend.
close` drains the pool and unlinks every shared-memory segment, and
:func:`run_frontend` guarantees that teardown on the ``shutdown`` op,
SIGTERM, and KeyboardInterrupt — no ``/dev/shm`` orphans, no
``resource_tracker`` warnings.

Protocol — one JSON object per line, one JSON reply per line:

========  ====================================================
op        behaviour
========  ====================================================
ping      liveness + scenario shape + buffered request count
submit    append a stream chunk: ``{"op": "submit", "times":
          [...], "is_read": [...], "lbas": [...]}``; arrival
          times must be non-decreasing across chunks
reset     drop the buffered stream
serve     run the scenario over the buffered stream (clears
          the buffer); reply carries the full report payload
run       run the scenario's own synthetic workload
shutdown  close the listener after replying
========  ====================================================

Every reply carries ``"ok"``; errors reply ``{"ok": false, "error":
...}`` without killing the connection.  The simulation itself is
blocking CPU work, so serves run under an :class:`asyncio.Lock` in the
default executor — one scenario at a time, results in request order.

``python -m repro serve --listen HOST:PORT`` wraps this in a process
(:func:`run_frontend`).
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal

import numpy as np

from .runtime import WarmRuntime
from .scenario import FleetScenario

__all__ = ["ServiceFrontend", "run_frontend"]


class ServiceFrontend:
    """One scenario behind a local line-delimited-JSON TCP listener.

    Args:
        scenario: the :class:`FleetScenario` every serve runs (its
            ``autoscale`` policy, placement, verification, and window
            settings all apply).
        host / port: bind address (port 0 = ephemeral; read the bound
            address from :attr:`address` after :meth:`start`).
        workers: worker processes for each serve (1 = in-process; the
            warm runtime's artifact cache still applies).
        mp_context: multiprocessing start method for the worker pool
            (``"auto"`` / ``"fork"`` / ``"spawn"`` / ``"forkserver"``).
    """

    def __init__(
        self,
        scenario: FleetScenario,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        mp_context: str = "auto",
    ) -> None:
        self.scenario = scenario
        self.host = host
        self.port = port
        self.runs = 0
        self.runtime = WarmRuntime(
            scenario, workers=workers, mp_context=mp_context
        )
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffered = 0
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._lock = asyncio.Lock()
        self._closed = asyncio.Event()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting connections, release the socket, and tear
        down the warm runtime — the pool drains gracefully and every
        shared-memory segment is unlinked (idempotent; the ``shutdown``
        op, SIGTERM, and ``finally`` paths all land here)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle connection handlers sit in readline() forever; cancel
        # and await them so loop shutdown never sees a pending task
        # (which asyncio.streams would log as a callback traceback).
        # The shutdown op lands here from inside a handler — that task
        # must not cancel or await itself.
        current = asyncio.current_task()
        pending = [t for t in self._conn_tasks if t is not current]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self.runtime.close()
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`close`) lands."""
        await self._closed.wait()

    # -- connection handling ----------------------------------------------

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                    reply = await self._dispatch(request)
                except (ValueError, KeyError, TypeError) as exc:
                    reply = {"ok": False, "error": str(exc)}
                writer.write(
                    json.dumps(reply, sort_keys=True).encode() + b"\n"
                )
                await writer.drain()
                if reply.get("op") == "shutdown" and reply.get("ok"):
                    await self.close()
                    break
        except asyncio.CancelledError:
            pass  # front-end teardown cancelled this connection
        finally:
            self._conn_tasks.discard(task)
            writer.close()

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            sc = self.scenario
            return {
                "ok": True,
                "op": "ping",
                "scenario": {
                    "shards": sc.shards,
                    "v": sc.v,
                    "k": sc.k,
                    "duration_ms": sc.duration_ms,
                    "autoscale": sc.autoscale is not None,
                },
                "buffered": self._buffered,
                "runs": self.runs,
                "workers": self.runtime.workers,
                "runtime": self.runtime.stats.to_dict(),
            }
        if op == "submit":
            return self._submit(request)
        if op == "reset":
            self._chunks.clear()
            self._buffered = 0
            return {"ok": True, "op": "reset", "buffered": 0}
        if op == "serve":
            if not self._buffered:
                raise ValueError("serve with no buffered requests")
            times = np.concatenate([c[0] for c in self._chunks])
            is_read = np.concatenate([c[1] for c in self._chunks])
            lbas = np.concatenate([c[2] for c in self._chunks])
            self._chunks.clear()
            self._buffered = 0
            payload = await self._run(stream=(times, is_read, lbas))
            return {"ok": True, "op": "serve", "report": payload}
        if op == "run":
            payload = await self._run(stream=None)
            return {"ok": True, "op": "run", "report": payload}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        raise ValueError(f"unknown op {op!r}")

    def _submit(self, request: dict) -> dict:
        times = np.asarray(request["times"], dtype=np.float64)
        is_read = np.asarray(request["is_read"], dtype=bool)
        lbas = np.asarray(request["lbas"], dtype=np.int64)
        if not (times.size == is_read.size == lbas.size):
            raise ValueError(
                "times/is_read/lbas must be the same length, got "
                f"{times.size}/{is_read.size}/{lbas.size}"
            )
        if times.size:
            if (times[1:] < times[:-1]).any():
                raise ValueError("arrival times must be non-decreasing")
            if self._chunks and times[0] < self._chunks[-1][0][-1]:
                raise ValueError(
                    "chunk starts before the previously submitted chunk "
                    "ends — submit chunks in arrival order"
                )
            self._chunks.append((times, is_read, lbas))
            self._buffered += times.size
        return {"ok": True, "op": "submit", "buffered": self._buffered}

    async def _run(self, stream) -> dict:
        async with self._lock:
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                None,
                functools.partial(self.runtime.run, stream=stream),
            )
        self.runs += 1
        return payload


def run_frontend(
    scenario: FleetScenario,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    workers: int = 1,
    mp_context: str = "auto",
) -> int:
    """Run a front-end until a client sends ``shutdown`` (the
    ``serve --listen`` entry point).

    ``ready`` (optional) is called with the bound ``(host, port)`` once
    the listener is up.  Returns a process exit code.

    Teardown is guaranteed on every exit path — the ``shutdown`` op,
    SIGTERM/SIGINT (handlers close the front-end so the pool drains
    and segments unlink before the loop exits), and any exception —
    leaving no orphaned ``/dev/shm`` segments and no
    ``resource_tracker`` warnings.
    """

    async def main() -> int:
        frontend = ServiceFrontend(
            scenario,
            host=host,
            port=port,
            workers=workers,
            mp_context=mp_context,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: loop.create_task(frontend.close())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platforms without signal support in the loop
        try:
            await frontend.start()
            if ready is not None:
                ready(frontend.address)
            await frontend.wait_closed()
            return 0
        finally:
            await frontend.close()

    return asyncio.run(main())
