"""Fleet-level conformance: Conditions 1-4 for every serving scenario.

The conformance subsystem (:mod:`repro.verify`) checks single layouts;
this module is the thin hook that gives every *serving* scenario the
same guarantee for free.  A fleet serves shards over registry-cached
layouts, so the check set is the distinct layout objects in use —
usually one — each run through :func:`repro.verify.check_layout`
before traffic starts.  Scenario reports embed the verdict, so a
scenario that would serve from a non-conforming layout fails loudly
rather than producing numbers nobody should trust.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..verify import ConformanceReport, check_layout
from .fleet import Fleet

__all__ = ["FleetConformance", "check_fleet"]


@dataclass(frozen=True)
class FleetConformance:
    """Conditions 1-4 verdict for every distinct layout a fleet serves.

    Attributes:
        reports: one :class:`ConformanceReport` per distinct layout.
        shards_checked: how many shards those layouts cover.
    """

    reports: tuple[ConformanceReport, ...]
    shards_checked: int

    @property
    def passed(self) -> bool:
        """True when every served layout conforms."""
        return all(r.passed for r in self.reports)

    def summary(self) -> str:
        """Multi-line verdict for CLI output."""
        head = (
            f"fleet conformance: {self.shards_checked} shards, "
            f"{len(self.reports)} distinct layout(s) -> "
            f"{'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join([head] + [r.summary() for r in self.reports])

    def to_dict(self) -> dict:
        """JSON-ready verdict."""
        return {
            "passed": self.passed,
            "shards_checked": self.shards_checked,
            "layouts": [
                {
                    "name": r.layout_name,
                    "v": r.v,
                    "size": r.size,
                    "b": r.b,
                    "passed": r.passed,
                    "violations": [c.name for c in r.violations()],
                }
                for r in self.reports
            ],
        }


def check_fleet(fleet: Fleet, *, mapper_samples: int = 256) -> FleetConformance:
    """Check every distinct layout the fleet serves against
    Conditions 1-4.

    Distinctness is by identity — shards built through the registry
    share one layout object, so the common case is one check no matter
    the shard count.
    """
    seen: dict[int, object] = {}
    for ctrl in fleet.controllers:
        seen.setdefault(id(ctrl.layout), ctrl.layout)
    reports = tuple(
        check_layout(layout, mapper_samples=mapper_samples)
        for layout in seen.values()
    )
    return FleetConformance(reports=reports, shards_checked=fleet.shards)
