"""Live fleet reconfiguration: grow/shrink a serving fleet by
migrating logical volumes between arrays under load.

The declustered layouts of the paper exist so an array keeps serving
through *change*; this module extends that story from one array to the
fleet: ``python -m repro serve --grow 4:8`` reshapes a 4-array fleet to
8 arrays while traffic runs, with **zero lost requests** and every
moved byte **verified bit for bit**.

A reshape is planned from the sharding seam
(:meth:`repro.service.ShardMap.reshaped` names the target placement,
:meth:`~repro.service.ShardMap.moved_volumes` the work list) and then
executed one volume at a time on the fleet's shared event clock by a
:class:`MigrationCoordinator`.  Each volume walks a three-phase state
machine:

1. **copy** — the volume's units are swept from the source array to the
   destination with real, admission-controlled disk IOs: a read on the
   source disk, then a read-modify-write on the destination (data +
   parity, so the destination stays parity-consistent throughout).
   Contents transfer through the data planes at the moment the source
   read completes, and from that moment the unit is *mirrored*: any
   foreground write landing on an already-copied cell — on the source
   (this volume's own traffic, or a co-resident volume aliasing the
   same physical cells) or on the destination (an aliased volume
   already living there) — propagates to every replica of that cell
   across all in-flight copies, so neither side can go stale — the
   classic pre-copy live-migration protocol, extended to the aliased
   address space.
2. **drain** — new requests for the volume are parked; the coordinator
   waits for the volume's in-flight requests on the source to complete
   (it dispatched every one of them itself, so the in-flight count is
   exact, not a heuristic).
3. **cutover** — with source and destination quiesced, the moved cells
   are compared bit for bit through the data planes, the live routing
   table flips the volume to its destination, and the parked requests
   are released there (their latency is measured from the *original*
   arrival, so the freeze shows up as queueing delay, not as loss).

While a migration is active the fleet diverts moving-volume traffic
out of the batched per-shard compile and hands it to the coordinator,
which dispatches each request at its arrival time to the volume's
*current* owner — the seam that lets routing change mid-stream.
Copies to the same destination are serialized (two volumes ingesting
into one array could alias the same physical cells), and every copy
competes for the same fleet-wide
:class:`repro.service.AdmissionController` slots as rebuilds, so
"at most K background recovery/migration streams" holds across both.

Failure events and migrations must target disjoint arrays within one
scenario (a copy sweep cannot read a mid-rebuild source); the scenario
runner enforces this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..sim.controller import ArrayController, _Request
from ..sim.disk import DiskIO
from .fleet import Fleet
from .orchestrator import AdmissionController
from .sharding import ShardMap

__all__ = [
    "VolumeMove",
    "MigrationPlan",
    "VolumeMigrationOutcome",
    "MigrationCoordinator",
    "plan_migration",
]


@dataclass(frozen=True)
class VolumeMove:
    """One volume's relocation.

    Attributes:
        volume: logical volume id.
        source: shard currently owning the volume.
        dest: shard that owns it under the target map.
        lbas: the volume's shard-local addresses (ascending; empty for
            a tail volume past the capacity edge — routing-only move).
    """

    volume: int
    source: int
    dest: int
    lbas: np.ndarray


@dataclass(frozen=True)
class MigrationPlan:
    """Everything a reshape will do, computed up front (deterministic).

    Attributes:
        current_shards: shard count before the reshape.
        target_shards: shard count after.
        target_map: the placement the fleet converges to.
        moves: per-volume relocations, ascending by volume id.
    """

    current_shards: int
    target_shards: int
    target_map: ShardMap
    moves: tuple[VolumeMove, ...]

    @property
    def data_moves(self) -> tuple[VolumeMove, ...]:
        """Moves that actually copy units (non-empty extent)."""
        return tuple(m for m in self.moves if len(m.lbas))

    @property
    def units_to_copy(self) -> int:
        """Total units the reshape will copy."""
        return sum(len(m.lbas) for m in self.moves)

    def arrays_involved(self) -> set[int]:
        """Every shard a data move reads from or writes to (the set
        that must stay failure-free during the migration)."""
        out: set[int] = set()
        for m in self.data_moves:
            out.add(m.source)
            out.add(m.dest)
        return out


def plan_migration(fleet: Fleet, target_shards: int) -> MigrationPlan:
    """Plan a reshape of ``fleet`` to ``target_shards`` arrays.

    A pure function of the fleet's shard map and geometry: the target
    map is :meth:`ShardMap.reshaped` (same seed/policy/weights), and
    the moved-volume set is exactly
    :meth:`ShardMap.moved_volumes` — deterministic under a fixed seed.

    Raises:
        ValueError: on a non-positive target shard count.
    """
    if target_shards < 1:
        raise ValueError(
            f"cannot reshape a fleet to {target_shards} shards"
        )
    current = fleet.shard_map
    target_map = current.reshaped(target_shards)
    route = fleet.volume_route()
    new_assign = target_map.assignment()
    moves = []
    for vol in current.moved_volumes(target_map).tolist():
        lo = vol * fleet.volume_units
        hi = min(lo + fleet.volume_units, fleet.capacity)
        local = (
            np.arange(lo, hi, dtype=np.int64) % fleet.shard_capacity
            if hi > lo
            else np.empty(0, dtype=np.int64)
        )
        moves.append(
            VolumeMove(
                volume=vol,
                source=int(route[vol]),
                dest=int(new_assign[vol]),
                lbas=local,
            )
        )
    return MigrationPlan(
        current_shards=current.shards,
        target_shards=target_shards,
        target_map=target_map,
        moves=tuple(moves),
    )


@dataclass(frozen=True)
class VolumeMigrationOutcome:
    """One volume's completed migration.

    Attributes:
        volume / source / dest: the relocation.
        units_copied: units swept source → destination.
        requested_at_ms: when the reshape queued the copy.
        started_at_ms: when admission (and destination serialization)
            released it.
        copied_at_ms: when the copy sweep's last IO completed.
        cutover_at_ms: when routing flipped to the destination.
        drained_requests: in-flight requests the drain waited on.
        held_requests: arrivals parked during the drain and released to
            the destination at cutover.
        forwarded_writes: foreground writes mirrored to the destination
            during the copy window.
        data_verified: bit-for-bit verdict over the moved cells at
            cutover (``None`` without data planes).
    """

    volume: int
    source: int
    dest: int
    units_copied: int
    requested_at_ms: float
    started_at_ms: float
    copied_at_ms: float
    cutover_at_ms: float
    drained_requests: int
    held_requests: int
    forwarded_writes: int
    data_verified: bool | None

    @property
    def admission_delay_ms(self) -> float:
        """Time spent queued for a slot / the destination."""
        return self.started_at_ms - self.requested_at_ms

    @property
    def copy_ms(self) -> float:
        """Copy-sweep duration."""
        return self.copied_at_ms - self.started_at_ms

    @property
    def drain_ms(self) -> float:
        """Drain + cutover duration."""
        return self.cutover_at_ms - self.copied_at_ms


class MigrationCoordinator:
    """Executes a :class:`MigrationPlan` live, on the fleet's clock.

    Construction plans the reshape and attaches to the fleet (diverting
    moving-volume traffic from then on); :meth:`arm` schedules the
    reshape itself at ``at_ms``.  Run the fleet's simulator (serving a
    stream does) and the coordinator copies, drains, and cuts volumes
    over as described in the module docstring; outcomes accumulate in
    :attr:`outcomes` and :attr:`done` flips once the fleet has fully
    converged to the target map.

    Args:
        fleet: the fleet to reshape.
        target_shards: shard count to converge to (> current = grow,
            < current = shrink, == current allowed and trivially done).
        at_ms: simulated time of the reshape.
        admission: max concurrent volume copies when no shared
            controller is given.
        admission_controller: optional shared slot gate (pass the
            :class:`FailureOrchestrator`'s to make copies and rebuilds
            share one fleet-wide budget).
        copy_parallelism: unit copies in flight per volume.
        volumes: optional move filter — execute only the plan's moves
            for these volume ids (the multi-process runner gives each
            worker its connected component of the move graph; see
            :func:`repro.service.parallel.partition_scenario`).  The
            full plan is still computed and exposed as :attr:`plan`;
            ``done`` flips when the *owned* moves finish.

    Raises:
        ValueError: on a bad target or parallelism, or a ``volumes``
            filter naming volumes the plan does not move.
        RuntimeError: if the fleet already has an active migration.
    """

    def __init__(
        self,
        fleet: Fleet,
        target_shards: int,
        *,
        at_ms: float,
        admission: int = 2,
        admission_controller: AdmissionController | None = None,
        copy_parallelism: int = 4,
        volumes=None,
    ):
        if copy_parallelism < 1:
            raise ValueError("copy_parallelism must be >= 1")
        if at_ms < 0:
            raise ValueError(f"reshape time {at_ms} is negative")
        self.fleet = fleet
        self.at_ms = at_ms
        self.admission_controller = (
            admission_controller
            if admission_controller is not None
            else AdmissionController(admission)
        )
        self.copy_parallelism = copy_parallelism
        self.plan = plan_migration(fleet, target_shards)
        if volumes is None:
            owned = self.plan.moves
        else:
            wanted = set(volumes)
            unknown = wanted - {m.volume for m in self.plan.moves}
            if unknown:
                raise ValueError(
                    f"volumes filter names unmoved volumes {sorted(unknown)}"
                )
            owned = tuple(
                m for m in self.plan.moves if m.volume in wanted
            )
        #: The moves this coordinator executes (the whole plan, or the
        #: ``volumes`` filter's slice of it).
        self.owned_moves: tuple[VolumeMove, ...] = owned
        self.outcomes: list[VolumeMigrationOutcome] = []
        self.done = not owned
        self._armed = False
        self._moves = {m.volume: m for m in owned}
        self._moving_ids = np.array(
            sorted(self._moves), dtype=np.int64
        )
        # Per-volume lifecycle: "pending" -> "copying" -> "draining"
        # -> done (removed from _state).
        self._state = {v: "pending" for v in self._moves}
        self._inflight = {v: 0 for v in self._moves}
        self._held: dict[int, list[tuple[float, bool, int]]] = {}
        self._requested_at: dict[int, float] = {}
        self._started_at: dict[int, float] = {}
        self._copied_at: dict[int, float] = {}
        self._drained: dict[int, int] = {}
        self._forwarded: dict[int, int] = {}
        self._copied_units: dict[int, set[int]] = {}
        # Copies serialize per destination (two volumes ingesting into
        # one array could alias the same physical cells, which would
        # make cutover verification racy).
        self._dest_queue: dict[int, deque[int]] = {}
        self._dest_busy: set[int] = set()
        self._remaining = len(owned)
        # Cell-coherence plumbing: in-flight copies (insertion order =
        # deterministic mirror fan-out order) and one refcounted
        # content-write hook per array involved in any of them.
        self._active_copies: dict[int, "_VolumeCopy"] = {}
        self._mirror_hooks: dict[int, tuple[object, int]] = {}
        #: Requests dispatched per shard (grows with the fleet) — the
        #: fleet adds these to its per-shard scheduled counts.
        self.dispatched_per_shard: list[int] = [0] * fleet.shards
        fleet.attach_migration(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule the reshape on the fleet's shared clock.

        Raises:
            RuntimeError: if armed twice.
        """
        if self._armed:
            raise RuntimeError("migration already armed")
        self._armed = True
        if self.done:
            return
        self.fleet.sim.at(self.at_ms, self._reshape)

    def _reshape(self) -> None:
        """The reshape event: grow the controller set, cut tail
        volumes over instantly, queue every data move."""
        fleet = self.fleet
        fleet.ensure_shards(
            max(self.plan.target_shards, fleet.shards)
        )
        while len(self.dispatched_per_shard) < fleet.shards:
            self.dispatched_per_shard.append(0)
        now = fleet.sim.now
        for move in self.owned_moves:
            self._requested_at[move.volume] = now
            if not len(move.lbas):
                # No addressable units: routing-only cutover.
                self._cutover(move, verified=None)
                continue
            self._dest_queue.setdefault(move.dest, deque()).append(
                move.volume
            )
        for dest in sorted(self._dest_queue):
            self._pump_dest(dest)

    def _pump_dest(self, dest: int) -> None:
        if dest in self._dest_busy:
            return
        queue = self._dest_queue.get(dest)
        if not queue:
            return
        self._dest_busy.add(dest)
        vol = queue.popleft()
        self.admission_controller.submit(
            lambda v=vol: self._start_copy(v)
        )

    def _start_copy(self, vol: int) -> None:
        move = self._moves[vol]
        self._state[vol] = "copying"
        self._started_at[vol] = self.fleet.sim.now
        self._copied_units[vol] = set()
        _VolumeCopy(self, move).start()

    def _copy_complete(self, move: VolumeMove) -> None:
        vol = move.volume
        self._copied_at[vol] = self.fleet.sim.now
        self._state[vol] = "draining"
        self._held[vol] = []
        self._drained[vol] = self._inflight[vol]
        if self._inflight[vol] == 0:
            self._finish_drain(move)

    def _finish_drain(self, move: VolumeMove) -> None:
        self._cutover(move, verified=self._verify(move))

    def _verify(self, move: VolumeMove) -> bool | None:
        """Bit-for-bit comparison of the moved cells, source vs
        destination, with both sides quiesced."""
        src = self.fleet.controllers[move.source]
        dst = self.fleet.controllers[move.dest]
        if src.data is None or dst.data is None:
            return None
        want = src.data.read_logical_batch(src.mapper, move.lbas)
        got = dst.data.read_logical_batch(dst.mapper, move.lbas)
        return bool(np.array_equal(want, got))

    def _cutover(self, move: VolumeMove, verified: bool | None) -> None:
        """Flip routing to the destination, release held requests
        there, record the outcome, and free the copy's slots."""
        fleet = self.fleet
        vol = move.volume
        now = fleet.sim.now
        fleet._volume_route[vol] = move.dest
        had_copy = self._state[vol] != "pending"
        self._state.pop(vol, None)
        held = self._held.pop(vol, [])
        for t, is_read, lba in held:
            self._issue(move.dest, vol, t, is_read, lba, track=False)
        self.outcomes.append(
            VolumeMigrationOutcome(
                volume=vol,
                source=move.source,
                dest=move.dest,
                units_copied=len(move.lbas) if had_copy else 0,
                requested_at_ms=self._requested_at[vol],
                started_at_ms=self._started_at.get(
                    vol, self._requested_at[vol]
                ),
                copied_at_ms=self._copied_at.get(
                    vol, self._requested_at[vol]
                ),
                cutover_at_ms=now,
                drained_requests=self._drained.get(vol, 0),
                held_requests=len(held),
                forwarded_writes=self._forwarded.get(vol, 0),
                data_verified=verified,
            )
        )
        copy = self._active_copies.pop(vol, None)
        if copy is not None:
            self._detach_mirror(copy.src_id)
            self._detach_mirror(copy.dst_id)
        self._copied_units.pop(vol, None)
        self._remaining -= 1
        if had_copy:
            self.admission_controller.release()
            self._dest_busy.discard(move.dest)
            self._pump_dest(move.dest)
        if self._remaining == 0:
            self._finalize()

    def _finalize(self) -> None:
        fleet = self.fleet
        if len(self.owned_moves) == len(self.plan.moves):
            # Full convergence: adopt the target map wholesale.  A
            # filtered coordinator (one move-graph component) leaves
            # the map alone — its volumes already flipped at cutover,
            # and the rest belong to other workers.
            fleet.shard_map = self.plan.target_map
            fleet._volume_route = self.plan.target_map.assignment()
        self.done = True

    # ------------------------------------------------------------------
    # Cell coherence during copy windows
    # ------------------------------------------------------------------
    #
    # Volume extents fold onto the shard-local address space, so cells
    # can be shared by co-resident volumes (see the fleet docs).  While
    # a copy is in flight, a copied cell therefore has live replicas on
    # the source *and* the destination, and foreground writes can land
    # on either side — from the migrating volume itself (source, until
    # the drain) or from aliased volumes resident on either array.  One
    # refcounted hook per involved array funnels every per-request
    # content write into :meth:`_mirror`, which pushes the payload
    # across the replica links of every in-flight copy to a fixpoint.
    # Propagation uses direct data-plane writes (hooks never re-fire),
    # so the walk terminates and the bit-for-bit verify at cutover is
    # deterministic.

    def _attach_mirror(self, shard: int) -> None:
        entry = self._mirror_hooks.get(shard)
        if entry is not None:
            self._mirror_hooks[shard] = (entry[0], entry[1] + 1)
            return

        def hook(
            sid: int, disk: int, offset: int, payload: np.ndarray, s=shard
        ) -> None:
            self._mirror(s, sid, disk, offset, payload)

        self.fleet.controllers[shard].add_content_write_hook(hook)
        self._mirror_hooks[shard] = (hook, 1)

    def _detach_mirror(self, shard: int) -> None:
        hook, count = self._mirror_hooks[shard]
        if count > 1:
            self._mirror_hooks[shard] = (hook, count - 1)
            return
        del self._mirror_hooks[shard]
        self.fleet.controllers[shard].remove_content_write_hook(hook)

    def _mirror(
        self, origin: int, sid: int, disk: int, offset: int, payload: np.ndarray
    ) -> None:
        """Propagate one content write from ``origin`` to every replica
        of the written cell across all in-flight copies (breadth-first
        over the copy links, direct data-plane writes, timed mirror IOs
        on each receiving array)."""
        controllers = self.fleet.controllers
        size = controllers[origin].layout.size
        cell = disk * size + offset
        seen = {origin}
        frontier = [origin]
        while frontier:
            arr = frontier.pop(0)
            for vol, copy in self._active_copies.items():
                if cell not in self._copied_units.get(vol, ()):
                    continue
                for a, b in (
                    (copy.src_id, copy.dst_id),
                    (copy.dst_id, copy.src_id),
                ):
                    if a != arr or b in seen:
                        continue
                    ctrl = controllers[b]
                    ctrl.data.small_write(sid, disk, offset, payload)
                    self._forwarded[vol] = self._forwarded.get(vol, 0) + 1
                    # Timed mirror IOs: the receiving array pays the
                    # data + parity write like any synchronous mirror.
                    pd, po = ctrl.layout.stripes[sid].parity_unit
                    ctrl.disks[disk].submit(DiskIO(offset=offset, is_write=True))
                    ctrl.disks[pd].submit(DiskIO(offset=po, is_write=True))
                    seen.add(b)
                    frontier.append(b)

    # ------------------------------------------------------------------
    # Diverted-traffic dispatch (the routing seam)
    # ------------------------------------------------------------------

    def claims(self, vols: np.ndarray) -> np.ndarray:
        """Boolean mask of requests this migration handles (their
        volume is in the moving set)."""
        return np.isin(vols, self._moving_ids)

    def register_stream(
        self,
        times: np.ndarray,
        is_read: np.ndarray,
        lbas: np.ndarray,
        vols: np.ndarray,
        *,
        absolute: bool = False,
    ) -> None:
        """Take ownership of a diverted sub-stream (arrival times
        relative to the current clock, like a compiled trace, or —
        with ``absolute=True`` — already on the shared clock, as the
        fleet's window router registers them: windows are diverted
        mid-run, when ``sim.now`` has moved past the stream origin)."""
        _StreamPump(
            self,
            times.tolist() if absolute else (self.fleet.sim.now + times).tolist(),
            is_read.tolist(),
            lbas.tolist(),
            vols.tolist(),
        ).schedule()

    def _dispatch(
        self, t: float, is_read: bool, lba: int, vol: int
    ) -> None:
        """Route one request at its arrival time against the volume's
        *current* state: source while pending/copying, parked while
        draining, destination after cutover."""
        state = self._state.get(vol)
        if state == "draining":
            self._held[vol].append((t, is_read, lba))
            return
        owner = int(self.fleet._volume_route[vol])
        self._issue(owner, vol, t, is_read, lba, track=state is not None)

    def _issue(
        self,
        shard: int,
        vol: int,
        start: float,
        is_read: bool,
        lba: int,
        *,
        track: bool,
    ) -> None:
        """Submit one request on ``shard`` with an explicit latency
        start (held requests measure from their original arrival) and
        optional in-flight tracking for the drain."""
        ctrl = self.fleet.controllers[shard]
        if ctrl.obs.enabled:
            # Diverted traffic arrives one request at a time; count it
            # at its original arrival (held requests keep theirs).
            ctrl.obs.arrive(shard, start)
        local = lba % self.fleet.shard_capacity
        pu = ctrl.mapper.logical_to_physical(local)
        sid = pu.stripe % ctrl.layout.b
        if not is_read and ctrl.data is not None:
            # Same content convention as the compiled executor; the
            # content-write hook forwards it to the destination when
            # the unit is already copied.
            ctrl._apply_write_dataplane(
                sid, pu.disk, pu.offset, ctrl._default_payload(local)
            )
        kind, phases = ctrl.request_plan(is_read, pu.disk, pu.offset, sid)
        on_done = None
        if track:
            self._inflight[vol] += 1
            on_done = self._make_done(vol)
        req = _Request(kind=kind, start=start, on_done=on_done, phases=phases)
        ctrl._issue_phase(req)
        self.dispatched_per_shard[shard] += 1

    def _make_done(self, vol: int):
        def done(_when: float) -> None:
            self._inflight[vol] -= 1
            if (
                self._inflight[vol] == 0
                and self._state.get(vol) == "draining"
            ):
                self._finish_drain(self._moves[vol])

        return done

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    @property
    def all_verified(self) -> bool:
        """Every move completed and (with data planes) verified bit
        for bit."""
        return self.done and all(
            o.data_verified is not False for o in self.outcomes
        )

    def total_units_copied(self) -> int:
        """Units actually swept between arrays."""
        return sum(o.units_copied for o in self.outcomes)


class _StreamPump:
    """Chained-arrival pump for one diverted sub-stream: one pending
    event drives every dispatch (the compiled executor's trick), so
    diverting traffic adds no heap pressure beyond its own arrivals."""

    __slots__ = ("co", "times", "is_read", "lbas", "vols", "n", "_i")

    def __init__(
        self,
        co: MigrationCoordinator,
        times: list[float],
        is_read: list[bool],
        lbas: list[int],
        vols: list[int],
    ):
        self.co = co
        self.times = times
        self.is_read = is_read
        self.lbas = lbas
        self.vols = vols
        self.n = len(times)
        self._i = 0

    def schedule(self) -> None:
        if self.n:
            self.co.fleet.sim.at(self.times[0], self._fire)

    def _fire(self) -> None:
        sim = self.co.fleet.sim
        now = sim.now
        i = self._i
        while i < self.n and self.times[i] == now:
            self.co._dispatch(
                self.times[i], self.is_read[i], self.lbas[i], self.vols[i]
            )
            i += 1
        self._i = i
        if i < self.n:
            sim.at(self.times[i], self._fire)


class _VolumeCopy:
    """The copy sweep of one volume: bounded-parallelism unit copies,
    each a timed source read followed by a timed destination RMW, with
    the content transferred (and cell mirroring armed) at the moment
    the source read completes."""

    def __init__(self, co: MigrationCoordinator, move: VolumeMove):
        self.co = co
        self.move = move
        self.src_id = move.source
        self.dst_id = move.dest
        fleet = co.fleet
        self.src: ArrayController = fleet.controllers[move.source]
        self.dst: ArrayController = fleet.controllers[move.dest]
        d, o, s, pd, po = self.src.mapper.map_batch_parity(move.lbas)
        b = self.src.layout.b
        self._disks = d.tolist()
        self._offsets = o.tolist()
        self._sids = (s % b).tolist()
        self._par_disks = pd.tolist()
        self._par_offsets = po.tolist()
        self._lbas = move.lbas.tolist()
        self._next = 0
        self._outstanding = 0
        self._n = len(self._lbas)

    def start(self) -> None:
        if self.src.data is not None and self.dst.data is not None:
            # Mirroring stays armed through copy AND drain (aliased
            # co-residents can write the copied cells until cutover);
            # the coordinator detaches at cutover.
            self.co._active_copies[self.move.volume] = self
            self.co._attach_mirror(self.src_id)
            self.co._attach_mirror(self.dst_id)
        for _ in range(min(self.co.copy_parallelism, self._n)):
            self._launch_next()

    def _launch_next(self) -> None:
        if self._next >= self._n:
            return
        i = self._next
        self._next += 1
        self._outstanding += 1
        self.src.disks[self._disks[i]].submit(
            DiskIO(
                offset=self._offsets[i],
                is_write=False,
                on_complete=lambda when, i=i: self._read_done(i),
            )
        )

    def _read_done(self, i: int) -> None:
        """Source read complete: transfer content, arm mirroring for
        this unit, then pay the destination RMW."""
        d, o, sid = self._disks[i], self._offsets[i], self._sids[i]
        if self.src.data is not None and self.dst.data is not None:
            payload = self.src.data.read_unit(d, o)
            self.dst.data.small_write(sid, d, o, payload)
            cell = d * self.src.layout.size + o
            self.co._copied_units[self.move.volume].add(cell)
        self._dest_rmw(
            d, o, self._par_disks[i], self._par_offsets[i], self._unit_done
        )

    def _dest_rmw(self, d, o, pd, po, on_done) -> None:
        """Timed destination read-modify-write: read old data and
        parity in parallel, then write both (the controller's healthy
        small-write plan, without a latency-recording request)."""
        disks = self.dst.disks
        state = {"left": 2, "writing": False}

        def cb(when: float) -> None:
            state["left"] -= 1
            if state["left"]:
                return
            if not state["writing"]:
                state["writing"] = True
                state["left"] = 2
                disks[d].submit(DiskIO(offset=o, is_write=True, on_complete=cb))
                disks[pd].submit(
                    DiskIO(offset=po, is_write=True, on_complete=cb)
                )
            else:
                on_done()

        disks[d].submit(DiskIO(offset=o, is_write=False, on_complete=cb))
        disks[pd].submit(DiskIO(offset=po, is_write=False, on_complete=cb))

    def _unit_done(self) -> None:
        self._outstanding -= 1
        if self._next < self._n:
            self._launch_next()
        elif self._outstanding == 0:
            self.co._copy_complete(self.move)
