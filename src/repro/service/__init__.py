"""Sharded multi-array fleet service.

The serving layer over the simulator: a :class:`Fleet` shards logical
volumes across N :class:`repro.sim.ArrayController` arrays on one
shared event clock, routes request streams per shard with a
consistent-hash :class:`ShardMap` (``ring``/``p2c``/``weighted``
placement) and batched compilation, a :class:`FailureOrchestrator`
injects disk failures and schedules admission-controlled concurrent
rebuilds, and a :class:`MigrationCoordinator` grows or shrinks the
fleet live — copying volumes bit-for-bit between arrays under load
with zero lost requests.  :mod:`repro.service.scenario` scripts whole
runs (``python -m repro serve``), and :func:`check_fleet` gates every
scenario on the paper's Conditions 1-4.

Serve a stream through a small fleet:

>>> from repro.service import Fleet, check_fleet
>>> from repro.sim import WorkloadConfig
>>> fleet = Fleet(4, 9, 3, seed=0)
>>> check_fleet(fleet).passed
True
>>> report = fleet.serve_workload(
...     WorkloadConfig(interarrival_ms=2.0, seed=1), duration_ms=100.0)
>>> report.scheduled == report.completed    # healthy fleet: no loss
True

Placement is deterministic and resizable — the migration work list of
a grow is a pure function of the seed:

>>> from repro.service import ShardMap
>>> m = ShardMap(4, 64, seed=0)
>>> grown = m.reshaped(8)
>>> moved = m.moved_volumes(grown)
>>> 0 < len(moved) < 64                     # some volumes move, not all
True

Grow a fleet live, with every moved volume verified:

>>> from repro.service import MigrationCoordinator
>>> fleet = Fleet(2, 9, 3, seed=0, dataplane=True)
>>> co = MigrationCoordinator(fleet, 4, at_ms=20.0)
>>> co.arm()
>>> rep = fleet.serve_workload(
...     WorkloadConfig(interarrival_ms=2.0, seed=1), duration_ms=120.0)
>>> fleet.sim.run()                         # drain any trailing copies
>>> co.done and co.all_verified and rep.lost == 0
True

These doctests run in ``make check`` (``make doctest``).
"""

from .autoscale import (
    DEFAULT_AUTOSCALE_WINDOW,
    AutoscaleController,
    AutoscaleDecision,
    AutoscalePolicy,
    AutoscaleSummary,
    MetricSnapshot,
    PolicyState,
    decide,
    parse_decision_jsonl,
    render_decision_jsonl,
    replay_decisions,
)
from .conformance import FleetConformance, check_fleet
from .fleet import Fleet, FleetReport
from .frontend import ServiceFrontend, run_frontend
from .migration import (
    MigrationCoordinator,
    MigrationPlan,
    VolumeMigrationOutcome,
    VolumeMove,
    plan_migration,
)
from .orchestrator import (
    AdmissionController,
    FailureEvent,
    FailureOrchestrator,
    RebuildOutcome,
)
from .parallel import (
    GroupPartition,
    ParallelScenarioRun,
    ShardGroup,
    canonical_payload,
    partition_scenario,
    run_fleet_scenario_parallel,
)
from .runtime import RuntimeStats, WarmRuntime, WorkerPool, leaked_segments
from .scenario import (
    FleetScenario,
    FleetScenarioReport,
    default_failure_schedule,
    run_fleet_scenario,
)
from .sharding import PLACEMENT_POLICIES, ShardMap, splitmix64

__all__ = [
    "DEFAULT_AUTOSCALE_WINDOW",
    "AutoscaleController",
    "AutoscaleDecision",
    "AutoscalePolicy",
    "AutoscaleSummary",
    "MetricSnapshot",
    "PolicyState",
    "decide",
    "parse_decision_jsonl",
    "render_decision_jsonl",
    "replay_decisions",
    "ServiceFrontend",
    "run_frontend",
    "FleetConformance",
    "check_fleet",
    "Fleet",
    "FleetReport",
    "MigrationCoordinator",
    "MigrationPlan",
    "VolumeMigrationOutcome",
    "VolumeMove",
    "plan_migration",
    "AdmissionController",
    "FailureEvent",
    "FailureOrchestrator",
    "RebuildOutcome",
    "GroupPartition",
    "ParallelScenarioRun",
    "ShardGroup",
    "canonical_payload",
    "partition_scenario",
    "run_fleet_scenario_parallel",
    "RuntimeStats",
    "WarmRuntime",
    "WorkerPool",
    "leaked_segments",
    "FleetScenario",
    "FleetScenarioReport",
    "default_failure_schedule",
    "run_fleet_scenario",
    "PLACEMENT_POLICIES",
    "ShardMap",
    "splitmix64",
]
