"""Sharded multi-array fleet service.

The serving layer over the simulator: a :class:`Fleet` shards logical
volumes across N :class:`repro.sim.ArrayController` arrays on one
shared event clock, routes request streams per shard with a
consistent-hash :class:`ShardMap` and batched compilation, and a
:class:`FailureOrchestrator` injects disk failures and schedules
admission-controlled concurrent rebuilds.  :mod:`repro.service.scenario`
scripts whole runs (``python -m repro serve``), and
:func:`check_fleet` gates every scenario on the paper's Conditions 1-4.
"""

from .conformance import FleetConformance, check_fleet
from .fleet import Fleet, FleetReport
from .orchestrator import FailureEvent, FailureOrchestrator, RebuildOutcome
from .scenario import (
    FleetScenario,
    FleetScenarioReport,
    default_failure_schedule,
    run_fleet_scenario,
)
from .sharding import ShardMap, splitmix64

__all__ = [
    "FleetConformance",
    "check_fleet",
    "Fleet",
    "FleetReport",
    "FailureEvent",
    "FailureOrchestrator",
    "RebuildOutcome",
    "FleetScenario",
    "FleetScenarioReport",
    "default_failure_schedule",
    "run_fleet_scenario",
    "ShardMap",
    "splitmix64",
]
