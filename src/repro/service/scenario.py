"""Scripted fleet scenarios: fleet size + workload mix + failure
schedule + reconfiguration steps → one JSON-ready report.

This is the ``python -m repro serve`` engine.  A
:class:`FleetScenario` pins everything — shard count, layout pair,
offered load, failure schedule, admission knob, grow/shrink step,
placement policy, seeds — so a scenario is a pure function of its
parameters: run it twice, get the same report (the
routing-determinism property the service tests pin).

The run order is the production story end to end:

1. build the fleet (shared clock, registry-cached layout/mapper);
2. conformance-gate the served layouts (Conditions 1-4, for free);
3. generate + route + compile the whole request stream (requests to
   volumes a reshape will move are diverted to the live dispatcher);
4. arm the failure schedule, admission-controlled rebuilds, and the
   grow/shrink migration — rebuilds and volume copies share one
   admission budget;
5. drain the shared event loop;
6. aggregate per-array reports, rebuild outcomes, and migration
   outcomes into the fleet report.

``docs/SCENARIOS.md`` is the cookbook: every field, the JSON report
schema, and worked failure-storm / growth / mixed examples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..sim.compile import ArrayWindows
from ..sim.disk import DiskParameters
from ..sim.workload import WorkloadConfig
from .autoscale import (
    DEFAULT_AUTOSCALE_WINDOW,
    AutoscaleController,
    AutoscalePolicy,
    AutoscaleSummary,
)
from .conformance import FleetConformance, check_fleet
from .fleet import Fleet, FleetReport
from .migration import MigrationCoordinator, VolumeMigrationOutcome
from .orchestrator import (
    AdmissionController,
    FailureEvent,
    FailureOrchestrator,
    RebuildOutcome,
)

__all__ = [
    "FleetScenario",
    "FleetScenarioReport",
    "default_failure_schedule",
    "run_fleet_scenario",
]


def default_failure_schedule(
    shards: int,
    v: int,
    count: int,
    at_ms: float,
    *,
    stagger_ms: float = 0.0,
) -> tuple[FailureEvent, ...]:
    """A ``count``-failure schedule over distinct arrays.

    Failures land on different arrays (the single-parity fault model)
    and different disk indices, at ``at_ms`` (simultaneous — the
    concurrent-rebuild stress case) or staggered by ``stagger_ms``.

    Raises:
        ValueError: if ``count`` exceeds the shard count.
    """
    if count > shards:
        raise ValueError(
            f"cannot schedule {count} single-array failures over "
            f"{shards} shards"
        )
    return tuple(
        FailureEvent(
            time_ms=at_ms + i * stagger_ms, array=i, disk=i % v
        )
        for i in range(count)
    )


@dataclass(frozen=True)
class FleetScenario:
    """Everything that defines one serving scenario.

    Attributes:
        shards: arrays in the fleet at scenario start.
        v / k: layout pair served by every shard.
        duration_ms: workload horizon.
        interarrival_ms: *aggregate* fleet mean interarrival.
        read_fraction / zipf_theta / workload_seed: the synthetic mix.
        failures: the failure schedule (empty = healthy run).
        admission: max concurrent background recovery/migration jobs
            fleet-wide (rebuilds and volume copies share the budget).
        rebuild_parallelism: concurrent stripes per rebuilding array.
        verify_data: attach data planes and verify rebuilds *and*
            migrated volumes bit-for-bit.
        check_conformance: gate the run on Conditions 1-4.
        volumes: logical volumes (default ``16 * shards``).
        placement: :class:`ShardMap` policy (``ring``/``p2c``/
            ``weighted``).
        reshape_to: grow/shrink step — target shard count to migrate
            to mid-run (``None`` = no reconfiguration).
        reshape_at_ms: when the reshape fires (default: a quarter into
            the horizon).
        copy_parallelism: concurrent unit copies per migrating volume.
        write_policy: small-write handling on every shard — ``"rmw"``
            (read-modify-write) or ``"write_through"`` (single-phase).
        window_size: requests per streaming window (``None`` =
            materialize the whole stream).  When set, the workload is
            generated, routed, and executed one window at a time
            (:meth:`repro.service.Fleet.serve_windows`) so peak memory
            stays flat at any horizon; the report is byte-identical to
            the materialized run.
        seed: shard-ring / data-plane seed.
        autoscale: optional :class:`AutoscalePolicy` — a control loop
            polls the live metrics on a sim-clock cadence and fires
            grow/shrink migrations on sustained load or imbalance
            (mutually exclusive with ``reshape_to``).  Autoscaled runs
            always serve windowed (``window_size`` or
            :data:`~repro.service.autoscale.DEFAULT_AUTOSCALE_WINDOW`)
            so mid-stream cutovers take effect.
    """

    shards: int = 8
    v: int = 9
    k: int = 3
    duration_ms: float = 1500.0
    interarrival_ms: float = 0.5
    read_fraction: float = 0.7
    zipf_theta: float = 0.0
    workload_seed: int = 42
    failures: tuple[FailureEvent, ...] = ()
    admission: int = 2
    rebuild_parallelism: int = 4
    verify_data: bool = True
    check_conformance: bool = True
    volumes: int | None = None
    placement: str = "ring"
    reshape_to: int | None = None
    reshape_at_ms: float | None = None
    copy_parallelism: int = 4
    write_policy: str = "rmw"
    window_size: int | None = None
    seed: int = 0
    autoscale: AutoscalePolicy | None = None

    def workload(self) -> WorkloadConfig:
        """The scenario's synthetic workload config."""
        return WorkloadConfig(
            interarrival_ms=self.interarrival_ms,
            read_fraction=self.read_fraction,
            zipf_theta=self.zipf_theta,
            seed=self.workload_seed,
        )

    def reshape_time(self) -> float:
        """Resolved reshape time (default: a quarter in)."""
        return (
            self.reshape_at_ms
            if self.reshape_at_ms is not None
            else self.duration_ms * 0.25
        )


@dataclass(frozen=True)
class FleetScenarioReport:
    """One scenario's full outcome."""

    scenario: FleetScenario
    conformance: FleetConformance | None
    fleet: FleetReport
    rebuilds: tuple[RebuildOutcome, ...]
    migrations: tuple[VolumeMigrationOutcome, ...]
    planned_moves: int
    routing_fingerprint: int
    wall_s: float
    max_concurrent_rebuilds: int = field(default=0)
    autoscale: AutoscaleSummary | None = field(default=None)

    @property
    def all_rebuilt_verified(self) -> bool:
        """Every scheduled failure rebuilt; every rebuilt image
        bit-for-bit correct (vacuously true with no failures)."""
        if len(self.rebuilds) != len(self.scenario.failures):
            return False
        if self.scenario.verify_data:
            return all(o.report.data_verified is True for o in self.rebuilds)
        return all(o.report.data_verified is not False for o in self.rebuilds)

    @property
    def all_migrated_verified(self) -> bool:
        """Every planned volume move completed with zero lost requests
        and (with data planes) a bit-for-bit verified copy (vacuously
        true without a reshape step)."""
        if self.scenario.reshape_to is None:
            return True
        if len(self.migrations) != self.planned_moves:
            return False
        if self.fleet.lost:
            return False
        if self.scenario.verify_data:
            return all(
                o.data_verified is True
                for o in self.migrations
                if o.units_copied
            )
        return all(o.data_verified is not False for o in self.migrations)

    @property
    def all_autoscale_ok(self) -> bool:
        """Every fired autoscale event converged fully verified with
        nothing lost, and the decision log replayed byte-identically
        (vacuously true without an autoscale policy)."""
        return self.autoscale is None or self.autoscale.ok

    @property
    def passed(self) -> bool:
        """Conformance (when checked), full verified recovery, a fully
        verified reconfiguration, and a clean autoscale log."""
        conf_ok = self.conformance is None or self.conformance.passed
        return (
            conf_ok
            and self.all_rebuilt_verified
            and self.all_migrated_verified
            and self.all_autoscale_ok
        )

    def engine_per_shard(self) -> list[str | None]:
        """The execution engine each shard actually used (``None`` for
        shards that never ran an engine, e.g. reshape-born arrays that
        only received dispatched requests)."""
        return list(getattr(self.fleet, "engines", None) or [])

    def engine_label(self) -> str | None:
        """One label for the whole run: the common engine when every
        shard agrees, ``"mixed"`` otherwise, ``None`` when no shard ran
        an engine at all."""
        distinct = sorted({e for e in self.engine_per_shard() if e})
        if not distinct:
            return None
        return distinct[0] if len(distinct) == 1 else "mixed"

    def to_dict(self) -> dict:
        """JSON-ready report (the ``repro serve`` output; schema
        documented in ``docs/SCENARIOS.md``)."""
        sc = self.scenario
        return {
            "scenario": {
                "shards": sc.shards,
                "v": sc.v,
                "k": sc.k,
                "duration_ms": sc.duration_ms,
                "interarrival_ms": sc.interarrival_ms,
                "read_fraction": sc.read_fraction,
                "zipf_theta": sc.zipf_theta,
                "workload_seed": sc.workload_seed,
                "admission": sc.admission,
                "rebuild_parallelism": sc.rebuild_parallelism,
                "verify_data": sc.verify_data,
                "volumes": sc.volumes,
                "placement": sc.placement,
                "reshape_to": sc.reshape_to,
                "reshape_at_ms": (
                    sc.reshape_time() if sc.reshape_to is not None else None
                ),
                "copy_parallelism": sc.copy_parallelism,
                "write_policy": sc.write_policy,
                "window_size": sc.window_size,
                "seed": sc.seed,
                "autoscale": (
                    sc.autoscale.to_dict() if sc.autoscale is not None else None
                ),
                "failures": [
                    {"time_ms": f.time_ms, "array": f.array, "disk": f.disk}
                    for f in sc.failures
                ],
            },
            "conformance": (
                self.conformance.to_dict() if self.conformance else None
            ),
            # Engine labels are part of the canonical payload: the
            # parallel runner's groups must pick the exact engines the
            # serial gate picks, and these keys make any divergence a
            # loud report diff instead of a silent perf drift.  (The
            # labels legitimately differ between windowed and
            # materialized serves of the same scenario — the byte
            # identity holds per execution mode.)
            "engine": self.engine_label(),
            "engine_per_shard": self.engine_per_shard(),
            "fleet": {
                "shards": self.fleet.shards,
                "scheduled": self.fleet.scheduled,
                "completed": self.fleet.completed,
                "lost_to_failures": self.fleet.lost,
                "duration_ms": self.fleet.duration_ms,
                "throughput_rps": self.fleet.throughput_rps,
                "shard_balance": self.fleet.shard_balance,
                "per_shard_scheduled": self.fleet.per_shard_scheduled,
                "latency": self.fleet.latency,
            },
            # Sorted by array (one rebuild per array) so the section has
            # one canonical order regardless of completion interleaving
            # — the report-equality contract the multi-process runner
            # (`repro.service.parallel`) merges against.
            "rebuilds": [
                {
                    "array": o.array,
                    "failed_disk": o.failed_disk,
                    "failed_at_ms": o.failed_at_ms,
                    "started_at_ms": o.started_at_ms,
                    "admission_delay_ms": o.admission_delay_ms,
                    "duration_ms": o.report.duration_ms,
                    "stripes_rebuilt": o.report.stripes_rebuilt,
                    "data_verified": o.report.data_verified,
                }
                for o in sorted(self.rebuilds, key=lambda o: o.array)
            ],
            "migration": (
                {
                    "target_shards": sc.reshape_to,
                    "planned_moves": self.planned_moves,
                    "completed_moves": len(self.migrations),
                    "units_copied": sum(
                        o.units_copied for o in self.migrations
                    ),
                    "held_requests": sum(
                        o.held_requests for o in self.migrations
                    ),
                    "forwarded_writes": sum(
                        o.forwarded_writes for o in self.migrations
                    ),
                    "zero_lost": self.fleet.lost == 0,
                    "all_verified": self.all_migrated_verified,
                    # Sorted by volume id — canonical order, same
                    # rationale as the rebuilds section.
                    "volumes": [
                        {
                            "volume": o.volume,
                            "source": o.source,
                            "dest": o.dest,
                            "units_copied": o.units_copied,
                            "requested_at_ms": o.requested_at_ms,
                            "started_at_ms": o.started_at_ms,
                            "copied_at_ms": o.copied_at_ms,
                            "cutover_at_ms": o.cutover_at_ms,
                            "admission_delay_ms": o.admission_delay_ms,
                            "copy_ms": o.copy_ms,
                            "drain_ms": o.drain_ms,
                            "held_requests": o.held_requests,
                            "forwarded_writes": o.forwarded_writes,
                            "data_verified": o.data_verified,
                        }
                        for o in sorted(
                            self.migrations, key=lambda o: o.volume
                        )
                    ],
                }
                if sc.reshape_to is not None
                else None
            ),
            "autoscale": (
                self.autoscale.to_dict() if self.autoscale is not None else None
            ),
            "max_concurrent_rebuilds": self.max_concurrent_rebuilds,
            "routing_fingerprint": self.routing_fingerprint,
            "all_rebuilt_verified": self.all_rebuilt_verified,
            "all_migrated_verified": self.all_migrated_verified,
            "passed": self.passed,
            "wall_s": self.wall_s,
        }


def run_fleet_scenario(
    scenario: FleetScenario, *, recorder=None, stream=None, precompiled=None
) -> FleetScenarioReport:
    """Run one scenario end to end (see the module docstring for the
    exact order).

    With ``recorder`` (a :class:`repro.obs.MetricsRecorder`), the run
    is instrumented on the simulated clock — the report itself is
    byte-identical either way; the recorder fills with per-shard
    completion-bucketed latency, arrivals, engine labels, rebuild
    progress, and end-of-run queue-delay stats.

    With ``stream`` (a ``(times, is_read, lbas)`` triple of arrays),
    the scenario serves *that* stream instead of generating its own —
    the service front-end's path.  A stream equal to the scenario's
    synthetic workload produces a report canonically identical to the
    batch run.

    With ``precompiled`` (per-shard :class:`repro.sim.CompiledTrace`
    slices, e.g. the warm runtime's cached ``route_stream`` output),
    stream generation and routing are skipped and the traces serve
    directly through :meth:`Fleet.serve_compiled`.  Because routing is
    a pure function of the fleet shape and the stream, the report is
    byte-identical to serving the originating stream — valid only for
    materialized serves (no ``window_size``, no ``reshape_to``, no
    ``autoscale``, whose paths re-route live).

    An ``autoscale`` policy always serves windowed (the window router
    re-routes each window through the live volume table, so cutovers
    the control loop fires mid-stream take effect) and instruments the
    run even without a caller recorder — the loop needs live arrival
    buckets to decide from.

    Raises:
        ValueError: on inconsistent scenario parameters (bad failure
            targets, admission < 1, a failure schedule overlapping the
            arrays a reshape copies between, autoscale combined with a
            static reshape, ...).
    """
    t0 = time.perf_counter()
    policy = scenario.autoscale
    if precompiled is not None:
        if stream is not None:
            raise ValueError(
                "stream and precompiled are mutually exclusive — "
                "precompiled IS the routed stream"
            )
        if (
            scenario.window_size is not None
            or scenario.reshape_to is not None
            or policy is not None
        ):
            raise ValueError(
                "precompiled applies only to materialized serves "
                "without a reshape or autoscale policy — windowed and "
                "reshaping serves route live"
            )
    if policy is not None and scenario.reshape_to is not None:
        raise ValueError(
            "autoscale and a static reshape_to are mutually exclusive — "
            "the control loop owns grow/shrink decisions"
        )
    fleet = Fleet(
        scenario.shards,
        scenario.v,
        scenario.k,
        volumes=scenario.volumes,
        dataplane=scenario.verify_data,
        seed=scenario.seed,
        placement=scenario.placement,
        write_policy=scenario.write_policy,
    )
    if recorder is None and policy is not None:
        # The loop decides from live arrival buckets; give it a grid
        # exactly one cadence wide when the caller brought no recorder.
        from ..obs import MetricsRecorder

        recorder = MetricsRecorder(policy.cadence_ms, shards=scenario.shards)
    if recorder is not None:
        fleet.attach_recorder(recorder)
    conformance = check_fleet(fleet) if scenario.check_conformance else None

    admission = AdmissionController(scenario.admission)
    orchestrator = FailureOrchestrator(
        fleet,
        scenario.failures,
        admission=scenario.admission,
        parallelism=scenario.rebuild_parallelism,
        admission_controller=admission,
    )
    coordinator = None
    if scenario.reshape_to is not None:
        coordinator = MigrationCoordinator(
            fleet,
            scenario.reshape_to,
            at_ms=scenario.reshape_time(),
            admission_controller=admission,
            copy_parallelism=scenario.copy_parallelism,
        )
        involved = coordinator.plan.arrays_involved()
        clash = sorted(
            {f.array for f in scenario.failures} & involved
        )
        if clash:
            raise ValueError(
                f"failure schedule targets arrays {clash}, which the "
                f"reshape to {scenario.reshape_to} shards copies "
                "between; failures and migrations must touch disjoint "
                "arrays"
            )
        coordinator.arm()
    orchestrator.arm()
    autoscaler = None
    window_size = scenario.window_size
    if policy is not None:
        if window_size is None:
            window_size = DEFAULT_AUTOSCALE_WINDOW
        autoscaler = AutoscaleController(
            fleet,
            policy,
            recorder,
            admission=admission,
            horizon_ms=scenario.duration_ms,
            copy_parallelism=scenario.copy_parallelism,
        )
        autoscaler.arm()
    if precompiled is not None:
        report = fleet.serve_compiled(list(precompiled))
    elif stream is not None:
        times, is_read, lbas = stream
        if window_size is not None:
            report = fleet.serve_windows(
                ArrayWindows(times, is_read, lbas, window_size),
                read_only_hint=scenario.read_fraction >= 1.0,
            )
        else:
            report = fleet.serve_stream(
                np.asarray(times, dtype=np.float64),
                np.asarray(is_read, dtype=bool),
                np.asarray(lbas, dtype=np.int64),
            )
    else:
        report = fleet.serve_workload(
            scenario.workload(),
            scenario.duration_ms,
            window_size=window_size,
        )
    # Failures scheduled beyond the last request completion have fired
    # by now (serve drains the shared loop), but guard the empty-stream
    # edge where arming happened with nothing else pending.
    fleet.sim.run()
    if recorder is not None:
        # Cumulative queue delay is a scalar left-fold in per-disk
        # arrival order on every engine path, so this sum is bit-exact
        # across engines, window sizes, and worker counts.
        for s, ctrl in enumerate(fleet.controllers):
            recorder.set_stat(
                s,
                "queue_delay_ms",
                sum(d.total_queue_delay for d in ctrl.disks),
            )

    autoscale_summary = None
    if autoscaler is not None:
        autoscale_summary = autoscaler.summary(
            verify_data=scenario.verify_data,
            # With failures scheduled, lost requests have a legitimate
            # cause outside the autoscaler — don't gate on them.
            lost=report.lost if not scenario.failures else None,
        )
    return FleetScenarioReport(
        scenario=scenario,
        conformance=conformance,
        fleet=report,
        rebuilds=tuple(orchestrator.outcomes),
        migrations=(
            tuple(coordinator.outcomes) if coordinator is not None else ()
        ),
        planned_moves=(
            len(coordinator.plan.moves) if coordinator is not None else 0
        ),
        routing_fingerprint=fleet.shard_map.fingerprint(),
        wall_s=time.perf_counter() - t0,
        max_concurrent_rebuilds=orchestrator.max_concurrent_observed(),
        autoscale=autoscale_summary,
    )
