"""Warm fleet runtime: persistent workers, shared-memory transport,
and compiled-artifact caching for the serving path.

The batch runner (:func:`repro.service.run_fleet_scenario_parallel`)
executes one scenario and tears everything down: a fresh
``ProcessPoolExecutor`` per run, registries rebuilt from scratch in
every worker, and compiled trace slices shipped by pickle.  A
long-lived front-end serving repeated streams pays all of that again
on every ``serve`` — even though the paper's declustered layouts are
static per fleet shape, so everything derived from them (flat mapping
tables, CSR incidence, routed compiled slices) is reusable until the
fleet reshapes.

:class:`WarmRuntime` amortizes the whole cold path across runs:

* **Persistent worker pool** (:class:`WorkerPool`): workers boot once
  per fleet shape — the pool initializer primes the layout / mapper /
  incidence registries for ``(v, k)`` — and are reused across repeated
  scenario runs, stream windows, and socket submits.  The pool is
  spawn-safe (everything crossing the boundary pickles), reboots
  explicitly when the fleet shape changes, and drains gracefully on
  :meth:`WarmRuntime.close`.
* **Zero-copy trace transport**: compiled per-shard traces are packed
  once into a ``multiprocessing.shared_memory`` segment (parent writes
  once; workers attach and build *read-only* ndarray views), so a
  task ships a ``(segment name, offsets)`` handle instead of pickled
  arrays.  Segment lifecycle is owned by the runtime — every segment
  is unlinked on eviction, invalidation, :meth:`~WarmRuntime.close`,
  SIGTERM (the front-end installs handlers) and interpreter exit (an
  ``atexit`` safety net), so no ``/dev/shm`` orphans and no
  ``resource_tracker`` warnings survive a session.
* **Compiled-artifact cache** (:class:`ArtifactCache` semantics,
  bounded LRU): artifacts are keyed by (fleet shape, stream
  fingerprint, seed), so a repeated socket submit — or a repeated
  synthetic run — skips stream generation *and* ``route_stream``
  entirely and reuses the packed slices.  The cache applies only to
  materialized serves without a reshape or autoscale policy (windowed
  serves never materialize by design; reshapes divert traffic through
  the live coordinator), and a run that executed a reshape/autoscale
  event invalidates it.

The canonical byte-identity contract is non-negotiable and holds by
construction: cached slices are exactly the ``route_stream`` output
the serial runner would compute (routing is a pure function of the
fleet shape and the stream), shared-memory views are bit-equal to the
arrays they pack, and worker results return constant-size
:class:`repro.sim.LatencyDigest` accumulators whose summaries are
bit-identical to the exact sample lists (see ``repro.sim.stats``).
``canonical_payload`` strips the volatile ``runtime`` stats section,
so warm-pool, shared-memory, digest-IPC reports compare equal to cold
serial reports at every window size and worker count — the matrix
``tests/service/test_runtime.py`` pins.
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from hashlib import blake2b
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from ..core.registry import get_incidence, get_layout, get_mapper
from ..sim.compile import ArrayWindows, CompiledTrace, generate_request_stream
from .conformance import check_fleet
from .fleet import Fleet
from .migration import plan_migration
from .orchestrator import max_concurrent_rebuilds
from .parallel import (
    ParallelExecution,
    ParallelScenarioRun,
    _execute_group,
    _execute_group_task,
    _execute_group_windowed,
    _merge_results,
    available_cpus,
    partition_scenario,
)
from .scenario import FleetScenario, FleetScenarioReport, run_fleet_scenario

__all__ = [
    "SEGMENT_PREFIX",
    "RuntimeStats",
    "WorkerPool",
    "WarmRuntime",
    "leaked_segments",
]

#: Every shared-memory segment the runtime creates is named
#: ``repro_wrt_<creator pid hex>_<token>`` — teardown tests and the
#: front-end smoke can assert zero leftovers by prefix (and by pid,
#: so concurrent test runs never see each other's segments).
SEGMENT_PREFIX = "repro_wrt_"

#: The six :class:`CompiledTrace` arrays, in constructor order — the
#: packed-segment layout is one contiguous run of these per shard.
_TRACE_FIELDS = ("times", "is_read", "lbas", "disks", "offsets", "stripes")


# ----------------------------------------------------------------------
# Segment lifecycle (parent side)
# ----------------------------------------------------------------------

#: Live segments this process created: name -> (SharedMemory, creator
#: pid).  The pid guards the ``atexit`` sweep against fork — a pool
#: worker forked after a segment was created inherits this dict, and
#: its interpreter exit must never unlink the parent's segments.
_LIVE_SEGMENTS: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
_ATEXIT_ARMED = False


def _sweep_segments() -> None:
    pid = os.getpid()
    for name in list(_LIVE_SEGMENTS):
        if _LIVE_SEGMENTS[name][1] == pid:
            _release_segment(name)


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a uniquely named segment and register it for guaranteed
    unlink (close / SIGTERM path / atexit safety net)."""
    global _ATEXIT_ARMED
    for _ in range(16):
        name = f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(4)}"
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, size)
            )
        except FileExistsError:  # pragma: no cover - token collision
            continue
        _LIVE_SEGMENTS[shm.name] = (shm, os.getpid())
        if not _ATEXIT_ARMED:
            atexit.register(_sweep_segments)
            _ATEXIT_ARMED = True
        return shm
    raise RuntimeError(
        "could not allocate a uniquely named shared-memory segment"
    )  # pragma: no cover - 16 collisions in a row


def _release_segment(name: str) -> None:
    """Close + unlink one owned segment (idempotent, error-tolerant:
    teardown must never raise).  ``close`` can refuse while ndarray
    views of the buffer are still alive (exported pointers); the
    unlink still proceeds — the file is gone from ``/dev/shm`` and the
    mapping dies with its last reference."""
    entry = _LIVE_SEGMENTS.pop(name, None)
    if entry is None:
        return
    shm = entry[0]
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def leaked_segments(pid: int | None = None) -> list[str]:
    """Runtime-owned segments still present in ``/dev/shm`` (the
    teardown regression oracle).  With ``pid``, only segments created
    by that process are counted — concurrent runs stay invisible."""
    prefix = SEGMENT_PREFIX if pid is None else f"{SEGMENT_PREFIX}{pid:x}_"
    root = Path("/dev/shm")
    if root.is_dir():
        return sorted(p.name for p in root.glob(prefix + "*"))
    return sorted(n for n in _LIVE_SEGMENTS if n.startswith(prefix))


# ----------------------------------------------------------------------
# Packing / views
# ----------------------------------------------------------------------


def _pack_arrays(
    arrays: list[np.ndarray],
) -> tuple[shared_memory.SharedMemory, tuple, int]:
    """Copy 1-D arrays back-to-back (16-byte aligned) into one fresh
    segment.  Returns ``(segment, specs, nbytes)`` where each spec is
    ``(offset, dtype string, length)`` — everything a worker needs to
    rebuild a read-only view, and nothing else crosses the pickle
    boundary."""
    offsets: list[int] = []
    total = 0
    for arr in arrays:
        total = (total + 15) & ~15
        offsets.append(total)
        total += arr.nbytes
    shm = _create_segment(total)
    specs = []
    for arr, off in zip(arrays, offsets):
        if arr.size:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[...] = arr
        specs.append((off, arr.dtype.str, int(arr.size)))
    return shm, tuple(specs), total


def _view(shm: shared_memory.SharedMemory, spec: tuple) -> np.ndarray:
    """A read-only ndarray view over one packed array.  Read-only is
    load-bearing twice: it proves the transport is zero-copy (no
    engine may mutate a shared trace — any write raises), and it makes
    one segment safe to share across every worker simultaneously."""
    off, dtype, n = spec
    arr = np.ndarray((n,), dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
    arr.setflags(write=False)
    return arr


def _pack_traces(
    traces: list[CompiledTrace],
) -> tuple[shared_memory.SharedMemory, tuple, int]:
    """Pack every shard's compiled trace into ONE segment; the per-shard
    spec is a tuple of six array specs in :data:`_TRACE_FIELDS` order."""
    flat: list[np.ndarray] = []
    for t in traces:
        flat.extend(
            np.ascontiguousarray(getattr(t, f)) for f in _TRACE_FIELDS
        )
    shm, specs, total = _pack_arrays(flat)
    per_trace = tuple(
        specs[i * len(_TRACE_FIELDS):(i + 1) * len(_TRACE_FIELDS)]
        for i in range(len(traces))
    )
    return shm, per_trace, total


def _trace_from(shm: shared_memory.SharedMemory, spec: tuple) -> CompiledTrace:
    return CompiledTrace(*(_view(shm, s) for s in spec))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Worker-side attachment cache: segment name -> SharedMemory, bounded
#: LRU.  Attachments are reused across tasks (attaching is a syscall +
#: mmap, cheap but not free at high serve rates) and evicted oldest
#: first — eviction happens only between tasks, so no live view ever
#: loses its mapping.  Workers never unlink: the parent owns lifecycle,
#: and the whole process tree shares one resource_tracker, so the
#: parent's single unlink also clears the tracker entry (a worker-side
#: unregister would race it into a tracker KeyError on stderr).
_ATTACHED: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
_ATTACHED_CAP = 8


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is not None:
        _ATTACHED.move_to_end(name)
        return shm
    shm = shared_memory.SharedMemory(name=name)
    _ATTACHED[name] = shm
    while len(_ATTACHED) > _ATTACHED_CAP:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
    return shm


def _prime_worker(v: int, k: int) -> None:
    """Pool initializer: build the layout / mapper / incidence registry
    entries for the fleet shape once per worker boot, so the first task
    a worker runs is as warm as the hundredth."""
    layout = get_layout(v, k)
    get_mapper(layout)
    get_incidence(layout)


def _runtime_task(task: tuple):
    """Persistent-pool entry point (top-level so it pickles under
    spawn).  Shared-memory task kinds rebuild read-only views and
    delegate to the batch runner's group executors — the execution
    itself is byte-for-byte the cold path's."""
    kind = task[0]
    if kind == "shm_compiled":
        scenario, group, handle, index, allow_batched, interval = task[1:]
        name, specs = handle
        shm = _attach(name)
        compiled = tuple(_trace_from(shm, spec) for spec in specs)
        return _execute_group(
            scenario, group, compiled, index, allow_batched, interval
        )
    if kind == "shm_windowed":
        (
            scenario,
            group,
            route,
            volume_units,
            shard_capacity,
            capacity,
            n_volumes,
            index,
            allow_batched,
            interval,
            handle,
        ) = task[1:]
        name, specs, window_size = handle
        shm = _attach(name)
        times, is_read, lbas = (_view(shm, s) for s in specs)
        windows = ArrayWindows(times, is_read, lbas, window_size)
        return _execute_group_windowed(
            scenario,
            group,
            route,
            volume_units,
            shard_capacity,
            capacity,
            n_volumes,
            index,
            allow_batched,
            interval,
            windows=windows,
        )
    return _execute_group_task(task)


# ----------------------------------------------------------------------
# Stats / cache / pool
# ----------------------------------------------------------------------


@dataclass
class RuntimeStats:
    """Warm-runtime counters (volatile by contract — surfaced under the
    report's ``runtime`` key, which :func:`canonical_payload` strips,
    and as volatile obs counters excluded from snapshot byte-identity).

    Attributes:
        runs: serves executed through this runtime.
        pool_warm_hits: runs that reused an already-booted worker pool.
        pool_cold_boots: pool (re)boots — first run, shape change.
        compile_cache_hits: runs that reused a cached compiled artifact
            (stream generation + ``route_stream`` skipped entirely).
        compile_cache_misses: artifact builds.
        shm_bytes: bytes currently resident in runtime-owned segments.
        ipc_bytes_avoided: cumulative estimate of bytes kept off the
            pickle channel — trace bytes shipped as segment handles
            instead of arrays, plus ~8 bytes per completed request
            returned as digest state instead of a raw sample.
    """

    runs: int = 0
    pool_warm_hits: int = 0
    pool_cold_boots: int = 0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    shm_bytes: int = 0
    ipc_bytes_avoided: int = 0

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "pool_warm_hits": self.pool_warm_hits,
            "pool_cold_boots": self.pool_cold_boots,
            "compile_cache_hits": self.compile_cache_hits,
            "compile_cache_misses": self.compile_cache_misses,
            "shm_bytes": self.shm_bytes,
            "ipc_bytes_avoided": self.ipc_bytes_avoided,
        }


@dataclass
class _Artifact:
    """One cached compiled stream: the owning segment plus parent-side
    read-only trace views (rebuilt from the same buffer workers map)."""

    shm: shared_memory.SharedMemory
    specs: tuple
    traces: list[CompiledTrace]
    nbytes: int

    def handle(self, arrays: tuple[int, ...]) -> tuple:
        """The picklable slice handle for one group's shards."""
        return (self.shm.name, tuple(self.specs[a] for a in arrays))


class WorkerPool:
    """A persistent ``ProcessPoolExecutor`` primed for one fleet shape.

    Workers boot lazily on the first mapped task batch and stay alive
    across runs; :meth:`ensure` reboots them only when the served
    ``(v, k)`` shape changes (the registry priming would be stale).
    :meth:`close` drains gracefully — in-flight tasks finish before
    the processes exit.
    """

    def __init__(self, workers: int, *, mp_context: str = "auto") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.mp_context = mp_context
        self.context_name: str | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._shape: tuple[int, int] | None = None

    def ensure(self, shape: tuple[int, int]) -> bool:
        """Boot (or reboot) the pool for ``shape``; True on a cold
        boot, False when the warm pool was reused."""
        if self._pool is not None and self._shape == shape:
            return False
        self.close()
        import multiprocessing

        if self.mp_context == "auto":
            methods = multiprocessing.get_all_start_methods()
            self.context_name = "fork" if "fork" in methods else "spawn"
        else:
            self.context_name = self.mp_context
        ctx = multiprocessing.get_context(self.context_name)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_prime_worker,
            initargs=shape,
        )
        self._shape = shape
        return True

    def map(self, tasks: list[tuple]) -> list:
        if self._pool is None:  # pragma: no cover - ensure() precedes map()
            raise RuntimeError("pool not booted — call ensure() first")
        return list(self._pool.map(_runtime_task, tasks))

    def close(self) -> None:
        """Graceful drain: wait for in-flight tasks, then reap the
        worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._shape = None


# ----------------------------------------------------------------------
# The warm runtime
# ----------------------------------------------------------------------


def _shape_key(sc: FleetScenario) -> tuple:
    """Everything routing + compilation depend on: the fleet shape."""
    return (
        sc.shards,
        sc.v,
        sc.k,
        sc.volumes,
        sc.placement,
        sc.seed,
        sc.write_policy,
    )


def _stream_key(sc: FleetScenario, stream) -> tuple:
    if stream is None:
        return (
            "workload",
            sc.duration_ms,
            sc.interarrival_ms,
            sc.read_fraction,
            sc.zipf_theta,
            sc.workload_seed,
        )
    h = blake2b(digest_size=16)
    for arr in stream:
        h.update(arr.tobytes())
    return ("stream", h.hexdigest(), int(stream[0].size))


class WarmRuntime:
    """The serving path's amortizing runtime: one scenario, a warm
    worker pool, shared-memory trace transport, and a compiled-artifact
    cache — with reports canonically byte-identical to the cold serial
    runner's at every window size and worker count.

    Args:
        scenario: the :class:`FleetScenario` every :meth:`run` serves.
        workers: worker processes (1 = in-process; the cache still
            applies).
        mp_context: start method — ``"auto"`` (fork where available),
            ``"spawn"``, or ``"forkserver"``.
        cache_artifacts: compiled artifacts kept resident (LRU).

    Use as a context manager or call :meth:`close`; segments are also
    unlinked by the ``atexit`` safety net if neither happens.
    """

    def __init__(
        self,
        scenario: FleetScenario,
        *,
        workers: int = 1,
        mp_context: str = "auto",
        cache_artifacts: int = 4,
    ) -> None:
        if cache_artifacts < 1:
            raise ValueError(
                f"cache_artifacts must be >= 1, got {cache_artifacts}"
            )
        self.scenario = scenario
        self.workers = max(1, int(workers))
        self.stats = RuntimeStats()
        self._pool = (
            WorkerPool(self.workers, mp_context=mp_context)
            if self.workers > 1
            else None
        )
        self._cache: OrderedDict[tuple, _Artifact] = OrderedDict()
        self._cache_cap = cache_artifacts
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "WarmRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def invalidate(self) -> None:
        """Drop every cached artifact and unlink its segment — called
        on fleet-shape changes and after runs that executed a
        reshape/autoscale event (stale slices must never serve)."""
        while self._cache:
            _, art = self._cache.popitem(last=False)
            self._drop(art)

    def close(self) -> None:
        """Graceful teardown: drain the pool (in-flight tasks finish),
        then unlink every owned segment.  Idempotent — the front-end's
        shutdown, SIGTERM, and ``finally`` paths may all land here."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        self.invalidate()

    def update_scenario(self, scenario: FleetScenario) -> None:
        """Swap the served scenario.  A fleet-shape change (e.g. a grow
        decided between serves) invalidates the artifact cache — the
        shape is part of every cache key too, but the explicit unlink
        releases the dead segments immediately rather than by LRU
        pressure."""
        if _shape_key(scenario) != _shape_key(self.scenario):
            self.invalidate()
        self.scenario = scenario

    def _drop(self, art: _Artifact) -> None:
        art.traces.clear()
        self.stats.shm_bytes -= art.nbytes
        _release_segment(art.shm.name)

    # -- cache -------------------------------------------------------------

    def _cacheable(self) -> bool:
        sc = self.scenario
        return (
            sc.reshape_to is None
            and sc.autoscale is None
            and sc.window_size is None
        )

    def _routing_fleet(self) -> Fleet:
        sc = self.scenario
        return Fleet(
            sc.shards,
            sc.v,
            sc.k,
            volumes=sc.volumes,
            dataplane=False,
            seed=sc.seed,
            placement=sc.placement,
            write_policy=sc.write_policy,
        )

    def _artifact(self, stream, fleet: Fleet | None = None) -> _Artifact:
        """The compiled artifact for this scenario + stream — cached,
        so a repeated submit skips generation and routing entirely."""
        key = _shape_key(self.scenario) + _stream_key(self.scenario, stream)
        art = self._cache.get(key)
        if art is not None:
            self.stats.compile_cache_hits += 1
            self._cache.move_to_end(key)
            return art
        self.stats.compile_cache_misses += 1
        if fleet is None:
            fleet = self._routing_fleet()
        if stream is None:
            times, is_read, lbas = generate_request_stream(
                self.scenario.workload(),
                self.scenario.duration_ms,
                fleet.capacity,
            )
        else:
            times, is_read, lbas = stream
        compiled, _ = fleet.route_stream(times, is_read, lbas)
        shm, specs, nbytes = _pack_traces(compiled)
        art = _Artifact(
            shm=shm,
            specs=specs,
            traces=[_trace_from(shm, spec) for spec in specs],
            nbytes=nbytes,
        )
        self._cache[key] = art
        self.stats.shm_bytes += nbytes
        while len(self._cache) > self._cache_cap:
            _, old = self._cache.popitem(last=False)
            self._drop(old)
        return art

    # -- running -----------------------------------------------------------

    def run(self, *, stream=None, recorder=None) -> dict:
        """Serve the scenario once and return the JSON-ready report
        payload (plus the volatile ``runtime`` stats section).

        With ``stream`` (a ``(times, is_read, lbas)`` triple), that
        stream is served instead of the synthetic workload — the
        front-end's path.  The payload is canonically identical to the
        cold serial runner's for the same scenario and stream.

        Raises:
            RuntimeError: after :meth:`close`.
            ValueError: on inconsistent scenario parameters (the
                serial runner's own checks).
        """
        if self._closed:
            raise RuntimeError("runtime is closed")
        sc = self.scenario
        self.stats.runs += 1
        before = self.stats.to_dict()
        if stream is not None:
            stream = (
                np.ascontiguousarray(stream[0], dtype=np.float64),
                np.ascontiguousarray(stream[1], dtype=bool),
                np.ascontiguousarray(stream[2], dtype=np.int64),
            )
        if self.workers > 1:
            payload = self._run_parallel(stream, recorder)
        else:
            payload = self._run_serial(stream, recorder)
        if sc.reshape_to is not None or sc.autoscale is not None:
            # The run reshaped the (per-run) fleet; cached slices keyed
            # on the pre-reshape shape must not outlive the event.
            self.invalidate()
        payload["runtime"] = self.stats.to_dict()
        if recorder is not None:
            after = payload["runtime"]
            for name in (
                "pool_warm_hits",
                "compile_cache_hits",
                "shm_bytes",
                "ipc_bytes_avoided",
            ):
                delta = after[name] - before[name]
                if delta:
                    recorder.count(name, delta, volatile=True)
        return payload

    def _run_serial(self, stream, recorder) -> dict:
        if self._cacheable():
            art = self._artifact(stream)
            report = run_fleet_scenario(
                self.scenario, recorder=recorder, precompiled=art.traces
            )
        else:
            report = run_fleet_scenario(
                self.scenario, recorder=recorder, stream=stream
            )
        return report.to_dict()

    def _serial_payload(
        self,
        report: FleetScenarioReport,
        partition,
        *,
        reason: str,
        cpus: int,
    ) -> dict:
        group = partition.groups[0]
        execution = ParallelExecution(
            requested_workers=self.workers,
            workers=1,
            cpu_count=cpus,
            mp_context=None,
            serial_fallback=True,
            fallback_reason=reason,
            groups=(
                {
                    "arrays": list(group.arrays),
                    "admission_slots": group.admission_slots,
                    "failures": len(group.failures),
                    "migration_volumes": list(group.migration_volumes),
                    "duration_ms": report.fleet.duration_ms,
                    "wall_s": report.wall_s,
                },
            ),
            admission_partition=partition.admission_partition(),
        )
        return ParallelScenarioRun(report=report, execution=execution).to_dict()

    def _run_parallel(self, stream, recorder) -> dict:
        sc = self.scenario
        t0 = time.perf_counter()
        cpus = available_cpus()
        partition = partition_scenario(sc)
        if partition.serial_fallback:
            report = run_fleet_scenario(sc, recorder=recorder, stream=stream)
            return self._serial_payload(
                report, partition, reason=partition.reason, cpus=cpus
            )
        if stream is not None and any(
            g.migration_volumes for g in partition.groups
        ):
            # Migration workers regenerate the synthetic stream; a
            # submitted stream has no worker-side regeneration, so a
            # live reshape serves it on the serial path.
            report = run_fleet_scenario(sc, recorder=recorder, stream=stream)
            return self._serial_payload(
                report,
                partition,
                reason=(
                    "a submitted stream with a live reshape serves "
                    "serially — migration workers regenerate synthetic "
                    "streams only"
                ),
                cpus=cpus,
            )

        fleet = self._routing_fleet()
        conformance = check_fleet(fleet) if sc.check_conformance else None
        planned_moves = 0
        fingerprint = fleet.shard_map.fingerprint()
        if sc.reshape_to is not None:
            plan = plan_migration(fleet, sc.reshape_to)
            planned_moves = len(plan.moves)
            fingerprint = plan.target_map.fingerprint()
        allow_batched = not sc.failures and sc.reshape_to is None
        windowed = sc.window_size is not None
        interval = recorder.interval_ms if recorder is not None else None
        route = fleet.volume_route()

        artifact = None
        stream_handle = None
        plain = [g for g in partition.groups if not g.migration_volumes]
        if plain and not windowed:
            artifact = self._artifact(stream, fleet)
        elif plain and windowed and stream is not None:
            # Windowed serves never materialize compiled slices, but a
            # submitted stream still rides shared memory: pack the raw
            # arrays once and let each worker view them read-only.
            shm, specs, nbytes = _pack_arrays(list(stream))
            self.stats.shm_bytes += nbytes
            stream_handle = (shm.name, specs, sc.window_size, nbytes)

        tasks: list[tuple] = []
        for i, group in enumerate(partition.groups):
            if group.migration_volumes:
                tasks.append(("migration", sc, group, i, interval))
            elif windowed and stream_handle is not None:
                tasks.append(
                    (
                        "shm_windowed",
                        sc,
                        group,
                        route,
                        fleet.volume_units,
                        fleet.shard_capacity,
                        fleet.capacity,
                        fleet.shard_map.volumes,
                        i,
                        allow_batched,
                        interval,
                        stream_handle[:3],
                    )
                )
            elif windowed:
                tasks.append(
                    (
                        "windowed",
                        sc,
                        group,
                        route,
                        fleet.volume_units,
                        fleet.shard_capacity,
                        fleet.capacity,
                        fleet.shard_map.volumes,
                        i,
                        allow_batched,
                        interval,
                    )
                )
            else:
                tasks.append(
                    (
                        "shm_compiled",
                        sc,
                        group,
                        artifact.handle(group.arrays),
                        i,
                        allow_batched,
                        interval,
                    )
                )

        cold = self._pool.ensure((sc.v, sc.k))
        if cold:
            self.stats.pool_cold_boots += 1
        else:
            self.stats.pool_warm_hits += 1
        try:
            results = self._pool.map(tasks)
        finally:
            if stream_handle is not None:
                # Per-serve raw-stream segments are not cached; release
                # as soon as every worker task has returned.
                self.stats.shm_bytes -= stream_handle[3]
                _release_segment(stream_handle[0])
        results.sort(key=lambda r: r.group_index)

        if artifact is not None:
            # What a pickle transport would have shipped: every group's
            # trace slice, once per run.
            self.stats.ipc_bytes_avoided += sum(
                spec[2] * np.dtype(spec[1]).itemsize
                for g in plain
                for a in g.arrays
                for spec in artifact.specs[a]
            )
        if recorder is not None:
            for res in results:
                if res.obs is not None:
                    recorder.absorb(res.obs)

        fleet_report, outcomes, migrations = _merge_results(sc, results)
        # Digest-IPC savings: ~one float per completed request that no
        # longer rides the result pickle as a raw sample.
        self.stats.ipc_bytes_avoided += 8 * fleet_report.completed
        report = FleetScenarioReport(
            scenario=sc,
            conformance=conformance,
            fleet=fleet_report,
            rebuilds=outcomes,
            migrations=migrations,
            planned_moves=planned_moves,
            routing_fingerprint=fingerprint,
            wall_s=time.perf_counter() - t0,
            max_concurrent_rebuilds=max_concurrent_rebuilds(outcomes),
        )
        execution = ParallelExecution(
            requested_workers=self.workers,
            workers=min(self.workers, len(tasks)),
            cpu_count=cpus,
            mp_context=self._pool.context_name,
            serial_fallback=False,
            fallback_reason=None,
            groups=tuple(
                {
                    "arrays": list(g.arrays),
                    "admission_slots": g.admission_slots,
                    "failures": len(g.failures),
                    "migration_volumes": list(g.migration_volumes),
                    "duration_ms": r.duration_ms,
                    "wall_s": r.wall_s,
                }
                for g, r in zip(partition.groups, results)
            ),
            admission_partition=partition.admission_partition(),
        )
        return ParallelScenarioRun(report=report, execution=execution).to_dict()
