"""Consistent-hash sharding of logical volumes over a fleet of arrays.

The fleet's address space is carved into *logical volumes* (fixed-size
contiguous LBA ranges).  A :class:`ShardMap` places each volume on one
shard (array) under one of three **placement policies**:

``"ring"`` (default, the PR-3 baseline)
    A bounded-load consistent-hash ring: every shard owns ``replicas``
    pseudo-random points on a 64-bit ring, a volume walks the ring from
    its own hash, and lands on the first shard still under the load cap
    ``ceil(volumes / shards * load_factor)``.  Adding or removing one
    shard only moves the volumes adjacent to its points (~1/N of them),
    but the cap bounds only the busiest shard — the least-busy one can
    sit well below the mean, which is why uniform traffic sees ~2x
    max/min *request* imbalance across shards.

``"p2c"`` (power of two choices)
    Each volume hashes to two independent ring positions and takes the
    candidate shard with the smaller accumulated volume *weight*.  The
    classic two-choices effect collapses the max-min gap to a handful
    of volumes, tightening request balance to ~1.1-1.3x while keeping
    most of the ring's movement locality under growth.

``"weighted"``
    Deterministic LPT greedy: volumes in descending weight order each
    go to the least-loaded shard.  The tightest balance of the three
    (max-min within one volume weight) at the cost of more movement
    when the fleet is resized — the right policy when request balance
    matters more than migration volume.

Per-volume ``weights`` (default: uniform) let the placement account
for unequal traffic — e.g. the fleet weights volumes by their
*addressable extent*, so a partial or dead tail volume stops
distorting the balance the way it does under plain volume counting.

Hashing is a seeded splitmix64 implemented in NumPy — fully
deterministic across processes and Python hash randomization.  The
volume→shard table is resolved once at construction; routing a
million-request stream is then one vectorized table gather
(:meth:`ShardMap.shard_of_volume`).  :meth:`ShardMap.reshaped` builds
the same-policy map for a different shard count (the fleet-growth
primitive) and :meth:`ShardMap.moved_volumes` names exactly which
volumes a resize relocates — the work list for
:class:`repro.service.MigrationCoordinator`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ShardMap",
    "splitmix64",
    "fingerprint_assignment",
    "PLACEMENT_POLICIES",
]

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Recognized placement policies, in baseline-first order.
PLACEMENT_POLICIES = ("ring", "p2c", "weighted")


def fingerprint_assignment(assignment: np.ndarray, seed: int) -> int:
    """Deterministic digest of a volume→shard table — shared by
    :meth:`ShardMap.fingerprint` and the fleet's live routing table so
    the two can never drift apart."""
    return int(
        splitmix64(assignment.astype(np.uint64), seed=seed).sum() & _MASK
    )


def splitmix64(x: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """Seeded splitmix64 finalizer over uint64 values, vectorized.

    A bijective avalanche mix — the standard cheap hash for integer
    keys.  Deterministic for a given ``seed`` (no Python ``hash``).
    """
    v = np.atleast_1d(np.asarray(x, dtype=np.uint64))
    with np.errstate(over="ignore"):
        z = (v + np.uint64(seed * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF)) & _MASK
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & _MASK
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK
        return z ^ (z >> np.uint64(31))


class ShardMap:
    """Placement of ``volumes`` logical volumes on ``shards`` arrays.

    Args:
        shards: number of arrays in the fleet.
        volumes: number of logical volumes (the routing granularity).
        seed: ring seed — fixes every placement decision.
        replicas: ring points per shard (more points, smoother balance).
        load_factor: ``"ring"`` policy only — bound on the busiest
            shard's volume count relative to the mean
            (``cap = ceil(volumes / shards * load_factor)``).
        policy: placement policy — one of :data:`PLACEMENT_POLICIES`.
        weights: optional per-volume traffic weights (non-negative,
            length ``volumes``).  Balanced by ``"p2c"`` and
            ``"weighted"``; the ``"ring"`` baseline counts volumes.

    Raises:
        ValueError: on non-positive shard/volume/replica counts, a
            ``load_factor`` below 1, an unknown policy, or malformed
            weights.
    """

    def __init__(
        self,
        shards: int,
        volumes: int,
        *,
        seed: int = 0,
        replicas: int = 64,
        load_factor: float = 1.05,
        policy: str = "ring",
        weights: np.ndarray | None = None,
    ):
        if shards < 1 or volumes < 1 or replicas < 1:
            raise ValueError(
                f"shards/volumes/replicas must be >= 1, got "
                f"{shards}/{volumes}/{replicas}"
            )
        if load_factor < 1.0:
            raise ValueError(f"load_factor must be >= 1, got {load_factor}")
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r} "
                f"(choose from {', '.join(PLACEMENT_POLICIES)})"
            )
        self.shards = shards
        self.volumes = volumes
        self.seed = seed
        self.replicas = replicas
        self.load_factor = load_factor
        self.policy = policy
        if weights is None:
            self._weights = np.ones(volumes, dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (volumes,):
                raise ValueError(
                    f"weights must have shape ({volumes},), got {w.shape}"
                )
            if not np.isfinite(w).all() or (w < 0).any():
                raise ValueError("weights must be finite and non-negative")
            self._weights = w.copy()

        # Ring points: hash (shard, replica) pairs; ties (astronomically
        # unlikely) break toward the lower shard id via stable sort.
        keys = np.arange(shards * replicas, dtype=np.uint64)
        points = splitmix64(keys, seed=seed)
        owners = np.repeat(np.arange(shards, dtype=np.int64), replicas)
        order = np.argsort(points, kind="stable")
        self._ring_points = points[order]
        self._ring_owners = owners[order]

        if policy == "ring":
            self._volume_shard = self._place_ring()
        elif policy == "p2c":
            self._volume_shard = self._place_p2c()
        else:
            self._volume_shard = self._place_weighted()

    # ------------------------------------------------------------------
    # Placement policies (resolved once; volume counts are small —
    # thousands, not millions — so routing is one table gather after)
    # ------------------------------------------------------------------

    def _ring_candidates(self, hash_seed: int) -> np.ndarray:
        """First ring owner clockwise of each volume's hash under
        ``hash_seed`` (the consistent-hash primary candidate)."""
        vhash = splitmix64(
            np.arange(self.volumes, dtype=np.uint64), seed=hash_seed
        )
        at = np.searchsorted(self._ring_points, vhash, side="left")
        return self._ring_owners[at % len(self._ring_owners)]

    def _place_ring(self) -> np.ndarray:
        """Bounded-load walk: each volume takes the first shard past its
        hash still under the count cap."""
        cap = -(-self.volumes * self.load_factor // self.shards)
        vhash = splitmix64(
            np.arange(self.volumes, dtype=np.uint64), seed=self.seed + 1
        )
        start = np.searchsorted(self._ring_points, vhash, side="left")
        ring_owners = self._ring_owners.tolist()
        ring_len = len(ring_owners)
        loads = [0] * self.shards
        assignment = np.empty(self.volumes, dtype=np.int64)
        for vol, at in enumerate(start.tolist()):
            while True:
                owner = ring_owners[at % ring_len]
                if loads[owner] < cap:
                    loads[owner] += 1
                    assignment[vol] = owner
                    break
                at += 1
        return assignment

    def _place_p2c(self) -> np.ndarray:
        """Two independent ring walks per volume; take the candidate
        with the smaller accumulated weight (ties → first candidate)."""
        c1 = self._ring_candidates(self.seed + 1).tolist()
        c2 = self._ring_candidates(self.seed + 2).tolist()
        w = self._weights.tolist()
        loads = [0.0] * self.shards
        assignment = np.empty(self.volumes, dtype=np.int64)
        for vol in range(self.volumes):
            a, b = c1[vol], c2[vol]
            pick = a if loads[a] <= loads[b] else b
            loads[pick] += w[vol]
            assignment[vol] = pick
        return assignment

    def _place_weighted(self) -> np.ndarray:
        """Deterministic LPT greedy: heaviest volume first onto the
        least-loaded shard (ties → lower volume id, lower shard id)."""
        order = np.lexsort(
            (np.arange(self.volumes), -self._weights)
        ).tolist()
        w = self._weights.tolist()
        loads = [0.0] * self.shards
        assignment = np.empty(self.volumes, dtype=np.int64)
        for vol in order:
            pick = loads.index(min(loads))
            loads[pick] += w[vol]
            assignment[vol] = pick
        return assignment

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of_volume(self, volumes: np.ndarray | int) -> np.ndarray:
        """Owning shard of each volume id (vectorized table gather).

        Raises:
            IndexError: if any volume id is out of range.
        """
        v = np.atleast_1d(np.asarray(volumes, dtype=np.int64))
        if v.size and (v.min() < 0 or v.max() >= self.volumes):
            raise IndexError(
                f"volume ids outside [0, {self.volumes}): "
                f"range [{v.min()}, {v.max()}]"
            )
        return self._volume_shard[v]

    def assignment(self) -> np.ndarray:
        """The full ``(volumes,)`` volume→shard table (a copy)."""
        return self._volume_shard.copy()

    def volume_counts(self) -> np.ndarray:
        """Volumes per shard — the placement balance measure."""
        return np.bincount(self._volume_shard, minlength=self.shards)

    def weight_per_shard(self) -> np.ndarray:
        """Accumulated volume weight per shard — the balance measure
        the ``p2c``/``weighted`` policies actually optimize."""
        return np.bincount(
            self._volume_shard, weights=self._weights, minlength=self.shards
        )

    def fingerprint(self) -> int:
        """Deterministic digest of the whole placement (for routing
        determinism checks and scenario reports)."""
        return fingerprint_assignment(self._volume_shard, self.seed)

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------

    def reshaped(self, shards: int) -> "ShardMap":
        """The same map (seed, policy, weights, replicas) over a
        different shard count — the target placement of a fleet grow or
        shrink.  A pure function of its parameters: re-adding a
        previously removed shard count reproduces the original
        placement exactly.

        Raises:
            ValueError: on a non-positive shard count.
        """
        return ShardMap(
            shards,
            self.volumes,
            seed=self.seed,
            replicas=self.replicas,
            load_factor=self.load_factor,
            policy=self.policy,
            weights=self._weights,
        )

    def moved_volumes(self, other: "ShardMap") -> np.ndarray:
        """Ascending volume ids whose owner differs between this map
        and ``other`` — the migration work list of a resize.

        Raises:
            ValueError: if the two maps cover different volume counts.
        """
        if other.volumes != self.volumes:
            raise ValueError(
                f"maps cover different volume counts: "
                f"{self.volumes} vs {other.volumes}"
            )
        return np.flatnonzero(self._volume_shard != other._volume_shard)
