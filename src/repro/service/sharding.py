"""Consistent-hash sharding of logical volumes over a fleet of arrays.

The fleet's address space is carved into *logical volumes* (fixed-size
contiguous LBA ranges).  A :class:`ShardMap` places each volume on one
shard (array) with a **bounded-load consistent-hash ring**: every
shard owns ``replicas`` pseudo-random points on a 64-bit ring, a
volume walks the ring from its own hash, and lands on the first shard
still under the load cap ``ceil(volumes / shards * load_factor)``.
Adding or removing one shard therefore only moves the volumes adjacent
to its points (~1/N of them) — unlike modulo placement, which
reshuffles everything — while the cap keeps the busiest shard within
``load_factor`` of the mean (plain consistent hashing is 2-3x lumpy at
realistic replica counts, which would cap fleet throughput scaling).

Hashing is a seeded splitmix64 implemented in NumPy — fully
deterministic across processes and Python hash randomization.  The
volume→shard table is resolved once at construction; routing a
million-request stream is then one vectorized table gather
(:meth:`ShardMap.shard_of_volume`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ShardMap", "splitmix64"]

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(x: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """Seeded splitmix64 finalizer over uint64 values, vectorized.

    A bijective avalanche mix — the standard cheap hash for integer
    keys.  Deterministic for a given ``seed`` (no Python ``hash``).
    """
    v = np.atleast_1d(np.asarray(x, dtype=np.uint64))
    with np.errstate(over="ignore"):
        z = (v + np.uint64(seed * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF)) & _MASK
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & _MASK
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK
        return z ^ (z >> np.uint64(31))


class ShardMap:
    """Consistent-hash placement of ``volumes`` logical volumes on
    ``shards`` arrays.

    Args:
        shards: number of arrays in the fleet.
        volumes: number of logical volumes (the routing granularity).
        seed: ring seed — fixes every placement decision.
        replicas: ring points per shard (more points, smoother balance).
        load_factor: bound on the busiest shard's volume count relative
            to the mean (``cap = ceil(volumes / shards * load_factor)``).

    Raises:
        ValueError: on non-positive shard/volume/replica counts or a
            ``load_factor`` below 1.
    """

    def __init__(
        self,
        shards: int,
        volumes: int,
        *,
        seed: int = 0,
        replicas: int = 64,
        load_factor: float = 1.05,
    ):
        if shards < 1 or volumes < 1 or replicas < 1:
            raise ValueError(
                f"shards/volumes/replicas must be >= 1, got "
                f"{shards}/{volumes}/{replicas}"
            )
        if load_factor < 1.0:
            raise ValueError(f"load_factor must be >= 1, got {load_factor}")
        self.shards = shards
        self.volumes = volumes
        self.seed = seed
        self.replicas = replicas
        self.load_factor = load_factor

        # Ring points: hash (shard, replica) pairs; ties (astronomically
        # unlikely) break toward the lower shard id via stable sort.
        keys = np.arange(shards * replicas, dtype=np.uint64)
        points = splitmix64(keys, seed=seed)
        owners = np.repeat(np.arange(shards, dtype=np.int64), replicas)
        order = np.argsort(points, kind="stable")
        self._ring_points = points[order]
        self._ring_owners = owners[order]

        # Bounded-load placement, resolved once (volume counts are
        # small — thousands, not millions): each volume walks the ring
        # from its hash and takes the first shard under the cap, so
        # routing is one table gather afterwards.
        cap = -(-volumes * load_factor // shards)
        vhash = splitmix64(np.arange(volumes, dtype=np.uint64), seed=seed + 1)
        start = np.searchsorted(self._ring_points, vhash, side="left")
        ring_owners = self._ring_owners.tolist()
        ring_len = len(ring_owners)
        loads = [0] * shards
        assignment = np.empty(volumes, dtype=np.int64)
        for vol, at in enumerate(start.tolist()):
            while True:
                owner = ring_owners[at % ring_len]
                if loads[owner] < cap:
                    loads[owner] += 1
                    assignment[vol] = owner
                    break
                at += 1
        self._volume_shard = assignment

    def shard_of_volume(self, volumes: np.ndarray | int) -> np.ndarray:
        """Owning shard of each volume id (vectorized table gather).

        Raises:
            IndexError: if any volume id is out of range.
        """
        v = np.atleast_1d(np.asarray(volumes, dtype=np.int64))
        if v.size and (v.min() < 0 or v.max() >= self.volumes):
            raise IndexError(
                f"volume ids outside [0, {self.volumes}): "
                f"range [{v.min()}, {v.max()}]"
            )
        return self._volume_shard[v]

    def assignment(self) -> np.ndarray:
        """The full ``(volumes,)`` volume→shard table (a copy)."""
        return self._volume_shard.copy()

    def volume_counts(self) -> np.ndarray:
        """Volumes per shard — the placement balance measure."""
        return np.bincount(self._volume_shard, minlength=self.shards)

    def fingerprint(self) -> int:
        """Deterministic digest of the whole placement (for routing
        determinism checks and scenario reports)."""
        return int(splitmix64(self._volume_shard.astype(np.uint64), seed=self.seed).sum() & _MASK)
