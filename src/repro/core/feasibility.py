"""Feasibility census over ``(v, k)`` grids — the paper's headline.

The paper's abstract claims its techniques "greatly increase the number
of parity-declustered data layouts that are appropriate for use in
large disk arrays".  This module quantifies that: for a grid of array
sizes and stripe sizes, count the pairs each method can serve within
the Condition 4 size budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..layouts import FEASIBLE_SIZE_LIMIT, predicted_sizes

__all__ = ["FeasibilityCensus", "census"]


@dataclass(frozen=True)
class FeasibilityCensus:
    """Counts of feasible ``(v, k)`` pairs per method.

    Attributes:
        total_pairs: number of pairs examined.
        per_method: feasible-pair count per construction method.
        any_method: pairs feasible under at least one method.
        examples: one example pair per method (for reports).
    """

    total_pairs: int
    per_method: dict[str, int]
    any_method: int
    examples: dict[str, tuple[int, int]]

    def table(self) -> str:
        """Formatted report table."""
        lines = [f"{'method':<14} {'feasible':>9} {'share':>8}  example"]
        for method in sorted(self.per_method, key=lambda m: -self.per_method[m]):
            n = self.per_method[method]
            ex = self.examples.get(method, ("-", "-"))
            lines.append(
                f"{method:<14} {n:>9} {n / self.total_pairs:>7.1%}  v={ex[0]}, k={ex[1]}"
            )
        lines.append(
            f"{'ANY':<14} {self.any_method:>9} {self.any_method / self.total_pairs:>7.1%}"
        )
        return "\n".join(lines)


def census(
    v_values: list[int],
    k_values: list[int],
    *,
    limit: int = FEASIBLE_SIZE_LIMIT,
) -> FeasibilityCensus:
    """Run the feasibility census over a ``(v, k)`` grid.

    Only pairs with ``2 <= k < v`` are counted (``k = v`` is RAID5, not
    declustering).
    """
    per_method: dict[str, int] = {}
    examples: dict[str, tuple[int, int]] = {}
    total = 0
    any_count = 0
    for v in v_values:
        for k in k_values:
            if not 2 <= k < v:
                continue
            total += 1
            sizes = predicted_sizes(v, k)
            hit = False
            for method, size in sizes.items():
                if size <= limit:
                    per_method[method] = per_method.get(method, 0) + 1
                    examples.setdefault(method, (v, k))
                    hit = True
            if hit:
                any_count += 1
    return FeasibilityCensus(
        total_pairs=total,
        per_method=per_method,
        any_method=any_count,
        examples=examples,
    )
