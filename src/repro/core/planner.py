"""Layout planning: pick the best construction for a target array.

This is the decision procedure the paper's results add up to.  Given
``(v, k)`` and a size budget (Condition 4), enumerate every applicable
construction with its predicted size and balance quality, and build the
best one:

1. **ring** — ring layout, needs ``k <= M(v)``; perfectly balanced,
   size ``k(v-1)``.
2. **flow_single** — one copy of the smallest known BIBD with
   flow-assigned parity (Section 4); parity spread ≤ 1, size ``r``.
3. **flow_lcm** — ``lcm(b, v)/b`` copies, perfectly balanced
   (Corollary 17), size ``r·lcm(b,v)/b``.
4. **removal** — Theorems 8/9: start from a prime power ``v+i``
   (``i(i-1) <= k-i``) and delete ``i`` disks; near-perfect balance,
   size ``k(v+i-1)``.
5. **stairway** — Theorems 10-12: perturb a prime power ``q < v``;
   approximately balanced, size ``k(c-1)(q-1)``.
6. **hg** — Holland–Gibson ``k``-copy baseline; perfectly balanced,
   size ``k·r`` (kept for comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..algebra import min_prime_power_factor, is_prime_power
from ..designs import best_design, candidate_constructions
from ..layouts import (
    FEASIBLE_SIZE_LIMIT,
    Layout,
    find_smallest_stairway_plan,
    find_stairway_plan,
    holland_gibson_layout,
    layout_from_design,
    remove_disks,
    ring_layout,
    stairway_layout,
)
from ..designs.ring_design import ring_design

__all__ = ["LayoutPlan", "plan_layout", "enumerate_plans"]


@dataclass(frozen=True)
class LayoutPlan:
    """A chosen construction, with its predictions, before building.

    Attributes:
        v, k: target array and stripe size.
        method: construction tag (see module docstring).
        predicted_size: upper bound on the layout size (units/disk) the
            method will produce.  Exact for the geometric constructions
            (ring/removal/stairway); design-based methods may come in
            *smaller* when the generic redundancy reduction finds extra
            duplicate blocks at build time.
        balanced: whether parity balance is perfect (vs within one unit
            or the stairway band).
        detail: method-specific parameters (e.g. ``q, c, w``).
    """

    v: int
    k: int
    method: str
    predicted_size: int
    balanced: bool
    detail: dict
    _builder: Callable[[], Layout]

    def build(self) -> Layout:
        """Materialize the planned layout.

        Raises:
            AssertionError: if the built layout exceeds the predicted
                size (the feasibility decision would have been wrong).
        """
        layout = self._builder()
        if layout.size > self.predicted_size:
            raise AssertionError(
                f"{self.method}: predicted size {self.predicted_size}, "
                f"built {layout.size}"
            )
        return layout


def _removal_candidates(v: int, k: int) -> list[LayoutPlan]:
    """Theorem 8/9 plans: remove ``i`` disks from a prime power ``v+i``."""
    plans: list[LayoutPlan] = []
    i = 1
    while i * (i - 1) <= k - i and k - i >= 2:
        source = v + i
        if is_prime_power(source) and k <= source:
            ii = i  # bind loop variable
            plans.append(
                LayoutPlan(
                    v=v,
                    k=k,
                    method="removal",
                    predicted_size=k * (source - 1),
                    balanced=(i == 1),
                    detail={"source_v": source, "removed": i},
                    _builder=lambda: remove_disks(
                        ring_design(source, k), list(range(source - ii, source))
                    ),
                )
            )
            break  # smallest i gives the best balance; one plan suffices
        i += 1
    return plans


def enumerate_plans(v: int, k: int) -> list[LayoutPlan]:
    """All applicable constructions for ``(v, k)``, sorted by
    ``(predicted_size, imbalance)``.

    Raises:
        ValueError: if the parameters are out of range.
    """
    if not 2 <= k <= v:
        raise ValueError(f"need 2 <= k <= v, got v={v}, k={k}")
    plans: list[LayoutPlan] = []

    if k <= min_prime_power_factor(v):
        plans.append(
            LayoutPlan(
                v=v,
                k=k,
                method="ring",
                predicted_size=k * (v - 1),
                balanced=True,
                detail={},
                _builder=lambda: ring_layout(v, k),
            )
        )

    candidates = candidate_constructions(v, k)
    if candidates:
        design_name, b = candidates[0]
        r = k * b // v
        copies = math.lcm(b, v) // b
        plans.append(
            LayoutPlan(
                v=v,
                k=k,
                method="flow_single",
                predicted_size=r,
                balanced=(b % v == 0),
                detail={"design": design_name, "b": b},
                _builder=lambda: layout_from_design(
                    best_design(v, k), copies=1, parity="flow"
                ),
            )
        )
        if copies > 1:
            plans.append(
                LayoutPlan(
                    v=v,
                    k=k,
                    method="flow_lcm",
                    predicted_size=r * copies,
                    balanced=True,
                    detail={"design": design_name, "b": b, "copies": copies},
                    _builder=lambda: layout_from_design(
                        best_design(v, k), copies=copies, parity="flow"
                    ),
                )
            )
        plans.append(
            LayoutPlan(
                v=v,
                k=k,
                method="hg",
                predicted_size=k * r,
                balanced=True,
                detail={"design": design_name, "b": b},
                _builder=lambda: holland_gibson_layout(best_design(v, k)),
            )
        )

    plans.extend(_removal_candidates(v, k))

    stairway = find_stairway_plan(v, k)
    compact = find_smallest_stairway_plan(v, k)
    for method, sp in (("stairway", stairway), ("stairway_compact", compact)):
        if sp is None:
            continue
        if method == "stairway_compact" and stairway is not None and sp.q == stairway.q:
            continue  # identical plan; no separate candidate
        plans.append(
            LayoutPlan(
                v=v,
                k=k,
                method=method,
                predicted_size=sp.predicted_size(k),
                balanced=(sp.w == 0),
                detail={"q": sp.q, "c": sp.c, "w": sp.w},
                _builder=lambda sp=sp: stairway_layout(v, sp.q, k),
            )
        )

    plans.sort(key=lambda p: (p.predicted_size, not p.balanced))
    return plans


def plan_layout(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
) -> LayoutPlan:
    """Choose the smallest feasible construction for ``(v, k)``.

    Args:
        max_size: Condition 4 budget (units per disk).
        require_balanced: restrict to perfectly parity-balanced methods.

    Raises:
        ValueError: if no applicable construction fits the budget.
    """
    plans = enumerate_plans(v, k)
    for plan in plans:
        if plan.predicted_size > max_size:
            continue
        if require_balanced and not plan.balanced:
            continue
        return plan
    raise ValueError(
        f"no feasible layout for v={v}, k={k} within size {max_size}"
        + (" requiring perfect balance" if require_balanced else "")
        + f"; smallest candidate: "
        + (
            f"{plans[0].method} at {plans[0].predicted_size}"
            if plans
            else "none"
        )
    )
