"""Layout planning: pick the best construction for a target array.

This is the decision procedure the paper's results add up to.  Given
``(v, k)`` and a size budget (Condition 4), enumerate every applicable
construction with its predicted size and balance quality, and build the
best one:

1. **ring** — ring layout, needs ``k <= M(v)``; perfectly balanced,
   size ``k(v-1)``.
2. **flow_single** — one copy of the smallest known BIBD with
   flow-assigned parity (Section 4); parity spread ≤ 1, size ``r``.
3. **flow_lcm** — ``lcm(b, v)/b`` copies, perfectly balanced
   (Corollary 17), size ``r·lcm(b,v)/b``.
4. **removal** — Theorems 8/9: start from a prime power ``v+i``
   (``i(i-1) <= k-i``) and delete ``i`` disks; near-perfect balance,
   size ``k(v+i-1)``.
5. **stairway** — Theorems 10-12: perturb a prime power ``q < v``;
   approximately balanced, size ``k(c-1)(q-1)``.
6. **hg** — Holland–Gibson ``k``-copy baseline; perfectly balanced,
   size ``k·r`` (kept for comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..algebra import min_prime_power_factor, is_prime_power
from ..designs import best_design, candidate_constructions
from ..layouts import (
    FEASIBLE_SIZE_LIMIT,
    Layout,
    find_smallest_stairway_plan,
    find_stairway_plan,
    holland_gibson_layout,
    layout_from_design,
    remove_disks,
    ring_layout,
    stairway_layout,
)
from ..designs.ring_design import ring_design

__all__ = [
    "LayoutPlan",
    "NoFeasiblePlanError",
    "nearest_feasible",
    "plan_layout",
    "enumerate_plans",
]


class NoFeasiblePlanError(ValueError):
    """No construction for ``(v, k)`` fits the size budget.

    Carries the request and the nearest feasible alternatives so
    callers (and the CLI) can point users at parameters that *do* work.

    Attributes:
        v, k: the requested array and stripe size.
        max_size: the Condition 4 budget that was exceeded.
        require_balanced: whether perfect balance was demanded.
        smallest: the cheapest candidate plan, if any applied at all.
        alternatives: nearby feasible ``(v, k, method, size)`` tuples,
            closest first.
    """

    def __init__(
        self,
        v: int,
        k: int,
        max_size: int,
        require_balanced: bool,
        smallest: "LayoutPlan | None",
        alternatives: list[tuple[int, int, str, int]],
    ):
        self.v = v
        self.k = k
        self.max_size = max_size
        self.require_balanced = require_balanced
        self.smallest = smallest
        self.alternatives = alternatives
        msg = (
            f"no feasible layout for v={v}, k={k} within size {max_size}"
            + (" requiring perfect balance" if require_balanced else "")
            + "; smallest candidate: "
            + (
                f"{smallest.method} at {smallest.predicted_size}"
                if smallest is not None
                else "none"
            )
        )
        if alternatives:
            msg += "; nearest feasible: " + ", ".join(
                f"(v={av}, k={ak}) via {m} at size {s}"
                for av, ak, m, s in alternatives
            )
        super().__init__(msg)


@dataclass(frozen=True)
class LayoutPlan:
    """A chosen construction, with its predictions, before building.

    Attributes:
        v, k: target array and stripe size.
        method: construction tag (see module docstring).
        predicted_size: upper bound on the layout size (units/disk) the
            method will produce.  Exact for the geometric constructions
            (ring/removal/stairway); design-based methods may come in
            *smaller* when the generic redundancy reduction finds extra
            duplicate blocks at build time.
        balanced: whether parity balance is perfect (vs within one unit
            or the stairway band).
        detail: method-specific parameters (e.g. ``q, c, w``).
    """

    v: int
    k: int
    method: str
    predicted_size: int
    balanced: bool
    detail: dict
    _builder: Callable[[], Layout]

    def build(self) -> Layout:
        """Materialize the planned layout.

        Raises:
            AssertionError: if the built layout exceeds the predicted
                size (the feasibility decision would have been wrong).
        """
        layout = self._builder()
        if layout.size > self.predicted_size:
            raise AssertionError(
                f"{self.method}: predicted size {self.predicted_size}, "
                f"built {layout.size}"
            )
        return layout


def _removal_candidates(v: int, k: int) -> list[LayoutPlan]:
    """Theorem 8/9 plans: remove ``i`` disks from a prime power ``v+i``."""
    plans: list[LayoutPlan] = []
    i = 1
    while i * (i - 1) <= k - i and k - i >= 2:
        source = v + i
        if is_prime_power(source) and k <= source:
            ii = i  # bind loop variable
            plans.append(
                LayoutPlan(
                    v=v,
                    k=k,
                    method="removal",
                    predicted_size=k * (source - 1),
                    balanced=(i == 1),
                    detail={"source_v": source, "removed": i},
                    _builder=lambda: remove_disks(
                        ring_design(source, k), list(range(source - ii, source))
                    ),
                )
            )
            break  # smallest i gives the best balance; one plan suffices
        i += 1
    return plans


def enumerate_plans(v: int, k: int) -> list[LayoutPlan]:
    """All applicable constructions for ``(v, k)``, sorted by
    ``(predicted_size, imbalance)``.

    Raises:
        ValueError: if the parameters are out of range.
    """
    if not 2 <= k <= v:
        raise ValueError(f"need 2 <= k <= v, got v={v}, k={k}")
    plans: list[LayoutPlan] = []

    if k <= min_prime_power_factor(v):
        plans.append(
            LayoutPlan(
                v=v,
                k=k,
                method="ring",
                predicted_size=k * (v - 1),
                balanced=True,
                detail={},
                _builder=lambda: ring_layout(v, k),
            )
        )

    candidates = candidate_constructions(v, k)
    if candidates:
        design_name, b = candidates[0]
        r = k * b // v
        copies = math.lcm(b, v) // b
        plans.append(
            LayoutPlan(
                v=v,
                k=k,
                method="flow_single",
                predicted_size=r,
                balanced=(b % v == 0),
                detail={"design": design_name, "b": b},
                _builder=lambda: layout_from_design(
                    best_design(v, k), copies=1, parity="flow"
                ),
            )
        )
        if copies > 1:
            plans.append(
                LayoutPlan(
                    v=v,
                    k=k,
                    method="flow_lcm",
                    predicted_size=r * copies,
                    balanced=True,
                    detail={"design": design_name, "b": b, "copies": copies},
                    _builder=lambda: layout_from_design(
                        best_design(v, k), copies=copies, parity="flow"
                    ),
                )
            )
        plans.append(
            LayoutPlan(
                v=v,
                k=k,
                method="hg",
                predicted_size=k * r,
                balanced=True,
                detail={"design": design_name, "b": b},
                _builder=lambda: holland_gibson_layout(best_design(v, k)),
            )
        )

    plans.extend(_removal_candidates(v, k))

    stairway = find_stairway_plan(v, k)
    compact = find_smallest_stairway_plan(v, k)
    for method, sp in (("stairway", stairway), ("stairway_compact", compact)):
        if sp is None:
            continue
        if method == "stairway_compact" and stairway is not None and sp.q == stairway.q:
            continue  # identical plan; no separate candidate
        plans.append(
            LayoutPlan(
                v=v,
                k=k,
                method=method,
                predicted_size=sp.predicted_size(k),
                balanced=(sp.w == 0),
                detail={"q": sp.q, "c": sp.c, "w": sp.w},
                _builder=lambda sp=sp: stairway_layout(v, sp.q, k),
            )
        )

    plans.sort(key=lambda p: (p.predicted_size, not p.balanced))
    return plans


def _first_feasible(
    v: int, k: int, max_size: int, require_balanced: bool
) -> "LayoutPlan | None":
    """Cheapest plan for ``(v, k)`` within the budget, or ``None``."""
    try:
        plans = enumerate_plans(v, k)
    except ValueError:
        return None
    for plan in plans:
        if plan.predicted_size > max_size:
            continue
        if require_balanced and not plan.balanced:
            continue
        return plan
    return None


def nearest_feasible(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
    limit: int = 3,
    max_distance: int = 4,
) -> list[tuple[int, int, str, int]]:
    """Feasible ``(v, k)`` neighbors of an infeasible request.

    Scans parameter pairs in increasing Chebyshev distance from
    ``(v, k)`` (the request itself excluded) and returns up to
    ``limit`` tuples ``(v', k', method, predicted_size)`` that fit the
    same budget — the payload of :class:`NoFeasiblePlanError`.
    """
    found: list[tuple[int, int, str, int]] = []
    for dist in range(1, max_distance + 1):
        ring = sorted(
            {
                (v + dv, k + dk)
                for dv in range(-dist, dist + 1)
                for dk in range(-dist, dist + 1)
                if max(abs(dv), abs(dk)) == dist
            },
            key=lambda p: (abs(p[0] - v) + abs(p[1] - k), p),
        )
        for av, ak in ring:
            if not 2 <= ak <= av:
                continue
            plan = _first_feasible(av, ak, max_size, require_balanced)
            if plan is not None:
                found.append((av, ak, plan.method, plan.predicted_size))
                if len(found) >= limit:
                    return found
    return found


def plan_layout(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
) -> LayoutPlan:
    """Choose the smallest feasible construction for ``(v, k)``.

    Args:
        max_size: Condition 4 budget (units per disk).
        require_balanced: restrict to perfectly parity-balanced methods.

    Raises:
        NoFeasiblePlanError: if no applicable construction fits the
            budget; the error lists the nearest feasible alternatives.
    """
    plans = enumerate_plans(v, k)
    for plan in plans:
        if plan.predicted_size > max_size:
            continue
        if require_balanced and not plan.balanced:
            continue
        return plan
    raise NoFeasiblePlanError(
        v,
        k,
        max_size,
        require_balanced,
        plans[0] if plans else None,
        nearest_feasible(
            v, k, max_size=max_size, require_balanced=require_balanced
        ),
    )
