"""LRU-cached layout and mapping-table registry.

Planning a layout runs design search and a flow solve; building its
mapping tables is another full pass over the stripes.  A controller
serving traffic does neither on the hot path: it asks the registry,
which memoizes plans, built layouts, and :class:`AddressMapper` tables
so repeated ``(v, k)`` requests — the common case for a fleet of
identical arrays — cost one dict probe.

All entries are immutable (frozen dataclasses over tuples), so sharing
cached instances across callers is safe.
"""

from __future__ import annotations

from functools import lru_cache

from ..layouts import (
    FEASIBLE_SIZE_LIMIT,
    AddressMapper,
    Layout,
    StripeIncidence,
    stripe_incidence,
)
from ..layouts.identity_cache import IdentityLRU
from .planner import LayoutPlan, plan_layout

__all__ = [
    "get_plan",
    "get_layout",
    "get_mapper",
    "get_incidence",
    "registry_stats",
    "clear_registry",
]


@lru_cache(maxsize=256)
def get_plan(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
) -> LayoutPlan:
    """Cached :func:`repro.core.planner.plan_layout`."""
    return plan_layout(v, k, max_size=max_size, require_balanced=require_balanced)


@lru_cache(maxsize=64)
def get_layout(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
) -> Layout:
    """Cached build of the best feasible layout for ``(v, k)``.

    The layout is validated once here; callers can use it directly.

    Raises:
        NoFeasiblePlanError: if no construction fits the budget.
    """
    layout = get_plan(
        v, k, max_size=max_size, require_balanced=require_balanced
    ).build()
    layout.validate()
    return layout


@lru_cache(maxsize=64)
def _build_mapper(layout: Layout, iterations: int) -> AddressMapper:
    """Value-keyed backing store: equal layouts share one table set."""
    return AddressMapper(layout, iterations=iterations)


_mapper_cache = IdentityLRU(_build_mapper, maxsize=64)


def get_mapper(layout: Layout, *, iterations: int = 1) -> AddressMapper:
    """Cached :class:`AddressMapper` (flat lookup tables) for a layout.

    Two levels: an identity-keyed front (repeat probes with the same
    layout object never hash the stripe tuples — a fleet of controllers
    over one registry-cached layout pays one dict lookup each, even at
    10^6 stripes) over a value-keyed backing (equal-but-distinct
    layout objects still share one table set, hashed once per object).
    """
    return _mapper_cache(layout, iterations)


def _mapper_cache_clear() -> None:
    _mapper_cache.cache_clear()
    _build_mapper.cache_clear()


get_mapper.cache_info = _mapper_cache.cache_info
get_mapper.cache_clear = _mapper_cache_clear


def get_incidence(layout: Layout) -> StripeIncidence:
    """Cached CSR stripe-disk incidence for a layout.

    Shared by the metrics kernels, the conformance checks, and the
    simulator's batched rebuild scans — one build per layout.  (The
    cache lives in :func:`repro.layouts.stripe_incidence`; this alias
    keeps the registry the single entry point for cached tables.)
    """
    return stripe_incidence(layout)


def registry_stats() -> dict[str, tuple[int, int, int, int]]:
    """Cache statistics per registry level, as ``(hits, misses,
    maxsize, currsize)``."""
    return {
        "plan": tuple(get_plan.cache_info()),
        "layout": tuple(get_layout.cache_info()),
        "mapper": tuple(get_mapper.cache_info()),
        "incidence": tuple(stripe_incidence.cache_info()),
    }


def clear_registry() -> None:
    """Drop every cached plan, layout, mapping table, and incidence."""
    get_plan.cache_clear()
    get_layout.cache_clear()
    get_mapper.cache_clear()
    stripe_incidence.cache_clear()
