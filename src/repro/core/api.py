"""Top-level convenience API.

The three calls a downstream user needs:

>>> import repro
>>> layout = repro.build_layout(9, 3)           # auto-planned
>>> metrics = repro.evaluate(layout)            # Conditions 2-4 metrics
>>> design = repro.build_design(7, 3)           # smallest known BIBD

These doctests run in ``make check`` (``make doctest``), so every
example here is guaranteed to stay executable.
"""

from __future__ import annotations

from ..designs import BlockDesign, best_design
from ..layouts import FEASIBLE_SIZE_LIMIT, Layout, LayoutMetrics, evaluate_layout
from .planner import LayoutPlan, plan_layout

__all__ = ["build_design", "build_layout", "evaluate", "plan"]


def build_design(v: int, k: int, *, max_blocks: int | None = None) -> BlockDesign:
    """Smallest available BIBD for ``(v, k)`` (see
    :func:`repro.designs.best_design`).

    Example:
        >>> from repro import build_design
        >>> design = build_design(7, 3)
        >>> design.v, design.k, len(design.blocks) > 0
        (7, 3, True)
        >>> design.verify()                     # raises on a non-BIBD
    """
    return best_design(v, k, max_blocks=max_blocks)


def plan(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
) -> LayoutPlan:
    """Plan (without building) the best layout construction for
    ``(v, k)`` under a size budget.

    Example:
        >>> from repro import plan
        >>> p = plan(9, 3)
        >>> p.v, p.k, p.predicted_size > 0
        (9, 3, True)
        >>> layout = p.build()                  # plans are lazy
        >>> layout.v
        9
    """
    return plan_layout(v, k, max_size=max_size, require_balanced=require_balanced)


def build_layout(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
) -> Layout:
    """Build the best feasible parity-declustered layout for a
    ``v``-disk array with stripe size ``k``.

    Example:
        >>> from repro import build_layout
        >>> layout = build_layout(9, 3)
        >>> layout.v, layout.b > 0
        (9, True)
        >>> layout.validate()                   # Condition 1 holds

    Raises:
        NoFeasiblePlanError: if no construction fits the size budget;
            the error lists the nearest feasible ``(v, k)`` alternatives.
    """
    return plan(
        v, k, max_size=max_size, require_balanced=require_balanced
    ).build()


def evaluate(layout: Layout) -> LayoutMetrics:
    """Metrics for a layout against the paper's Conditions 2-4.

    Example:
        >>> from repro import build_layout, evaluate
        >>> m = evaluate(build_layout(9, 3))
        >>> m.parity_spread <= 1                # max-min parity units/disk
        True
        >>> 0 < m.workload_max <= 1.0           # rebuild read fraction
        True
    """
    return evaluate_layout(layout)
