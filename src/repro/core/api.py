"""Top-level convenience API.

The three calls a downstream user needs:

>>> import repro
>>> layout = repro.build_layout(33, 5)          # auto-planned
>>> metrics = repro.evaluate(layout)            # Conditions 2-4 metrics
>>> design = repro.build_design(13, 4)          # smallest known BIBD
"""

from __future__ import annotations

from ..designs import BlockDesign, best_design
from ..layouts import FEASIBLE_SIZE_LIMIT, Layout, LayoutMetrics, evaluate_layout
from .planner import LayoutPlan, plan_layout

__all__ = ["build_design", "build_layout", "evaluate", "plan"]


def build_design(v: int, k: int, *, max_blocks: int | None = None) -> BlockDesign:
    """Smallest available BIBD for ``(v, k)`` (see
    :func:`repro.designs.best_design`)."""
    return best_design(v, k, max_blocks=max_blocks)


def plan(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
) -> LayoutPlan:
    """Plan (without building) the best layout construction for
    ``(v, k)`` under a size budget."""
    return plan_layout(v, k, max_size=max_size, require_balanced=require_balanced)


def build_layout(
    v: int,
    k: int,
    *,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    require_balanced: bool = False,
) -> Layout:
    """Build the best feasible parity-declustered layout for a
    ``v``-disk array with stripe size ``k``.

    Raises:
        NoFeasiblePlanError: if no construction fits the size budget;
            the error lists the nearest feasible ``(v, k)`` alternatives.
    """
    return plan(
        v, k, max_size=max_size, require_balanced=require_balanced
    ).build()


def evaluate(layout: Layout) -> LayoutMetrics:
    """Metrics for a layout against the paper's Conditions 2-4."""
    return evaluate_layout(layout)
