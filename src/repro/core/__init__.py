"""Public API: planning, building, evaluating, and caching layouts."""

from .api import build_design, build_layout, evaluate, plan
from .feasibility import FeasibilityCensus, census
from .planner import (
    LayoutPlan,
    NoFeasiblePlanError,
    enumerate_plans,
    nearest_feasible,
    plan_layout,
)
from .registry import (
    clear_registry,
    get_incidence,
    get_layout,
    get_mapper,
    get_plan,
    registry_stats,
)

__all__ = [
    "build_design",
    "build_layout",
    "evaluate",
    "plan",
    "FeasibilityCensus",
    "census",
    "LayoutPlan",
    "NoFeasiblePlanError",
    "enumerate_plans",
    "nearest_feasible",
    "plan_layout",
    "clear_registry",
    "get_incidence",
    "get_layout",
    "get_mapper",
    "get_plan",
    "registry_stats",
]
