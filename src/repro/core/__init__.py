"""Public API: planning, building, and evaluating layouts."""

from .api import build_design, build_layout, evaluate, plan
from .feasibility import FeasibilityCensus, census
from .planner import LayoutPlan, enumerate_plans, plan_layout

__all__ = [
    "build_design",
    "build_layout",
    "evaluate",
    "plan",
    "FeasibilityCensus",
    "census",
    "LayoutPlan",
    "enumerate_plans",
    "plan_layout",
]
