"""The Conditions 1-4 conformance checker.

:func:`check_layout` is construction-agnostic: it takes any
:class:`Layout` plus the tolerances the construction's theorems entitle
it to (perfect balance, the one-unit band, a stairway workload bound)
and returns a :class:`ConformanceReport` with one
:class:`ConditionResult` per condition.  Violations carry the measured
value and the bound it broke, so a failing refactor points straight at
the broken invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import get_incidence
from ..flow.parity import parity_loads
from ..layouts import (
    FEASIBLE_SIZE_LIMIT,
    AddressMapper,
    Layout,
    LayoutError,
)

__all__ = ["ConditionResult", "ConformanceReport", "check_layout"]


@dataclass(frozen=True)
class ConditionResult:
    """Outcome of one condition check.

    Attributes:
        condition: paper condition number (1-4).
        name: short label for reports.
        passed: whether the layout conforms.
        measured: the observed quantity, rendered.
        bound: the limit it was held to, rendered.
        detail: failure specifics (empty on pass).
    """

    condition: int
    name: str
    passed: bool
    measured: str
    bound: str
    detail: str = ""

    def row(self) -> str:
        """One line for the CLI table."""
        mark = "ok " if self.passed else "FAIL"
        out = f"  C{self.condition} {self.name:<24} {mark}  {self.measured} (bound {self.bound})"
        if self.detail:
            out += f"  [{self.detail}]"
        return out


@dataclass(frozen=True)
class ConformanceReport:
    """Full Conditions 1-4 verdict for one layout."""

    layout_name: str
    v: int
    size: int
    b: int
    results: tuple[ConditionResult, ...]

    @property
    def passed(self) -> bool:
        """True when every condition holds."""
        return all(r.passed for r in self.results)

    def violations(self) -> tuple[ConditionResult, ...]:
        """The failed condition results."""
        return tuple(r for r in self.results if not r.passed)

    def summary(self) -> str:
        """Multi-line report: header plus one row per condition."""
        head = (
            f"{self.layout_name or '(unnamed)'}: v={self.v} size={self.size} "
            f"b={self.b} -> {'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join([head] + [r.row() for r in self.results])


def _check_structure(layout: Layout) -> ConditionResult:
    """Condition 1 plus full coverage, via the layout's own validator."""
    try:
        layout.validate()
    except LayoutError as exc:
        return ConditionResult(
            condition=1,
            name="single-unit-per-disk",
            passed=False,
            measured="invalid",
            bound="valid layout",
            detail=str(exc),
        )
    return ConditionResult(
        condition=1,
        name="single-unit-per-disk",
        passed=True,
        measured=f"{layout.total_units()} units / {layout.b} stripes",
        bound="one unit per disk per stripe",
    )


def _check_parity_balance(
    layout: Layout, spread_allowance: int
) -> ConditionResult:
    """Condition 2: parity counts within the allowed band, and each
    disk's count within the theorem's floor/ceil of its parity load
    (relaxed by the same allowance).

    Counts come from the shared sparse incidence (one ``bincount`` over
    the CSR parity pointers), so the check scales with ``nnz``, not
    ``b × v``."""
    counts = get_incidence(layout).parity_counts().tolist()
    spread = max(counts) - min(counts)
    loads = parity_loads([s.disks for s in layout.stripes], layout.v)
    off_band = [
        d
        for d, (c, load) in enumerate(zip(counts, loads))
        if not (
            np.floor(float(load)) - spread_allowance
            <= c
            <= np.ceil(float(load)) + spread_allowance
        )
    ]
    passed = spread <= spread_allowance and not off_band
    detail = ""
    if spread > spread_allowance:
        detail = f"per-disk parity counts range {min(counts)}..{max(counts)}"
    elif off_band:
        detail = f"disks {off_band} outside floor/ceil load band"
    return ConditionResult(
        condition=2,
        name="parity balance",
        passed=passed,
        measured=f"spread {spread}",
        bound=f"spread <= {spread_allowance}",
        detail=detail,
    )


def _check_reconstruction_balance(
    layout: Layout, workload_bound: float | None
) -> ConditionResult:
    """Condition 3: the maximum pairwise reconstruction workload stays
    within the construction's analytic bound.

    The workload matrix is accumulated from the sparse co-crossing
    path, so the sweep handles very large stripe sets."""
    inc = get_incidence(layout)
    k_max = int(inc.stripe_lengths().max())
    bound = (
        workload_bound
        if workload_bound is not None
        else (k_max - 1) / (layout.v - 1)
    )
    offdiag = inc.workloads()[~np.eye(layout.v, dtype=bool)]
    w_max = float(offdiag.max())
    passed = w_max <= bound + 1e-9
    return ConditionResult(
        condition=3,
        name="reconstruction balance",
        passed=passed,
        measured=f"max workload {w_max:.4f}",
        bound=f"<= {bound:.4f}",
        detail="" if passed else "some surviving disk is over-read on rebuild",
    )


def _check_mapping(
    layout: Layout, max_size: int, mapper_samples: int, seed: int
) -> ConditionResult:
    """Condition 4: the lookup table fits the budget, round-trips, and
    the batched engine agrees with the scalar path."""
    if layout.size > max_size:
        return ConditionResult(
            condition=4,
            name="mapping efficiency",
            passed=False,
            measured=f"size {layout.size}",
            bound=f"<= {max_size}",
            detail="layout exceeds the lookup-table budget",
        )
    mapper = AddressMapper(layout)
    expected = layout.v * layout.size - layout.b
    if mapper.capacity != expected:
        return ConditionResult(
            condition=4,
            name="mapping efficiency",
            passed=False,
            measured=f"capacity {mapper.capacity}",
            bound=f"v*size - b = {expected}",
            detail="mapper address space does not match the layout",
        )
    rng = np.random.default_rng(seed)
    n = min(mapper_samples, mapper.capacity)
    sample = rng.choice(mapper.capacity, size=n, replace=False)
    disks, offsets = mapper.map_batch(sample)
    for i, lba in enumerate(sample.tolist()):
        pu = mapper.logical_to_physical(lba)
        if (pu.disk, pu.offset) != (int(disks[i]), int(offsets[i])):
            return ConditionResult(
                condition=4,
                name="mapping efficiency",
                passed=False,
                measured=f"batch ({int(disks[i])},{int(offsets[i])}) at lba {lba}",
                bound=f"scalar ({pu.disk},{pu.offset})",
                detail="batched and scalar mappings disagree",
            )
        back, is_par = mapper.physical_to_logical(pu.disk, pu.offset)
        if is_par or back != lba:
            return ConditionResult(
                condition=4,
                name="mapping efficiency",
                passed=False,
                measured=f"round-trip {lba} -> {back}",
                bound="identity",
                detail="logical/physical round-trip failed",
            )
    return ConditionResult(
        condition=4,
        name="mapping efficiency",
        passed=True,
        measured=f"size {layout.size}, {n} addresses round-tripped",
        bound=f"size <= {max_size}",
    )


def check_layout(
    layout: Layout,
    *,
    parity_spread_allowance: int = 1,
    workload_bound: float | None = None,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    mapper_samples: int = 256,
    seed: int = 0,
    extra_results: tuple[ConditionResult, ...] = (),
) -> ConformanceReport:
    """Evaluate a layout against the paper's Conditions 1-4.

    Args:
        layout: any layout, from any construction.
        parity_spread_allowance: Condition 2 band — 0 for perfectly
            balanced constructions, 1 for the theorems' one-unit band.
        workload_bound: Condition 3 cap on the maximum pairwise
            reconstruction workload; default is the declustering ideal
            ``(k_max - 1)/(v - 1)``.
        max_size: Condition 4 lookup-table budget.
        mapper_samples: number of addresses to round-trip through the
            mapping engine (scalar vs batch).
        seed: sampling seed.
        extra_results: construction-specific results (e.g. dual-parity
            Q balance) appended to the report.

    Returns:
        A :class:`ConformanceReport`; ``report.passed`` is the verdict.
    """
    structure = _check_structure(layout)
    results = [structure]
    if structure.passed:
        results.append(_check_parity_balance(layout, parity_spread_allowance))
        results.append(_check_reconstruction_balance(layout, workload_bound))
        results.append(_check_mapping(layout, max_size, mapper_samples, seed))
    results.extend(extra_results)
    return ConformanceReport(
        layout_name=layout.name,
        v=layout.v,
        size=layout.size,
        b=layout.b,
        results=tuple(results),
    )
