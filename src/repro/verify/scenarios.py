"""Conformance scenario generation: sweep every construction family.

A scenario names a construction, how to build it, and the tolerances
its theorems entitle it to.  :func:`default_scenarios` covers the
planner's catalog picks over ~20 ``(v, k)`` pairs plus one explicit
scenario per construction family (ring, reduction, complement,
removal, stairway, Holland-Gibson, RAID5, dual-parity, randomized), so
``python -m repro verify --all`` exercises every code path that can
produce a layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.planner import LayoutPlan, enumerate_plans, plan_layout
from ..designs import best_design, ring_design
from ..layouts import (
    FEASIBLE_SIZE_LIMIT,
    Layout,
    holland_gibson_layout,
    layout_from_design,
    raid5_layout,
    random_layout,
    remove_disks,
    ring_layout,
    with_dual_parity,
)
from .conformance import ConditionResult, ConformanceReport, check_layout

__all__ = [
    "ConformanceScenario",
    "catalog_pairs",
    "default_scenarios",
    "run_scenario",
    "run_conformance_sweep",
    "scenarios_for_pair",
]

#: The catalog sweep: small enough to verify in seconds, wide enough to
#: hit every planner method (ring, flow_single, flow_lcm, removal,
#: stairway, reductions thm4/5/6, complement-backed designs).
_CATALOG_PAIRS: tuple[tuple[int, int], ...] = (
    (7, 3),
    (8, 3),
    (9, 3),
    (9, 4),
    (10, 4),
    (11, 4),
    (12, 3),
    (13, 3),
    (13, 4),
    (15, 4),
    (16, 4),
    (16, 5),
    (7, 5),
    (9, 7),
    (17, 4),
    (19, 3),
    (21, 5),
    (24, 5),
    (25, 6),
    (33, 5),
)


def catalog_pairs() -> list[tuple[int, int]]:
    """The default ``(v, k)`` sweep over the design catalog."""
    return list(_CATALOG_PAIRS)


@dataclass(frozen=True)
class ConformanceScenario:
    """One construction to verify, with its entitled tolerances.

    Attributes:
        name: report label (family, construction, parameters).
        family: construction family tag.
        build: zero-argument layout builder.
        parity_spread_allowance: Condition 2 band (0 = perfect).
        workload_bound: Condition 3 cap; ``None`` = the declustering
            ideal ``(k_max - 1)/(v - 1)``.
        max_size: Condition 4 budget.
        extra_checks: optional construction-specific checks run on the
            built layout (e.g. dual-parity Q balance).
    """

    name: str
    family: str
    build: Callable[[], Layout]
    parity_spread_allowance: int = 1
    workload_bound: float | None = None
    max_size: int = FEASIBLE_SIZE_LIMIT
    extra_checks: Callable[[Layout], tuple[ConditionResult, ...]] | None = field(
        default=None, compare=False
    )


def _plan_scenario(plan: LayoutPlan, *, max_size: int) -> ConformanceScenario:
    """Scenario for a planner-chosen construction, with tolerances
    derived from the plan's own guarantees."""
    workload_bound = None
    if plan.method.startswith("stairway"):
        # Theorems 10-12 bound rebuild reads by the source array: the
        # perturbed prime power q, not v.
        workload_bound = (plan.k - 1) / (plan.detail["q"] - 1)
    return ConformanceScenario(
        name=f"{plan.method}:v{plan.v}k{plan.k}",
        family="catalog",
        build=plan.build,
        parity_spread_allowance=0 if plan.balanced else 1,
        workload_bound=workload_bound,
        max_size=max_size,
    )


def _dual_parity_checks(layout: Layout) -> tuple[ConditionResult, ...]:
    """Dual-parity extension: Q units valid and balanced within one."""
    dual = with_dual_parity(layout)
    try:
        dual.validate()
    except ValueError as exc:
        return (
            ConditionResult(
                condition=2,
                name="dual-parity Q validity",
                passed=False,
                measured="invalid",
                bound="valid P+Q layout",
                detail=str(exc),
            ),
        )
    q_counts = dual.q_counts()
    spread = max(q_counts) - min(q_counts)
    return (
        ConditionResult(
            condition=2,
            name="dual-parity Q balance",
            passed=spread <= 1,
            measured=f"Q spread {spread}",
            bound="spread <= 1",
        ),
    )


def _family_scenarios(max_size: int) -> list[ConformanceScenario]:
    """One explicit scenario per construction family, independent of
    what the planner would pick."""
    return [
        ConformanceScenario(
            name="raid5:v5",
            family="raid5",
            build=lambda: raid5_layout(5),
            parity_spread_allowance=0,
            max_size=max_size,
        ),
        ConformanceScenario(
            name="ring:v11k4",
            family="ring",
            build=lambda: ring_layout(11, 4),
            parity_spread_allowance=0,
            max_size=max_size,
        ),
        ConformanceScenario(
            name="hg:v9k3",
            family="holland_gibson",
            build=lambda: holland_gibson_layout(best_design(9, 3)),
            parity_spread_allowance=0,
            max_size=max_size,
        ),
        ConformanceScenario(
            name="reduction:v13k4",
            family="reduction",
            build=lambda: layout_from_design(best_design(13, 4), parity="flow"),
            max_size=max_size,
        ),
        ConformanceScenario(
            name="complement:v9k7",
            family="complement",
            build=lambda: layout_from_design(best_design(9, 7), parity="flow"),
            max_size=max_size,
        ),
        ConformanceScenario(
            name="removal:v8k4-thm8",
            family="removal",
            build=lambda: remove_disks(ring_design(9, 4), [8]),
            parity_spread_allowance=0,
            max_size=max_size,
        ),
        ConformanceScenario(
            name="removal:v11k5-thm9",
            family="removal",
            build=lambda: remove_disks(ring_design(13, 5), [11, 12]),
            max_size=max_size,
        ),
        ConformanceScenario(
            name="dual:v7k3",
            family="dual",
            build=lambda: ring_layout(7, 3),
            parity_spread_allowance=0,
            max_size=max_size,
            extra_checks=_dual_parity_checks,
        ),
        ConformanceScenario(
            name="randomized:v10k4",
            family="randomized",
            build=lambda: random_layout(10, 4, stripes_per_disk=8, seed=1),
            # Random placement balances reconstruction only in
            # expectation; the hard cap is reading no survivor fully.
            workload_bound=1.0,
            max_size=max_size,
        ),
    ]


def default_scenarios(
    *,
    pairs: list[tuple[int, int]] | None = None,
    max_size: int = FEASIBLE_SIZE_LIMIT,
    include_families: bool = True,
) -> list[ConformanceScenario]:
    """The full sweep: planner picks over the catalog pairs plus the
    per-family scenarios."""
    scenarios = [
        _plan_scenario(plan_layout(v, k, max_size=max_size), max_size=max_size)
        for v, k in (pairs if pairs is not None else catalog_pairs())
    ]
    if include_families:
        scenarios.extend(_family_scenarios(max_size))
    return scenarios


def scenarios_for_pair(
    v: int, k: int, *, max_size: int = FEASIBLE_SIZE_LIMIT
) -> list[ConformanceScenario]:
    """Every applicable construction for one ``(v, k)``, as scenarios.

    Raises:
        ValueError: if the parameters are out of range.
    """
    return [
        _plan_scenario(plan, max_size=max_size)
        for plan in enumerate_plans(v, k)
        if plan.predicted_size <= max_size
    ]


def run_scenario(scenario: ConformanceScenario) -> ConformanceReport:
    """Build a scenario's layout and check it against Conditions 1-4."""
    layout = scenario.build()
    extra: tuple[ConditionResult, ...] = ()
    if scenario.extra_checks is not None:
        extra = scenario.extra_checks(layout)
    return check_layout(
        layout,
        parity_spread_allowance=scenario.parity_spread_allowance,
        workload_bound=scenario.workload_bound,
        max_size=scenario.max_size,
        extra_results=extra,
    )


def run_conformance_sweep(
    scenarios: list[ConformanceScenario] | None = None,
) -> list[tuple[ConformanceScenario, ConformanceReport]]:
    """Run a scenario list (default: the full sweep); returns
    ``(scenario, report)`` pairs in order."""
    todo = scenarios if scenarios is not None else default_scenarios()
    return [(sc, run_scenario(sc)) for sc in todo]
