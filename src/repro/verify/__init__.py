"""Layout conformance checking: the paper's Conditions 1-4 as a
reusable verification subsystem.

Any :class:`repro.layouts.Layout` — from the planner, a construction
module, or a deserialized table — can be checked against:

1. **Condition 1** (reconstructability): at most one unit per disk per
   stripe, one parity unit per stripe, full rectangular coverage;
2. **Condition 2** (parity balance): per-disk parity counts within the
   paper's one-unit band (tightened to exact balance for the perfectly
   balanced constructions);
3. **Condition 3** (reconstruction balance): the maximum pairwise
   reconstruction workload against the construction's analytic bound;
4. **Condition 4** (mapping efficiency): the lookup table fits the size
   budget and the batched mapping engine agrees with the scalar path.

:mod:`repro.verify.scenarios` sweeps every construction family in the
library (catalog/planner picks, reductions, complements, ring, removal,
stairway, Holland-Gibson, dual-parity, randomized); ``python -m repro
verify --all`` runs the sweep from the command line.
"""

from .conformance import (
    ConditionResult,
    ConformanceReport,
    check_layout,
)
from .scenarios import (
    ConformanceScenario,
    catalog_pairs,
    default_scenarios,
    run_conformance_sweep,
    run_scenario,
    scenarios_for_pair,
)

__all__ = [
    "ConditionResult",
    "ConformanceReport",
    "check_layout",
    "ConformanceScenario",
    "catalog_pairs",
    "default_scenarios",
    "run_conformance_sweep",
    "run_scenario",
    "scenarios_for_pair",
]
