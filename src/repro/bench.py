"""Benchmark suites behind ``python -m repro bench``.

Two artifact-writing suites pin the scale story:

* **mapping** (``BENCH_mapping.json``) — batched address translation
  (:meth:`AddressMapper.map_batch`) vs the scalar per-address loop;
* **sim** (``BENCH_sim.json``) — the compiled simulation pipeline:
  workload events/sec (analytic solver and compiled executor vs the
  scalar per-event path), vectorized vs scalar rebuild-scan planning at
  10^4/10^5/10^6 stripes, and sparse-incidence ``evaluate_layout`` at
  the same scales.

Each run cross-checks that the fast and scalar paths agree before
timing is trusted, and each payload carries a ``passed`` verdict
against its acceptance bar (mapping >= 5x, sim workload >= 10x).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from .core import clear_registry, get_layout, get_mapper
from .layouts import Layout, evaluate_layout, ring_layout, stripe_incidence
from .layouts.layout import Stripe
from .sim import WorkloadConfig, simulate_rebuild, simulate_workload

__all__ = ["run_mapping_bench", "run_sim_bench", "run_bench_suite", "tiled_layout"]

MAPPING_BATCH = 100_000
MAPPING_CASES = [(9, 3), (13, 4), (33, 5)]

WORKLOAD_REQUESTS = 100_000
MIXED_REQUESTS = 30_000
REBUILD_STRIPES = [10_000, 100_000, 1_000_000]
#: Full event-driven rebuilds are timed up to this stripe count; above
#: it only the scan planning is compared (the event engine itself is
#: identical between modes, so simulating 10^6 stripes twice would just
#: burn minutes re-measuring the same queue arithmetic).
FULL_REBUILD_LIMIT = 100_000


# ----------------------------------------------------------------------
# Mapping suite (PR-1 artifact, kept runnable from the CLI)
# ----------------------------------------------------------------------


def _mapping_case(v: int, k: int) -> dict:
    """Time both translation paths once and cross-check element-wise."""
    mapper = get_mapper(get_layout(v, k), iterations=4)
    rng = np.random.default_rng(7)
    lbas = rng.integers(0, mapper.capacity, size=MAPPING_BATCH, dtype=np.int64)
    lba_list = lbas.tolist()

    t0 = time.perf_counter()
    to_phys = mapper.logical_to_physical
    scalar = [(pu.disk, pu.offset) for pu in map(to_phys, lba_list)]
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    disks, offsets = mapper.map_batch(lbas)
    t_batch = time.perf_counter() - t0

    assert scalar == list(zip(disks.tolist(), offsets.tolist()))
    return {
        "v": v,
        "k": k,
        "layout_size": mapper.layout.size,
        "addresses": MAPPING_BATCH,
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "scalar_maps_per_s": MAPPING_BATCH / t_scalar,
        "batch_maps_per_s": MAPPING_BATCH / t_batch,
        "speedup": t_scalar / t_batch,
    }


def run_mapping_bench(out_dir: str | Path = ".") -> dict:
    """Run the mapping suite and write ``BENCH_mapping.json``."""
    rows = [_mapping_case(v, k) for v, k in MAPPING_CASES]
    worst = min(r["speedup"] for r in rows)
    payload = {
        "benchmark": "mapping",
        "batch_addresses": MAPPING_BATCH,
        "cases": rows,
        "min_speedup": worst,
        "passed": worst >= 5.0,
    }
    out = Path(out_dir) / "BENCH_mapping.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    for r in rows:
        print(
            f"build({r['v']},{r['k']}) size={r['layout_size']:>4}: "
            f"scalar {r['scalar_s'] * 1e3:7.1f} ms, "
            f"batch {r['batch_s'] * 1e3:6.2f} ms  -> {r['speedup']:6.1f}x"
        )
    print(f"min speedup {worst:.1f}x (bar: 5x)  -> wrote {out}")
    return payload


# ----------------------------------------------------------------------
# Simulation suite
# ----------------------------------------------------------------------


def _check_workload_agreement(a, b) -> None:
    if (
        a.scheduled != b.scheduled
        or a.per_disk_ios != b.per_disk_ios
        or a.duration_ms != b.duration_ms
    ):
        raise AssertionError("batched and scalar workload runs disagree")


def _workload_case(
    label: str,
    layout: Layout,
    cfg: WorkloadConfig,
    requests: int,
    failed_disk: int | None = None,
) -> dict:
    duration = cfg.interarrival_ms * requests
    t0 = time.perf_counter()
    batched = simulate_workload(
        layout, duration_ms=duration, config=cfg, failed_disk=failed_disk,
        batched=True,
    )
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar = simulate_workload(
        layout, duration_ms=duration, config=cfg, failed_disk=failed_disk,
        batched=False,
    )
    t_scalar = time.perf_counter() - t0
    _check_workload_agreement(batched, scalar)
    return {
        "case": label,
        "read_fraction": cfg.read_fraction,
        "failed_disk": failed_disk,
        "requests": batched.scheduled,
        "scalar_s": t_scalar,
        "batched_s": t_batch,
        "scalar_events_per_s": batched.scheduled / t_scalar,
        "batched_events_per_s": batched.scheduled / t_batch,
        "speedup": t_scalar / t_batch,
    }


def tiled_layout(base: Layout, target_stripes: int) -> Layout:
    """Tile a base layout vertically until it holds ``target_stripes``
    stripes — the cheap way to make benchmark-scale stripe sets with
    real declustering structure."""
    reps = max(1, -(-target_stripes // base.b))
    stripes: list[Stripe] = []
    for r in range(reps):
        shift = r * base.size
        for s in base.stripes:
            stripes.append(
                Stripe(
                    units=tuple((d, off + shift) for d, off in s.units),
                    parity_index=s.parity_index,
                )
            )
    return Layout(
        v=base.v,
        size=base.size * reps,
        stripes=tuple(stripes),
        name=f"tiled({base.name or 'base'}x{reps})",
    )


def _scalar_scan_walk(layout: Layout, failed: int):
    """The pre-compile scan plan: stripe-by-stripe Python (baseline)."""
    queue = []
    survivors = []
    for sid, stripe in enumerate(layout.stripes):
        if not any(d == failed for d, _ in stripe.units):
            continue
        queue.append(sid)
        survivors.append([(d, off) for d, off in stripe.units if d != failed])
    return queue, survivors


def _rebuild_case(layout: Layout) -> dict:
    row: dict = {"stripes": layout.b, "v": layout.v, "size": layout.size}

    # Scan planning: vectorized CSR pass vs the Python stripe walk.
    # "Cold" pays the one-time incidence build; "warm" is the
    # steady-state cost once the registry has the CSR cached (it is
    # shared with the metrics and conformance paths, and with every
    # subsequent rebuild of any disk).
    stripe_incidence.cache_clear()
    t0 = time.perf_counter()
    inc = stripe_incidence(layout)
    sids, _, surv_indptr, _, _ = inc.rebuild_scan(0)
    row["batched_plan_cold_s"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    inc = stripe_incidence(layout)
    sids, _, surv_indptr, _, _ = inc.rebuild_scan(0)
    row["batched_plan_warm_s"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    queue, survivors = _scalar_scan_walk(layout, 0)
    row["scalar_plan_s"] = time.perf_counter() - t0
    assert queue == sids.tolist()
    assert [len(s) for s in survivors] == np.diff(surv_indptr).tolist()
    row["plan_speedup_warm"] = row["scalar_plan_s"] / row["batched_plan_warm_s"]
    row["crossing_stripes"] = len(queue)

    if layout.b <= FULL_REBUILD_LIMIT:
        # Warm allocator/caches once; the event-driven part is identical
        # between modes, so what this row pins is "no regression".
        simulate_rebuild(layout, failed_disk=0, parallelism=8, batched=True)
        t0 = time.perf_counter()
        a = simulate_rebuild(layout, failed_disk=0, parallelism=8, batched=True)
        row["batched_rebuild_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = simulate_rebuild(layout, failed_disk=0, parallelism=8, batched=False)
        row["scalar_rebuild_s"] = time.perf_counter() - t0
        if a != b:
            raise AssertionError("batched and scalar rebuilds disagree")
        row["rebuild_speedup"] = row["scalar_rebuild_s"] / row["batched_rebuild_s"]
        row["rebuild_sim_ms"] = a.duration_ms
    return row


def _metrics_case(layout: Layout) -> dict:
    t0 = time.perf_counter()
    m = evaluate_layout(layout)
    elapsed = time.perf_counter() - t0
    return {
        "stripes": layout.b,
        "evaluate_s": elapsed,
        "workload_max": m.workload_max,
        "parity_spread": m.parity_spread,
        # What the old dense (b, v) incidence would have allocated.
        "dense_incidence_bytes_avoided": layout.b * layout.v * 8,
    }


def run_sim_bench(out_dir: str | Path = ".") -> dict:
    """Run the simulation suite and write ``BENCH_sim.json``."""
    layout = get_layout(13, 4)
    workload_rows = [
        _workload_case(
            "read_only_solver",
            layout,
            WorkloadConfig(interarrival_ms=5.0, read_fraction=1.0, seed=7),
            WORKLOAD_REQUESTS,
        ),
        _workload_case(
            "degraded_read_only",
            layout,
            WorkloadConfig(interarrival_ms=5.0, read_fraction=1.0, seed=7),
            WORKLOAD_REQUESTS,
            failed_disk=1,
        ),
        _workload_case(
            "mixed_rw_executor",
            layout,
            WorkloadConfig(interarrival_ms=5.0, read_fraction=0.7, seed=7),
            MIXED_REQUESTS,
        ),
    ]

    base = ring_layout(9, 3)
    rebuild_rows = []
    metrics_rows = []
    for target in REBUILD_STRIPES:
        layout = tiled_layout(base, target)
        rebuild_rows.append(_rebuild_case(layout))
        metrics_rows.append(_metrics_case(layout))
        # Tiled benchmark layouts are single-use: drop them from the
        # incidence/mapper caches so the suite's footprint stays flat.
        clear_registry()

    headline = max(
        r["speedup"] for r in workload_rows if r["read_fraction"] == 1.0
    )
    payload = {
        "benchmark": "sim",
        "workload": {
            "requests": WORKLOAD_REQUESTS,
            "cases": workload_rows,
        },
        "rebuild": rebuild_rows,
        "metrics": metrics_rows,
        "workload_speedup": headline,
        "passed": headline >= 10.0,
    }
    out = Path(out_dir) / "BENCH_sim.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    for r in workload_rows:
        print(
            f"workload {r['case']:<20} n={r['requests']:>6}: "
            f"scalar {r['scalar_s']:6.2f} s, batched {r['batched_s']:6.2f} s "
            f"-> {r['speedup']:5.1f}x ({r['batched_events_per_s']:,.0f} ev/s)"
        )
    for r in rebuild_rows:
        line = (
            f"rebuild b={r['stripes']:>8}: plan {r['scalar_plan_s']:6.2f} s -> "
            f"{r['batched_plan_warm_s']:6.3f} s warm "
            f"({r['plan_speedup_warm']:5.1f}x; cold {r['batched_plan_cold_s']:.2f} s)"
        )
        if "rebuild_speedup" in r:
            line += (
                f", full sim {r['scalar_rebuild_s']:5.2f} s -> "
                f"{r['batched_rebuild_s']:5.2f} s ({r['rebuild_speedup']:4.1f}x)"
            )
        print(line)
    for r in metrics_rows:
        print(
            f"metrics b={r['stripes']:>8}: evaluate_layout {r['evaluate_s']:5.2f} s "
            f"(sparse; skips {r['dense_incidence_bytes_avoided'] / 1e6:.0f} MB dense)"
        )
    print(
        f"workload speedup {headline:.1f}x (bar: 10x)  -> wrote {out}"
    )
    return payload


def run_bench_suite(suite: str = "all", out_dir: str | Path = ".") -> bool:
    """Run the requested suite(s); returns True when every acceptance
    bar passed.

    Raises:
        ValueError: on an unknown suite name.
    """
    if suite not in ("all", "mapping", "sim"):
        raise ValueError(f"unknown benchmark suite {suite!r}")
    ok = True
    if suite in ("all", "mapping"):
        ok = run_mapping_bench(out_dir)["passed"] and ok
    if suite in ("all", "sim"):
        ok = run_sim_bench(out_dir)["passed"] and ok
    return ok
