"""Benchmark suites behind ``python -m repro bench``.

Three artifact-writing suites pin the scale story:

* **mapping** (``BENCH_mapping.json``) — batched address translation
  (:meth:`AddressMapper.map_batch`) vs the scalar per-address loop,
  with the ``int32`` flat tables timed against an ``int64``-forced
  table set (the narrowing's before/after);
* **sim** (``BENCH_sim.json``) — the compiled simulation pipeline:
  workload events/sec (analytic solver and compiled executor vs the
  scalar per-event path), vectorized vs scalar rebuild-scan planning at
  10^4/10^5/10^6 stripes, sparse-incidence ``evaluate_layout`` at the
  same scales, and the **streaming memory case**: a mixed 4-shard
  fleet served through fixed-size compiled windows at 10^5 and 10^7
  requests, each in its own subprocess so ``ru_maxrss`` is a clean
  per-run high-water mark — peak RSS at the 100x horizon must stay
  within 1.5x of the small run (constant-memory claim), and the
  windowed report at 10^5 must equal the materialized one field for
  field;
* **service** (``BENCH_service.json``) — the fleet service: achieved
  throughput vs shard count at fixed offered load (the single-array
  row is the baseline), degraded-mode throughput while two arrays
  fail and rebuild concurrently under admission control, request-level
  shard balance per placement policy (the uniform-routing ``ring``
  baseline is ~2x max/min; ``p2c``/``weighted`` must hold <= 1.3x),
  a live grow migration (4 -> 8 shards under mixed traffic) that
  must finish with zero lost requests, every moved volume verified
  bit-for-bit, and post-migration balance <= 1.3x, and a
  **multi-core case**: the 8-shard healthy scenario executed as
  process-parallel shard groups (``workers=8``), whose report must be
  byte-identical to the serial run and whose wall-clock speedup must
  reach 2.5x on hosts with >= 8 usable cores (a smaller host is marked
  ``host_inadequate`` and its speedup is informational only; worker
  count, CPU count, and per-group wall times are recorded either way).

Each run cross-checks that the fast and scalar paths agree before
timing is trusted, and each payload carries a ``passed`` verdict
against its acceptance bar (mapping >= 5x, sim workload >= 10x, fleet
scaling >= 2.5x at 8 shards with verified degraded-mode rebuilds and
the balance/migration bars above); the mixed executor's before/after
speedup is reported alongside.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from .core import clear_registry, get_layout, get_mapper
from .layouts import (
    AddressMapper,
    Layout,
    evaluate_layout,
    ring_layout,
    stripe_incidence,
)
from .layouts.layout import Stripe
from .sim import WorkloadConfig, simulate_rebuild, simulate_workload

__all__ = [
    "peak_rss_mb",
    "run_mapping_bench",
    "run_sim_bench",
    "run_service_bench",
    "run_bench_suite",
    "tiled_layout",
]


def _vm_hwm_mb(status_path: str = "/proc/self/status") -> float | None:
    """Peak RSS from procfs ``VmHWM`` in MiB, or None when the file is
    unreadable or carries no high-water-mark line (non-Linux)."""
    try:
        with open(status_path) as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return None


def _rusage_mb(ru_maxrss: int, platform: str) -> float:
    """Normalize a ``getrusage`` peak to MiB: the BSD interface leaves
    the unit to the platform — KiB everywhere that matters except
    macOS, which reports bytes."""
    if platform == "darwin":
        ru_maxrss //= 1024
    return ru_maxrss / 1024.0


def peak_rss_mb() -> float | None:
    """Peak RSS of this process in MiB, or None when unavailable.

    Prefers ``/proc/self/status`` ``VmHWM`` (per-mm, so it resets
    across ``exec`` — ``ru_maxrss`` is inherited by subprocesses on
    Linux, which would make a child's reading reflect the parent's
    high-water mark); falls back to ``getrusage`` elsewhere.
    """
    hwm = _vm_hwm_mb()
    if hwm is not None:
        return hwm
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    return _rusage_mb(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss, sys.platform
    )

MAPPING_BATCH = 100_000
MAPPING_CASES = [(9, 3), (13, 4), (33, 5)]

WORKLOAD_REQUESTS = 100_000
MIXED_REQUESTS = 30_000
#: The mixed executor's speedup over the scalar path before the heap
#: churn work of the service PR (the committed BENCH_sim.json figure) —
#: the "before" in the before/after comparison the suite reports.
PRE_SERVICE_MIXED_SPEEDUP = 1.81
#: Mixed-path throughput before the batch-stepped executor replaced the
#: event heap on the compiled mixed path (the committed BENCH_sim.json
#: figure from the heap engine) — the "before" the calendar/eager
#: engines are gated against.
PRE_BATCHSTEP_MIXED_EVENTS_PER_S = 190_103
#: The batch-stepped mixed path must clear this multiple of the heap
#: baseline above (measured over the whole ``simulate_workload`` call,
#: compile included).
MIXED_EVENTS_GAIN_BAR = 3.0
#: Degraded mixed-path throughput before the eager tier learned the
#: degraded fast cases (the committed BENCH_sim.json figure from the
#: heap engine) — the "before" the planned-eager path is gated against.
PRE_EAGER_DEGRADED_MIXED_EVENTS_PER_S = 213_002
#: The planned-eager degraded mixed path must clear this multiple of
#: the heap baseline above (best runs reach ~1.7x; the bar leaves
#: room for suite-order timing noise).
DEGRADED_MIXED_GAIN_BAR = 1.4
REBUILD_STRIPES = [10_000, 100_000, 1_000_000]

#: Streaming memory case: a mixed fleet served through compiled
#: windows at a small and a 100x horizon, each probed in a fresh
#: subprocess (``ru_maxrss`` is a process-lifetime high-water mark, so
#: in-process before/after readings would be confounded).
STREAMING_SHARDS = 4
STREAMING_WINDOW = 65_536
#: Aggregate fleet interarrival — ~5 ms per shard, utilization < 1.
#: Constant-memory streaming only holds in the stable regime: an
#: overloaded open-loop queue's in-flight backlog is O(n) and
#: irreducible no matter how the stream is fed.
STREAMING_INTERARRIVAL_MS = 1.25
STREAMING_SMALL_REQUESTS = 100_000
STREAMING_LARGE_REQUESTS = 10_000_000
#: Peak RSS at the 100x horizon must stay within this multiple of the
#: small run's peak.
STREAMING_RSS_RATIO_BAR = 1.5

SERVICE_SHARD_COUNTS = [1, 2, 4, 8]
SERVICE_OFFERED_INTERARRIVAL_MS = 0.2  # aggregate: ~5000 req/s offered
SERVICE_DURATION_MS = 8_000.0
SERVICE_READ_FRACTION = 0.9
#: Request-level max/min shard balance the non-ring placement policies
#: must hold on uniform traffic (the ring baseline sits around 2x).
BALANCE_BAR = 1.3
#: Long enough (~40k requests) that p2c's randomized choices settle
#: inside the bar — at half this horizon the sample noise alone sits
#: right on it.
BALANCE_DURATION_MS = 8_000.0
MIGRATION_GROW = (4, 8)
MIGRATION_DURATION_MS = 3_000.0
#: Autoscale SLO case: a 2-shard fleet under quiet load, then a
#: scripted spike at this time pushes the per-shard arrival rate past
#: the policy threshold — the control loop must grow the fleet live.
AUTOSCALE_START_SHARDS = 2
AUTOSCALE_SPIKE_AT_MS = 500.0
AUTOSCALE_DURATION_MS = 2_000.0
#: p99 completion latency during the autoscale event (decision tick to
#: full convergence) must stay under this.  The spike saturates the
#: 2-shard fleet and volume copies contend with serving on the loaded
#: sources, so the during-event tail is seconds, not healthy-fleet
#: milliseconds — the bar pins that the backlog stays bounded and
#: drains (the deterministic case measures ~2.1 s; a cutover-hold or
#: drain regression pushes it past 4 s long before anything is lost).
AUTOSCALE_P99_BAR_MS = 4_000.0
#: Multi-core case: workers for the 8-shard healthy scenario.
PARALLEL_WORKERS = 8
#: Longer horizon than the scaling rows so process startup amortizes
#: and the wall-clock comparison measures simulation, not forking.
PARALLEL_DURATION_MS = 60_000.0
#: Wall-clock speedup the 8-worker run must achieve over the serial
#: run on a host with >= PARALLEL_WORKERS usable cores.  A host with
#: fewer cores than workers cannot produce a meaningful multi-core
#: measurement at all — the case is marked ``host_inadequate`` and the
#: speedup is excluded from the pass/fail verdict rather than gated on
#: a made-up proportional floor (a 1-core container once "passed" a
#: 0.25x bar, publishing a misleading scaling bar chart).  The
#: merge-equality check still binds everywhere.
PARALLEL_SPEEDUP_BAR = 2.5
#: Warm-serve case: repeated serves of one scenario through the warm
#: runtime (persistent pool + shared-memory transport + compiled-
#: artifact cache) at this worker count.  Spawn is deliberate: the
#: cold first serve pays the full cold path — pool boot (interpreter
#: start + registry priming), stream generation, routing — while warm
#: serves reuse all of it, so the warm-over-cold ratio measures
#: exactly what the runtime amortizes and does not depend on host
#: core count (both sides run on the same machine).
WARM_SERVE_WORKERS = 2
WARM_SERVE_MP_CONTEXT = "spawn"
WARM_SERVE_DURATION_MS = 4_000.0
#: Warm serves timed after the cold one; the steady-state wall is
#: their median.
WARM_SERVE_RUNS = 3
#: Warm steady-state must be at least this much faster than the cold
#: first serve.  Unlike the multi-core case there is no
#: host-inadequate escape: cold and warm run on the same host, so the
#: ratio is meaningful even on one core.
WARM_SERVE_SPEEDUP_BAR = 2.0


def warm_serve_scenario():
    """The scenario the ``warm_serve`` bench case (and the bench-guard
    regression case) serve repeatedly — one definition so the guard
    measures what the committed artifact recorded."""
    from .service import FleetScenario

    return FleetScenario(
        shards=4,
        v=9,
        k=3,
        duration_ms=WARM_SERVE_DURATION_MS,
        interarrival_ms=SERVICE_OFFERED_INTERARRIVAL_MS,
        read_fraction=SERVICE_READ_FRACTION,
        workload_seed=7,
        failures=(),
        admission=2,
        verify_data=True,
        seed=0,
    )


#: Full event-driven rebuilds are timed up to this stripe count; above
#: it only the scan planning is compared (the event engine itself is
#: identical between modes, so simulating 10^6 stripes twice would just
#: burn minutes re-measuring the same queue arithmetic).
FULL_REBUILD_LIMIT = 100_000


# ----------------------------------------------------------------------
# Mapping suite (PR-1 artifact, kept runnable from the CLI)
# ----------------------------------------------------------------------


def _mapping_case(v: int, k: int) -> dict:
    """Time both translation paths once and cross-check element-wise.

    Also times the same batch against an ``int64``-forced table set —
    the before/after for the ``int32`` narrowing of the flat tables
    (half the memory traffic on the hot mapping path).
    """
    layout = get_layout(v, k)
    mapper = get_mapper(layout, iterations=4)
    wide = AddressMapper(layout, iterations=4, index_dtype=np.int64)
    rng = np.random.default_rng(7)
    lbas = rng.integers(0, mapper.capacity, size=MAPPING_BATCH, dtype=np.int64)
    lba_list = lbas.tolist()

    t0 = time.perf_counter()
    to_phys = mapper.logical_to_physical
    scalar = [(pu.disk, pu.offset) for pu in map(to_phys, lba_list)]
    t_scalar = time.perf_counter() - t0

    # The batch paths run in ~1 ms, where single-shot timings are
    # allocator/cache noise: warm each once, then keep the best of a
    # few repetitions.
    def _best_of(fn, reps: int = 5) -> float:
        fn()
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_batch = _best_of(lambda: mapper.map_batch(lbas))
    t_batch64 = _best_of(lambda: wide.map_batch(lbas))
    disks, offsets = mapper.map_batch(lbas)
    disks64, offsets64 = wide.map_batch(lbas)

    assert scalar == list(zip(disks.tolist(), offsets.tolist()))
    assert (disks == disks64).all() and (offsets == offsets64).all()
    return {
        "v": v,
        "k": k,
        "layout_size": mapper.layout.size,
        "addresses": MAPPING_BATCH,
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "scalar_maps_per_s": MAPPING_BATCH / t_scalar,
        "batch_maps_per_s": MAPPING_BATCH / t_batch,
        "speedup": t_scalar / t_batch,
        "index_dtype": str(mapper.index_dtype),
        "table_bytes": mapper.table_nbytes(),
        "table_bytes_int64": wide.table_nbytes(),
        "batch_int64_s": t_batch64,
        "int32_vs_int64_speedup": t_batch64 / t_batch,
    }


def run_mapping_bench(out_dir: str | Path = ".") -> dict:
    """Run the mapping suite and write ``BENCH_mapping.json``."""
    rows = [_mapping_case(v, k) for v, k in MAPPING_CASES]
    worst = min(r["speedup"] for r in rows)
    payload = {
        "benchmark": "mapping",
        "batch_addresses": MAPPING_BATCH,
        "cases": rows,
        "min_speedup": worst,
        "passed": worst >= 5.0,
    }
    out = Path(out_dir) / "BENCH_mapping.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    for r in rows:
        print(
            f"build({r['v']},{r['k']}) size={r['layout_size']:>4}: "
            f"scalar {r['scalar_s'] * 1e3:7.1f} ms, "
            f"batch {r['batch_s'] * 1e3:6.2f} ms  -> {r['speedup']:6.1f}x "
            f"({r['index_dtype']} tables {r['table_bytes'] / 1e3:.0f} kB, "
            f"int64 batch {r['batch_int64_s'] * 1e3:6.2f} ms)"
        )
    print(f"min speedup {worst:.1f}x (bar: 5x)  -> wrote {out}")
    return payload


# ----------------------------------------------------------------------
# Simulation suite
# ----------------------------------------------------------------------


def _check_workload_agreement(a, b) -> None:
    if (
        a.scheduled != b.scheduled
        or a.per_disk_ios != b.per_disk_ios
        or a.duration_ms != b.duration_ms
    ):
        raise AssertionError("batched and scalar workload runs disagree")


def _workload_case(
    label: str,
    layout: Layout,
    cfg: WorkloadConfig,
    requests: int,
    failed_disk: int | None = None,
    write_policy: str = "rmw",
) -> dict:
    duration = cfg.interarrival_ms * requests
    # The batched engines finish 30k-100k requests in well under 100 ms,
    # where single-shot timings carry allocator/cache noise large enough
    # to flip the gain gates run to run: warm once, keep the best of
    # three (the scalar baseline runs for seconds — one shot is stable).
    batched = simulate_workload(
        layout, duration_ms=duration, config=cfg, failed_disk=failed_disk,
        batched=True, write_policy=write_policy,
    )
    t_batch = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        batched = simulate_workload(
            layout, duration_ms=duration, config=cfg,
            failed_disk=failed_disk, batched=True,
            write_policy=write_policy,
        )
        t_batch = min(t_batch, time.perf_counter() - t0)
    t0 = time.perf_counter()
    scalar = simulate_workload(
        layout, duration_ms=duration, config=cfg, failed_disk=failed_disk,
        batched=False, write_policy=write_policy,
    )
    t_scalar = time.perf_counter() - t0
    _check_workload_agreement(batched, scalar)
    return {
        "case": label,
        "read_fraction": cfg.read_fraction,
        "failed_disk": failed_disk,
        "write_policy": write_policy,
        "requests": batched.scheduled,
        "scalar_s": t_scalar,
        "batched_s": t_batch,
        "scalar_events_per_s": batched.scheduled / t_scalar,
        "batched_events_per_s": batched.scheduled / t_batch,
        "speedup": t_scalar / t_batch,
    }


def tiled_layout(base: Layout, target_stripes: int) -> Layout:
    """Tile a base layout vertically until it holds ``target_stripes``
    stripes — the cheap way to make benchmark-scale stripe sets with
    real declustering structure."""
    reps = max(1, -(-target_stripes // base.b))
    stripes: list[Stripe] = []
    for r in range(reps):
        shift = r * base.size
        for s in base.stripes:
            stripes.append(
                Stripe(
                    units=tuple((d, off + shift) for d, off in s.units),
                    parity_index=s.parity_index,
                )
            )
    return Layout(
        v=base.v,
        size=base.size * reps,
        stripes=tuple(stripes),
        name=f"tiled({base.name or 'base'}x{reps})",
    )


def _scalar_scan_walk(layout: Layout, failed: int):
    """The pre-compile scan plan: stripe-by-stripe Python (baseline)."""
    queue = []
    survivors = []
    for sid, stripe in enumerate(layout.stripes):
        if not any(d == failed for d, _ in stripe.units):
            continue
        queue.append(sid)
        survivors.append([(d, off) for d, off in stripe.units if d != failed])
    return queue, survivors


def _rebuild_case(layout: Layout) -> dict:
    row: dict = {"stripes": layout.b, "v": layout.v, "size": layout.size}

    # Scan planning: vectorized CSR pass vs the Python stripe walk.
    # "Cold" pays the one-time incidence build; "warm" is the
    # steady-state cost once the registry has the CSR cached (it is
    # shared with the metrics and conformance paths, and with every
    # subsequent rebuild of any disk).
    stripe_incidence.cache_clear()
    t0 = time.perf_counter()
    inc = stripe_incidence(layout)
    sids, _, surv_indptr, _, _ = inc.rebuild_scan(0)
    row["batched_plan_cold_s"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    inc = stripe_incidence(layout)
    sids, _, surv_indptr, _, _ = inc.rebuild_scan(0)
    row["batched_plan_warm_s"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    queue, survivors = _scalar_scan_walk(layout, 0)
    row["scalar_plan_s"] = time.perf_counter() - t0
    assert queue == sids.tolist()
    assert [len(s) for s in survivors] == np.diff(surv_indptr).tolist()
    row["plan_speedup_warm"] = row["scalar_plan_s"] / row["batched_plan_warm_s"]
    row["crossing_stripes"] = len(queue)

    if layout.b <= FULL_REBUILD_LIMIT:
        # Warm allocator/caches once; the event-driven part is identical
        # between modes, so what this row pins is "no regression".
        simulate_rebuild(layout, failed_disk=0, parallelism=8, batched=True)
        t0 = time.perf_counter()
        a = simulate_rebuild(layout, failed_disk=0, parallelism=8, batched=True)
        row["batched_rebuild_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = simulate_rebuild(layout, failed_disk=0, parallelism=8, batched=False)
        row["scalar_rebuild_s"] = time.perf_counter() - t0
        if a != b:
            raise AssertionError("batched and scalar rebuilds disagree")
        row["rebuild_speedup"] = row["scalar_rebuild_s"] / row["batched_rebuild_s"]
        row["rebuild_sim_ms"] = a.duration_ms
    return row


def _metrics_case(layout: Layout) -> dict:
    t0 = time.perf_counter()
    m = evaluate_layout(layout)
    elapsed = time.perf_counter() - t0
    return {
        "stripes": layout.b,
        "evaluate_s": elapsed,
        "workload_max": m.workload_max,
        "parity_spread": m.parity_spread,
        # What the old dense (b, v) incidence would have allocated.
        "dense_incidence_bytes_avoided": layout.b * layout.v * 8,
    }


_RSS_PROBE = """\
import json, sys
from repro.bench import peak_rss_mb
from repro.service import Fleet
from repro.sim import WorkloadConfig

shards, ia, window, requests = (
    int(sys.argv[1]), float(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
)
cfg = WorkloadConfig(interarrival_ms=ia, read_fraction=0.7, seed=7)
fleet = Fleet(shards, 9, 3, dataplane=False, seed=0)
rep = fleet.serve_workload(cfg, ia * requests, window_size=window)
print(json.dumps({
    "scheduled": rep.scheduled,
    "completed": rep.completed,
    "peak_rss_mb": peak_rss_mb(),
}))
"""


def _rss_probe(requests: int) -> dict:
    """Serve the streaming fleet config for ``requests`` arrivals in a
    fresh subprocess and return its scheduled count and peak RSS."""
    src_dir = str(Path(__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_dir
    )
    t0 = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _RSS_PROBE,
            str(STREAMING_SHARDS),
            str(STREAMING_INTERARRIVAL_MS),
            str(STREAMING_WINDOW),
            str(requests),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    out = json.loads(proc.stdout)
    out["wall_s"] = time.perf_counter() - t0
    return out


def _streaming_case() -> dict:
    """The constant-memory acceptance case: windowed report equality at
    the small horizon (in-process) plus subprocess peak-RSS probes at
    10^5 and 10^7 requests.

    The probes need the ``resource`` module (POSIX); elsewhere the row
    is marked skipped with a machine-readable reason and the RSS gate
    does not bind (the equality gate still does).
    """
    from .service import Fleet

    cfg = WorkloadConfig(
        interarrival_ms=STREAMING_INTERARRIVAL_MS,
        read_fraction=0.7,
        seed=7,
    )
    duration = STREAMING_INTERARRIVAL_MS * STREAMING_SMALL_REQUESTS
    materialized = Fleet(
        STREAMING_SHARDS, 9, 3, dataplane=False, seed=0
    ).serve_workload(cfg, duration)
    windowed = Fleet(
        STREAMING_SHARDS, 9, 3, dataplane=False, seed=0
    ).serve_workload(cfg, duration, window_size=STREAMING_WINDOW)
    identical = asdict(materialized) == asdict(windowed)

    row: dict = {
        "shards": STREAMING_SHARDS,
        "window_size": STREAMING_WINDOW,
        "interarrival_ms": STREAMING_INTERARRIVAL_MS,
        "requests_small": STREAMING_SMALL_REQUESTS,
        "requests_large": STREAMING_LARGE_REQUESTS,
        "windowed_report_identical": identical,
        "rss_ratio_bar": STREAMING_RSS_RATIO_BAR,
    }
    try:
        import resource  # noqa: F401 - probe feasibility check
    except ImportError:  # pragma: no cover - non-POSIX platforms
        row["skipped"] = True
        row["skip_reason"] = "resource module unavailable (non-POSIX)"
        return row
    small = _rss_probe(STREAMING_SMALL_REQUESTS)
    large = _rss_probe(STREAMING_LARGE_REQUESTS)
    if small["peak_rss_mb"] is None or large["peak_rss_mb"] is None:
        # pragma: no cover - platform without any RSS source
        row["skipped"] = True
        row["skip_reason"] = "no peak-RSS source on this platform"
        return row
    row.update(
        {
            "skipped": False,
            "scheduled_small": small["scheduled"],
            "scheduled_large": large["scheduled"],
            "peak_rss_small_mb": small["peak_rss_mb"],
            "peak_rss_large_mb": large["peak_rss_mb"],
            "probe_wall_small_s": small["wall_s"],
            "probe_wall_large_s": large["wall_s"],
            "rss_ratio": (
                large["peak_rss_mb"] / small["peak_rss_mb"]
                if small["peak_rss_mb"]
                else 0.0
            ),
        }
    )
    return row


def run_sim_bench(out_dir: str | Path = ".") -> dict:
    """Run the simulation suite and write ``BENCH_sim.json``."""
    layout = get_layout(13, 4)
    workload_rows = [
        _workload_case(
            "read_only_solver",
            layout,
            WorkloadConfig(interarrival_ms=5.0, read_fraction=1.0, seed=7),
            WORKLOAD_REQUESTS,
        ),
        _workload_case(
            "degraded_read_only",
            layout,
            WorkloadConfig(interarrival_ms=5.0, read_fraction=1.0, seed=7),
            WORKLOAD_REQUESTS,
            failed_disk=1,
        ),
        _workload_case(
            "mixed_rw_executor",
            layout,
            WorkloadConfig(interarrival_ms=5.0, read_fraction=0.7, seed=7),
            MIXED_REQUESTS,
        ),
        _workload_case(
            "degraded_mixed_executor",
            layout,
            WorkloadConfig(interarrival_ms=5.0, read_fraction=0.7, seed=7),
            MIXED_REQUESTS,
            failed_disk=1,
        ),
        _workload_case(
            "mixed_write_through_solver",
            layout,
            WorkloadConfig(interarrival_ms=5.0, read_fraction=0.7, seed=7),
            MIXED_REQUESTS,
            write_policy="write_through",
        ),
    ]

    base = ring_layout(9, 3)
    rebuild_rows = []
    metrics_rows = []
    for target in REBUILD_STRIPES:
        layout = tiled_layout(base, target)
        rebuild_rows.append(_rebuild_case(layout))
        metrics_rows.append(_metrics_case(layout))
        # Tiled benchmark layouts are single-use: drop them from the
        # incidence/mapper caches so the suite's footprint stays flat.
        clear_registry()

    streaming = _streaming_case()

    headline = max(
        r["speedup"] for r in workload_rows if r["read_fraction"] == 1.0
    )
    mixed_row = next(
        r for r in workload_rows if r["case"] == "mixed_rw_executor"
    )
    mixed_gain = (
        mixed_row["batched_events_per_s"] / PRE_BATCHSTEP_MIXED_EVENTS_PER_S
    )
    degraded_row = next(
        r for r in workload_rows if r["case"] == "degraded_mixed_executor"
    )
    degraded_gain = (
        degraded_row["batched_events_per_s"]
        / PRE_EAGER_DEGRADED_MIXED_EVENTS_PER_S
    )
    rss_ok = streaming["skipped"] or (
        streaming["rss_ratio"] <= STREAMING_RSS_RATIO_BAR
    )
    payload = {
        "benchmark": "sim",
        "workload": {
            "requests": WORKLOAD_REQUESTS,
            "cases": workload_rows,
        },
        "rebuild": rebuild_rows,
        "metrics": metrics_rows,
        "streaming": streaming,
        "peak_rss_mb": peak_rss_mb(),
        "workload_speedup": headline,
        # Mixed read/write path, before/after history: the heap-churn
        # work of the service PR (slotted requests, reusable completion
        # callbacks) took the executor to 1.81x over scalar; the
        # batch-stepped engines (calendar queue + eager FIFO tier)
        # replace heap stepping entirely, gated as a multiple of the
        # committed heap-engine events/s.
        "mixed_speedup": mixed_row["speedup"],
        "mixed_speedup_pre_service_pr": PRE_SERVICE_MIXED_SPEEDUP,
        "mixed_events_per_s": mixed_row["batched_events_per_s"],
        "mixed_events_per_s_pre_batchstep": PRE_BATCHSTEP_MIXED_EVENTS_PER_S,
        "mixed_events_gain_vs_pre_batchstep": mixed_gain,
        "mixed_events_gain_bar": MIXED_EVENTS_GAIN_BAR,
        # Degraded mixed path, before/after: the heap engine's committed
        # figure vs the eager tier's planned degraded fast cases.
        "degraded_mixed_events_per_s": degraded_row["batched_events_per_s"],
        "degraded_mixed_events_per_s_pre_eager": (
            PRE_EAGER_DEGRADED_MIXED_EVENTS_PER_S
        ),
        "degraded_mixed_events_gain": degraded_gain,
        "degraded_mixed_events_gain_bar": DEGRADED_MIXED_GAIN_BAR,
        "passed": (
            headline >= 10.0
            and mixed_gain >= MIXED_EVENTS_GAIN_BAR
            and degraded_gain >= DEGRADED_MIXED_GAIN_BAR
            and streaming["windowed_report_identical"]
            and rss_ok
        ),
    }
    out = Path(out_dir) / "BENCH_sim.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    for r in workload_rows:
        print(
            f"workload {r['case']:<20} n={r['requests']:>6}: "
            f"scalar {r['scalar_s']:6.2f} s, batched {r['batched_s']:6.2f} s "
            f"-> {r['speedup']:5.1f}x ({r['batched_events_per_s']:,.0f} ev/s)"
        )
    for r in rebuild_rows:
        line = (
            f"rebuild b={r['stripes']:>8}: plan {r['scalar_plan_s']:6.2f} s -> "
            f"{r['batched_plan_warm_s']:6.3f} s warm "
            f"({r['plan_speedup_warm']:5.1f}x; cold {r['batched_plan_cold_s']:.2f} s)"
        )
        if "rebuild_speedup" in r:
            line += (
                f", full sim {r['scalar_rebuild_s']:5.2f} s -> "
                f"{r['batched_rebuild_s']:5.2f} s ({r['rebuild_speedup']:4.1f}x)"
            )
        print(line)
    for r in metrics_rows:
        print(
            f"metrics b={r['stripes']:>8}: evaluate_layout {r['evaluate_s']:5.2f} s "
            f"(sparse; skips {r['dense_incidence_bytes_avoided'] / 1e6:.0f} MB dense)"
        )
    if streaming["skipped"]:
        print(
            f"streaming: windowed report identical "
            f"{streaming['windowed_report_identical']}; RSS probes "
            f"SKIPPED ({streaming['skip_reason']})"
        )
    else:
        print(
            f"streaming {streaming['shards']}-shard mixed fleet, window "
            f"{streaming['window_size']}: peak RSS "
            f"{streaming['peak_rss_small_mb']:.1f} MB at "
            f"{streaming['requests_small']:,} reqs -> "
            f"{streaming['peak_rss_large_mb']:.1f} MB at "
            f"{streaming['requests_large']:,} reqs "
            f"(ratio {streaming['rss_ratio']:.3f}, bar "
            f"{STREAMING_RSS_RATIO_BAR}x); windowed report identical "
            f"{streaming['windowed_report_identical']}"
        )
    print(
        f"workload speedup {headline:.1f}x (bar: 10x), mixed path "
        f"{mixed_row['batched_events_per_s']:,.0f} ev/s = "
        f"{mixed_gain:.1f}x the pre-batchstep heap engine "
        f"({PRE_BATCHSTEP_MIXED_EVENTS_PER_S:,} ev/s; bar "
        f"{MIXED_EVENTS_GAIN_BAR:.0f}x), degraded mixed "
        f"{degraded_row['batched_events_per_s']:,.0f} ev/s = "
        f"{degraded_gain:.2f}x the pre-eager heap engine "
        f"({PRE_EAGER_DEGRADED_MIXED_EVENTS_PER_S:,} ev/s; bar "
        f"{DEGRADED_MIXED_GAIN_BAR}x)  -> wrote {out}"
    )
    return payload


# ----------------------------------------------------------------------
# Service suite (fleet throughput scaling + degraded mode)
# ----------------------------------------------------------------------


def _fleet_case(shards: int) -> dict:
    """Serve the fixed offered load with ``shards`` arrays; report the
    achieved throughput (the makespan includes the post-horizon queue
    drain, so an overloaded fleet shows its true service rate)."""
    from .service import Fleet

    cfg = WorkloadConfig(
        interarrival_ms=SERVICE_OFFERED_INTERARRIVAL_MS,
        read_fraction=SERVICE_READ_FRACTION,
        seed=7,
    )
    fleet = Fleet(shards, 9, 3, seed=0)
    t0 = time.perf_counter()
    rep = fleet.serve_workload(cfg, SERVICE_DURATION_MS)
    wall = time.perf_counter() - t0
    read_lat = rep.latency.get("read", {})
    return {
        "shards": shards,
        "requests": rep.scheduled,
        "completed": rep.completed,
        "makespan_ms": rep.duration_ms,
        "throughput_rps": rep.throughput_rps,
        "shard_balance": rep.shard_balance,
        "read_p95_ms": read_lat.get("p95", 0.0),
        "wall_s": wall,
        "requests_per_wall_s": rep.scheduled / wall if wall > 0 else 0.0,
    }


def _degraded_case(healthy_rps: float) -> dict:
    """Eight shards, two simultaneous failures, admission-controlled
    concurrent rebuilds, bit-for-bit verification — the degraded-mode
    throughput relative to the healthy 8-shard fleet."""
    from .service import (
        FleetScenario,
        default_failure_schedule,
        run_fleet_scenario,
    )

    scenario = FleetScenario(
        shards=8,
        v=9,
        k=3,
        duration_ms=SERVICE_DURATION_MS,
        interarrival_ms=SERVICE_OFFERED_INTERARRIVAL_MS,
        read_fraction=SERVICE_READ_FRACTION,
        workload_seed=7,
        failures=default_failure_schedule(8, 9, 2, SERVICE_DURATION_MS * 0.25),
        admission=2,
        verify_data=True,
        seed=0,
    )
    report = run_fleet_scenario(scenario)
    # Verification or conformance failures surface through the payload
    # (and flip the suite's "passed"), so the artifact always lands.
    return {
        "shards": 8,
        "concurrent_failures": len(scenario.failures),
        "admission": scenario.admission,
        "requests": report.fleet.scheduled,
        "completed": report.fleet.completed,
        "lost_to_failures": report.fleet.lost,
        "makespan_ms": report.fleet.duration_ms,
        "throughput_rps": report.fleet.throughput_rps,
        "throughput_vs_healthy": (
            report.fleet.throughput_rps / healthy_rps if healthy_rps else 0.0
        ),
        "max_concurrent_rebuilds": report.max_concurrent_rebuilds,
        "rebuild_admission_delays_ms": [
            o.admission_delay_ms for o in report.rebuilds
        ],
        "all_rebuilt_verified": report.all_rebuilt_verified,
        "conformance_passed": (
            report.conformance is None or report.conformance.passed
        ),
        "wall_s": report.wall_s,
    }


def _balance_case(placement: str) -> dict:
    """Serve a uniform read-only stream through an 8-shard fleet under
    ``placement`` and report the request-level max/min shard balance."""
    from .service import Fleet
    from .sim.compile import generate_request_stream

    fleet = Fleet(8, 9, 3, seed=0, placement=placement)
    cfg = WorkloadConfig(
        interarrival_ms=SERVICE_OFFERED_INTERARRIVAL_MS,
        read_fraction=1.0,
        seed=7,
    )
    times, is_read, lbas = generate_request_stream(
        cfg, BALANCE_DURATION_MS, fleet.capacity
    )
    rep = fleet.serve_stream(times, is_read, lbas)
    return {
        "placement": placement,
        "requests": rep.scheduled,
        "per_shard_scheduled": rep.per_shard_scheduled,
        "request_balance": rep.shard_balance,
    }


def _migration_case() -> dict:
    """Grow a fleet live under mixed traffic (the tentpole scenario):
    zero lost requests, every moved volume verified bit-for-bit, and a
    fresh post-migration stream whose request balance holds the
    non-ring bar."""
    from .service import Fleet, MigrationCoordinator
    from .sim.compile import generate_request_stream

    start, target = MIGRATION_GROW
    fleet = Fleet(
        start, 9, 3, seed=0, dataplane=True, placement="weighted"
    )
    coordinator = MigrationCoordinator(
        fleet, target, at_ms=MIGRATION_DURATION_MS * 0.25, admission=2
    )
    coordinator.arm()
    cfg = WorkloadConfig(
        interarrival_ms=SERVICE_OFFERED_INTERARRIVAL_MS,
        read_fraction=SERVICE_READ_FRACTION,
        seed=7,
    )
    times, is_read, lbas = generate_request_stream(
        cfg, MIGRATION_DURATION_MS, fleet.capacity
    )
    t0 = time.perf_counter()
    during = fleet.serve_stream(times, is_read, lbas)
    wall = time.perf_counter() - t0
    # Post-migration: a fresh uniform stream over the grown fleet must
    # hit the tightened balance bar.
    post_cfg = WorkloadConfig(
        interarrival_ms=SERVICE_OFFERED_INTERARRIVAL_MS,
        read_fraction=1.0,
        seed=8,
    )
    times, is_read, lbas = generate_request_stream(
        post_cfg, BALANCE_DURATION_MS, fleet.capacity
    )
    post = fleet.serve_stream(times, is_read, lbas)
    return {
        "grow_from": start,
        "grow_to": target,
        "volumes_moved": len(coordinator.outcomes),
        "planned_moves": len(coordinator.plan.moves),
        "units_copied": coordinator.total_units_copied(),
        "held_requests": sum(o.held_requests for o in coordinator.outcomes),
        "forwarded_writes": sum(
            o.forwarded_writes for o in coordinator.outcomes
        ),
        "requests_during": during.scheduled,
        "lost_during": during.lost,
        "zero_lost": during.lost == 0,
        "all_verified": coordinator.all_verified,
        "throughput_during_rps": during.throughput_rps,
        "post_request_balance": post.shard_balance,
        "post_per_shard_scheduled": post.per_shard_scheduled,
        "wall_s": wall,
    }


def _autoscale_slo_case() -> dict:
    """Scripted load spike against the autoscaling control loop: a
    2-shard fleet under quiet traffic gets hit at
    ``AUTOSCALE_SPIKE_AT_MS`` with a rate past the policy threshold.
    The loop must fire a grow through the live-migration path with zero
    lost requests and verified cutovers, the decision log must replay
    byte-identically, p99 completion latency during the event (decision
    to convergence) must hold the SLO bar, and a fresh post-event
    stream over the grown fleet must hit the balance bar."""
    import numpy as np

    from .obs import MetricsRecorder
    from .service import AutoscaleController, AutoscalePolicy, Fleet
    from .service.orchestrator import AdmissionController
    from .sim.compile import ArrayWindows, generate_request_stream
    from .sim.stats import percentile_of_parts

    policy = AutoscalePolicy(
        cadence_ms=100.0,
        high_rate=0.6,
        sustain_ticks=2,
        cooldown_ms=500.0,
        grow_step=2,
        max_shards=8,
    )
    fleet = Fleet(
        AUTOSCALE_START_SHARDS,
        9,
        3,
        seed=0,
        dataplane=True,
        placement="weighted",
    )
    recorder = MetricsRecorder(policy.cadence_ms, shards=fleet.shards)
    fleet.attach_recorder(recorder)
    admission = AdmissionController(2)
    controller = AutoscaleController(
        fleet,
        policy,
        recorder,
        admission=admission,
        horizon_ms=AUTOSCALE_DURATION_MS,
    )
    controller.arm()
    quiet = WorkloadConfig(
        interarrival_ms=2.0, read_fraction=SERVICE_READ_FRACTION, seed=7
    )
    # ~1400 req/s: past what 2 shards sustain (~1250 req/s at this
    # service-time model) so the grow signal is real, but mild enough
    # that migration drains are not stuck behind a deep backlog —
    # keeping the during-event tail about the scaling event, not about
    # serving an unbounded queue.
    hot = WorkloadConfig(
        interarrival_ms=0.7, read_fraction=SERVICE_READ_FRACTION, seed=8
    )
    qt, qr, ql = generate_request_stream(
        quiet, AUTOSCALE_SPIKE_AT_MS, fleet.capacity
    )
    ht, hr, hl = generate_request_stream(
        hot, AUTOSCALE_DURATION_MS - AUTOSCALE_SPIKE_AT_MS, fleet.capacity
    )
    times = np.concatenate([qt, ht + AUTOSCALE_SPIKE_AT_MS])
    is_read = np.concatenate([qr, hr])
    lbas = np.concatenate([ql, hl])
    t0 = time.perf_counter()
    during = fleet.serve_windows(ArrayWindows(times, is_read, lbas, 256))
    fleet.sim.run()  # drain any copies still trailing the stream
    wall = time.perf_counter() - t0
    summary = controller.summary(verify_data=True, lost=during.lost)
    events = list(summary.events)
    grew = any(e["action"] == "grow" for e in events)
    # p99 over completions that land inside any event window (decision
    # tick to convergence) — the latency cost of scaling up while the
    # spike is in flight.
    iv = recorder.interval_ms
    windows = [(e["t_ms"], e["converged_at_ms"]) for e in events]
    parts = [
        digest
        for s in range(fleet.shards)
        for by_bucket in recorder.latency_buckets(s).values()
        for b, digest in by_bucket.items()
        if any(b * iv < hi and (b + 1) * iv > lo for lo, hi in windows)
    ]
    p99_event_ms = percentile_of_parts(parts, 99.0)
    post_cfg = WorkloadConfig(
        interarrival_ms=SERVICE_OFFERED_INTERARRIVAL_MS,
        read_fraction=1.0,
        seed=8,
    )
    pt, pr, pl = generate_request_stream(
        post_cfg, BALANCE_DURATION_MS, fleet.capacity
    )
    post = fleet.serve_stream(pt, pr, pl)
    return {
        "start_shards": AUTOSCALE_START_SHARDS,
        "final_shards": summary.final_shards,
        "policy": policy.to_dict(),
        "spike_at_ms": AUTOSCALE_SPIKE_AT_MS,
        "duration_ms": AUTOSCALE_DURATION_MS,
        "requests_during": during.scheduled,
        "lost_during": during.lost,
        "zero_lost": during.lost == 0,
        "grow_fired": grew,
        "decisions": len(summary.decisions),
        "events": events,
        "all_verified": all(e["all_verified"] for e in events),
        "replay_identical": summary.replay_identical,
        "p99_event_ms": p99_event_ms,
        "p99_bar_ms": AUTOSCALE_P99_BAR_MS,
        "post_request_balance": post.shard_balance,
        "post_per_shard_scheduled": post.per_shard_scheduled,
        "autoscale_ok": summary.ok,
        "wall_s": wall,
    }


def _parallel_case() -> dict:
    """Multi-core execution of the 8-shard healthy scenario: serial
    wall clock vs ``workers=8`` process-parallel shard groups, plus the
    merge-equality gate (the parallel report must be byte-identical to
    the serial one after volatile fields are stripped).

    The 2.5x speedup bar binds only on hosts with a core per worker;
    below that the row is marked ``host_inadequate`` and its speedup is
    informational, not gated.  The payload always records worker count,
    usable CPU count, start method, and per-group wall times so numbers
    are interpretable across machines.
    """
    import json as _json

    from .service import (
        FleetScenario,
        canonical_payload,
        run_fleet_scenario,
        run_fleet_scenario_parallel,
    )
    from .service.parallel import available_cpus

    scenario = FleetScenario(
        shards=8,
        v=9,
        k=3,
        duration_ms=PARALLEL_DURATION_MS,
        interarrival_ms=SERVICE_OFFERED_INTERARRIVAL_MS,
        read_fraction=SERVICE_READ_FRACTION,
        workload_seed=7,
        failures=(),
        admission=2,
        verify_data=True,
        seed=0,
    )
    serial = run_fleet_scenario(scenario)
    run = run_fleet_scenario_parallel(scenario, workers=PARALLEL_WORKERS)
    merge_equal = _json.dumps(
        canonical_payload(serial.to_dict()), sort_keys=True
    ) == _json.dumps(canonical_payload(run.to_dict()), sort_keys=True)
    cpus = available_cpus()
    speedup = serial.wall_s / run.report.wall_s if run.report.wall_s else 0.0
    host_inadequate = cpus < PARALLEL_WORKERS
    return {
        "shards": scenario.shards,
        "duration_ms": PARALLEL_DURATION_MS,
        "requests": serial.fleet.scheduled,
        "workers": run.execution.workers,
        "cpu_count": cpus,
        "mp_context": run.execution.mp_context,
        "shard_groups": len(run.execution.groups),
        "group_wall_s": [g["wall_s"] for g in run.execution.groups],
        "group_duration_ms": [g["duration_ms"] for g in run.execution.groups],
        "serial_wall_s": serial.wall_s,
        "parallel_wall_s": run.report.wall_s,
        "requests_per_wall_s_serial": (
            serial.fleet.scheduled / serial.wall_s if serial.wall_s else 0.0
        ),
        "requests_per_wall_s_parallel": (
            serial.fleet.scheduled / run.report.wall_s
            if run.report.wall_s
            else 0.0
        ),
        "speedup": speedup,
        "speedup_bar": PARALLEL_SPEEDUP_BAR,
        "speedup_bar_applies": not host_inadequate,
        "host_inadequate": host_inadequate,
        "merge_equal": merge_equal,
    }


def _warm_serve_case() -> dict:
    """Repeated serves through the warm runtime: the cold first serve
    (pool boot + stream generation + routing + shm packing) vs the
    median warm serve (pool, artifact, and segments all reused).

    Gates three things at once: the >= 2x warm-over-cold bar, canonical
    byte-identity of every warm report against the cold serial runner,
    and zero leaked ``/dev/shm`` segments after :meth:`WarmRuntime.
    close` — the acceptance criteria of the warm-runtime work, pinned
    as a committed artifact so ``tools/bench_guard.py`` can fail
    regressions.
    """
    import json as _json
    import os
    import statistics

    from .service import (
        canonical_payload,
        leaked_segments,
        run_fleet_scenario,
    )
    from .service.runtime import WarmRuntime

    scenario = warm_serve_scenario()
    serial = run_fleet_scenario(scenario)
    canon = _json.dumps(canonical_payload(serial.to_dict()), sort_keys=True)

    runtime = WarmRuntime(
        scenario, workers=WARM_SERVE_WORKERS, mp_context=WARM_SERVE_MP_CONTEXT
    )
    try:
        t0 = time.perf_counter()
        first = runtime.run()
        cold_wall = time.perf_counter() - t0
        merge_equal = (
            _json.dumps(canonical_payload(first), sort_keys=True) == canon
        )
        warm_walls = []
        for _ in range(WARM_SERVE_RUNS):
            t0 = time.perf_counter()
            payload = runtime.run()
            warm_walls.append(time.perf_counter() - t0)
            merge_equal = merge_equal and (
                _json.dumps(canonical_payload(payload), sort_keys=True)
                == canon
            )
        stats = runtime.stats.to_dict()
    finally:
        runtime.close()
    leaked = len(leaked_segments(os.getpid()))
    warm_wall = statistics.median(warm_walls)
    speedup = cold_wall / warm_wall if warm_wall else 0.0
    return {
        "shards": scenario.shards,
        "duration_ms": WARM_SERVE_DURATION_MS,
        "requests": serial.fleet.scheduled,
        "workers": WARM_SERVE_WORKERS,
        "mp_context": WARM_SERVE_MP_CONTEXT,
        "runs_timed": WARM_SERVE_RUNS,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_walls_s": warm_walls,
        "warm_requests_per_s": (
            serial.fleet.scheduled / warm_wall if warm_wall else 0.0
        ),
        "speedup": speedup,
        "speedup_bar": WARM_SERVE_SPEEDUP_BAR,
        "merge_equal": merge_equal,
        "pool_warm_hits": stats["pool_warm_hits"],
        "compile_cache_hits": stats["compile_cache_hits"],
        "shm_bytes": stats["shm_bytes"],
        "pickled_bytes_avoided": stats["ipc_bytes_avoided"],
        "leaked_segments": leaked,
    }


def run_service_bench(out_dir: str | Path = ".") -> dict:
    """Run the fleet service suite and write ``BENCH_service.json``."""
    clear_registry()
    rows = [_fleet_case(n) for n in SERVICE_SHARD_COUNTS]
    baseline = rows[0]["throughput_rps"]
    top = rows[-1]
    scaling = top["throughput_rps"] / baseline if baseline else 0.0
    degraded = _degraded_case(top["throughput_rps"])
    balance_rows = [_balance_case(p) for p in ("ring", "p2c", "weighted")]
    tightened = max(
        r["request_balance"]
        for r in balance_rows
        if r["placement"] != "ring"
    )
    migration = _migration_case()
    autoscale = _autoscale_slo_case()
    parallel = _parallel_case()
    warm = _warm_serve_case()
    payload = {
        "benchmark": "service",
        "offered_interarrival_ms": SERVICE_OFFERED_INTERARRIVAL_MS,
        "duration_ms": SERVICE_DURATION_MS,
        "read_fraction": SERVICE_READ_FRACTION,
        "scaling": rows,
        "degraded": degraded,
        "balance": {
            "bar": BALANCE_BAR,
            "cases": balance_rows,
            "ring_baseline": balance_rows[0]["request_balance"],
            "tightened_worst": tightened,
        },
        "migration": migration,
        "autoscale_slo": autoscale,
        "parallel_scaling": parallel,
        "warm_serve": warm,
        "peak_rss_mb": peak_rss_mb(),
        "single_array_rps": baseline,
        "fleet_rps": top["throughput_rps"],
        "throughput_scaling": scaling,
        "passed": (
            scaling >= 2.5
            and degraded["all_rebuilt_verified"]
            and degraded["conformance_passed"]
            and tightened <= BALANCE_BAR
            and migration["zero_lost"]
            and migration["all_verified"]
            and migration["post_request_balance"] <= BALANCE_BAR
            and autoscale["grow_fired"]
            and autoscale["zero_lost"]
            and autoscale["all_verified"]
            and autoscale["replay_identical"]
            and autoscale["p99_event_ms"] <= AUTOSCALE_P99_BAR_MS
            and autoscale["post_request_balance"] <= BALANCE_BAR
            and parallel["merge_equal"]
            and (
                parallel["host_inadequate"]
                or parallel["speedup"] >= PARALLEL_SPEEDUP_BAR
            )
            and warm["merge_equal"]
            and warm["speedup"] >= WARM_SERVE_SPEEDUP_BAR
            and warm["leaked_segments"] == 0
        ),
    }
    out = Path(out_dir) / "BENCH_service.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    for r in rows:
        print(
            f"fleet shards={r['shards']}: {r['requests']:>6} reqs, "
            f"throughput {r['throughput_rps']:7,.0f} req/s, "
            f"read p95 {r['read_p95_ms']:8.1f} ms, wall {r['wall_s']:.2f} s"
        )
    print(
        f"degraded 8-shard (2 concurrent rebuilds, admission 2): "
        f"{degraded['throughput_rps']:,.0f} req/s "
        f"({degraded['throughput_vs_healthy']:.2f}x of healthy), "
        f"verified={degraded['all_rebuilt_verified']}"
    )
    for r in balance_rows:
        print(
            f"balance placement={r['placement']:<9} request max/min "
            f"{r['request_balance']:.2f}x over {r['requests']} requests"
        )
    print(
        f"migration {migration['grow_from']} -> {migration['grow_to']} "
        f"shards: {migration['volumes_moved']} volumes, "
        f"{migration['units_copied']} units copied, lost "
        f"{migration['lost_during']}, verified "
        f"{migration['all_verified']}, post balance "
        f"{migration['post_request_balance']:.2f}x (bar {BALANCE_BAR}x)"
    )
    print(
        f"autoscale {autoscale['start_shards']} -> "
        f"{autoscale['final_shards']} shards under spike: grow fired "
        f"{autoscale['grow_fired']}, lost {autoscale['lost_during']}, "
        f"verified {autoscale['all_verified']}, replay identical "
        f"{autoscale['replay_identical']}, p99 during event "
        f"{autoscale['p99_event_ms']:.1f} ms "
        f"(bar {AUTOSCALE_P99_BAR_MS:.0f} ms), post balance "
        f"{autoscale['post_request_balance']:.2f}x (bar {BALANCE_BAR}x)"
    )
    bar_note = (
        f"bar {PARALLEL_SPEEDUP_BAR}x"
        if parallel["speedup_bar_applies"]
        else f"HOST INADEQUATE: {parallel['cpu_count']} core(s) for "
        f"{parallel['workers']} workers — speedup informational only"
    )
    print(
        f"parallel {parallel['shards']}-shard healthy x "
        f"{parallel['workers']} workers ({parallel['mp_context']}, "
        f"{parallel['cpu_count']} CPUs): serial "
        f"{parallel['serial_wall_s']:.2f} s -> "
        f"{parallel['parallel_wall_s']:.2f} s "
        f"({parallel['speedup']:.2f}x, {bar_note}), merge identical: "
        f"{parallel['merge_equal']}"
    )
    print(
        f"warm serve {warm['shards']}-shard x {warm['workers']} workers "
        f"({warm['mp_context']}): cold {warm['cold_wall_s']:.2f} s -> "
        f"warm {warm['warm_wall_s']:.2f} s ({warm['speedup']:.1f}x, bar "
        f"{WARM_SERVE_SPEEDUP_BAR}x), identical: {warm['merge_equal']}, "
        f"pickled bytes avoided {warm['pickled_bytes_avoided']:,}, "
        f"leaked segments {warm['leaked_segments']}"
    )
    print(
        f"throughput scaling {scaling:.1f}x over single array "
        f"(bar: 2.5x)  -> wrote {out}"
    )
    return payload


def run_bench_suite(suite: str = "all", out_dir: str | Path = ".") -> bool:
    """Run the requested suite(s); returns True when every acceptance
    bar passed.

    Raises:
        ValueError: on an unknown suite name.
    """
    if suite not in ("all", "mapping", "sim", "service"):
        raise ValueError(f"unknown benchmark suite {suite!r}")
    ok = True
    if suite in ("all", "mapping"):
        ok = run_mapping_bench(out_dir)["passed"] and ok
    if suite in ("all", "sim"):
        ok = run_sim_bench(out_dir)["passed"] and ok
    if suite in ("all", "service"):
        ok = run_service_bench(out_dir)["passed"] and ok
    return ok
