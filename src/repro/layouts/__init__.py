"""Data layouts: every construction in the paper plus the baselines."""

from .balancing import (
    minimum_balanced_layout,
    rebalance_parity,
    single_copy_layout,
)
from .dual import (
    DualParityLayout,
    verify_double_fault_tolerance,
    with_dual_parity,
)
from .extension import ExtensionStep, extendible_family, movement_cost
from .parallelism import SequentialMetrics, sequential_metrics
from .feasibility import (
    FEASIBLE_SIZE_LIMIT,
    best_feasible_method,
    is_feasible_size,
    predicted_sizes,
)
from .holland_gibson import holland_gibson_layout, layout_from_design
from .layout import Layout, LayoutError, Stripe, materialize
from .mapping import AddressMapper, PhysicalUnit
from .metrics import (
    LayoutMetrics,
    StripeIncidence,
    cocrossing_matrix,
    evaluate_layout,
    parity_counts,
    parity_overheads,
    reconstruction_workloads,
    stripe_incidence,
)
from .raid5 import raid5_layout
from .serialization import (
    layout_from_dict,
    layout_to_dict,
    load_layout,
    save_layout,
)
from .randomized import random_layout
from .removal import remove_disks, theorem8_layout, theorem9_layout
from .sparing import (
    DistributedSparing,
    choose_spare_units,
    with_distributed_sparing,
)
from .ring_layout import ring_disk_stripes, ring_layout, ring_layout_from_design
from .stairway import (
    StairwayPlan,
    find_smallest_stairway_plan,
    find_stairway_plan,
    iter_stairway_plans,
    stairway_layout,
    stairway_params,
    theorem10_layout,
    theorem11_layout,
)

__all__ = [
    "minimum_balanced_layout",
    "rebalance_parity",
    "single_copy_layout",
    "ExtensionStep",
    "extendible_family",
    "movement_cost",
    "DualParityLayout",
    "verify_double_fault_tolerance",
    "with_dual_parity",
    "SequentialMetrics",
    "sequential_metrics",
    "random_layout",
    "DistributedSparing",
    "choose_spare_units",
    "with_distributed_sparing",
    "FEASIBLE_SIZE_LIMIT",
    "best_feasible_method",
    "is_feasible_size",
    "predicted_sizes",
    "holland_gibson_layout",
    "layout_from_design",
    "Layout",
    "LayoutError",
    "Stripe",
    "materialize",
    "AddressMapper",
    "PhysicalUnit",
    "LayoutMetrics",
    "StripeIncidence",
    "cocrossing_matrix",
    "evaluate_layout",
    "parity_counts",
    "parity_overheads",
    "reconstruction_workloads",
    "stripe_incidence",
    "raid5_layout",
    "layout_from_dict",
    "layout_to_dict",
    "load_layout",
    "save_layout",
    "remove_disks",
    "theorem8_layout",
    "theorem9_layout",
    "ring_disk_stripes",
    "ring_layout",
    "ring_layout_from_design",
    "StairwayPlan",
    "find_smallest_stairway_plan",
    "find_stairway_plan",
    "iter_stairway_plans",
    "stairway_layout",
    "stairway_params",
    "theorem10_layout",
    "theorem11_layout",
]
