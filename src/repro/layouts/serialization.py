"""Layout serialization: the on-disk form of the Condition 4 table.

An array controller ships the layout as a resident lookup table; this
module provides a stable JSON schema for that artifact, so layouts can
be generated offline (where the flow solver and design search run) and
loaded by a controller that only ever does table lookups.

The schema stores stripes as unit lists plus the parity index — exactly
the information the paper's mapping model requires — with a format
version and the construction name for provenance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .layout import Layout, LayoutError, Stripe

__all__ = ["layout_to_dict", "layout_from_dict", "save_layout", "load_layout"]

FORMAT_VERSION = 1


def layout_to_dict(layout: Layout) -> dict[str, Any]:
    """Serialize a layout to a JSON-compatible dict."""
    return {
        "format": FORMAT_VERSION,
        "name": layout.name,
        "v": layout.v,
        "size": layout.size,
        "stripes": [
            {
                "units": [[d, off] for d, off in stripe.units],
                "parity": stripe.parity_index,
            }
            for stripe in layout.stripes
        ],
    }


def layout_from_dict(payload: dict[str, Any]) -> Layout:
    """Deserialize a layout; the result is fully re-validated.

    Raises:
        LayoutError: if the payload is malformed or encodes an invalid
            layout (corrupted tables must never reach a controller).
    """
    try:
        if payload["format"] != FORMAT_VERSION:
            raise LayoutError(
                f"unsupported layout format {payload['format']!r} "
                f"(expected {FORMAT_VERSION})"
            )
        stripes = tuple(
            Stripe(
                units=tuple((int(d), int(off)) for d, off in s["units"]),
                parity_index=int(s["parity"]),
            )
            for s in payload["stripes"]
        )
        layout = Layout(
            v=int(payload["v"]),
            size=int(payload["size"]),
            stripes=stripes,
            name=str(payload.get("name", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise LayoutError(f"malformed layout payload: {exc}") from exc
    layout.validate()
    return layout


def save_layout(layout: Layout, path: str | Path) -> None:
    """Write a layout to ``path`` as JSON."""
    Path(path).write_text(json.dumps(layout_to_dict(layout), indent=1))


def load_layout(path: str | Path) -> Layout:
    """Read and validate a layout from a JSON file.

    Raises:
        LayoutError: if the file does not encode a valid layout.
    """
    return layout_from_dict(json.loads(Path(path).read_text()))
