"""Logical-to-physical address mapping (Condition 4).

Maps a linear logical address space of *data* units onto the array: one
table lookup plus constant arithmetic, exactly the paper's efficiency
model.  Disks larger than one layout iteration tile the layout
vertically ("multiple copies of the layout can be used as needed").

The lookup tables are flat, array-backed (``array``/``bytes``, no
per-call dict hops), built once per mapper:

* forward — indexed by logical address within one iteration, giving
  ``(disk, offset, stripe)``;
* reverse — indexed by ``disk * size + offset``, giving
  ``(stripe, logical-or-minus-one)`` plus a parity flag byte;
* parity — indexed by stripe, giving the parity unit's position.

NumPy views over the same buffers power :meth:`AddressMapper.map_batch`,
which translates whole address vectors in a handful of vectorized
operations — the hot path for bulk I/O submission and the data plane.
The forward table's row count — the layout size — is the paper's
feasibility measure.

Tables and batch outputs are ``int32`` whenever every representable
value (offsets and stripe ids across all iterations, logical
addresses up to the capacity) fits below ``2**31`` — which is every
realistic array — halving memory traffic on the hot mapping path;
mappers automatically widen to ``int64`` beyond that.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .layout import Layout

__all__ = ["AddressMapper", "PhysicalUnit"]


@dataclass(frozen=True)
class PhysicalUnit:
    """A physical unit address plus its stripe context."""

    disk: int
    offset: int
    stripe: int
    is_parity: bool


class AddressMapper:
    """Bidirectional logical/physical mapping for a layout.

    Logical data units are numbered in stripe order (stripe 0's data
    units first).  Parity units have no logical address.

    Args:
        layout: the data layout (one iteration).
        iterations: how many times the layout tiles each disk (a disk
            has ``layout.size * iterations`` units).
        index_dtype: table/element dtype override (``np.int32`` or
            ``np.int64``).  Default ``None`` picks ``int32`` whenever
            every offset, stripe id, and logical address across all
            iterations fits, ``int64`` otherwise — the override exists
            for the benchmark suite's before/after comparison.

    Raises:
        ValueError: on a non-positive iteration count, an unsupported
            ``index_dtype``, or an ``int32`` override whose address
            space does not fit 32 bits.
    """

    def __init__(
        self,
        layout: Layout,
        *,
        iterations: int = 1,
        index_dtype: np.dtype | type | None = None,
    ):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.layout = layout
        self.iterations = iterations

        # Every value a table (or a batch output built from one) can
        # hold: offsets reach size * iterations, global stripe ids reach
        # b * iterations, reverse lookups reach the capacity — and
        # consumers fold outputs into flat cells (disk * size + offset),
        # so the full cell range must fit too or their arithmetic would
        # overflow in the narrow dtype.
        extreme = max(
            layout.v,
            layout.size * iterations,
            layout.b * iterations,
            (layout.v * layout.size - layout.b) * iterations,
            layout.v * layout.size * iterations,
        )
        if index_dtype is None:
            dtype = np.dtype(np.int32 if extreme < 2**31 else np.int64)
        else:
            dtype = np.dtype(index_dtype)
            if dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
                raise ValueError(
                    f"index_dtype must be int32 or int64, got {dtype}"
                )
            if dtype == np.dtype(np.int32) and extreme >= 2**31:
                raise ValueError(
                    f"address space too large for int32 tables "
                    f"(max value {extreme})"
                )
        self._dtype = dtype
        typecode = "i" if dtype == np.dtype(np.int32) else "q"
        itemsize = dtype.itemsize

        # Forward tables: logical data unit -> disk / offset / stripe.
        fwd_disk = array(typecode)
        fwd_off = array(typecode)
        fwd_stripe = array(typecode)
        # Parity tables: stripe -> parity unit position.
        par_disk = array(typecode)
        par_off = array(typecode)
        # Reverse tables, indexed by disk * size + offset.
        cells = layout.v * layout.size
        rev_stripe = array(typecode, bytes(itemsize * cells))
        rev_lba = array(typecode, [-1]) * cells
        rev_parity = bytearray(cells)

        for si, stripe in enumerate(layout.stripes):
            pd, poff = stripe.parity_unit
            par_disk.append(pd)
            par_off.append(poff)
            rev_stripe[pd * layout.size + poff] = si
            rev_parity[pd * layout.size + poff] = 1
            for d, off in stripe.data_units():
                cell = d * layout.size + off
                rev_stripe[cell] = si
                rev_lba[cell] = len(fwd_disk)
                fwd_disk.append(d)
                fwd_off.append(off)
                fwd_stripe.append(si)

        self._fwd_disk = fwd_disk
        self._fwd_off = fwd_off
        self._fwd_stripe = fwd_stripe
        self._par_disk = par_disk
        self._par_off = par_off
        self._rev_stripe = rev_stripe
        self._rev_lba = rev_lba
        self._rev_parity = bytes(rev_parity)

        # NumPy views sharing the table buffers — the batch path.
        self._np_fwd_disk = np.frombuffer(fwd_disk, dtype=dtype)
        self._np_fwd_off = np.frombuffer(fwd_off, dtype=dtype)
        self._np_fwd_stripe = np.frombuffer(fwd_stripe, dtype=dtype)
        self._np_par_disk = np.frombuffer(par_disk, dtype=dtype)
        self._np_par_off = np.frombuffer(par_off, dtype=dtype)
        self._np_rev_stripe = np.frombuffer(rev_stripe, dtype=dtype)
        self._np_rev_lba = np.frombuffer(rev_lba, dtype=dtype)
        self._np_rev_parity = np.frombuffer(self._rev_parity, dtype=np.uint8)

    @property
    def index_dtype(self) -> np.dtype:
        """Element dtype of the lookup tables and batch outputs."""
        return self._dtype

    def table_nbytes(self) -> int:
        """Resident bytes across all flat lookup tables (the memory
        the ``int32`` narrowing halves on the hot path)."""
        views = (
            self._np_fwd_disk,
            self._np_fwd_off,
            self._np_fwd_stripe,
            self._np_par_disk,
            self._np_par_off,
            self._np_rev_stripe,
            self._np_rev_lba,
            self._np_rev_parity,
        )
        return sum(v.nbytes for v in views)

    @property
    def data_units_per_iteration(self) -> int:
        """Data units in one layout iteration (``v*size - b``)."""
        return len(self._fwd_disk)

    @property
    def capacity(self) -> int:
        """Total logical data units across all iterations."""
        return self.data_units_per_iteration * self.iterations

    def table_rows(self) -> int:
        """Condition 4 metric: rows in the resident lookup table (the
        layout size — units per disk per iteration)."""
        return self.layout.size

    # ------------------------------------------------------------------
    # Scalar path
    # ------------------------------------------------------------------

    def logical_to_physical(self, lba: int) -> PhysicalUnit:
        """Map a logical data-unit address to its physical unit.

        One table lookup (``lba mod units-per-iteration``) plus constant
        arithmetic for the iteration offset.

        Raises:
            IndexError: if ``lba`` is outside the address space.
        """
        if not 0 <= lba < self.capacity:
            raise IndexError(f"lba {lba} outside capacity {self.capacity}")
        iteration, within = divmod(lba, self.data_units_per_iteration)
        return PhysicalUnit(
            disk=self._fwd_disk[within],
            offset=self._fwd_off[within] + iteration * self.layout.size,
            stripe=self._fwd_stripe[within] + iteration * self.layout.b,
            is_parity=False,
        )

    def physical_to_logical(self, disk: int, offset: int) -> tuple[int, bool]:
        """Map a physical unit back to ``(lba, is_parity)``.

        Parity units return ``(-1, True)``.

        Raises:
            IndexError: if the physical address is out of range.
        """
        iteration, within = divmod(offset, self.layout.size)
        if not (0 <= disk < self.layout.v and 0 <= iteration < self.iterations):
            raise IndexError(f"physical address ({disk},{offset}) out of range")
        cell = disk * self.layout.size + within
        if self._rev_parity[cell]:
            return -1, True
        return (
            self._rev_lba[cell] + iteration * self.data_units_per_iteration,
            False,
        )

    def stripe_of(self, disk: int, offset: int) -> int:
        """Global stripe id of a physical unit (across iterations)."""
        iteration, within = divmod(offset, self.layout.size)
        return (
            self._rev_stripe[disk * self.layout.size + within]
            + iteration * self.layout.b
        )

    def parity_unit_of_stripe(self, global_stripe: int) -> tuple[int, int]:
        """``(disk, offset)`` of a (global) stripe's parity unit."""
        iteration, si = divmod(global_stripe, self.layout.b)
        return self._par_disk[si], self._par_off[si] + iteration * self.layout.size

    def stripe_units(self, global_stripe: int) -> list[PhysicalUnit]:
        """All physical units of a (global) stripe."""
        iteration, si = divmod(global_stripe, self.layout.b)
        stripe = self.layout.stripes[si]
        shift = iteration * self.layout.size
        return [
            PhysicalUnit(
                disk=d,
                offset=off + shift,
                stripe=global_stripe,
                is_parity=ui == stripe.parity_index,
            )
            for ui, (d, off) in enumerate(stripe.units)
        ]

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def _as_lba_array(self, lbas: Sequence[int] | np.ndarray) -> np.ndarray:
        a = np.ascontiguousarray(lbas, dtype=np.int64)
        if a.ndim != 1:
            raise ValueError(f"address batch must be 1-D, got shape {a.shape}")
        if a.size and (a.min() < 0 or a.max() >= self.capacity):
            raise IndexError(
                f"address batch outside capacity {self.capacity}: "
                f"range [{a.min()}, {a.max()}]"
            )
        return a

    def map_batch(
        self,
        lbas: Sequence[int] | np.ndarray,
        *,
        with_stripes: bool = False,
    ) -> tuple[np.ndarray, ...]:
        """Vectorized :meth:`logical_to_physical` for a whole batch.

        Args:
            lbas: 1-D vector of logical data-unit addresses.
            with_stripes: also return the global stripe ids.

        Returns:
            ``(disks, offsets)`` vectors of :attr:`index_dtype`, or
            ``(disks, offsets, stripes)`` with ``with_stripes=True`` —
            element-wise equal to the scalar mapping.

        Raises:
            IndexError: if any address is outside the address space.
            ValueError: if the batch is not one-dimensional.
        """
        a = self._as_lba_array(lbas)
        iteration, within = np.divmod(a, self.data_units_per_iteration)
        # Iteration indices fit the table dtype by construction; casting
        # keeps the whole output in int32 when the tables are int32
        # (int64 `iteration` would silently promote the arithmetic).
        it = iteration.astype(self._dtype, copy=False)
        disks = self._np_fwd_disk[within]
        offsets = self._np_fwd_off[within] + it * self.layout.size
        if with_stripes:
            stripes = self._np_fwd_stripe[within] + it * self.layout.b
            return disks, offsets, stripes
        return disks, offsets

    def map_batch_parity(
        self, lbas: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, ...]:
        """Batch-map addresses together with their stripes' parity units.

        Returns ``(disks, offsets, stripes, parity_disks,
        parity_offsets)`` — everything a controller needs to issue
        read-modify-writes without touching the scalar path.
        """
        a = self._as_lba_array(lbas)
        iteration, within = np.divmod(a, self.data_units_per_iteration)
        it = iteration.astype(self._dtype, copy=False)
        disks = self._np_fwd_disk[within]
        offsets = self._np_fwd_off[within] + it * self.layout.size
        si = self._np_fwd_stripe[within]
        stripes = si + it * self.layout.b
        par_disks = self._np_par_disk[si]
        par_offsets = self._np_par_off[si] + it * self.layout.size
        return disks, offsets, stripes, par_disks, par_offsets

    def physical_to_logical_batch(
        self,
        disks: Sequence[int] | np.ndarray,
        offsets: Sequence[int] | np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`physical_to_logical`.

        Returns ``(lbas, is_parity)``; parity units get lba ``-1``.

        Raises:
            IndexError: if any physical address is out of range.
            ValueError: on shape mismatch.
        """
        d = np.ascontiguousarray(disks, dtype=np.int64)
        off = np.ascontiguousarray(offsets, dtype=np.int64)
        if d.shape != off.shape or d.ndim != 1:
            raise ValueError(
                f"disk/offset batches must be equal 1-D, got {d.shape}/{off.shape}"
            )
        iteration, within = np.divmod(off, self.layout.size)
        if d.size and not (
            (d >= 0).all()
            and (d < self.layout.v).all()
            and (iteration >= 0).all()
            and (iteration < self.iterations).all()
        ):
            raise IndexError("physical address batch out of range")
        cell = d * self.layout.size + within
        is_parity = self._np_rev_parity[cell].astype(bool)
        it = iteration.astype(self._dtype, copy=False)
        lbas = self._np_rev_lba[cell] + it * self.data_units_per_iteration
        lbas[is_parity] = -1
        return lbas, is_parity
