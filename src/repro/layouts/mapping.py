"""Logical-to-physical address mapping (Condition 4).

Maps a linear logical address space of *data* units onto the array: one
table lookup plus constant arithmetic, exactly the paper's efficiency
model.  Disks larger than one layout iteration tile the layout
vertically ("multiple copies of the layout can be used as needed").

The lookup table is the per-iteration list of data-unit positions (and
the reverse grid); its row count — the layout size — is the paper's
feasibility measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from .layout import Layout

__all__ = ["AddressMapper", "PhysicalUnit"]


@dataclass(frozen=True)
class PhysicalUnit:
    """A physical unit address plus its stripe context."""

    disk: int
    offset: int
    stripe: int
    is_parity: bool


class AddressMapper:
    """Bidirectional logical/physical mapping for a layout.

    Logical data units are numbered in stripe order (stripe 0's data
    units first).  Parity units have no logical address.

    Args:
        layout: the data layout (one iteration).
        iterations: how many times the layout tiles each disk (a disk
            has ``layout.size * iterations`` units).
    """

    def __init__(self, layout: Layout, *, iterations: int = 1):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.layout = layout
        self.iterations = iterations
        # Forward table: logical data unit -> (disk, offset, stripe).
        self._data_units: list[tuple[int, int, int]] = []
        for si, stripe in enumerate(layout.stripes):
            for d, off in stripe.data_units():
                self._data_units.append((d, off, si))
        # Reverse grid: (disk, offset) -> (stripe, is_parity, logical or -1).
        self._reverse: dict[tuple[int, int], tuple[int, bool, int]] = {}
        for si, stripe in enumerate(layout.stripes):
            pd, poff = stripe.parity_unit
            self._reverse[(pd, poff)] = (si, True, -1)
        for lba, (d, off, si) in enumerate(self._data_units):
            self._reverse[(d, off)] = (si, False, lba)

    @property
    def data_units_per_iteration(self) -> int:
        """Data units in one layout iteration (``v*size - b``)."""
        return len(self._data_units)

    @property
    def capacity(self) -> int:
        """Total logical data units across all iterations."""
        return self.data_units_per_iteration * self.iterations

    def table_rows(self) -> int:
        """Condition 4 metric: rows in the resident lookup table (the
        layout size — units per disk per iteration)."""
        return self.layout.size

    def logical_to_physical(self, lba: int) -> PhysicalUnit:
        """Map a logical data-unit address to its physical unit.

        One table lookup (``lba mod units-per-iteration``) plus constant
        arithmetic for the iteration offset.

        Raises:
            IndexError: if ``lba`` is outside the address space.
        """
        if not 0 <= lba < self.capacity:
            raise IndexError(f"lba {lba} outside capacity {self.capacity}")
        iteration, within = divmod(lba, self.data_units_per_iteration)
        disk, offset, stripe = self._data_units[within]
        return PhysicalUnit(
            disk=disk,
            offset=offset + iteration * self.layout.size,
            stripe=stripe + iteration * self.layout.b,
            is_parity=False,
        )

    def physical_to_logical(self, disk: int, offset: int) -> tuple[int, bool]:
        """Map a physical unit back to ``(lba, is_parity)``.

        Parity units return ``(-1, True)``.

        Raises:
            IndexError: if the physical address is out of range.
        """
        iteration, within = divmod(offset, self.layout.size)
        if not (0 <= disk < self.layout.v and 0 <= iteration < self.iterations):
            raise IndexError(f"physical address ({disk},{offset}) out of range")
        stripe, is_parity, lba = self._reverse[(disk, within)]
        if is_parity:
            return -1, True
        return lba + iteration * self.data_units_per_iteration, False

    def stripe_of(self, disk: int, offset: int) -> int:
        """Global stripe id of a physical unit (across iterations)."""
        iteration, within = divmod(offset, self.layout.size)
        stripe, _, _ = self._reverse[(disk, within)]
        return stripe + iteration * self.layout.b

    def stripe_units(self, global_stripe: int) -> list[PhysicalUnit]:
        """All physical units of a (global) stripe."""
        iteration, si = divmod(global_stripe, self.layout.b)
        stripe = self.layout.stripes[si]
        shift = iteration * self.layout.size
        out = []
        for ui, (d, off) in enumerate(stripe.units):
            is_par = ui == stripe.parity_index
            lba = -1
            if not is_par:
                _, _, lba = self._reverse[(d, off)]
            out.append(
                PhysicalUnit(
                    disk=d,
                    offset=off + shift,
                    stripe=global_stripe,
                    is_parity=is_par,
                )
            )
        return out
