"""Distributed sparing (Section 5 open problem, after Holland–Gibson [8]).

Instead of rebuilding a failed disk onto a dedicated spare, reserve one
*spare unit* per stripe, spread across the array like parity.  A rebuild
then writes each recovered unit to its stripe's spare unit, parallelizing
the write traffic over all surviving disks and removing the
single-spare-disk bottleneck.

The paper points out (end of Section 4) that its Theorem 14 flow method
generalizes to selecting any number of distinguished units per stripe.
We use exactly that: spares are chosen by a second Theorem-14 pass over
the non-parity units, so *both* the parity units and the spare units are
balanced to within one unit per disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flow import assign_parity
from .layout import Layout

__all__ = ["DistributedSparing", "choose_spare_units", "with_distributed_sparing"]


@dataclass(frozen=True)
class DistributedSparing:
    """A layout plus one reserved spare unit per stripe.

    Attributes:
        layout: the underlying layout (spare units are drawn from its
            data units; they hold no live data).
        spare_units: per stripe, the ``(disk, offset)`` reserved as its
            spare.
    """

    layout: Layout
    spare_units: tuple[tuple[int, int], ...]

    def spare_counts(self) -> list[int]:
        """Spare units per disk (balanced within 1 by construction)."""
        counts = [0] * self.layout.v
        for d, _ in self.spare_units:
            counts[d] += 1
        return counts

    def data_fraction(self) -> float:
        """Fraction of the array still holding live data (the cost of
        sparing: one more unit per stripe is reserved)."""
        total = self.layout.total_units()
        reserved = 2 * self.layout.b  # parity + spare per stripe
        return (total - reserved) / total

    def validate(self) -> None:
        """Check spare units are distinct stripe members and not parity.

        Raises:
            ValueError: on any violation.
        """
        for sid, (stripe, spare) in enumerate(
            zip(self.layout.stripes, self.spare_units)
        ):
            if spare not in stripe.units:
                raise ValueError(f"stripe {sid}: spare {spare} not a member")
            if spare == stripe.parity_unit:
                raise ValueError(f"stripe {sid}: spare coincides with parity")


def choose_spare_units(layout: Layout) -> list[tuple[int, int]]:
    """Choose one spare unit per stripe, balanced across disks.

    Runs the Theorem 14 flow assignment over the stripes' *non-parity*
    disks, so per-disk spare counts land in ``{⌊L'(d)⌋, ⌈L'(d)⌉}`` where
    ``L'`` is the load over (k_s - 1)-unit candidate sets.

    Raises:
        ValueError: if some stripe has fewer than 3 units (no room for
            data + parity + spare).
    """
    candidates: list[tuple[int, ...]] = []
    for sid, stripe in enumerate(layout.stripes):
        if stripe.size < 3:
            raise ValueError(
                f"stripe {sid} has size {stripe.size}; distributed sparing "
                "needs at least data + parity + spare"
            )
        parity_disk = stripe.parity_unit[0]
        candidates.append(tuple(d for d in stripe.disks if d != parity_disk))

    spare_disks = assign_parity(candidates, layout.v)
    spares: list[tuple[int, int]] = []
    for stripe, sd in zip(layout.stripes, spare_disks):
        unit = next(u for u in stripe.units if u[0] == sd)
        spares.append(unit)
    return spares


def with_distributed_sparing(layout: Layout) -> DistributedSparing:
    """Attach balanced distributed spare units to a layout."""
    sparing = DistributedSparing(
        layout=layout, spare_units=tuple(choose_spare_units(layout))
    )
    sparing.validate()
    return sparing
