"""Ring-based layouts (Section 3 intro): single-copy, perfectly balanced.

The paper's first improvement over the Holland–Gibson method: for a
Theorem 1 ring design, assign the parity unit of the stripe indexed by
``(x, y)`` to its unit on disk ``x``.  Each disk ``x`` is the parity
disk of exactly the ``v-1`` stripes ``(x, ·)``, so parity is perfectly
balanced with *no replication*, and the layout size is ``k(v-1)``
instead of Holland–Gibson's ``k·r = k²(v-1)``.
"""

from __future__ import annotations

from ..designs import RingDesign, ring_design
from .layout import Layout, materialize

__all__ = ["ring_disk_stripes", "ring_layout", "ring_layout_from_design"]


def ring_disk_stripes(design: RingDesign) -> list[tuple[tuple[int, ...], int]]:
    """Disk-level stripes of the ring layout: ``(disks, parity_disk)``
    per block, with the parity on disk ``x`` for pair ``(x, y)``.

    Disk tuples are in generator order — position ``j`` is the
    ``g_j``-th element — because the removal theorems address units by
    generator position.
    """
    index = design.ring.index
    out: list[tuple[tuple[int, ...], int]] = []
    for (x, _y), elems in zip(design.pairs, design.block_elements):
        out.append((tuple(index(e) for e in elems), index(x)))
    return out


def ring_layout_from_design(design: RingDesign) -> Layout:
    """Materialize the ring layout of an existing :class:`RingDesign`."""
    return materialize(
        design.v,
        ring_disk_stripes(design),
        name=f"ring_layout(v={design.v},k={design.k})",
    )


def ring_layout(v: int, k: int) -> Layout:
    """Build the ring layout for ``(v, k)``.

    Size ``k(v-1)``; parity overhead exactly ``1/k`` on every disk;
    reconstruction workload exactly ``(k-1)/(v-1)`` for every pair.

    Raises:
        ValueError: if ``k`` exceeds the Theorem 2 capacity ``M(v)``.
    """
    return ring_layout_from_design(ring_design(v, k))
