"""BIBD-based layouts by the Holland–Gibson method (Section 1, Fig. 3).

The original parity-declustering recipe: associate BIBD elements with
disks and blocks with stripes (Conditions 1 and 3 follow from the
design's balance), then replicate the design ``k`` times, rotating the
parity position through the tuple so each disk ends up with ``r`` parity
units (Condition 2).  The cost is a layout of size ``k·r`` — the size
blow-up Sections 3-4 of the paper attack.

This module also exposes the single-knob generalization used by the
paper's Section 4 comparison: any number of copies with either rotated
or flow-assigned parity.
"""

from __future__ import annotations

from typing import Literal

from ..designs import BlockDesign
from ..flow import assign_parity
from .layout import Layout, materialize

__all__ = ["holland_gibson_layout", "layout_from_design"]


def holland_gibson_layout(design: BlockDesign) -> Layout:
    """The classic k-copy rotated-parity layout (Fig. 3).

    Size ``k·r``; parity perfectly balanced (each disk holds exactly
    ``r`` parity units).
    """
    return layout_from_design(design, copies=design.k, parity="rotate")


def layout_from_design(
    design: BlockDesign,
    *,
    copies: int = 1,
    parity: Literal["rotate", "flow"] = "flow",
) -> Layout:
    """Lay out ``copies`` replicas of a BIBD with a parity policy.

    ``parity="rotate"`` places copy ``c``'s parity at tuple position
    ``c mod k`` (the Holland–Gibson rule; perfectly balanced only when
    ``copies`` is a multiple of ``k``).  ``parity="flow"`` runs the
    Section 4 network-flow assignment over all replicated stripes,
    achieving the Theorem 14 optimum (per-disk parity counts within 1,
    perfect when ``v | b·copies``) for *any* number of copies.

    Raises:
        ValueError: if ``copies < 1``.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    k = design.k
    all_blocks: list[tuple[int, ...]] = []
    rotate_parity: list[int] = []
    for c in range(copies):
        for blk in design.blocks:
            all_blocks.append(blk)
            rotate_parity.append(blk[c % k])

    if parity == "rotate":
        parity_disks = rotate_parity
    elif parity == "flow":
        parity_disks = assign_parity(all_blocks, design.v)
    else:
        raise ValueError(f"unknown parity policy {parity!r}")

    name = f"hg(design={design.name or 'bibd'},copies={copies},parity={parity})"
    return materialize(
        design.v,
        zip(all_blocks, parity_disks),
        name=name,
    )
