"""Disk removal from ring layouts (Theorems 8 and 9).

Theorem 8: delete one disk ``x₀`` from a ring layout.  Stripes that
crossed it shrink to ``k-1`` units; each deleted stripe-``(x₀, y)``
parity unit is reassigned to the stripe's unit on disk
``x₀ + y(g₁ - g₀)``, which hands exactly one extra parity unit to every
surviving disk — balance stays perfect.

Theorem 9: delete ``i ≤ √k`` disks.  Running the Theorem 8 rule per
removed disk leaves ``i(i-1)`` parity units whose preferred target was
itself removed; those orphans are re-placed on distinct surviving disks
of their stripes via a bipartite matching (we reuse the flow substrate),
so every disk ends with ``v+i-1`` or ``v+i`` parity units.
"""

from __future__ import annotations

from typing import Sequence

from ..designs import RingDesign, ring_design
from ..flow import FlowNetwork, dinic_max_flow
from .layout import Layout, LayoutError, materialize

__all__ = ["remove_disks", "theorem8_layout", "theorem9_layout"]


def _match_orphans(
    orphans: list[list[int]], disks: list[int]
) -> list[int]:
    """Assign each orphan stripe one disk from its candidate list, no
    disk used twice (the Theorem 9 matching step).

    Args:
        orphans: candidate disk lists, one per orphaned parity unit.
        disks: all surviving disk ids (matching capacity 1 each).

    Returns:
        The chosen disk per orphan.

    Raises:
        LayoutError: if no perfect matching exists (cannot happen within
            the Theorem 9 precondition ``i(i-1) <= k-i``).
    """
    if not orphans:
        return []
    disk_node = {d: 2 + len(orphans) + j for j, d in enumerate(disks)}
    net = FlowNetwork(2 + len(orphans) + len(disks))
    source, sink = 0, 1
    orphan_edges: list[list[int]] = []
    for i, cands in enumerate(orphans):
        net.add_edge(source, 2 + i, 1)
        orphan_edges.append([net.add_edge(2 + i, disk_node[d], 1) for d in cands])
    for d in disks:
        net.add_edge(disk_node[d], sink, 1)

    matched = dinic_max_flow(net, source, sink)
    if matched != len(orphans):
        raise LayoutError(
            f"orphan parity matching failed: matched {matched} of {len(orphans)}"
        )
    chosen: list[int] = []
    for i, cands in enumerate(orphans):
        picked = [d for d, eid in zip(orphans[i], orphan_edges[i]) if net.flow(eid) == 1]
        chosen.append(picked[0])
    return chosen


def remove_disks(design: RingDesign, removed: Sequence[int]) -> Layout:
    """Remove the given disks (dense indices) from the ring layout of
    ``design`` and return the re-balanced layout on ``v - i`` disks.

    Implements Theorem 8 (``i = 1``) and Theorem 9 (``i > 1``).  The
    surviving disks are renumbered densely, preserving order.

    Raises:
        ValueError: if ``i >= k`` (a stripe could lose all units), if
            ``i(i-1) > k-i`` (the paper's matching precondition, which
            ``i ≤ √k`` guarantees), or if a removed index is invalid.
    """
    v, k = design.v, design.k
    removed_set = set(removed)
    if len(removed_set) != len(removed):
        raise ValueError("duplicate removed disks")
    if not all(0 <= d < v for d in removed_set):
        raise ValueError(f"removed disks out of range for v={v}")
    i = len(removed_set)
    if i == 0:
        raise ValueError("no disks to remove")
    if i * (i - 1) > k - i:
        raise ValueError(
            f"removing {i} disks violates the Theorem 9 precondition "
            f"i(i-1) <= k-i (k={k}); need i <= sqrt(k)"
        )
    if k - i < 2:
        raise ValueError(
            f"removing {i} disks from stripes of size {k} would leave "
            "single-unit stripes, which cannot carry parity"
        )

    ring = design.ring
    index = ring.index
    g0, g1 = design.gens[0], design.gens[1]
    delta = ring.sub(g1, g0)

    # Dense renumbering of survivors.
    new_id = {}
    nid = 0
    for d in range(v):
        if d not in removed_set:
            new_id[d] = nid
            nid += 1

    # Pass 1: shrink stripes, apply the Theorem 8 reassignment rule,
    # collect orphans whose preferred target was also removed.
    stripes: list[tuple[tuple[int, ...], int]] = []
    orphan_candidates: list[list[int]] = []
    orphan_stripe_ids: list[int] = []
    for (x, y), elems in zip(design.pairs, design.block_elements):
        disks = [index(e) for e in elems]
        surviving = tuple(new_id[d] for d in disks if d not in removed_set)
        x_idx = index(x)
        if x_idx not in removed_set:
            parity = new_id[x_idx]
        else:
            target = index(ring.add(x, ring.mul(y, delta)))
            if target not in removed_set:
                parity = new_id[target]
            else:
                parity = -1  # orphan: resolved by the matching below
                orphan_candidates.append(list(surviving))
                orphan_stripe_ids.append(len(stripes))
        stripes.append((surviving, parity))

    # Pass 2: match orphans to distinct surviving disks.
    survivors = list(range(v - i))
    for sid, disk in zip(
        orphan_stripe_ids, _match_orphans(orphan_candidates, survivors)
    ):
        stripes[sid] = (stripes[sid][0], disk)

    return materialize(
        v - i,
        stripes,
        name=f"removal(v={v}->{v - i},k={k})",
    )


def theorem8_layout(v: int, k: int) -> Layout:
    """Theorem 8: a perfectly balanced layout for ``v-1`` disks from the
    ``(v, k)`` ring layout, size ``k(v-1)``, parity overhead
    ``(1/k)·(v/(v-1))``, reconstruction workload ``(k-1)/(v-1)``."""
    return remove_disks(ring_design(v, k), [v - 1])


def theorem9_layout(v: int, k: int, i: int) -> Layout:
    """Theorem 9: an approximately balanced layout for ``v-i`` disks,
    per-disk parity counts in ``{v+i-1, v+i}``."""
    return remove_disks(ring_design(v, k), list(range(v - i, v)))
