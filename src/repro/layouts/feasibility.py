"""Condition 4 feasibility: layout sizes vs. the units-per-disk budget.

The paper deems a layout *feasible* when its size (units per disk, =
lookup-table rows) is at most roughly 10,000 tracks; a 1 GB disk of the
era had about 50,000 tracks.  These predictors compute each
construction's size *without materializing it*, which is what makes
array-scale feasibility scans cheap.
"""

from __future__ import annotations

import math

from ..algebra import is_prime_power, min_prime_power_factor
from ..designs import (
    candidate_constructions,
    theorem4_parameters,
    theorem5_parameters,
    theorem6_parameters,
    is_theorem6_applicable,
)
from .stairway import find_smallest_stairway_plan, find_stairway_plan

__all__ = [
    "FEASIBLE_SIZE_LIMIT",
    "is_feasible_size",
    "predicted_sizes",
    "best_feasible_method",
]

#: The paper's default feasibility bound on layout size (units/disk).
FEASIBLE_SIZE_LIMIT = 10_000


def is_feasible_size(size: int, limit: int = FEASIBLE_SIZE_LIMIT) -> bool:
    """Condition 4 test: layout fits in the lookup-table budget."""
    return size <= limit


def predicted_sizes(v: int, k: int) -> dict[str, int]:
    """Predicted layout size (units per disk) of every applicable
    construction for ``(v, k)``, without building anything.

    Methods and their sizes:

    * ``hg_complete``: Holland–Gibson k copies of the complete design —
      ``k * C(v-1, k-1)``.
    * ``hg_best``: Holland–Gibson k copies of the smallest available
      BIBD — ``k^2 * b / v``.
    * ``flow_best``: single flow-balanced copy of the smallest BIBD —
      ``k * b / v`` (Section 4).
    * ``flow_lcm``: minimal perfectly balanced replication —
      ``(k*b/v) * lcm(b,v)/b`` (Corollary 17).
    * ``ring``: ring layout — ``k(v-1)`` (needs ``k <= M(v)``).
    * ``stairway``: least-imbalance stairway (largest prime power
      ``q < v``) — ``k(c-1)(q-1)`` (approximately balanced).
    * ``stairway_compact``: size-minimizing stairway (fewest copies) —
      same formula, smallest value over all valid ``q``.
    """
    sizes: dict[str, int] = {}
    if 2 <= k <= v:
        r_complete = math.comb(v - 1, k - 1)
        sizes["hg_complete"] = k * r_complete

        candidates = candidate_constructions(v, k)
        if candidates:
            _, b = candidates[0]
            r = k * b // v  # replication count of the best design
            sizes["hg_best"] = k * r
            sizes["flow_best"] = r
            copies = math.lcm(b, v) // b
            sizes["flow_lcm"] = r * copies

    if 2 <= k <= min_prime_power_factor(v):
        sizes["ring"] = k * (v - 1)

    plan = find_stairway_plan(v, k)
    if plan is not None:
        sizes["stairway"] = plan.predicted_size(k)
    compact = find_smallest_stairway_plan(v, k)
    if compact is not None:
        sizes["stairway_compact"] = compact.predicted_size(k)

    return sizes


def best_feasible_method(
    v: int, k: int, limit: int = FEASIBLE_SIZE_LIMIT
) -> tuple[str, int] | None:
    """Smallest-size construction for ``(v, k)`` within the feasibility
    limit, or ``None`` if every method exceeds it."""
    sizes = predicted_sizes(v, k)
    feasible = [(s, m) for m, s in sizes.items() if is_feasible_size(s, limit)]
    if not feasible:
        return None
    size, method = min(feasible)
    return method, size
