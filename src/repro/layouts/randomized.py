"""Randomized declustered layouts (the Merchant–Yu style baseline).

Section 5 of the paper names randomized placement (Merchant & Yu [10])
as a comparison point for its combinatorial constructions.  This module
implements a near-regular random layout: every disk holds the same
number of units, stripes are random ``k``-subsets, and parity is
assigned by the Section 4 flow method (so the comparison isolates the
*stripe placement*, not the parity policy).

The interesting contrast, exercised by the benchmarks: a random layout
balances reconstruction workload only *in expectation* — pair
co-crossing counts fluctuate around ``λ`` with relative deviation
``~1/sqrt(r)`` — while the BIBD-based layouts are exactly balanced at
the same size.
"""

from __future__ import annotations

import numpy as np

from ..flow import assign_parity
from .layout import Layout, materialize

__all__ = ["random_layout"]


def random_layout(v: int, k: int, *, stripes_per_disk: int, seed: int = 0) -> Layout:
    """A near-regular random declustered layout.

    Every disk appears in exactly ``stripes_per_disk`` stripes (so the
    layout is rectangular with ``size = stripes_per_disk``), stripes are
    size ``k`` with distinct disks, and parity is flow-balanced.

    Construction: shuffle the multiset of disk slots and cut it into
    ``k``-groups, then repair duplicate-disk groups by random swaps.

    Raises:
        ValueError: if ``k`` does not divide ``v * stripes_per_disk`` or
            parameters are out of range.
    """
    if not 2 <= k <= v:
        raise ValueError(f"need 2 <= k <= v, got v={v}, k={k}")
    total = v * stripes_per_disk
    if total % k != 0:
        raise ValueError(
            f"k={k} must divide v*stripes_per_disk={total} for a "
            "rectangular layout"
        )
    rng = np.random.default_rng(seed)
    slots = np.repeat(np.arange(v), stripes_per_disk)
    rng.shuffle(slots)
    groups = slots.reshape(-1, k)

    # Repair pass: a group with a duplicate disk swaps one offender with
    # a random slot elsewhere until all groups have distinct disks.
    def first_duplicate(row: np.ndarray) -> int:
        seen: set[int] = set()
        for idx, d in enumerate(row):
            if int(d) in seen:
                return idx
            seen.add(int(d))
        return -1

    b = groups.shape[0]
    for _ in range(100_000):
        dirty = [g for g in range(b) if first_duplicate(groups[g]) >= 0]
        if not dirty:
            break
        for g in dirty:
            i = first_duplicate(groups[g])
            if i < 0:
                continue
            og = int(rng.integers(0, b))
            oi = int(rng.integers(0, k))
            groups[g, i], groups[og, oi] = groups[og, oi], groups[g, i]
    else:
        raise RuntimeError("random layout repair did not converge")

    stripes = [tuple(int(d) for d in row) for row in groups]
    parity = assign_parity(stripes, v)
    return materialize(
        v,
        zip(stripes, parity),
        name=f"random(v={v},k={k},r={stripes_per_disk},seed={seed})",
    )
