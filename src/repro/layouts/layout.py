"""The data-layout type: stripes of units placed on a disk array.

A layout divides ``v`` disks of ``size`` units each into parity stripes.
Following the paper's Conditions 1-4 (Section 1):

1. each stripe holds at most one unit per disk (reconstructability);
2. each stripe has exactly one parity unit;
3. every unit of every disk belongs to exactly one stripe;
4. the mapping from logical addresses to units is one table lookup.

``Layout`` is the common currency of the whole library: every
construction (RAID5, Holland–Gibson, ring-based, removal, stairway,
flow-balanced) produces one, the metrics kernels consume one, and the
simulator executes one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["LayoutError", "Stripe", "Layout", "materialize"]


class LayoutError(ValueError):
    """Raised when a unit assignment violates the layout conditions."""


@dataclass(frozen=True)
class Stripe:
    """One parity stripe.

    Attributes:
        units: ``(disk, offset)`` positions of the stripe's units.
        parity_index: index into ``units`` of the parity unit.
    """

    units: tuple[tuple[int, int], ...]
    parity_index: int

    @property
    def size(self) -> int:
        """Number of units in the stripe (the paper's ``k_s``)."""
        return len(self.units)

    @property
    def parity_unit(self) -> tuple[int, int]:
        """``(disk, offset)`` of the parity unit."""
        return self.units[self.parity_index]

    @property
    def disks(self) -> tuple[int, ...]:
        """Disks crossed by this stripe, in unit order."""
        return tuple(d for d, _ in self.units)

    def data_units(self) -> tuple[tuple[int, int], ...]:
        """The non-parity units, in unit order."""
        return tuple(
            u for i, u in enumerate(self.units) if i != self.parity_index
        )


@dataclass(frozen=True)
class Layout:
    """A complete data layout for a ``v``-disk array.

    Attributes:
        v: number of disks.
        size: units per disk (the paper's layout *size*, the Condition 4
            feasibility quantity).
        stripes: the stripe list.
        name: construction tag for reports.
    """

    v: int
    size: int
    stripes: tuple[Stripe, ...]
    name: str = field(default="", compare=False)

    @property
    def b(self) -> int:
        """Number of stripes."""
        return len(self.stripes)

    def total_units(self) -> int:
        """``v * size``: every unit on every disk."""
        return self.v * self.size

    def stripe_sizes(self) -> tuple[int, int]:
        """``(k_min, k_max)`` over all stripes."""
        sizes = [s.size for s in self.stripes]
        return min(sizes), max(sizes)

    def validate(self) -> None:
        """Check Conditions 1-3 plus full rectangular coverage.

        Raises:
            LayoutError: on the first violation found.
        """
        if self.v < 2 or self.size < 1:
            raise LayoutError(f"invalid dimensions v={self.v}, size={self.size}")
        seen: set[tuple[int, int]] = set()
        for si, stripe in enumerate(self.stripes):
            if stripe.size < 2:
                raise LayoutError(f"stripe {si} has fewer than 2 units")
            if not 0 <= stripe.parity_index < stripe.size:
                raise LayoutError(f"stripe {si} has invalid parity index")
            disks = set()
            for disk, offset in stripe.units:
                if not (0 <= disk < self.v and 0 <= offset < self.size):
                    raise LayoutError(
                        f"stripe {si} unit ({disk},{offset}) out of bounds"
                    )
                if disk in disks:
                    raise LayoutError(
                        f"stripe {si} crosses disk {disk} twice (violates Condition 1)"
                    )
                disks.add(disk)
                if (disk, offset) in seen:
                    raise LayoutError(
                        f"unit ({disk},{offset}) belongs to more than one stripe"
                    )
                seen.add((disk, offset))
        if len(seen) != self.total_units():
            raise LayoutError(
                f"layout covers {len(seen)} of {self.total_units()} units"
            )

    def unit_to_stripe(self) -> dict[tuple[int, int], tuple[int, bool]]:
        """Map each ``(disk, offset)`` to ``(stripe_id, is_parity)``."""
        table: dict[tuple[int, int], tuple[int, bool]] = {}
        for si, stripe in enumerate(self.stripes):
            for ui, unit in enumerate(stripe.units):
                table[unit] = (si, ui == stripe.parity_index)
        return table

    def grid(self) -> list[list[tuple[int, bool]]]:
        """Dense ``[disk][offset] -> (stripe_id, is_parity)`` table —
        the Condition 4 lookup table, also handy for printing figures."""
        table = self.unit_to_stripe()
        return [
            [table[(d, off)] for off in range(self.size)] for d in range(self.v)
        ]

    def render(self, *, max_width: int = 120) -> str:
        """ASCII rendering in the style of the paper's Figs. 2-3: one row
        per offset, one column per disk, ``Sn``/``Pn`` for data/parity of
        stripe ``n``."""
        grid = self.grid()
        width = max(3, len(str(self.b - 1)) + 1)
        header = " " * 6 + "".join(f"D{d:<{width}}" for d in range(self.v))
        lines = [header[:max_width]]
        for off in range(self.size):
            cells = []
            for d in range(self.v):
                sid, is_par = grid[d][off]
                cells.append(f"{'P' if is_par else 'S'}{sid:<{width}}")
            lines.append((f"{off:>4}: " + "".join(cells))[:max_width])
        return "\n".join(lines)


def materialize(
    v: int,
    abstract_stripes: Iterable[tuple[Sequence[int], int]],
    name: str = "",
) -> Layout:
    """Build a :class:`Layout` from disk-level stripes.

    Each abstract stripe is ``(disks, parity_disk)``; offsets are
    assigned per disk in stripe order (each unit takes the next free
    slot on its disk), which is how the paper's tables are laid down.

    Raises:
        LayoutError: if the stripes do not give every disk the same
            number of units (the paper's layouts are rectangular), or a
            parity disk is not a member of its stripe.
    """
    next_free = [0] * v
    stripes: list[Stripe] = []
    for si, (disks, parity_disk) in enumerate(abstract_stripes):
        units: list[tuple[int, int]] = []
        parity_index = -1
        for ui, d in enumerate(disks):
            if not 0 <= d < v:
                raise LayoutError(f"stripe {si}: disk {d} out of range (v={v})")
            units.append((d, next_free[d]))
            next_free[d] += 1
            if d == parity_disk:
                parity_index = ui
        if parity_index < 0:
            raise LayoutError(
                f"stripe {si}: parity disk {parity_disk} not in stripe {tuple(disks)}"
            )
        stripes.append(Stripe(units=tuple(units), parity_index=parity_index))

    size = next_free[0]
    if any(c != size for c in next_free):
        raise LayoutError(
            f"ragged layout: per-disk unit counts range "
            f"{min(next_free)}..{max(next_free)}"
        )
    return Layout(v=v, size=size, stripes=tuple(stripes), name=name)
