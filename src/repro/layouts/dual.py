"""Dual-parity (P+Q) declustered layouts: double-fault tolerance.

The natural extension of the paper's machinery that modern systems
(RAID6, ZFS dRAID) actually ship: each stripe carries two check units,
``P`` (XOR) and ``Q`` (GF(2^8) weighted sum, see
:class:`repro.codes.PQCode`), surviving any two simultaneous disk
failures.  The layout problem is unchanged except that *two*
distinguished units per stripe must be balanced — which is precisely
the generalized Theorem 14 the paper states after Corollary 15.

``P`` is the base layout's parity unit; ``Q`` is chosen by a second
Theorem-14 flow pass over the remaining units, so the per-disk counts
of both check types land within one unit of each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codes import PQCode
from ..flow import assign_parity
from .layout import Layout

__all__ = ["DualParityLayout", "with_dual_parity", "verify_double_fault_tolerance"]


@dataclass(frozen=True)
class DualParityLayout:
    """A layout plus a ``Q`` check unit per stripe.

    Attributes:
        layout: base layout; each stripe's ``parity_unit`` is its ``P``.
        q_units: per stripe, the ``(disk, offset)`` holding ``Q``.
    """

    layout: Layout
    q_units: tuple[tuple[int, int], ...]

    def q_counts(self) -> list[int]:
        """Q units per disk (balanced within one by construction)."""
        counts = [0] * self.layout.v
        for d, _ in self.q_units:
            counts[d] += 1
        return counts

    def data_units(self, stripe_id: int) -> list[tuple[int, int]]:
        """A stripe's data units (everything but P and Q), unit order."""
        stripe = self.layout.stripes[stripe_id]
        q = self.q_units[stripe_id]
        return [u for u in stripe.units if u != stripe.parity_unit and u != q]

    def storage_efficiency(self) -> float:
        """Fraction of the array holding data (``1 - 2b/(v·size)``)."""
        return 1 - 2 * self.layout.b / self.layout.total_units()

    def validate(self) -> None:
        """Check Q units are distinct stripe members, never equal to P,
        and every stripe keeps at least one data unit.

        Raises:
            ValueError: on any violation.
        """
        for sid, (stripe, q) in enumerate(zip(self.layout.stripes, self.q_units)):
            if q not in stripe.units:
                raise ValueError(f"stripe {sid}: Q unit {q} not a member")
            if q == stripe.parity_unit:
                raise ValueError(f"stripe {sid}: Q coincides with P")
            if stripe.size < 3:
                raise ValueError(
                    f"stripe {sid} has size {stripe.size}; P+Q needs >= 3 units"
                )


def with_dual_parity(layout: Layout) -> DualParityLayout:
    """Attach balanced ``Q`` units to a layout (P = existing parity).

    Raises:
        ValueError: if some stripe has fewer than 3 units.
    """
    candidates = []
    for sid, stripe in enumerate(layout.stripes):
        if stripe.size < 3:
            raise ValueError(
                f"stripe {sid} has size {stripe.size}; P+Q needs >= 3 units"
            )
        p_disk = stripe.parity_unit[0]
        candidates.append(tuple(d for d in stripe.disks if d != p_disk))
    q_disks = assign_parity(candidates, layout.v)
    q_units = []
    for stripe, qd in zip(layout.stripes, q_disks):
        q_units.append(next(u for u in stripe.units if u[0] == qd))
    dual = DualParityLayout(layout=layout, q_units=tuple(q_units))
    dual.validate()
    return dual


def verify_double_fault_tolerance(
    dual: DualParityLayout,
    *,
    failure_pairs: list[tuple[int, int]] | None = None,
    unit_bytes: int = 16,
    seed: int = 0,
) -> bool:
    """Bit-level oracle: fill the array with random bytes, encode P and
    Q everywhere, then for each pair of failed disks reconstruct every
    lost unit and compare with the original contents.

    Args:
        failure_pairs: disk pairs to test (default: a spanning sample —
            (0,1), (0, v-1), and the middle pair).

    Returns:
        True iff every tested double failure is fully recoverable.
    """
    layout = dual.layout
    v, size = layout.v, layout.size
    rng = np.random.default_rng(seed)
    store = rng.integers(0, 256, size=(v, size, unit_bytes), dtype=np.uint8)

    codes: dict[int, PQCode] = {}
    stripe_data: list[list[tuple[int, int]]] = []
    for sid, stripe in enumerate(layout.stripes):
        data_units = dual.data_units(sid)
        stripe_data.append(data_units)
        m = len(data_units)
        code = codes.setdefault(m, PQCode(m))
        data = np.stack([store[d, off] for d, off in data_units])
        p, q = code.encode(data)
        pd, poff = stripe.parity_unit
        qd, qoff = dual.q_units[sid]
        store[pd, poff] = p
        store[qd, qoff] = q

    if failure_pairs is None:
        failure_pairs = [(0, 1), (0, v - 1), (v // 2, v // 2 + 1)]

    for f1, f2 in failure_pairs:
        failed = {f1, f2}
        for sid, stripe in enumerate(layout.stripes):
            if not failed & set(stripe.disks):
                continue
            data_units = stripe_data[sid]
            m = len(data_units)
            code = codes[m]
            data = np.stack([store[d, off] for d, off in data_units])
            missing = [i for i, (d, _) in enumerate(data_units) if d in failed]
            data[missing] = 0  # lost
            pd, poff = stripe.parity_unit
            qd, qoff = dual.q_units[sid]
            p = None if pd in failed else store[pd, poff]
            q = None if qd in failed else store[qd, qoff]

            repaired = code.reconstruct(data, p, q, missing)
            for i in missing:
                d, off = data_units[i]
                if not np.array_equal(repaired[i], store[d, off]):
                    return False
            # Lost check units are recomputable from repaired data.
            p2, q2 = code.encode(repaired)
            if pd in failed and not np.array_equal(p2, store[pd, poff]):
                return False
            if qd in failed and not np.array_equal(q2, store[qd, qoff]):
                return False
    return True
