"""Identity-keyed LRU caching for expensive-to-hash value objects.

``functools.lru_cache`` hashes its key on every probe.  For a
:class:`repro.layouts.Layout` that hash walks every stripe tuple — on a
10^6-stripe layout the hash alone costs more than the lookup it guards,
and it is paid again on *every* cache hit.  :class:`IdentityLRU` keys on
``id(obj)`` instead: a hit is one dict probe regardless of object size.

Identity keys are only sound while the keyed object is alive (ids are
reused after collection), so each entry pins the key object for exactly
as long as it stays cached — the same lifetime guarantee ``lru_cache``
gives by holding its key tuple, here without the hashing.  Eviction is
LRU on the bounded entry count.

The trade-off versus value-keyed caching: two *equal but distinct*
objects now build two entries.  The registry already canonicalizes
layouts (``get_layout`` returns shared instances), so in practice the
identity is the value.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, NamedTuple, TypeVar

__all__ = ["CacheInfo", "IdentityLRU", "identity_lru_cache"]

T = TypeVar("T")


class CacheInfo(NamedTuple):
    """``lru_cache``-shaped statistics tuple."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


class IdentityLRU:
    """An LRU cache keyed on ``(id(first_arg), *rest)``.

    Args:
        build: the builder; called as ``build(obj, *args)`` on a miss.
        maxsize: bound on live entries (LRU eviction).

    The instance is callable with the builder's signature and exposes
    ``cache_info()`` / ``cache_clear()`` like an ``lru_cache`` wrapper.
    """

    def __init__(self, build: Callable[..., T], maxsize: int = 16):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self._build = build
        self._maxsize = maxsize
        # key -> (anchor, value): the anchor pins the keyed object so
        # its id cannot be reused while the entry lives.
        self._entries: OrderedDict[tuple, tuple[object, object]] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def __call__(self, obj: object, *args: object):
        key = (id(obj), *args)
        entry = self._entries.get(key)
        if entry is not None:
            self._hits += 1
            self._entries.move_to_end(key)
            return entry[1]
        self._misses += 1
        value = self._build(obj, *args)
        self._entries[key] = (obj, value)
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
        return value

    def cache_info(self) -> CacheInfo:
        """Current ``(hits, misses, maxsize, currsize)``."""
        return CacheInfo(
            self._hits, self._misses, self._maxsize, len(self._entries)
        )

    def cache_clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0


def identity_lru_cache(
    maxsize: int = 16,
) -> Callable[[Callable[..., T]], IdentityLRU]:
    """Decorator form: ``@identity_lru_cache(maxsize=16)`` over a
    builder function, preserving its docstring."""

    def wrap(build: Callable[..., T]) -> IdentityLRU:
        cache = IdentityLRU(build, maxsize=maxsize)
        cache.__doc__ = build.__doc__
        return cache

    return wrap
