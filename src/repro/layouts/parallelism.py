"""Conditions 5 and 6: Stockmeyer's sequential-workload metrics.

Holland & Gibson's last two layout conditions — which the paper sets
aside and Stockmeyer [15] later measured for these very layouts —
concern how *logically consecutive* data maps onto the array:

* **Condition 5 (Large Write Optimization):** a logical write covering
  all ``k-1`` data units of one stripe can compute parity without
  reading anything.  Metric: the fraction of aligned ``(k-1)``-unit
  logical runs that land exactly on one stripe's data units.
* **Condition 6 (Maximal Parallelism):** reading ``v`` consecutive
  logical units should engage all ``v`` disks.  Metric: the minimum
  number of distinct disks touched over all windows of ``v``
  consecutive logical addresses.

Both depend only on the layout and the logical numbering used by
:class:`repro.layouts.AddressMapper` (stripe-major order, the natural
choice the paper's Fig. 2/3 tables imply).
"""

from __future__ import annotations

from dataclasses import dataclass

from .layout import Layout
from .mapping import AddressMapper

__all__ = ["SequentialMetrics", "sequential_metrics"]


@dataclass(frozen=True)
class SequentialMetrics:
    """Conditions 5-6 measurements for a layout + mapping."""

    #: Fraction of aligned (k-1)-unit runs covering exactly one stripe.
    large_write_fraction: float
    #: Minimum distinct disks over any v-unit consecutive window.
    min_parallelism: int
    #: Maximum distinct disks (= v when some window is perfect).
    max_parallelism: int
    v: int
    k: int

    @property
    def large_write_optimal(self) -> bool:
        """Condition 5 ideal: every aligned full-stripe write is free of
        pre-reads."""
        return self.large_write_fraction == 1.0

    @property
    def maximally_parallel(self) -> bool:
        """Condition 6 ideal: every v-window touches all v disks."""
        return self.min_parallelism == self.v


def sequential_metrics(layout: Layout, *, k: int | None = None) -> SequentialMetrics:
    """Measure Conditions 5 and 6 for ``layout`` under the stripe-major
    logical numbering.

    Args:
        k: nominal stripe size for the large-write window (defaults to
            the layout's maximum stripe size; approximate layouts mix
            ``k`` and ``k-1``-unit stripes, and only full-size stripes
            can be large-write targets).
    """
    mapper = AddressMapper(layout)
    _, k_max = layout.stripe_sizes()
    k_eff = k if k is not None else k_max
    window = k_eff - 1
    capacity = mapper.capacity

    # Condition 5: aligned windows of k-1 logical units.
    full = 0
    total = 0
    for start in range(0, capacity - window + 1, window):
        stripes = {
            mapper.logical_to_physical(lba).stripe
            for lba in range(start, start + window)
        }
        total += 1
        if len(stripes) == 1:
            # Must also cover the whole stripe's data (not just lie inside).
            sid = stripes.pop()
            if len(layout.stripes[sid].data_units()) == window:
                full += 1
    large_write_fraction = full / total if total else 0.0

    # Condition 6: sliding windows of v consecutive logical units.
    v = layout.v
    disks = [mapper.logical_to_physical(lba).disk for lba in range(capacity)]
    min_par = v
    max_par = 0
    if capacity >= v:
        for start in range(capacity - v + 1):
            spread = len(set(disks[start : start + v]))
            min_par = min(min_par, spread)
            max_par = max(max_par, spread)
    else:
        min_par = max_par = len(set(disks))

    return SequentialMetrics(
        large_write_fraction=large_write_fraction,
        min_parallelism=min_par,
        max_parallelism=max_par,
        v=v,
        k=k_eff,
    )
