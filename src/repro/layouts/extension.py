"""Extendible data layouts (Section 5 open problem).

The paper asks for layouts where "additional disks can be introduced
with minimal reconfiguration of the data on the existing disks".  The
removal construction of Theorems 8-9 has exactly this property in
reverse: a family of layouts built by removing nested suffixes of disks
from one ring design keeps every surviving data unit in place —
removal renumbers nothing and offsets are assigned per disk in stripe
order, so growing the array from ``v`` to ``v+1`` disks only

* adds the new disk's column (which must be written anyway), and
* re-designates O(v) parity units (stripes whose parity returns to the
  re-added disk).

No live data moves.  :func:`movement_cost` quantifies this against any
alternative (e.g. replanning a fresh layout), and
:func:`extendible_family` builds the nested family.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import is_prime_power
from ..designs import RingDesign, ring_design
from .layout import Layout
from .removal import remove_disks
from .ring_layout import ring_layout_from_design

__all__ = ["ExtensionStep", "movement_cost", "extendible_family"]


def _fingerprints(layout: Layout, disks: int) -> dict[tuple[int, int], tuple]:
    """Per-unit identity of the stripe a unit belongs to, restricted to
    the first ``disks`` disks: the unit's role is characterized by the
    set of peer units it shares a stripe with and whether it is parity.

    Two layouts agree on a unit iff a rebuild/controller would treat the
    unit identically in both.
    """
    out: dict[tuple[int, int], tuple] = {}
    for stripe in layout.stripes:
        members = frozenset((d, off) for d, off in stripe.units if d < disks)
        for ui, (d, off) in enumerate(stripe.units):
            if d < disks:
                out[(d, off)] = (members, ui == stripe.parity_index)
    return out


def movement_cost(old: Layout, new: Layout) -> dict[str, int]:
    """How much reconfiguration turning ``old`` into ``new`` requires.

    Compares the two layouts on their common disks (and common offsets)
    and counts units whose stripe membership changed (``data_moved`` —
    these require physically relocating data) versus units that merely
    changed parity/data role (``role_changed`` — a parity recompute, no
    data movement).

    Returns a dict with ``common_units``, ``data_moved``,
    ``role_changed``.
    """
    disks = min(old.v, new.v)
    size = min(old.size, new.size)
    fa = _fingerprints(old, disks)
    fb = _fingerprints(new, disks)
    data_moved = 0
    role_changed = 0
    common = 0
    for d in range(disks):
        for off in range(size):
            a = fa.get((d, off))
            b = fb.get((d, off))
            if a is None or b is None:
                continue
            common += 1
            if a[0] != b[0]:
                data_moved += 1
            elif a[1] != b[1]:
                role_changed += 1
    return {
        "common_units": common,
        "data_moved": data_moved,
        "role_changed": role_changed,
    }


@dataclass(frozen=True)
class ExtensionStep:
    """One step of the extendible family: the layout for ``v`` disks and
    the cost of having grown from the previous (``v-1``-disk) layout."""

    v: int
    layout: Layout
    data_moved: int
    role_changed: int


def extendible_family(v_max: int, k: int, steps: int) -> list[ExtensionStep]:
    """Build nested layouts for ``v_max - steps .. v_max`` disks from one
    ring design, growable with zero data movement.

    ``v_max`` must be a prime power (the ring design's order); each
    smaller layout removes one more trailing disk (Theorems 8/9).  The
    returned list is ordered smallest array first, each step annotated
    with the measured reconfiguration cost of growing into it.

    Raises:
        ValueError: if ``v_max`` is not a prime power or ``steps`` is
            out of range for Theorem 9 (``steps(steps-1) > k-steps``).
    """
    if not is_prime_power(v_max):
        raise ValueError(f"v_max={v_max} must be a prime power")
    if steps < 1:
        raise ValueError("need at least one extension step")
    design: RingDesign = ring_design(v_max, k)

    layouts: list[Layout] = []
    for i in range(steps, 0, -1):
        layouts.append(remove_disks(design, list(range(v_max - i, v_max))))
    layouts.append(ring_layout_from_design(design))

    family: list[ExtensionStep] = []
    prev: Layout | None = None
    for lay in layouts:
        if prev is None:
            family.append(
                ExtensionStep(v=lay.v, layout=lay, data_moved=0, role_changed=0)
            )
        else:
            cost = movement_cost(prev, lay)
            family.append(
                ExtensionStep(
                    v=lay.v,
                    layout=lay,
                    data_moved=cost["data_moved"],
                    role_changed=cost["role_changed"],
                )
            )
        prev = lay
    return family
