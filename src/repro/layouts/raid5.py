"""RAID level 5: the non-declustered baseline (Fig. 1).

Every stripe spans all ``v`` disks (``k = v``), with the parity unit
rotated round-robin across disks so no single disk bottlenecks on
parity updates.  Rebuilding a failed disk reads *all* of every surviving
disk — the cost parity declustering exists to reduce.
"""

from __future__ import annotations

from .layout import Layout, Stripe, materialize

__all__ = ["raid5_layout"]


def raid5_layout(v: int, *, rotations: int = 1) -> Layout:
    """Left-symmetric RAID5 layout for ``v`` disks.

    Each rotation contributes ``v`` full-width stripes with the parity
    walking across the disks, so the layout has ``size = v * rotations``
    and perfectly balanced parity.

    Raises:
        ValueError: if ``v < 2`` or ``rotations < 1``.
    """
    if v < 2:
        raise ValueError(f"RAID5 needs at least 2 disks, got {v}")
    if rotations < 1:
        raise ValueError(f"rotations must be >= 1, got {rotations}")
    abstract = []
    for row in range(v * rotations):
        parity_disk = (v - 1 - row) % v  # left-symmetric rotation
        abstract.append((tuple(range(v)), parity_disk))
    return materialize(v, abstract, name=f"raid5(v={v})")
