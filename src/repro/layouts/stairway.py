"""The stairway transformation (Section 3.2, Theorems 10-12, Figs. 4-6).

Takes a perfectly balanced ring layout for ``q`` disks and perturbs it
into an approximately balanced layout for ``v > q`` disks: stack ``c``
copies of the ``q``-disk layout, cut along a staircase whose steps are
``d = v - q`` (or ``d+1``) columns wide, and shift the top part right by
``d`` and down by one copy.  Each disk of the new layout is a stack of
``c - 1`` *pieces* — single-disk columns of the original copies.

When some steps must be one column wider (``w`` of them, with
``v = c·d + w`` and ``w < c`` — the paper's conditions (8) and (9)),
the shift makes one column of copy ``t`` overlap per wide step ``t``;
the paper resolves it by deleting that column from that copy with the
Theorem 8 removal, which keeps the copy perfectly balanced.

Our indexing (0-based; step of new column ``j`` is ``t(j)``):

* new column ``j``, piece-row ``i``: comes from old column ``j - d`` of
  copy ``i`` when ``i < t(j)`` (the shifted top part), else from old
  column ``j`` of copy ``i + 1`` (the bottom part);
* equivalently old column ``y`` of copy ``r`` lands on new column
  ``y + d`` if ``r < t(y+d)``, on new column ``y`` if ``r > t(y)``, and
  is the removed/overlap column when ``r == t(y) == t(y+d)`` (possible
  only for ``y = B_t``, the first column of a wide step ``t = r``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..algebra import Element, is_prime_power, prime_powers_upto
from ..designs import RingDesign, ring_design
from .layout import Layout, materialize

__all__ = [
    "StairwayPlan",
    "stairway_params",
    "find_stairway_plan",
    "find_smallest_stairway_plan",
    "iter_stairway_plans",
    "stairway_layout",
    "theorem10_layout",
    "theorem11_layout",
]


@dataclass(frozen=True)
class StairwayPlan:
    """Resolved parameters of a stairway transformation.

    Attributes:
        v: target number of disks.
        q: base prime-power array size (a ring layout for ``(q, k)``).
        c: number of copies of the base layout (condition (8)).
        w: number of wide steps (condition (9): ``w < c``).
    """

    v: int
    q: int
    c: int
    w: int

    @property
    def d(self) -> int:
        """Normal step width ``v - q`` (the horizontal shift)."""
        return self.v - self.q

    def predicted_size(self, k: int) -> int:
        """Layout size ``k(c-1)(q-1)`` (Theorems 11/12)."""
        return k * (self.c - 1) * (self.q - 1)


def stairway_params(v: int, q: int) -> tuple[int, int] | None:
    """Solve conditions (8)-(9): ``v = c·d + w`` with ``0 <= w < c``.

    Since ``w ≡ v (mod d)`` and raising ``w`` only lowers ``c``, the
    smallest residue ``w = v mod d`` is the only candidate; it also
    maximizes ``c``, i.e. minimizes the parity imbalance ``w/(c-1)(q-1)``.
    Returns ``(c, w)``, or ``None`` if the conditions are unsatisfiable
    (or the resulting layout would be degenerate, ``c < 2``).
    """
    d = v - q
    if d <= 0 or q < 2:
        return None
    w = v % d
    c = v // d
    if w >= c or c < 2:
        return None
    return c, w


def find_stairway_plan(v: int, k: int | None = None) -> StairwayPlan | None:
    """Find the largest prime power ``q < v`` admitting a stairway to
    ``v`` (and supporting stripe size ``k``, when given).

    The largest feasible ``q`` minimizes the step width ``d`` and the
    balance perturbation.  This is the search behind the paper's claim
    that every ``v <= 10,000`` is covered.
    """
    for plan in iter_stairway_plans(v, k):
        return plan
    return None


def iter_stairway_plans(v: int, k: int | None = None):
    """Yield every valid stairway plan for ``v`` in decreasing-``q``
    order (decreasing layout size, increasing imbalance)."""
    for q in reversed(prime_powers_upto(v - 1)):
        if k is not None and k > q:
            break  # q only shrinks from here; the ring layout needs k <= q
        params = stairway_params(v, q)
        if params is None:
            continue
        if params[1] > 0 and k is not None and k < 3:
            continue  # wide steps need k >= 3 (see stairway_layout)
        yield StairwayPlan(v=v, q=q, c=params[0], w=params[1])


def find_smallest_stairway_plan(v: int, k: int) -> StairwayPlan | None:
    """The stairway plan minimizing layout size ``k(c-1)(q-1)``.

    The paper's size/imbalance trade-off: large perturbations (small
    ``q``, few copies ``c``) give much smaller layouts at the cost of a
    (still small, for large ``q``) parity/workload imbalance.  This is
    the plan a size-constrained array controller wants.
    """
    best: StairwayPlan | None = None
    for plan in iter_stairway_plans(v, k):
        if best is None or plan.predicted_size(k) < best.predicted_size(k):
            best = plan
    return best


def _step_widths(plan: StairwayPlan, wide_steps: Sequence[int] | None) -> list[int]:
    """Widths of the ``c`` steps; ``w`` of them are ``d+1``.

    Default arrangement spreads the wide steps evenly (Bresenham rule);
    the bounds of Theorem 12 hold for any arrangement, which the test
    suite exercises via the override.
    """
    c, w, d = plan.c, plan.w, plan.d
    if wide_steps is None:
        wide = {t for t in range(c) if (t + 1) * w // c > t * w // c}
    else:
        wide = set(wide_steps)
        if len(wide) != w or not all(0 <= t < c for t in wide):
            raise ValueError(f"need exactly {w} wide steps within 0..{c - 1}")
    return [d + 1 if t in wide else d for t in range(c)]


def _removed_copy_stripes(
    design: RingDesign, removed: int
) -> list[tuple[tuple[int, ...], int]]:
    """Theorem 8 removal of one column from a copy of the ring layout,
    *without* renumbering the surviving columns (the stairway placement
    maps original column ids)."""
    ring = design.ring
    index = ring.index
    delta = ring.sub(design.gens[1], design.gens[0])
    out: list[tuple[tuple[int, ...], int]] = []
    for (x, y), elems in zip(design.pairs, design.block_elements):
        disks = tuple(index(e) for e in elems)
        surviving = tuple(dd for dd in disks if dd != removed)
        parity = index(x)
        if parity == removed:
            parity = index(ring.add(x, ring.mul(y, delta)))
        out.append((surviving, parity))
    return out


def stairway_layout(
    v: int,
    q: int,
    k: int,
    *,
    wide_steps: Sequence[int] | None = None,
) -> Layout:
    """Build the stairway layout for ``v`` disks from the ``(q, k)``
    ring layout.

    Covers Theorem 10 (``v = q+1``), Theorem 11 (``(v-q) | v``, i.e.
    ``w = 0``), and Theorem 12 (``w > 0`` wide steps with the overlap
    removed per Theorem 8).  Size ``k(c-1)(q-1)``.

    Args:
        wide_steps: optional explicit positions of the ``w`` wide steps
            (default: spread evenly).

    Raises:
        ValueError: if ``q`` is not a prime power, ``k > q``, or
            conditions (8)-(9) have no solution for ``(v, q)``.
    """
    if not is_prime_power(q):
        raise ValueError(f"base array size q={q} must be a prime power")
    if k > q:
        raise ValueError(f"stripe size k={k} exceeds base array size q={q}")
    params = stairway_params(v, q)
    if params is None:
        raise ValueError(
            f"no stairway from q={q} to v={v}: conditions (8)-(9) unsatisfiable"
        )
    plan = StairwayPlan(v=v, q=q, c=params[0], w=params[1])
    if plan.w > 0 and k < 3:
        raise ValueError(
            f"wide steps (w={plan.w}) remove a disk per affected copy, "
            f"leaving (k-1)-unit stripes; k={k} would create single-unit stripes"
        )
    c, d = plan.c, plan.d

    widths = _step_widths(plan, wide_steps)
    bounds: list[int] = [0]
    for wd in widths:
        bounds.append(bounds[-1] + wd)
    if bounds[-1] != v:
        raise AssertionError("step widths must sum to v")
    step_of = [0] * v
    for t in range(c):
        for j in range(bounds[t], bounds[t + 1]):
            step_of[j] = t

    base = ring_design(q, k)
    normal_stripes = None  # built lazily; shared by all non-wide copies

    def placement(r: int, y: int) -> int:
        """New column of old column ``y`` in copy ``r`` (see module doc)."""
        if r > step_of[y]:
            return y
        if r < step_of[y + d]:
            return y + d
        raise AssertionError(
            f"old column {y} of copy {r} is the removed overlap column"
        )

    all_stripes: list[tuple[tuple[int, ...], int]] = []
    for r in range(c):
        if widths[r] == d + 1:
            removed = bounds[r]
            if removed >= q:
                raise AssertionError("overlap column must be a valid old column")
            copy_stripes = _removed_copy_stripes(base, removed)
        else:
            if normal_stripes is None:
                from .ring_layout import ring_disk_stripes

                normal_stripes = ring_disk_stripes(base)
            copy_stripes = normal_stripes
        for disks, parity in copy_stripes:
            all_stripes.append(
                (
                    tuple(placement(r, y) for y in disks),
                    placement(r, parity),
                )
            )

    return materialize(
        v,
        all_stripes,
        name=f"stairway(v={v},q={q},k={k},c={c},w={plan.w})",
    )


def theorem10_layout(q: int, k: int) -> Layout:
    """Theorem 10: layout for ``v = q+1`` disks; size ``kq(q-1)``, parity
    overhead exactly ``1/k``, reconstruction workload exactly
    ``(k-1)/q``."""
    return stairway_layout(q + 1, q, k)


def theorem11_layout(v: int, q: int, k: int) -> Layout:
    """Theorem 11: layout for ``v`` disks when ``(v-q)`` divides ``v``;
    size ``k(c-1)(q-1)``, parity overhead ``1/k``, workload within
    ``[((c-2)/(c-1))·(k-1)/(q-1), (k-1)/(q-1)]``.

    Raises:
        ValueError: if ``(v - q)`` does not divide ``v``.
    """
    if v % (v - q) != 0:
        raise ValueError(f"Theorem 11 needs (v-q) | v; got v={v}, q={q}")
    return stairway_layout(v, q, k)
