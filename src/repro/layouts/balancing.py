"""Flow-balanced layouts (Section 4 applied to layout construction).

Two user-facing consequences of Theorems 13-14:

* :func:`single_copy_layout` — one copy of *any* BIBD with parity spread
  at most one unit across disks (no replication at all); this is the
  paper's "turn a single copy of any BIBD into a layout with
  approximately-balanced parity".
* :func:`minimum_balanced_layout` — the Holland–Gibson lcm conjecture
  (Corollary 17): exactly ``lcm(b, v)/b`` copies, flow-assigned parity,
  perfectly balanced — the provably minimal replication.

Also provides :func:`rebalance_parity`, which reassigns the parity units
of an existing layout (of arbitrary, even mixed-size stripes) to the
Theorem 14 optimum while keeping the data placement fixed.
"""

from __future__ import annotations

from ..designs import BlockDesign
from ..flow import assign_parity, copies_for_perfect_balance
from .holland_gibson import layout_from_design
from .layout import Layout, Stripe

__all__ = [
    "single_copy_layout",
    "minimum_balanced_layout",
    "rebalance_parity",
]


def single_copy_layout(design: BlockDesign) -> Layout:
    """One unreplicated copy of ``design`` with flow-assigned parity.

    Size ``k·b/v`` — a factor ``k`` smaller than Holland–Gibson — with
    per-disk parity counts differing by at most one (Corollary 16).
    """
    return layout_from_design(design, copies=1, parity="flow")


def minimum_balanced_layout(design: BlockDesign) -> Layout:
    """The minimal perfectly-parity-balanced layout from ``design``:
    ``lcm(b, v)/b`` copies with flow-assigned parity (Corollary 17)."""
    copies = copies_for_perfect_balance(design.b, design.v)
    return layout_from_design(design, copies=copies, parity="flow")


def rebalance_parity(layout: Layout) -> Layout:
    """Reassign parity units of an existing layout via the Section 4
    network-flow method, leaving every data unit where it is.

    Works for any stripe-size mix (the Theorem 14 statement); per-disk
    parity counts land in ``{⌊L(d)⌋, ⌈L(d)⌉}``.
    """
    stripes_disks = [s.disks for s in layout.stripes]
    parity_disks = assign_parity(stripes_disks, layout.v)
    new_stripes = []
    for stripe, pd in zip(layout.stripes, parity_disks):
        new_stripes.append(
            Stripe(units=stripe.units, parity_index=stripe.disks.index(pd))
        )
    return Layout(
        v=layout.v,
        size=layout.size,
        stripes=tuple(new_stripes),
        name=f"{layout.name}+flowparity" if layout.name else "flowparity",
    )
