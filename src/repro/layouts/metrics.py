"""Layout quality metrics — the paper's Conditions 2-4 measurements.

* Condition 2 (parity balance): per-disk *parity overhead*, the fraction
  of a disk's units that are parity; the paper's metric is its maximum
  over disks.
* Condition 3 (reconstruction balance): per-pair *reconstruction
  workload*, the fraction of one disk read while rebuilding another;
  metric is the maximum over ordered pairs.
* Condition 4 (mapping efficiency): the layout size (units per disk),
  which is the lookup-table row count.

The workload matrix is computed with a NumPy incidence-matrix product
(``C = Mᵀ M``); layouts here can have tens of thousands of stripes, and
the quadratic pair loop in pure Python is the one genuine hot spot in
the metrics path.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from .layout import Layout

__all__ = [
    "LayoutMetrics",
    "parity_counts",
    "parity_overheads",
    "cocrossing_matrix",
    "reconstruction_workloads",
    "evaluate_layout",
]


def parity_counts(layout: Layout) -> list[int]:
    """Number of parity units on each disk."""
    counts = [0] * layout.v
    for stripe in layout.stripes:
        counts[stripe.parity_unit[0]] += 1
    return counts


def parity_overheads(layout: Layout) -> list[Fraction]:
    """Exact per-disk parity overhead (parity units / size)."""
    return [Fraction(c, layout.size) for c in parity_counts(layout)]


def cocrossing_matrix(layout: Layout) -> np.ndarray:
    """``C[i, j]``: number of stripes with units on both disks ``i`` and
    ``j`` (diagonal: stripes crossing disk ``i``)."""
    m = np.zeros((layout.b, layout.v), dtype=np.int64)
    for si, stripe in enumerate(layout.stripes):
        for d, _ in stripe.units:
            m[si, d] = 1
    return m.T @ m


def reconstruction_workloads(layout: Layout) -> np.ndarray:
    """Workload matrix ``W[i, j]``: fraction of disk ``j`` read when disk
    ``i`` fails (diagonal is zero).

    A stripe crossing both disks contributes exactly one unit read from
    ``j`` (its unit there), so ``W = C / size`` off-diagonal.
    """
    c = cocrossing_matrix(layout).astype(np.float64)
    np.fill_diagonal(c, 0.0)
    return c / float(layout.size)


@dataclass(frozen=True)
class LayoutMetrics:
    """Summary of a layout against the paper's four conditions."""

    v: int
    size: int
    b: int
    k_min: int
    k_max: int
    parity_overhead_min: Fraction
    parity_overhead_max: Fraction
    workload_min: float
    workload_max: float
    parity_spread: int  # max - min per-disk parity count

    @property
    def parity_balanced(self) -> bool:
        """Perfectly even parity distribution (Condition 2 ideal)."""
        return self.parity_spread == 0

    @property
    def workload_balanced(self) -> bool:
        """Perfectly even reconstruction workload (Condition 3 ideal)."""
        return abs(self.workload_max - self.workload_min) < 1e-12

    def summary(self) -> str:
        """One-line report row."""
        return (
            f"v={self.v} size={self.size} b={self.b} k=[{self.k_min},{self.k_max}] "
            f"parity=[{self.parity_overhead_min},{self.parity_overhead_max}] "
            f"workload=[{self.workload_min:.4f},{self.workload_max:.4f}]"
        )


def evaluate_layout(layout: Layout) -> LayoutMetrics:
    """Compute the full metric set for a layout."""
    pcounts = parity_counts(layout)
    overheads = [Fraction(c, layout.size) for c in pcounts]
    w = reconstruction_workloads(layout)
    offdiag = w[~np.eye(layout.v, dtype=bool)]
    k_min, k_max = layout.stripe_sizes()
    return LayoutMetrics(
        v=layout.v,
        size=layout.size,
        b=layout.b,
        k_min=k_min,
        k_max=k_max,
        parity_overhead_min=min(overheads),
        parity_overhead_max=max(overheads),
        workload_min=float(offdiag.min()),
        workload_max=float(offdiag.max()),
        parity_spread=max(pcounts) - min(pcounts),
    )
